//! Tenant specifications: identity, QoS contract, scheduling weight and
//! admission policy.

use bskel_core::Contract;

/// What admission control does when a tenant's bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Drop the oldest queued task to make room for the new arrival
    /// (freshest-first service; suits monitoring / latest-value streams).
    #[default]
    ShedOldest,
    /// Refuse the new arrival and keep the queue intact (oldest-first
    /// service; suits batch streams where earlier tasks matter more).
    Reject,
}

impl ShedPolicy {
    /// Wire encoding used by the `TenantAttach` frame (see
    /// `bskel_net::proto::TenantAttach::shed_policy`).
    pub fn to_wire(self) -> u8 {
        match self {
            ShedPolicy::ShedOldest => 0,
            ShedPolicy::Reject => 1,
        }
    }

    /// Decodes the wire byte; unknown values fall back to the default.
    pub fn from_wire(b: u8) -> Self {
        match b {
            1 => ShedPolicy::Reject,
            _ => ShedPolicy::ShedOldest,
        }
    }
}

/// One tenant's attachment request: a name, a QoS contract, and the
/// admission-control shape of its queue.
///
/// The initial fair-share weight defaults to the contract's throughput
/// floor (so two tenants promising 100 and 300 tasks/s start at a 1:3
/// split) and to `1.0` for best-effort tenants; per-tenant managers then
/// adjust the live weight at runtime via `GROW_SHARE` / `SHRINK_SHARE`.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant identity; must be unique within a front-end, and becomes the
    /// `tenant` label on ops-plane metrics.
    pub name: String,
    /// The tenant's QoS contract (parsed by the standard contract
    /// grammar; drives the per-tenant manager's rule parameters).
    pub contract: Contract,
    /// Initial DRR weight (relative; normalised against the other live
    /// tenants' weights to obtain the `tenantShare` bean).
    pub weight: f64,
    /// Bounded admission-queue capacity, in tasks.
    pub queue_capacity: usize,
    /// Behaviour when the queue is full.
    pub shed_policy: ShedPolicy,
}

impl TenantSpec {
    /// A spec with the default queue shape (capacity 64, shed-oldest) and
    /// the weight derived from `contract` as documented on the type.
    pub fn new(name: impl Into<String>, contract: Contract) -> Self {
        let weight = match contract.throughput_bounds() {
            Some((lo, _)) if lo > 0.0 => lo,
            _ => 1.0,
        };
        Self {
            name: name.into(),
            contract,
            weight,
            queue_capacity: 64,
            shed_policy: ShedPolicy::default(),
        }
    }

    /// Overrides the initial DRR weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight > 0.0,
            "tenant weight must be positive and finite, got {weight}"
        );
        self.weight = weight;
        self
    }

    /// Overrides the admission-queue capacity.
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "tenant queue capacity must be at least 1");
        self.queue_capacity = cap;
        self
    }

    /// Overrides the full-queue policy.
    pub fn with_shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_defaults_to_contract_floor() {
        let s = TenantSpec::new("a", Contract::min_throughput(250.0));
        assert_eq!(s.weight, 250.0);
        let b = TenantSpec::new("b", Contract::BestEffort);
        assert_eq!(b.weight, 1.0);
    }

    #[test]
    fn builders_override() {
        let s = TenantSpec::new("a", Contract::BestEffort)
            .with_weight(3.0)
            .with_queue_capacity(8)
            .with_shed_policy(ShedPolicy::Reject);
        assert_eq!(s.weight, 3.0);
        assert_eq!(s.queue_capacity, 8);
        assert_eq!(s.shed_policy, ShedPolicy::Reject);
    }

    #[test]
    fn shed_policy_wire_roundtrip() {
        for p in [ShedPolicy::ShedOldest, ShedPolicy::Reject] {
            assert_eq!(ShedPolicy::from_wire(p.to_wire()), p);
        }
        // Unknown bytes degrade to the default rather than failing.
        assert_eq!(ShedPolicy::from_wire(7), ShedPolicy::ShedOldest);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let _ = TenantSpec::new("a", Contract::BestEffort).with_weight(0.0);
    }
}
