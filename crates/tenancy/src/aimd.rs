//! AIMD adaptation of the per-tenant in-flight cap.
//!
//! The front-end's static cap — `max(1, round(workers × share))` — keeps
//! a flooding tenant from monopolising the worker queues, but it is
//! blind to how the tenant's own traffic behaves: a tenant whose queue
//! is persistently backlogged could safely pipeline deeper, while one
//! whose admission queue is shedding is *already* over-subscribed and
//! should be pipelining shallower, not merely no deeper.
//!
//! [`InFlightAimd`] closes that loop with the classic congestion-control
//! law the `aimd` manager controller applies to the pool's par-degree,
//! here applied per tenant to a multiplicative factor on the static cap:
//!
//! * **additive increase** — while the tenant is backlogged and clean
//!   (no new sheds), the factor grows by [`InFlightAimd::AI_STEP`] once
//!   per [`InFlightAimd::PERIOD`] seconds, up to
//!   [`InFlightAimd::MAX_FACTOR`];
//! * **multiplicative decrease** — the moment the tenant's shed counter
//!   advances, the factor is cut by [`InFlightAimd::MD_BETA`]
//!   immediately (congestion signals are not rate-limited), down to
//!   [`InFlightAimd::MIN_FACTOR`].
//!
//! The effective cap is `max(1, round(base × factor))`, so a tenant can
//! never be starved outright and fairness between tenants still comes
//! from the DRR weights — AIMD only adapts pipeline *depth*.

/// Per-tenant AIMD state: a multiplicative factor on the static
/// in-flight cap. See the module docs for the control law.
#[derive(Debug, Clone)]
pub struct InFlightAimd {
    factor: f64,
    sheds_seen: u64,
    last_adjust: f64,
}

impl InFlightAimd {
    /// Floor of the cap factor (a quarter of the fair-share cap).
    pub const MIN_FACTOR: f64 = 0.25;
    /// Ceiling of the cap factor (four times the fair-share cap).
    pub const MAX_FACTOR: f64 = 4.0;
    /// Additive step applied per clean backlogged period.
    pub const AI_STEP: f64 = 0.25;
    /// Multiplicative cut applied per shed observation.
    pub const MD_BETA: f64 = 0.5;
    /// Minimum seconds between additive increases — the dispatch pass
    /// runs every millisecond, far faster than the control timescale.
    pub const PERIOD: f64 = 0.05;

    /// A fresh controller at the neutral factor `1.0` (the static cap).
    pub fn new() -> Self {
        Self {
            factor: 1.0,
            sheds_seen: 0,
            last_adjust: f64::NEG_INFINITY,
        }
    }

    /// The current multiplicative factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Feeds one observation: the tenant's cumulative shed counter and
    /// whether its admission queue is backlogged right now. Returns the
    /// updated factor.
    pub fn observe(&mut self, now: f64, sheds_total: u64, backlogged: bool) -> f64 {
        if sheds_total > self.sheds_seen {
            // MD: react to every shed burst immediately.
            self.sheds_seen = sheds_total;
            self.factor = (self.factor * Self::MD_BETA).max(Self::MIN_FACTOR);
            self.last_adjust = now;
        } else if backlogged && now - self.last_adjust >= Self::PERIOD {
            // AI: probe for depth while demand persists and sheds don't.
            self.factor = (self.factor + Self::AI_STEP).min(Self::MAX_FACTOR);
            self.last_adjust = now;
        }
        self.factor
    }

    /// Applies the factor to a static cap, never starving the tenant.
    pub fn apply(&self, base_cap: u64) -> u64 {
        ((base_cap as f64 * self.factor).round() as u64).max(1)
    }
}

impl Default for InFlightAimd {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_increase_is_period_gated() {
        let mut a = InFlightAimd::new();
        assert_eq!(a.observe(0.0, 0, true), 1.25);
        // Same instant, still backlogged: no second step.
        assert_eq!(a.observe(0.0, 0, true), 1.25);
        assert_eq!(a.observe(0.01, 0, true), 1.25);
        // One full period later the next step lands.
        assert_eq!(a.observe(0.05, 0, true), 1.5);
        // Idle (not backlogged) tenants do not grow.
        assert_eq!(a.observe(1.0, 0, false), 1.5);
    }

    #[test]
    fn multiplicative_decrease_on_shed_is_immediate() {
        let mut a = InFlightAimd::new();
        for i in 0..100 {
            a.observe(i as f64 * 0.05, 0, true);
        }
        assert_eq!(a.factor(), InFlightAimd::MAX_FACTOR);
        // A shed burst (counter advanced) halves the factor at once,
        // even though the last adjustment was this very instant.
        assert_eq!(a.observe(100.0 * 0.05, 1, true), 2.0);
        // The same cumulative count is not a fresh signal.
        assert_eq!(a.observe(100.0 * 0.05 + 0.05, 1, false), 2.0);
        // Further bursts keep cutting, down to the floor.
        let mut t = 6.0;
        for sheds in 2..12 {
            a.observe(t, sheds, false);
            t += 0.001;
        }
        assert_eq!(a.factor(), InFlightAimd::MIN_FACTOR);
    }

    #[test]
    fn factor_stays_within_bounds_under_any_interleaving() {
        let mut a = InFlightAimd::new();
        let mut sheds = 0;
        for i in 0..1000 {
            if i % 7 == 0 {
                sheds += 1;
            }
            let f = a.observe(i as f64 * 0.06, sheds, i % 3 != 0);
            assert!(
                (InFlightAimd::MIN_FACTOR..=InFlightAimd::MAX_FACTOR).contains(&f),
                "factor {f} escaped its bounds at step {i}"
            );
        }
    }

    #[test]
    fn apply_floors_the_effective_cap_at_one() {
        let mut a = InFlightAimd::new();
        for sheds in 1..10 {
            a.observe(sheds as f64, sheds, false);
        }
        assert_eq!(a.factor(), InFlightAimd::MIN_FACTOR);
        assert_eq!(a.apply(1), 1, "a capped-out tenant still progresses");
        assert_eq!(a.apply(8), 2);
        let mut b = InFlightAimd::new();
        for i in 0..100 {
            b.observe(i as f64, 0, true);
        }
        assert_eq!(b.apply(8), 32);
    }
}
