//! The multi-tenant front-end: bounded per-tenant admission queues, a
//! deficit-round-robin scheduler thread multiplexing them onto one shared
//! farm input, and a collector thread demultiplexing the farm output back
//! to per-tenant result streams.
//!
//! Isolation comes from two mechanisms working together:
//!
//! 1. **DRR dispatch order** ([`crate::drr`]): backlogged tenants are
//!    served in proportion to their live weights, so a flooding tenant
//!    cannot starve a modest one of *dispatch slots*.
//! 2. **Per-tenant in-flight caps**: each tenant may have at most
//!    `max(1, round(workers × share))` tasks inside the farm at once, so
//!    a flood cannot fill the worker queues and inflate the tail latency
//!    of a victim's next task: total in-flight stays near the worker
//!    count, and a freshly dispatched task finds a worker within about
//!    one service time. (Completions tick the scheduler, so the refill
//!    gap is dispatch latency, not a polling interval.)
//!
//! Sequence numbering is two-level: tenants see their own dense `seq`
//! assigned at admission; the farm sees a global sequence assigned at
//! dispatch. The collector maps global back to tenant sequence, which is
//! what lets one `GatherPolicy::Unordered` farm serve all tenants.

use crate::drr::Drr;
use crate::spec::{ShedPolicy, TenantSpec};
use bskel_monitor::{Clock, RateEstimator, RealClock, SensorSnapshot, Time};
use bskel_skel::{FarmControl, ShutdownReport, StreamMsg};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Window used by the per-tenant arrival/completion rate estimators.
const RATE_WINDOW: Time = 2.0;

/// Outcome of a [`TenantHandle::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Queued. `seq` is the tenant-local sequence number; the result (or a
    /// [`TenantMsg::Lost`]) will carry it. Under
    /// [`ShedPolicy::ShedOldest`] an older queued task may have been
    /// evicted to make room — the eviction arrives as a `Lost` on the
    /// output stream.
    Admitted {
        /// Tenant-local sequence number of the accepted task.
        seq: u64,
    },
    /// Queue full under [`ShedPolicy::Reject`]: the task was shed at the
    /// door. The sequence number is still consumed (numbering stays
    /// dense) and a [`TenantMsg::Lost`] is queued on the output stream.
    Rejected {
        /// Tenant-local sequence number consumed by the shed task.
        seq: u64,
    },
    /// The tenant stream is closed; nothing was consumed.
    Closed,
}

/// Why a task produced no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossReason {
    /// Dropped by admission control (queue bound or `SHED_LOAD`).
    Shed,
    /// Dispatched into the farm but poisoned by a worker panic.
    WorkerLost,
}

/// Per-tenant output stream element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantMsg<Out> {
    /// A result, tagged with the tenant-local sequence number.
    Item {
        /// Tenant-local sequence of the task this result answers.
        seq: u64,
        /// The result payload.
        payload: Out,
    },
    /// Task `seq` will never produce a result.
    Lost {
        /// Tenant-local sequence of the lost task.
        seq: u64,
        /// What happened to it.
        reason: LossReason,
    },
    /// No further messages for this tenant: the stream is closed and all
    /// accepted tasks are accounted (completed, shed, or lost).
    End,
}

/// Errors from [`TenantFrontEnd::attach`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttachError {
    /// A tenant with this name is already attached.
    Duplicate(String),
    /// The shared stream has ended (shutdown already initiated).
    Closed,
}

impl fmt::Display for AttachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttachError::Duplicate(n) => write!(f, "tenant {n:?} is already attached"),
            AttachError::Closed => f.write_str("front-end is shut down"),
        }
    }
}

impl std::error::Error for AttachError {}

/// A queued task awaiting dispatch.
struct Queued<In> {
    seq: u64,
    at: Time,
    payload: In,
}

/// All mutable state of one tenant.
struct TenantState<In, Out> {
    spec: TenantSpec,
    /// Live DRR weight; starts at `spec.weight`, adjusted by
    /// `GROW_SHARE` / `SHRINK_SHARE` actuations.
    weight: f64,
    queue: VecDeque<Queued<In>>,
    next_seq: u64,
    submitted: u64,
    shed: u64,
    completed: u64,
    lost: u64,
    in_flight: u64,
    closed: bool,
    /// `TenantMsg::End` delivered.
    finished: bool,
    out_tx: Sender<TenantMsg<Out>>,
    arrivals: RateEstimator,
    completions: RateEstimator,
    /// Admission-to-result latency of every completed task, seconds.
    latencies: Vec<f64>,
    /// AIMD adaptation of this tenant's in-flight cap (see
    /// [`crate::aimd::InFlightAimd`]).
    cap_aimd: crate::aimd::InFlightAimd,
}

impl<In, Out> TenantState<In, Out> {
    fn new(spec: TenantSpec, out_tx: Sender<TenantMsg<Out>>) -> Self {
        let weight = spec.weight;
        Self {
            spec,
            weight,
            queue: VecDeque::new(),
            next_seq: 0,
            submitted: 0,
            shed: 0,
            completed: 0,
            lost: 0,
            in_flight: 0,
            closed: false,
            finished: false,
            out_tx,
            arrivals: RateEstimator::new(RATE_WINDOW),
            completions: RateEstimator::new(RATE_WINDOW),
            latencies: Vec::new(),
            cap_aimd: crate::aimd::InFlightAimd::new(),
        }
    }

    /// Sheds one queued task (front of the queue), notifying the output
    /// stream.
    fn shed_front(&mut self) {
        if let Some(q) = self.queue.pop_front() {
            self.shed += 1;
            let _ = self.out_tx.send(TenantMsg::Lost {
                seq: q.seq,
                reason: LossReason::Shed,
            });
        }
    }

    /// Delivers `End` once the tenant is closed and fully accounted.
    fn maybe_finish(&mut self) {
        if self.closed && !self.finished && self.queue.is_empty() && self.in_flight == 0 {
            self.finished = true;
            let _ = self.out_tx.send(TenantMsg::End);
        }
    }
}

/// State shared by handles, scheduler, collector, and the ABCs.
struct Inner<In, Out> {
    tenants: Vec<TenantState<In, Out>>,
    /// Global farm sequence → (tenant index, tenant seq, admission time).
    in_flight_map: HashMap<u64, (usize, u64, Time)>,
    drr: Drr,
    /// `StreamMsg::End` has been sent to the farm input.
    end_sent: bool,
}

impl<In, Out> Inner<In, Out> {
    /// Normalised share of tenant `i` among unfinished tenants.
    fn share_of(&self, i: usize) -> f64 {
        let total: f64 = self
            .tenants
            .iter()
            .filter(|t| !t.finished)
            .map(|t| t.weight)
            .sum();
        if total <= 0.0 || self.tenants[i].finished {
            0.0
        } else {
            self.tenants[i].weight / total
        }
    }
}

/// Shared core of the front-end (see [`TenantFrontEnd`]).
pub(crate) struct FrontShared<In, Out> {
    inner: Mutex<Inner<In, Out>>,
    pub(crate) control: Arc<dyn FarmControl>,
    clock: Arc<dyn Clock>,
    next_global: AtomicU64,
    /// Shutdown requested: the scheduler may send `End` once drained.
    closing: AtomicBool,
    tick_tx: Sender<()>,
}

impl<In, Out> FrontShared<In, Out> {
    fn tick(&self) {
        let _ = self.tick_tx.send(());
    }

    /// Per-tenant sensor snapshot for [`crate::TenantAbc`].
    pub(crate) fn sense_tenant(&self, i: usize, now: Time) -> SensorSnapshot {
        let mut inner = self.inner.lock();
        let share = inner.share_of(i);
        let workers = self.control.num_workers() as u32;
        let t = &mut inner.tenants[i];
        let mut s = SensorSnapshot::empty(now);
        s.arrival_rate = t.arrivals.rate(now);
        s.departure_rate = t.completions.rate(now);
        s.tenant_throughput = s.departure_rate;
        s.tenant_queue_depth = t.queue.len() as u64;
        s.queued_tasks = t.queue.len() as u64 + t.in_flight;
        s.tenant_share = share;
        s.tasks_shed = t.shed;
        s.num_workers = workers;
        s.end_of_stream = t.closed && t.queue.is_empty() && t.in_flight == 0;
        s
    }

    /// Pool-level snapshot for [`crate::ArbiterAbc`]: the farm's own
    /// sensors plus tenant aggregates (total admission backlog and sheds).
    pub(crate) fn sense_pool(&self, now: Time) -> SensorSnapshot {
        let mut s = self.control.sense(now);
        let inner = self.inner.lock();
        s.tenant_share = 1.0;
        s.tenant_throughput = s.departure_rate;
        s.tenant_queue_depth = inner.tenants.iter().map(|t| t.queue.len() as u64).sum();
        s.tasks_shed = inner.tenants.iter().map(|t| t.shed).sum();
        s
    }

    /// Scales tenant `i`'s weight by `factor` (clamped to a sane range).
    /// Returns the new weight if it changed.
    pub(crate) fn scale_weight(&self, i: usize, factor: f64) -> Option<f64> {
        let mut inner = self.inner.lock();
        let t = &mut inner.tenants[i];
        let new = (t.weight * factor).clamp(1e-3, 1e9);
        if (new - t.weight).abs() < f64::EPSILON {
            return None;
        }
        t.weight = new;
        drop(inner);
        self.tick();
        Some(new)
    }

    /// Sheds queued tasks from tenant `i` down to half its queue capacity
    /// (the `SHED_LOAD` actuator). Returns how many were dropped.
    pub(crate) fn shed_to_half(&self, i: usize) -> u64 {
        let mut inner = self.inner.lock();
        let t = &mut inner.tenants[i];
        let target = t.spec.queue_capacity / 2;
        let mut dropped = 0;
        while t.queue.len() > target {
            t.shed_front();
            dropped += 1;
        }
        dropped
    }

    /// Tenant stats snapshot (shared by handles and reports).
    fn stats_of(&self, i: usize, now: Time) -> TenantStats {
        let mut inner = self.inner.lock();
        let share = inner.share_of(i);
        let t = &mut inner.tenants[i];
        TenantStats {
            name: t.spec.name.clone(),
            submitted: t.submitted,
            shed: t.shed,
            completed: t.completed,
            lost: t.lost,
            queue_depth: t.queue.len() as u64,
            in_flight: t.in_flight,
            weight: t.weight,
            share,
            arrival_rate: t.arrivals.rate(now),
            throughput: t.completions.rate(now),
            cap_factor: t.cap_aimd.factor(),
        }
    }

    /// `q`-quantile (0..=1) of tenant `i`'s completed-task latency.
    fn latency_quantile(&self, i: usize, q: f64) -> Option<f64> {
        let inner = self.inner.lock();
        let lat = &inner.tenants[i].latencies;
        if lat.is_empty() {
            return None;
        }
        let mut sorted = lat.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency is never NaN"));
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx])
    }
}

/// Point-in-time statistics for one tenant.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Tasks ever submitted (admitted + rejected).
    pub submitted: u64,
    /// Tasks dropped by admission control or `SHED_LOAD`.
    pub shed: u64,
    /// Results delivered.
    pub completed: u64,
    /// Tasks poisoned by worker panics.
    pub lost: u64,
    /// Tasks waiting in the admission queue.
    pub queue_depth: u64,
    /// Tasks currently inside the farm.
    pub in_flight: u64,
    /// Live DRR weight.
    pub weight: f64,
    /// Normalised share (0..1).
    pub share: f64,
    /// Submissions per second over the rate window.
    pub arrival_rate: f64,
    /// Results per second over the rate window.
    pub throughput: f64,
    /// AIMD multiplicative factor on the static in-flight cap (see
    /// [`crate::aimd::InFlightAimd`]).
    pub cap_factor: f64,
}

/// Final per-tenant accounting, from [`TenantFrontEnd::shutdown`].
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Tasks ever submitted.
    pub submitted: u64,
    /// Tasks shed by admission control.
    pub shed: u64,
    /// Results delivered.
    pub completed: u64,
    /// Tasks lost to worker panics.
    pub lost: u64,
}

impl TenantReport {
    /// Every submitted task is accounted as completed, shed, or lost.
    pub fn accounted(&self) -> bool {
        self.submitted == self.completed + self.shed + self.lost
    }
}

/// Front-end shutdown summary: per-tenant accounting plus the pool's own
/// [`ShutdownReport`] when the front-end owns the farm.
#[derive(Debug)]
pub struct TenancyReport {
    /// Per-tenant final accounting, in attach order.
    pub tenants: Vec<TenantReport>,
    /// The owned farm's shutdown report (`None` for
    /// [`TenantFrontEnd::over_pool`] fronts, which borrow the pool).
    pub pool: Option<ShutdownReport>,
}

impl TenancyReport {
    /// True when every tenant's ledger balances and nothing was lost to
    /// failures (sheds are deliberate and allowed).
    pub fn is_loss_free(&self) -> bool {
        self.tenants.iter().all(|t| t.accounted() && t.lost == 0)
    }
}

impl fmt::Display for TenancyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tenants {
            writeln!(
                f,
                "{}: submitted={} completed={} shed={} lost={}{}",
                t.name,
                t.submitted,
                t.completed,
                t.shed,
                t.lost,
                if t.accounted() { "" } else { "  UNACCOUNTED" }
            )?;
        }
        Ok(())
    }
}

/// A tenant's handle on the front-end: submit tasks, read the result
/// stream, observe stats.
pub struct TenantHandle<In, Out> {
    index: usize,
    name: String,
    shared: Arc<FrontShared<In, Out>>,
    rx: Receiver<TenantMsg<Out>>,
}

// Manual impl: a handle is cloneable regardless of the stream types (a
// derive would demand `In: Clone, Out: Clone`). Clones share the tenant's
// one output channel — messages go to whichever clone receives first.
impl<In, Out> Clone for TenantHandle<In, Out> {
    fn clone(&self) -> Self {
        Self {
            index: self.index,
            name: self.name.clone(),
            shared: Arc::clone(&self.shared),
            rx: self.rx.clone(),
        }
    }
}

impl<In: Send + 'static, Out: Send + 'static> TenantHandle<In, Out> {
    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Submits a task through admission control. Never blocks: a full
    /// queue sheds (per the tenant's [`ShedPolicy`]) instead of exerting
    /// backpressure, which is what keeps tenants unable to stall each
    /// other at the front door.
    pub fn submit(&self, payload: In) -> Admission {
        let now = self.shared.clock.now();
        let mut inner = self.shared.inner.lock();
        let t = &mut inner.tenants[self.index];
        if t.closed {
            return Admission::Closed;
        }
        let seq = t.next_seq;
        t.next_seq += 1;
        t.submitted += 1;
        t.arrivals.record(now);
        let admission = if t.queue.len() >= t.spec.queue_capacity {
            match t.spec.shed_policy {
                ShedPolicy::Reject => {
                    t.shed += 1;
                    let _ = t.out_tx.send(TenantMsg::Lost {
                        seq,
                        reason: LossReason::Shed,
                    });
                    Admission::Rejected { seq }
                }
                ShedPolicy::ShedOldest => {
                    t.shed_front();
                    t.queue.push_back(Queued {
                        seq,
                        at: now,
                        payload,
                    });
                    Admission::Admitted { seq }
                }
            }
        } else {
            t.queue.push_back(Queued {
                seq,
                at: now,
                payload,
            });
            Admission::Admitted { seq }
        };
        drop(inner);
        self.shared.tick();
        admission
    }

    /// Closes the tenant stream: no further submissions; outstanding work
    /// still completes and the output stream ends with [`TenantMsg::End`]
    /// once everything is accounted.
    pub fn close(&self) {
        let mut inner = self.shared.inner.lock();
        let t = &mut inner.tenants[self.index];
        t.closed = true;
        t.maybe_finish();
        drop(inner);
        self.shared.tick();
    }

    /// The tenant's result stream.
    pub fn output(&self) -> &Receiver<TenantMsg<Out>> {
        &self.rx
    }

    /// The tenant's QoS contract, as attached.
    pub fn contract(&self) -> bskel_core::Contract {
        self.shared.inner.lock().tenants[self.index]
            .spec
            .contract
            .clone()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> TenantStats {
        let now = self.shared.clock.now();
        self.shared.stats_of(self.index, now)
    }

    /// `q`-quantile (0..=1) of admission-to-result latency, in seconds.
    /// `None` until the first result.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.shared.latency_quantile(self.index, q)
    }
}

/// The multi-tenant front-end over one shared farm. See the module docs
/// for the moving parts.
pub struct TenantFrontEnd<In, Out> {
    shared: Arc<FrontShared<In, Out>>,
    farm: Option<bskel_skel::Farm<In, Out>>,
    scheduler: Option<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
}

impl<In: Send + 'static, Out: Send + 'static> TenantFrontEnd<In, Out> {
    /// Fronts a farm the front-end takes ownership of;
    /// [`TenantFrontEnd::shutdown`] will shut the farm down too and
    /// include its [`ShutdownReport`] in the [`TenancyReport`].
    pub fn over_farm(farm: bskel_skel::Farm<In, Out>) -> Self {
        let input = farm.input();
        let output = farm.output();
        let control = farm.control();
        let mut fe = Self::over_pool(input, output, control);
        fe.farm = Some(farm);
        fe
    }

    /// Fronts a borrowed pool through its stream endpoints and control
    /// surface (e.g. a remote farm behind `bskel_net`).
    pub fn over_pool(
        input: Sender<StreamMsg<In>>,
        output: Receiver<StreamMsg<Out>>,
        control: Arc<dyn FarmControl>,
    ) -> Self {
        let (tick_tx, tick_rx) = unbounded();
        let shared = Arc::new(FrontShared {
            inner: Mutex::new(Inner {
                tenants: Vec::new(),
                in_flight_map: HashMap::new(),
                drr: Drr::new(),
                end_sent: false,
            }),
            control,
            clock: Arc::new(RealClock::new()),
            next_global: AtomicU64::new(0),
            closing: AtomicBool::new(false),
            tick_tx,
        });

        let sched_shared = Arc::clone(&shared);
        let scheduler = std::thread::Builder::new()
            .name("tenancy-sched".into())
            .spawn(move || scheduler_loop(&sched_shared, &tick_rx, &input))
            .expect("spawn tenancy scheduler");

        let coll_shared = Arc::clone(&shared);
        let collector = std::thread::Builder::new()
            .name("tenancy-collect".into())
            .spawn(move || collector_loop(&coll_shared, &output))
            .expect("spawn tenancy collector");

        Self {
            shared,
            farm: None,
            scheduler: Some(scheduler),
            collector: Some(collector),
        }
    }

    /// Attaches a tenant stream.
    pub fn attach(&self, spec: TenantSpec) -> Result<TenantHandle<In, Out>, AttachError> {
        let mut inner = self.shared.inner.lock();
        if inner.end_sent {
            return Err(AttachError::Closed);
        }
        if inner.tenants.iter().any(|t| t.spec.name == spec.name) {
            return Err(AttachError::Duplicate(spec.name));
        }
        let (out_tx, rx) = unbounded();
        let name = spec.name.clone();
        inner.tenants.push(TenantState::new(spec, out_tx));
        let index = inner.tenants.len() - 1;
        drop(inner);
        Ok(TenantHandle {
            index,
            name,
            shared: Arc::clone(&self.shared),
            rx,
        })
    }

    /// The shared pool's control surface.
    pub fn control(&self) -> Arc<dyn FarmControl> {
        Arc::clone(&self.shared.control)
    }

    /// An ABC exposing tenant `handle` to its per-tenant manager.
    pub fn tenant_abc(&self, handle: &TenantHandle<In, Out>) -> crate::TenantAbc<In, Out> {
        crate::TenantAbc::new(Arc::clone(&self.shared), handle.index)
    }

    /// An ABC exposing the shared pool to the arbiter manager.
    pub fn arbiter_abc(&self) -> crate::ArbiterAbc<In, Out> {
        crate::ArbiterAbc::new(Arc::clone(&self.shared))
    }

    /// Registers one scrape source per tenant attached so far — the
    /// exposition `tenant` label carries the real tenant name — plus the
    /// aggregate pool under the reserved `_pool` label. Tenants attached
    /// *after* this call need another call to appear in scrapes.
    pub fn register_metrics(&self, hub: &bskel_net::MetricsHub) {
        let names: Vec<String> = {
            let inner = self.shared.inner.lock();
            inner.tenants.iter().map(|t| t.spec.name.clone()).collect()
        };
        for (i, name) in names.into_iter().enumerate() {
            let beans = Arc::clone(&self.shared);
            let counts = Arc::clone(&self.shared);
            hub.register(
                name.clone(),
                format!("AM_T_{name}"),
                move || {
                    let now = beans.clock.now();
                    beans.sense_tenant(i, now)
                },
                move || {
                    let now = counts.clock.now();
                    let st = counts.stats_of(i, now);
                    vec![
                        ("taskDone".to_string(), st.completed),
                        ("shed".to_string(), st.shed),
                        ("lost".to_string(), st.lost),
                    ]
                },
            );
        }
        let pool = Arc::clone(&self.shared);
        hub.register(
            "_pool",
            "AM_POOL",
            move || {
                let now = pool.clock.now();
                pool.sense_pool(now)
            },
            Vec::new,
        );
    }

    /// Closes every tenant, drains the queues into the farm, ends the
    /// shared stream, and returns the final accounting. Blocks until the
    /// farm has delivered or accounted every dispatched task.
    pub fn shutdown(mut self) -> TenancyReport {
        {
            let mut inner = self.shared.inner.lock();
            for t in &mut inner.tenants {
                t.closed = true;
                t.maybe_finish();
            }
        }
        self.shared.closing.store(true, Ordering::SeqCst);
        self.shared.tick();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        if let Some(h) = self.collector.take() {
            let _ = h.join();
        }
        let pool = self.farm.take().map(bskel_skel::Farm::shutdown);
        let inner = self.shared.inner.lock();
        let tenants = inner
            .tenants
            .iter()
            .map(|t| TenantReport {
                name: t.spec.name.clone(),
                submitted: t.submitted,
                shed: t.shed,
                completed: t.completed,
                lost: t.lost,
            })
            .collect();
        TenancyReport { tenants, pool }
    }
}

/// Scheduler thread: waits for ticks (submissions, completions, share
/// changes) and dispatches by DRR; once shutdown is requested and every
/// queue has drained, forwards `End` to the farm and exits.
fn scheduler_loop<In: Send + 'static, Out: Send + 'static>(
    shared: &FrontShared<In, Out>,
    tick_rx: &Receiver<()>,
    farm_input: &Sender<StreamMsg<In>>,
) {
    loop {
        match tick_rx.recv_timeout(Duration::from_millis(1)) {
            Ok(()) | Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        let mut inner = shared.inner.lock();
        dispatch(&mut inner, shared, farm_input);
        if shared.closing.load(Ordering::SeqCst)
            && !inner.end_sent
            && inner.tenants.iter().all(|t| t.queue.is_empty())
        {
            inner.end_sent = true;
            let _ = farm_input.send(StreamMsg::End);
            return;
        }
    }
}

/// One dispatch pass under the lock: DRR rounds until no tenant is both
/// backlogged and under its in-flight cap.
fn dispatch<In, Out>(
    inner: &mut Inner<In, Out>,
    shared: &FrontShared<In, Out>,
    farm_input: &Sender<StreamMsg<In>>,
) {
    let n = inner.tenants.len();
    if n == 0 || inner.end_sent {
        return;
    }
    let workers = shared.control.num_workers().max(1) as f64;
    let total_w: f64 = inner
        .tenants
        .iter()
        .filter(|t| !t.finished)
        .map(|t| t.weight)
        .sum();
    let weights: Vec<f64> = inner.tenants.iter().map(|t| t.weight).collect();
    let now = shared.clock.now();
    let caps: Vec<u64> = inner
        .tenants
        .iter_mut()
        .map(|t| {
            let share = if total_w > 0.0 {
                t.weight / total_w
            } else {
                0.0
            };
            let base = ((workers * share).round() as u64).max(1);
            // AIMD depth adaptation: grow the cap while the tenant is
            // backlogged and clean, halve it the moment it sheds.
            t.cap_aimd.observe(now, t.shed, !t.queue.is_empty());
            t.cap_aimd.apply(base)
        })
        .collect();
    loop {
        let backlogged: Vec<bool> = inner
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| !t.queue.is_empty() && t.in_flight < caps[i])
            .collect();
        if !inner.drr.begin_round(&weights, &backlogged) {
            break;
        }
        let mut progress = false;
        for i in 0..n {
            if !backlogged[i] {
                if inner.tenants[i].queue.is_empty() {
                    inner.drr.reset(i);
                }
                continue;
            }
            while inner.tenants[i].in_flight < caps[i]
                && !inner.tenants[i].queue.is_empty()
                && inner.drr.try_take(i)
            {
                let q = inner.tenants[i]
                    .queue
                    .pop_front()
                    .expect("backlogged queue is non-empty");
                let gseq = shared.next_global.fetch_add(1, Ordering::Relaxed);
                inner.in_flight_map.insert(gseq, (i, q.seq, q.at));
                inner.tenants[i].in_flight += 1;
                let _ = farm_input.send(StreamMsg::Item {
                    seq: gseq,
                    payload: q.payload,
                });
                progress = true;
            }
            if inner.tenants[i].queue.is_empty() {
                inner.drr.reset(i);
            }
        }
        if !progress {
            break;
        }
    }
}

/// Collector thread: demultiplexes farm results back to tenant streams;
/// on farm `End`, accounts any stranded in-flight tasks (worker panics)
/// as [`LossReason::WorkerLost`] and finishes every tenant stream.
fn collector_loop<In: Send + 'static, Out: Send + 'static>(
    shared: &FrontShared<In, Out>,
    farm_output: &Receiver<StreamMsg<Out>>,
) {
    for msg in farm_output.iter() {
        match msg {
            StreamMsg::Item { seq, payload } => {
                let mut inner = shared.inner.lock();
                if let Some((ti, tseq, admitted_at)) = inner.in_flight_map.remove(&seq) {
                    let now = shared.clock.now();
                    let t = &mut inner.tenants[ti];
                    t.in_flight -= 1;
                    t.completed += 1;
                    t.completions.record(now);
                    t.latencies.push(now - admitted_at);
                    let _ = t.out_tx.send(TenantMsg::Item { seq: tseq, payload });
                    t.maybe_finish();
                }
                drop(inner);
                shared.tick();
            }
            StreamMsg::End => {
                let mut inner = shared.inner.lock();
                let stranded: Vec<(usize, u64)> = inner
                    .in_flight_map
                    .drain()
                    .map(|(_, (ti, tseq, _))| (ti, tseq))
                    .collect();
                for (ti, tseq) in stranded {
                    let t = &mut inner.tenants[ti];
                    t.in_flight -= 1;
                    t.lost += 1;
                    let _ = t.out_tx.send(TenantMsg::Lost {
                        seq: tseq,
                        reason: LossReason::WorkerLost,
                    });
                }
                for t in &mut inner.tenants {
                    if !t.finished {
                        t.finished = true;
                        let _ = t.out_tx.send(TenantMsg::End);
                    }
                }
                return;
            }
        }
    }
}
