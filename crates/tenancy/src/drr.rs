//! Deficit round robin over weighted tenant queues.
//!
//! Classic DRR (Shreedhar & Varghese) with unit task cost: each *round*
//! credits every backlogged queue a quantum proportional to its weight
//! (normalised so the heaviest backlogged queue earns exactly one task
//! per round), and a queue may dispatch whenever its accumulated deficit
//! covers a task. Idle queues carry no deficit forward, so a tenant
//! cannot hoard credit while empty and later burst past its share.
//!
//! The struct is pure bookkeeping — no channels, no time — so fairness is
//! unit-testable: over many rounds the per-queue dispatch counts converge
//! to the weight vector (see the tests at the bottom).

/// Deficit state for a fixed-size set of queues.
#[derive(Debug, Default)]
pub struct Drr {
    deficits: Vec<f64>,
}

/// One task's worth of deficit (unit task cost).
const TASK_COST: f64 = 1.0;

impl Drr {
    /// An empty scheduler; queues are added with [`Drr::ensure`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the deficit vector to cover `n` queues (new ones start at 0).
    pub fn ensure(&mut self, n: usize) {
        if self.deficits.len() < n {
            self.deficits.resize(n, 0.0);
        }
    }

    /// Starts a round: credits every *backlogged* queue its quantum,
    /// `weight[i] / max(backlogged weights)`, so the heaviest backlogged
    /// queue earns one task per round and the others earn proportionally
    /// less. Returns `false` when nothing is backlogged.
    pub fn begin_round(&mut self, weights: &[f64], backlogged: &[bool]) -> bool {
        self.ensure(weights.len());
        let heaviest = weights
            .iter()
            .zip(backlogged)
            .filter(|(_, b)| **b)
            .map(|(w, _)| *w)
            .fold(0.0_f64, f64::max);
        if heaviest <= 0.0 {
            return false;
        }
        for ((d, w), b) in self.deficits.iter_mut().zip(weights).zip(backlogged) {
            if *b {
                *d += *w / heaviest;
            }
        }
        true
    }

    /// Attempts to spend one task's worth of deficit for queue `i`.
    /// Returns `true` (and debits the deficit) when the queue has earned a
    /// dispatch.
    pub fn try_take(&mut self, i: usize) -> bool {
        if self.deficits[i] >= TASK_COST {
            self.deficits[i] -= TASK_COST;
            true
        } else {
            false
        }
    }

    /// Clears queue `i`'s deficit — call when its queue goes empty so idle
    /// periods do not bank credit.
    pub fn reset(&mut self, i: usize) {
        if i < self.deficits.len() {
            self.deficits[i] = 0.0;
        }
    }

    /// Current deficit of queue `i` (diagnostics).
    pub fn deficit(&self, i: usize) -> f64 {
        self.deficits.get(i).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates `rounds` DRR rounds with always-backlogged queues and
    /// returns per-queue dispatch counts.
    fn run(weights: &[f64], rounds: usize) -> Vec<u64> {
        let mut drr = Drr::new();
        drr.ensure(weights.len());
        let backlogged = vec![true; weights.len()];
        let mut served = vec![0_u64; weights.len()];
        for _ in 0..rounds {
            assert!(drr.begin_round(weights, &backlogged));
            for (i, count) in served.iter_mut().enumerate() {
                while drr.try_take(i) {
                    *count += 1;
                }
            }
        }
        served
    }

    #[test]
    fn equal_weights_equal_service() {
        let served = run(&[1.0, 1.0, 1.0], 300);
        assert_eq!(served[0], 300);
        assert_eq!(served[1], 300);
        assert_eq!(served[2], 300);
    }

    #[test]
    fn service_converges_to_weight_ratio() {
        let served = run(&[3.0, 1.0], 400);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            (ratio - 3.0).abs() < 0.1,
            "expected ~3:1 service, got {served:?} (ratio {ratio:.3})"
        );
    }

    #[test]
    fn fractional_weights_accumulate() {
        // Weight 0.25 vs 1.0: the light queue earns a task every 4 rounds.
        let served = run(&[1.0, 0.25], 400);
        assert_eq!(served[0], 400);
        assert_eq!(served[1], 100);
    }

    #[test]
    fn idle_queue_earns_nothing() {
        let mut drr = Drr::new();
        drr.ensure(2);
        // Queue 1 idle for 50 rounds.
        for _ in 0..50 {
            drr.begin_round(&[1.0, 1.0], &[true, false]);
            assert!(drr.try_take(0));
        }
        assert_eq!(drr.deficit(1), 0.0);
        // When it becomes backlogged it starts from scratch: one task per
        // round, no burst from banked credit.
        drr.begin_round(&[1.0, 1.0], &[true, true]);
        assert!(drr.try_take(1));
        assert!(!drr.try_take(1));
    }

    #[test]
    fn reset_clears_leftover_deficit() {
        let mut drr = Drr::new();
        drr.ensure(1);
        drr.begin_round(&[2.0], &[true]);
        drr.reset(0);
        assert_eq!(drr.deficit(0), 0.0);
    }

    #[test]
    fn no_backlog_no_round() {
        let mut drr = Drr::new();
        drr.ensure(2);
        assert!(!drr.begin_round(&[1.0, 1.0], &[false, false]));
    }
}
