//! Multi-tenant front-end for behavioural skeletons.
//!
//! The paper's behavioural skeletons bind ONE computation to one autonomic
//! manager. Real deployments share the expensive part — the worker pool —
//! between several client computations with their own QoS contracts. This
//! crate adds that front half without touching the farm substrate:
//!
//! ```text
//!  tenant A ──submit──▶ [queue A] ─┐
//!  tenant B ──submit──▶ [queue B] ─┼─ DRR scheduler ──▶ Farm input
//!  tenant C ──submit──▶ [queue C] ─┘       ▲                 │
//!       ▲                    ▲             │                 ▼
//!   admission control    SHED_LOAD    GROW/SHRINK_SHARE   collector ──▶ per-tenant
//!   (bounded queues)         └──── per-tenant AMs ◀─────── demux         outputs
//!                                      │ raiseViol
//!                                      ▼
//!                               pool arbiter AM ──ADD_EXECUTOR──▶ FarmControl
//! ```
//!
//! - [`TenantSpec`] names a tenant, carries its [`Contract`] and admission
//!   policy ([`ShedPolicy`]: bounded queue, shed-oldest or reject).
//! - [`TenantFrontEnd`] multiplexes the tenant queues onto one shared farm
//!   with a deficit-round-robin scheduler ([`drr`]) weighted by live,
//!   manager-adjustable shares, plus per-tenant in-flight caps so a
//!   flooding tenant cannot monopolise the workers or inflate a modest
//!   tenant's tail latency.
//! - [`TenantAbc`] / [`ArbiterAbc`] expose each tenant and the shared pool
//!   to `AutonomicManager`s running `rules/tenancy.rules`
//!   (`bskel_rules::stdlib::tenancy_rules`): per-tenant managers grow /
//!   shrink their share and shed load; at the share ceiling they escalate
//!   (`raiseViol`) to the arbiter, which grows the shared pool.
//! - [`server`] speaks the `bskel_net` wire protocol: a `TenantAttach`
//!   frame opens a tenant stream over TCP, `Task` frames are admitted
//!   through the same front-end, results and sheds come back as `Result` /
//!   `Lost` frames.
//!
//! [`Contract`]: bskel_core::Contract

pub mod abc;
pub mod aimd;
pub mod drr;
pub mod frontend;
pub mod server;
pub mod spec;

pub use abc::{build_managers, build_managers_with, ArbiterAbc, TenancyManagers, TenantAbc};
pub use aimd::InFlightAimd;
pub use drr::Drr;
pub use frontend::{
    Admission, LossReason, TenancyReport, TenantFrontEnd, TenantHandle, TenantMsg, TenantReport,
    TenantStats,
};
pub use server::{TenancyServer, TenantClient};
pub use spec::{ShedPolicy, TenantSpec};
