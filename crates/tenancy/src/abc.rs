//! ABCs binding the front-end to autonomic managers, and the two-level
//! manager hierarchy the paper's arbitration story needs.
//!
//! Each tenant gets a [`TenantAbc`] under a `ManagerKind::Tenant` manager
//! running `tenancy.rules` with parameters derived from the tenant's own
//! contract: it grows/shrinks the tenant's fair-share weight, sheds load
//! when the admission queue overflows its budget, and — when the share
//! ceiling is reached and the contract is still missed — escalates with
//! `raiseViol` to its parent.
//!
//! The parent is the *pool arbiter*: an [`ArbiterAbc`] over the shared
//! farm's control surface, same rule program, but with its share pinned to
//! `1.0` (via `extra_params`), which makes the share rules dormant and
//! leaves the pool-growth rule (`violTooMuch → ADD_EXECUTOR`) and the
//! shed guard live. Child escalations arrive through the standard
//! violation mailbox and surface as the `violTooMuch` flag — the same
//! hierarchy machinery the paper's pipeline-of-farms uses.

use crate::frontend::{FrontShared, TenantFrontEnd, TenantHandle};
use bskel_core::{
    Abc, AbcError, ActuationOutcome, AutonomicManager, ControllerKind, EventLog, ManagerConfig,
    ManagerOp,
};
use bskel_monitor::{SensorSnapshot, Time};
use bskel_rules::stdlib::{self, params};
use std::sync::Arc;

/// Growth factor applied to a tenant's weight per `GROW_SHARE` firing.
const GROW_FACTOR: f64 = 1.25;
/// Shrink factor applied per `SHRINK_SHARE` firing.
const SHRINK_FACTOR: f64 = 0.8;

/// Per-tenant ABC: senses one tenant's queue, share, and delivered rate;
/// actuates share growth/shrink and load shedding.
pub struct TenantAbc<In, Out> {
    shared: Arc<FrontShared<In, Out>>,
    index: usize,
}

impl<In, Out> TenantAbc<In, Out> {
    pub(crate) fn new(shared: Arc<FrontShared<In, Out>>, index: usize) -> Self {
        Self { shared, index }
    }
}

impl<In: Send + 'static, Out: Send + 'static> Abc for TenantAbc<In, Out> {
    fn sense(&mut self, now: Time) -> SensorSnapshot {
        self.shared.sense_tenant(self.index, now)
    }

    fn actuate(&mut self, op: &ManagerOp, _now: Time) -> Result<ActuationOutcome, AbcError> {
        match op {
            ManagerOp::Custom(name) if name == stdlib::GROW_SHARE_OP => {
                Ok(match self.shared.scale_weight(self.index, GROW_FACTOR) {
                    Some(_) => ActuationOutcome::Applied,
                    None => ActuationOutcome::NoOp,
                })
            }
            ManagerOp::Custom(name) if name == stdlib::SHRINK_SHARE_OP => {
                Ok(match self.shared.scale_weight(self.index, SHRINK_FACTOR) {
                    Some(_) => ActuationOutcome::Applied,
                    None => ActuationOutcome::NoOp,
                })
            }
            ManagerOp::Custom(name) if name == stdlib::SHED_LOAD_OP => {
                Ok(match self.shared.shed_to_half(self.index) {
                    0 => ActuationOutcome::NoOp,
                    _ => ActuationOutcome::Applied,
                })
            }
            // Pool sizing is the arbiter's job, not a tenant's.
            _ => Ok(ActuationOutcome::NoOp),
        }
    }
}

/// Pool-arbiter ABC: the shared farm's sensors plus tenant aggregates;
/// actuates pool sizing through the farm control surface.
pub struct ArbiterAbc<In, Out> {
    shared: Arc<FrontShared<In, Out>>,
}

impl<In, Out> ArbiterAbc<In, Out> {
    pub(crate) fn new(shared: Arc<FrontShared<In, Out>>) -> Self {
        Self { shared }
    }
}

impl<In: Send + 'static, Out: Send + 'static> Abc for ArbiterAbc<In, Out> {
    fn sense(&mut self, now: Time) -> SensorSnapshot {
        self.shared.sense_pool(now)
    }

    fn actuate(&mut self, op: &ManagerOp, _now: Time) -> Result<ActuationOutcome, AbcError> {
        match op {
            ManagerOp::AddWorkers(n) => match self.shared.control.add_workers(*n) {
                Ok(_) => Ok(ActuationOutcome::Applied),
                Err(reason) => Ok(ActuationOutcome::Refused { reason }),
            },
            ManagerOp::RemoveWorkers(n) => match self.shared.control.remove_workers(*n) {
                Ok(_) => Ok(ActuationOutcome::Applied),
                Err(reason) => Ok(ActuationOutcome::Refused { reason }),
            },
            ManagerOp::BalanceLoad => Ok(if self.shared.control.rebalance() {
                ActuationOutcome::Applied
            } else {
                ActuationOutcome::NoOp
            }),
            // Share ops are pinned dormant by the arbiter's parameters;
            // anything else is not the pool's to perform.
            _ => Ok(ActuationOutcome::NoOp),
        }
    }
}

/// The assembled two-level control hierarchy over a front-end.
pub struct TenancyManagers {
    /// Pool arbiter (parent).
    pub arbiter: AutonomicManager,
    /// Per-tenant managers (children), in the order the handles were
    /// passed to [`build_managers`].
    pub children: Vec<AutonomicManager>,
}

impl TenancyManagers {
    /// Runs one control cycle across the hierarchy, children first so
    /// escalations raised this cycle reach the arbiter's mailbox before
    /// it senses.
    pub fn run_cycle(&mut self, now: Time) {
        for c in &mut self.children {
            c.control_cycle(now);
        }
        self.arbiter.control_cycle(now);
    }
}

/// Builds the arbiter + per-tenant managers for `front`:
///
/// - one `ManagerConfig::tenant` child per handle, named `AM_T_<tenant>`,
///   its contract posted from the tenant's spec (deriving the rule
///   parameters: the contract floor/ceiling become `$TENANT_RATE_FLOOR` /
///   `$TENANT_RATE_CEIL`);
/// - an arbiter named `AM_POOL` whose share parameters are pinned to 1.0
///   so only the pool-level rules stay live, with `max_workers` bounding
///   `ADD_EXECUTOR`.
pub fn build_managers<In: Send + 'static, Out: Send + 'static>(
    front: &TenantFrontEnd<In, Out>,
    handles: &[&TenantHandle<In, Out>],
    log: EventLog,
    max_workers: u32,
) -> TenancyManagers {
    build_managers_with(front, handles, log, max_workers, ControllerKind::Rules)
}

/// [`build_managers`] with an explicit control law for the **arbiter**
/// (per-tenant managers always run the share rules — the tenant-level
/// AIMD law is the front-end's in-flight cap adaptation, which is a
/// plant mechanism, not a manager policy).
///
/// Under [`ControllerKind::Aimd`] the arbiter sizes the pool by AIMD
/// over aggregate targets: the contract floor/ceiling parameters are the
/// sums of the tenants' own floors/ceilings, so the pool grows while
/// total delivery misses total promises. The budget-mirroring laws wrap
/// the same `tenancy.rules` program the default runs.
pub fn build_managers_with<In: Send + 'static, Out: Send + 'static>(
    front: &TenantFrontEnd<In, Out>,
    handles: &[&TenantHandle<In, Out>],
    log: EventLog,
    max_workers: u32,
    controller: ControllerKind,
) -> TenancyManagers {
    let mut cfg = ManagerConfig::tenant("AM_POOL");
    cfg.max_workers = max_workers;
    cfg.controller = controller;
    cfg.extra_params = vec![
        (params::TENANT_MIN_SHARE.to_owned(), 1.0),
        (params::TENANT_MAX_SHARE.to_owned(), 1.0),
    ];
    if controller == ControllerKind::Aimd {
        let (floor, ceil) = handles.iter().fold((0.0_f64, 0.0_f64), |(lo, hi), h| {
            match h.contract().throughput_bounds() {
                Some((l, u)) => (lo + l, hi + if u.is_finite() { u } else { 0.0 }),
                None => (lo, hi),
            }
        });
        cfg.extra_params.extend([
            (params::FARM_LOW_PERF_LEVEL.to_owned(), floor),
            (
                params::FARM_HIGH_PERF_LEVEL.to_owned(),
                if ceil > floor { ceil } else { f64::INFINITY },
            ),
            (params::FARM_MIN_NUM_WORKERS.to_owned(), 1.0),
            (
                params::FARM_MAX_NUM_WORKERS.to_owned(),
                f64::from(max_workers),
            ),
        ]);
    }
    let arbiter = AutonomicManager::new(cfg, Box::new(front.arbiter_abc()), log.clone());

    let children = handles
        .iter()
        .map(|h| {
            let mut cfg = ManagerConfig::tenant(&format!("AM_T_{}", h.name()));
            cfg.max_workers = max_workers;
            let m = AutonomicManager::new(cfg, Box::new(front.tenant_abc(h)), log.clone())
                .with_parent(arbiter.mailbox());
            m.contract_slot().post(h.contract());
            m
        })
        .collect();

    TenancyManagers { arbiter, children }
}
