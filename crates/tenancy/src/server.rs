//! Tenant streams over the `bskel_net` wire protocol.
//!
//! A remote tenant opens a TCP connection and sends a `TenantAttach`
//! frame (name, contract as JSON in the standard contract grammar, queue
//! shape) instead of the worker daemon's `Hello`. The front-end replies
//! with a `TenantAck` carrying the admitted share, after which the
//! connection is a plain task stream: `Task` frames in, `Result` / `Lost`
//! frames out (tenant-local sequence numbers on both sides), `Goodbye` to
//! close — the client's to stop submitting, the server's to say the
//! stream is fully accounted.
//!
//! Admission control, fair scheduling, and manager arbitration are
//! exactly the in-process [`TenantFrontEnd`] path — the wire tenants and
//! in-process tenants share one scheduler and one pool.

use crate::frontend::{TenantFrontEnd, TenantHandle, TenantMsg};
use crate::spec::{ShedPolicy, TenantSpec};
use bskel_net::proto::{
    decode_tenant_ack, decode_tenant_attach, encode_frame, encode_tenant_ack, encode_tenant_attach,
    Decoder, Frame, FrameType, TenantAck, TenantAttach,
};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Reads from `stream` until the decoder yields a frame. `Ok(None)` on
/// clean EOF; protocol errors surface as `InvalidData`.
fn next_frame_blocking(stream: &mut TcpStream, dec: &mut Decoder) -> io::Result<Option<Frame>> {
    let mut buf = [0_u8; 4096];
    loop {
        match dec.next_frame() {
            Ok(Some(f)) => return Ok(Some(f)),
            Ok(None) => {}
            Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        dec.extend(&buf[..n]);
    }
}

fn send_frame(
    stream: &mut TcpStream,
    ftype: FrameType,
    seq: u64,
    payload: &[u8],
) -> io::Result<()> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    encode_frame(&mut out, ftype, seq, payload);
    stream.write_all(&out)
}

/// A TCP front door over a byte-stream front-end.
pub struct TenancyServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TenancyServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves tenant connections
    /// onto `front` until [`TenancyServer::stop`].
    pub fn bind(addr: &str, front: Arc<TenantFrontEnd<Vec<u8>, Vec<u8>>>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("tenancy-accept".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let front = Arc::clone(&front);
                    if let Ok(h) = std::thread::Builder::new()
                        .name("tenancy-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(stream, &front);
                        })
                    {
                        conns.push(h);
                    }
                }
                for h in conns {
                    let _ = h.join();
                }
            })
            .expect("spawn tenancy accept loop");
        Ok(Self {
            addr: local,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (for `"…:0"` binds).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting and joins every connection thread. In-flight
    /// connections finish their streams first.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// One connection: attach handshake, then reader (tasks in) + writer
/// (results out) until both sides say goodbye.
fn serve_connection(
    mut stream: TcpStream,
    front: &TenantFrontEnd<Vec<u8>, Vec<u8>>,
) -> io::Result<()> {
    let mut dec = Decoder::new();
    // Handshake: the first frame must be a TenantAttach.
    let Some(frame) = next_frame_blocking(&mut stream, &mut dec)? else {
        return Ok(());
    };
    let refuse = |stream: &mut TcpStream, error: String| {
        let ack = TenantAck {
            ok: false,
            share: 0.0,
            error,
        };
        send_frame(stream, FrameType::TenantAck, 0, &encode_tenant_ack(&ack))
    };
    if frame.ftype != FrameType::TenantAttach {
        return refuse(
            &mut stream,
            format!("expected TenantAttach, got {:?}", frame.ftype),
        );
    }
    let Some(attach) = decode_tenant_attach(&frame.payload) else {
        return refuse(&mut stream, "malformed TenantAttach payload".into());
    };
    let contract: bskel_core::Contract = match serde_json::from_str(&attach.contract_json) {
        Ok(c) => c,
        Err(e) => return refuse(&mut stream, format!("bad contract: {e}")),
    };
    let spec = TenantSpec::new(attach.tenant, contract)
        .with_queue_capacity((attach.queue_capacity.max(1)) as usize)
        .with_shed_policy(ShedPolicy::from_wire(attach.shed_policy));
    let handle: TenantHandle<Vec<u8>, Vec<u8>> = match front.attach(spec) {
        Ok(h) => h,
        Err(e) => return refuse(&mut stream, e.to_string()),
    };
    let ack = TenantAck {
        ok: true,
        share: handle.stats().share,
        error: String::new(),
    };
    send_frame(
        &mut stream,
        FrameType::TenantAck,
        0,
        &encode_tenant_ack(&ack),
    )?;

    // Writer: forward the tenant's result stream until End.
    let mut write_half = stream.try_clone()?;
    let output = handle.output().clone();
    let writer = std::thread::Builder::new()
        .name("tenancy-conn-writer".into())
        .spawn(move || -> io::Result<()> {
            for msg in output.iter() {
                match msg {
                    TenantMsg::Item { seq, payload } => {
                        send_frame(&mut write_half, FrameType::Result, seq, &payload)?;
                    }
                    TenantMsg::Lost { seq, .. } => {
                        send_frame(&mut write_half, FrameType::Lost, seq, &[])?;
                    }
                    TenantMsg::End => {
                        send_frame(&mut write_half, FrameType::Goodbye, 0, &[])?;
                        break;
                    }
                }
            }
            write_half.flush()
        })
        .expect("spawn tenancy connection writer");

    // Reader: admit tasks until the client says goodbye or disconnects.
    // The client's frame seq is its own copy of the dense tenant sequence;
    // admission control assigns the authoritative one in the same order.
    loop {
        match next_frame_blocking(&mut stream, &mut dec)? {
            Some(f) if f.ftype == FrameType::Task => {
                let _ = handle.submit(f.payload);
            }
            Some(f) if f.ftype == FrameType::Goodbye => {
                handle.close();
                break;
            }
            Some(_) => {} // Heartbeats etc.: ignored by the front door.
            None => {
                handle.close();
                break;
            }
        }
    }
    writer.join().expect("tenancy writer panicked")?;
    Ok(())
}

/// Results of one finished tenant stream, from [`TenantClient::finish`].
#[derive(Debug, Default)]
pub struct ClientSummary {
    /// `(seq, payload)` of every delivered result, in delivery order.
    pub results: Vec<(u64, Vec<u8>)>,
    /// Sequence numbers that were shed or lost.
    pub lost: Vec<u64>,
}

/// A remote tenant: connects, attaches, streams tasks, collects results.
pub struct TenantClient {
    stream: TcpStream,
    next_seq: u64,
    reader: Option<JoinHandle<ClientSummary>>,
}

impl TenantClient {
    /// Connects to a [`TenancyServer`] and performs the attach handshake.
    /// `contract` is serialised into the attach frame's JSON field.
    pub fn connect(
        addr: impl std::net::ToSocketAddrs,
        name: &str,
        contract: &bskel_core::Contract,
        queue_capacity: u32,
        shed_policy: ShedPolicy,
    ) -> io::Result<(Self, TenantAck)> {
        let mut stream = TcpStream::connect(addr)?;
        let attach = TenantAttach {
            tenant: name.to_owned(),
            contract_json: serde_json::to_string(contract)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?,
            queue_capacity,
            shed_policy: shed_policy.to_wire(),
        };
        send_frame(
            &mut stream,
            FrameType::TenantAttach,
            0,
            &encode_tenant_attach(&attach),
        )?;
        let mut dec = Decoder::new();
        let ack = loop {
            let Some(f) = next_frame_blocking(&mut stream, &mut dec)? else {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before TenantAck",
                ));
            };
            if f.ftype == FrameType::TenantAck {
                break decode_tenant_ack(&f.payload).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed TenantAck")
                })?;
            }
        };
        // Collect results as they stream back so a large result volume
        // never wedges the server's writer against a full socket buffer.
        let mut read_half = stream.try_clone()?;
        let reader = std::thread::Builder::new()
            .name("tenant-client-reader".into())
            .spawn(move || {
                let mut summary = ClientSummary::default();
                let mut dec = dec; // carries over any bytes read past the ack
                while let Ok(Some(f)) = next_frame_blocking(&mut read_half, &mut dec) {
                    match f.ftype {
                        FrameType::Result => summary.results.push((f.seq, f.payload)),
                        FrameType::Lost => summary.lost.push(f.seq),
                        FrameType::Goodbye => break,
                        _ => {}
                    }
                }
                summary
            })
            .expect("spawn tenant client reader");
        Ok((
            Self {
                stream,
                next_seq: 0,
                reader: Some(reader),
            },
            ack,
        ))
    }

    /// Streams one task; returns the sequence number it will be known by.
    pub fn submit(&mut self, payload: &[u8]) -> io::Result<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        send_frame(&mut self.stream, FrameType::Task, seq, payload)?;
        Ok(seq)
    }

    /// Says goodbye and drains the result stream to completion.
    pub fn finish(mut self) -> io::Result<ClientSummary> {
        send_frame(&mut self.stream, FrameType::Goodbye, 0, &[])?;
        let reader = self.reader.take().expect("reader present until finish");
        reader
            .join()
            .map_err(|_| io::Error::other("tenant client reader panicked"))
    }
}
