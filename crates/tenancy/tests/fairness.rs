//! Fairness, shed-confinement, and loss-accounting soaks for the
//! multi-tenant front-end (ISSUE 9 satellite: the seeded soak).
//!
//! These are real-time tests over a real farm, so every assertion uses
//! generous tolerances; the tight numbers live in the
//! `tenant_isolation` bench.

use bskel_core::{Contract, EventKind, EventLog};
use bskel_skel::FarmBuilder;
use bskel_tenancy::{build_managers, Admission, ShedPolicy, TenantFrontEnd, TenantMsg, TenantSpec};
use std::time::{Duration, Instant};

/// Busy-spins for roughly `micros` microseconds (scheduler-independent
/// work, unlike `sleep`, so worker counts matter).
fn spin(micros: u64) {
    let until = Instant::now() + Duration::from_micros(micros);
    while Instant::now() < until {
        std::hint::spin_loop();
    }
}

fn spin_farm(workers: u32) -> bskel_skel::Farm<u64, u64> {
    FarmBuilder::from_fn(|x: u64| {
        spin(150);
        x
    })
    .name("tenancy-soak")
    .initial_workers(workers)
    .gather(bskel_skel::GatherPolicy::Unordered)
    .build()
}

/// (a) With both tenants permanently backlogged, delivered throughput
/// converges to the 3:1 weight ratio.
#[test]
fn drr_shares_converge_to_weights() {
    let front = TenantFrontEnd::over_farm(spin_farm(4));
    let heavy = front
        .attach(
            TenantSpec::new("heavy", Contract::BestEffort)
                .with_weight(3.0)
                .with_queue_capacity(10_000),
        )
        .expect("attach heavy");
    let light = front
        .attach(
            TenantSpec::new("light", Contract::BestEffort)
                .with_weight(1.0)
                .with_queue_capacity(10_000),
        )
        .expect("attach light");

    for i in 0..6_000_u64 {
        assert!(matches!(heavy.submit(i), Admission::Admitted { .. }));
        assert!(matches!(light.submit(i), Admission::Admitted { .. }));
    }

    // Sample mid-stream, while both tenants are still backlogged.
    let deadline = Instant::now() + Duration::from_secs(30);
    let (h_done, l_done) = loop {
        let h = heavy.stats();
        let l = light.stats();
        if h.completed + l.completed >= 2_000 {
            break (h.completed, l.completed);
        }
        assert!(Instant::now() < deadline, "soak made no progress");
        std::thread::sleep(Duration::from_millis(2));
    };
    let ratio = h_done as f64 / l_done.max(1) as f64;
    assert!(
        (1.8..=4.5).contains(&ratio),
        "expected ~3:1 service ratio mid-stream, got {h_done}:{l_done} (ratio {ratio:.2})"
    );

    heavy.close();
    light.close();
    let report = front.shutdown();
    assert!(report.is_loss_free(), "unexpected loss:\n{report}");
}

/// (b) Shedding is confined to the over-budget tenant: the victim inside
/// its admission budget never sheds, whatever the hot tenant does.
#[test]
fn shedding_confined_to_over_budget_tenant() {
    let front = TenantFrontEnd::over_farm(spin_farm(2));
    let hot = front
        .attach(
            TenantSpec::new("hot", Contract::BestEffort)
                .with_queue_capacity(32)
                .with_shed_policy(ShedPolicy::ShedOldest),
        )
        .expect("attach hot");
    let victim = front
        .attach(TenantSpec::new("victim", Contract::BestEffort).with_queue_capacity(64))
        .expect("attach victim");

    // The hot tenant floods far past its queue budget; the victim stays
    // well inside its own.
    for i in 0..5_000_u64 {
        hot.submit(i);
        if i % 100 == 0 {
            assert!(
                matches!(victim.submit(i), Admission::Admitted { .. }),
                "victim submission was not admitted"
            );
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    let hot_stats = hot.stats();
    let victim_stats = victim.stats();
    assert!(
        hot_stats.shed > 0,
        "flooding a 32-deep queue with 5000 tasks must shed"
    );
    assert_eq!(
        victim_stats.shed, 0,
        "victim inside its budget must never shed"
    );

    hot.close();
    victim.close();
    let report = front.shutdown();
    assert!(report.is_loss_free(), "unexpected loss:\n{report}");
    let hot_final = &report.tenants[0];
    assert!(hot_final.accounted() && hot_final.shed > 0);
}

/// (c) Task accounting stays loss-free per tenant when workers are killed
/// mid-stream (the farm's loss-free kill recovery, seen through the
/// tenant ledgers).
#[test]
fn accounting_loss_free_under_worker_kills() {
    let front = TenantFrontEnd::over_farm(spin_farm(4));
    let control = front.control();
    let a = front
        .attach(TenantSpec::new("a", Contract::BestEffort).with_queue_capacity(5_000))
        .expect("attach a");
    let b = front
        .attach(TenantSpec::new("b", Contract::BestEffort).with_queue_capacity(5_000))
        .expect("attach b");

    for i in 0..2_000_u64 {
        a.submit(i);
        b.submit(i);
        if i == 500 {
            // Kill half the pool mid-stream: queued work is handed back
            // and recovered onto the survivors.
            let killed = control.kill_workers(2).expect("kill_workers");
            assert_eq!(killed, 2);
        }
        if i == 1_000 {
            let _ = control.add_workers(1);
        }
    }

    a.close();
    b.close();
    let report = front.shutdown();
    assert!(
        report.is_loss_free(),
        "kill_workers must not lose tasks:\n{report}"
    );
    for t in &report.tenants {
        assert_eq!(t.submitted, 2_000);
        assert_eq!(t.completed + t.shed, 2_000, "{}: {t:?}", t.name);
        assert_eq!(t.lost, 0);
    }
    let pool = report.pool.expect("owned farm report");
    assert_eq!(pool.workers_lost, 2);
    assert!(pool.worker_panics.is_empty(), "{:?}", pool.worker_panics);
}

/// The per-tenant output stream ends exactly once, after full accounting,
/// and carries dense tenant-local sequence numbers.
#[test]
fn tenant_stream_ends_with_dense_accounting() {
    let front = TenantFrontEnd::over_farm(spin_farm(2));
    let t = front
        .attach(TenantSpec::new("only", Contract::BestEffort).with_queue_capacity(512))
        .expect("attach");
    for i in 0..300_u64 {
        assert!(matches!(t.submit(i), Admission::Admitted { seq } if seq == i));
    }
    t.close();

    let mut seen = vec![false; 300];
    loop {
        match t
            .output()
            .recv_timeout(Duration::from_secs(30))
            .expect("stream ended early")
        {
            TenantMsg::Item { seq, payload } => {
                assert_eq!(seq, payload, "result must echo its task");
                assert!(!seen[seq as usize], "duplicate seq {seq}");
                seen[seq as usize] = true;
            }
            TenantMsg::Lost { seq, .. } => panic!("unexpected loss of seq {seq}"),
            TenantMsg::End => break,
        }
    }
    assert!(seen.iter().all(|s| *s), "every admitted task must answer");
    let report = front.shutdown();
    assert!(report.is_loss_free());
}

/// The manager hierarchy drives real actuations: an over-budget queue
/// triggers `SHED_LOAD` through `tenancy.rules`, and a starved tenant
/// escalates to the arbiter, which grows the pool.
#[test]
fn managers_shed_and_escalate_through_hierarchy() {
    let farm = FarmBuilder::from_fn(|x: u64| {
        spin(3_000); // slow pool: queues build up
        x
    })
    .initial_workers(1)
    .gather(bskel_skel::GatherPolicy::Unordered)
    .build();
    let front = TenantFrontEnd::over_farm(farm);
    let t = front
        .attach(
            // Demanding contract the slow pool cannot meet: floor far
            // above deliverable throughput.
            // Capacity 100: the shed budget ($TENANT_QUEUE_LIMIT) is 64,
            // so a queue held near 90 is over budget, and SHED_LOAD's
            // drain target (capacity/2 = 50) is below it — the actuation
            // visibly drops tasks.
            TenantSpec::new("greedy", Contract::min_throughput(500.0)).with_queue_capacity(100),
        )
        .expect("attach");

    let log = EventLog::new();
    let mut managers = build_managers(&front, &[&t], log.clone(), 8);

    let start = Instant::now();
    let mut now = 0.0_f64;
    let mut submitted = 0_u64;
    while start.elapsed() < Duration::from_secs(4) {
        // Keep the queue past the shed budget (64) and the tenant starved.
        while t.stats().queue_depth < 90 && submitted < 20_000 {
            t.submit(submitted);
            submitted += 1;
        }
        now += 1.0;
        managers.run_cycle(now);
        std::thread::sleep(Duration::from_millis(100));
    }

    let kinds: Vec<EventKind> = log.snapshot().into_iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&EventKind::ShedLoad),
        "over-budget queue must trigger SHED_LOAD; events: {kinds:?}"
    );
    assert!(
        kinds.contains(&EventKind::RaiseViol),
        "starved tenant at the share ceiling must escalate; events: {kinds:?}"
    );
    assert!(
        kinds.contains(&EventKind::AddWorker),
        "arbiter must grow the pool on escalation; events: {kinds:?}"
    );
    assert!(
        front.control().num_workers() > 1,
        "pool must actually have grown"
    );

    t.close();
    let report = front.shutdown();
    assert!(report.is_loss_free(), "{report}");
}
