//! End-to-end wire test: two remote tenants attach over TCP with their
//! own contracts and stream tasks through one shared farm.

use bskel_core::Contract;
use bskel_skel::{FarmBuilder, GatherPolicy};
use bskel_tenancy::{ShedPolicy, TenancyServer, TenantClient, TenantFrontEnd};
use std::sync::Arc;

#[test]
fn two_wire_tenants_share_one_pool() {
    let farm = FarmBuilder::from_fn(|b: Vec<u8>| b.iter().map(u8::to_ascii_uppercase).collect())
        .name("wire-pool")
        .initial_workers(2)
        .gather(GatherPolicy::Unordered)
        .build();
    let front = Arc::new(TenantFrontEnd::over_farm(farm));
    let server = TenancyServer::bind("127.0.0.1:0", Arc::clone(&front)).expect("bind");
    let addr = server.local_addr();

    let (mut alice, ack_a) = TenantClient::connect(
        addr,
        "alice",
        &Contract::min_throughput(10.0),
        128,
        ShedPolicy::ShedOldest,
    )
    .expect("alice connects");
    assert!(ack_a.ok, "{}", ack_a.error);
    assert!(ack_a.share > 0.0);

    let (mut bob, ack_b) =
        TenantClient::connect(addr, "bob", &Contract::BestEffort, 128, ShedPolicy::Reject)
            .expect("bob connects");
    assert!(ack_b.ok, "{}", ack_b.error);

    // A duplicate name is refused at the handshake.
    let dup = TenantClient::connect(addr, "alice", &Contract::BestEffort, 8, ShedPolicy::Reject)
        .expect("dup connect io");
    assert!(!dup.1.ok);
    assert!(dup.1.error.contains("alice"));

    for i in 0..200_u64 {
        alice
            .submit(format!("task-a-{i}").as_bytes())
            .expect("submit a");
        bob.submit(format!("task-b-{i}").as_bytes())
            .expect("submit b");
    }

    let a = alice.finish().expect("alice finishes");
    let b = bob.finish().expect("bob finishes");
    assert_eq!(a.results.len() + a.lost.len(), 200, "alice fully accounted");
    assert_eq!(b.results.len() + b.lost.len(), 200, "bob fully accounted");
    // Results echo their own tenant's payloads, uppercased — no
    // cross-tenant leakage through the shared pool.
    for (seq, payload) in &a.results {
        assert_eq!(payload, format!("TASK-A-{seq}").as_bytes());
    }
    for (seq, payload) in &b.results {
        assert_eq!(payload, format!("TASK-B-{seq}").as_bytes());
    }

    server.stop();
    let front = Arc::try_unwrap(front).ok().expect("all clones dropped");
    let report = front.shutdown();
    assert!(report.is_loss_free(), "{report}");
}
