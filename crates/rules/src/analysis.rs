//! # `rulelint` — static analysis of rule programs
//!
//! A bad rule program fails *silently* at runtime: a condition referencing
//! a bean the ABC never publishes simply raises `Unsatisfiable` every
//! cycle, a pair of rules with overlapping guards and opposing actions
//! makes the manager add and remove workers forever, and a rule shadowed
//! by a higher-salience sibling with a conflicting action never usefully
//! fires. Following the static-reasoning programme of "Toward a Formal
//! Semantics for Autonomic Components" (TR-08-08) and the multi-concern
//! conflict analysis of TR-09-10, this module checks a parsed [`RuleSet`]
//! against a declared bean/parameter schema *before* the manager runs:
//!
//! 1. **Schema/type errors** — beans absent from the ABC's published
//!    schema, parameters the manager never binds, and flag beans compared
//!    against non-boolean constants or numeric beans.
//! 2. **Unsatisfiable / tautological conditions** — by interval and
//!    constant propagation over a DNF of the condition. A condition that
//!    is unsatisfiable only once contract parameters are bound is
//!    reported as a *warning* (a dormant rule, e.g. a shedding rule under
//!    a best-effort contract), while a structurally unsatisfiable one is
//!    an *error*.
//! 3. **Shadowing/subsumption** — rule `B` whose condition implies the
//!    condition of a strictly-higher-salience rule `A`: if `A`'s action
//!    opposes `B`'s, `B` can never *usefully* fire (the engine fires all
//!    fireable rules, so `A` always counteracts `B` in the same cycle).
//! 4. **Oscillation cycles** — an action→condition effect graph: each
//!    operation is annotated with the monotone effect it has on sensed
//!    beans (e.g. `ADD_EXECUTOR` raises `departureRate`); two rules that
//!    mutually re-enable each other with opposing actions *and* whose
//!    guards are co-satisfiable have no damping dead band and will make
//!    the manager oscillate. The Fig. 5 farm rules pass: their enabling
//!    intervals `departureRate < LOW` / `departureRate > HIGH` are
//!    disjoint whenever `LOW <= HIGH`.
//! 5. **Cross-manager conflicts** — given the rule sets of two managers
//!    coordinated by the two-phase protocol (`bskel_core::coord`), rule
//!    pairs that drive the *same actuator* in opposite directions and are
//!    co-fireable under one reachable working-memory state.
//!
//! All satisfiability verdicts are three-valued: the analyzer only claims
//! *unsat* when provable by interval propagation, and only claims *sat*
//! when it can exhibit a concrete witness state (which is re-checked
//! against the condition, so `Sat` verdicts are sound by construction).
//! Everything else is `Unknown` and stays silent — symbolic parameters
//! (`$FARM_LOW_PERF_LEVEL`) make most cross-rule comparisons undecidable
//! until a contract binds them, which is exactly when the manager re-runs
//! the analysis (`bskel_core::manager`).

use crate::ast::{Cmp, Condition, Expr, Rule, RuleSet};
use crate::parser::SourceMap;
use crate::wm::{ParamTable, WorkingMemory};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Value domain of a published sensor bean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeanType {
    /// Boolean flag encoded as 0.0 / 1.0 (e.g. `endOfStream`).
    Flag,
    /// Non-negative integer-valued count (e.g. `numWorkers`).
    Count,
    /// Non-negative rate or ratio (e.g. `departureRate`, tasks/s).
    Rate,
    /// Non-negative duration in seconds; may be `+inf` (e.g. `idleFor`).
    Seconds,
    /// Unconstrained real.
    Real,
}

impl BeanType {
    fn domain(self) -> Interval {
        match self {
            BeanType::Flag => Interval::closed(0.0, 1.0),
            BeanType::Count | BeanType::Rate | BeanType::Seconds => {
                Interval::closed(0.0, f64::INFINITY)
            }
            BeanType::Real => Interval::full(),
        }
    }
}

/// The beans an ABC publishes and the parameters a manager binds: the
/// environment a rule program is checked against.
///
/// `bskel_core::abc::standard_schema()` derives the canonical instance
/// from the monitor snapshot bean names plus the hierarchy flags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BeanSchema {
    beans: BTreeMap<String, BeanType>,
    params: BTreeSet<String>,
}

impl BeanSchema {
    /// An empty schema (accepts nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a published bean.
    pub fn bean(mut self, name: impl Into<String>, ty: BeanType) -> Self {
        self.beans.insert(name.into(), ty);
        self
    }

    /// Declares a bindable parameter name.
    pub fn param(mut self, name: impl Into<String>) -> Self {
        self.params.insert(name.into());
        self
    }

    /// Type of a declared bean.
    pub fn bean_type(&self, name: &str) -> Option<BeanType> {
        self.beans.get(name).copied()
    }

    /// Whether the parameter name is declared.
    pub fn has_param(&self, name: &str) -> bool {
        self.params.contains(name)
    }

    /// True when at least one parameter name is declared (enables
    /// unknown-parameter warnings in the absence of a bound table).
    pub fn declares_params(&self) -> bool {
        !self.params.is_empty()
    }

    /// Iterates over declared beans.
    pub fn beans(&self) -> impl Iterator<Item = (&str, BeanType)> {
        self.beans.iter().map(|(n, t)| (n.as_str(), *t))
    }
}

/// Monotone direction of an effect on a bean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// The operation raises the bean / the condition wants the bean higher.
    Up,
    /// The operation lowers the bean / the condition wants the bean lower.
    Down,
}

impl Dir {
    fn flip(self) -> Dir {
        match self {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
        }
    }
}

/// Monotone-effect annotations for operations: which sensed beans an
/// operation drives (and in which direction), plus which *actuator
/// resource* it sets (used for contradictory-action detection — two ops
/// conflict when they drive the same resource in opposite directions).
#[derive(Debug, Clone, Default)]
pub struct EffectTable {
    bean_effects: BTreeMap<String, Vec<(String, Dir)>>,
    actuators: BTreeMap<String, (String, Dir)>,
    inert: BTreeSet<String>,
}

impl EffectTable {
    /// An empty table (no known effects — disables checks 4 and 5).
    pub fn new() -> Self {
        Self::default()
    }

    /// Effects of the standard operation vocabulary (`crate::op`) on the
    /// standard ABC beans (`bskel_monitor::snapshot::beans`).
    pub fn standard() -> Self {
        use crate::op;
        Self::new()
            .actuator(op::ADD_EXECUTOR, "parDegree", Dir::Up)
            .actuator(op::REMOVE_EXECUTOR, "parDegree", Dir::Down)
            .actuator(op::INC_RATE, "outputRate", Dir::Up)
            .actuator(op::DEC_RATE, "outputRate", Dir::Down)
            .bean_effect(op::ADD_EXECUTOR, "numWorkers", Dir::Up)
            .bean_effect(op::ADD_EXECUTOR, "remoteWorkers", Dir::Up)
            .bean_effect(op::ADD_EXECUTOR, "departureRate", Dir::Up)
            .bean_effect(op::ADD_EXECUTOR, "queuedTasks", Dir::Down)
            // Recruiting a slot probes quarantined endpoints: a successful
            // probe closes the circuit and resets its reconnect backoff.
            .bean_effect(op::ADD_EXECUTOR, "circuitOpenCount", Dir::Down)
            .bean_effect(op::ADD_EXECUTOR, "reconnectBackoffMs", Dir::Down)
            // More slots drain the send queues faster but give the single
            // reactor more connections to service per tick.
            .bean_effect(op::ADD_EXECUTOR, "netSendQueueDepth", Dir::Down)
            .bean_effect(op::ADD_EXECUTOR, "reactorLoopLagUs", Dir::Up)
            .bean_effect(op::REMOVE_EXECUTOR, "numWorkers", Dir::Down)
            .bean_effect(op::REMOVE_EXECUTOR, "remoteWorkers", Dir::Down)
            .bean_effect(op::REMOVE_EXECUTOR, "departureRate", Dir::Down)
            .bean_effect(op::REMOVE_EXECUTOR, "queuedTasks", Dir::Up)
            .bean_effect(op::REMOVE_EXECUTOR, "netSendQueueDepth", Dir::Up)
            .bean_effect(op::REMOVE_EXECUTOR, "reactorLoopLagUs", Dir::Down)
            .bean_effect(op::BALANCE_LOAD, "queueVariance", Dir::Down)
            .bean_effect(op::INC_RATE, "departureRate", Dir::Up)
            .bean_effect(op::INC_RATE, "arrivalRate", Dir::Up)
            .bean_effect(op::DEC_RATE, "departureRate", Dir::Down)
            .bean_effect(op::DEC_RATE, "arrivalRate", Dir::Down)
            .bean_effect(crate::stdlib::MIGRATE_SLOWEST_OP, "departureRate", Dir::Up)
            .bean_effect(
                crate::stdlib::MIGRATE_SLOWEST_OP,
                "speedGainRatio",
                Dir::Down,
            )
            .actuator(crate::stdlib::KILL_WORKER_OP, "parDegree", Dir::Down)
            .bean_effect(crate::stdlib::KILL_WORKER_OP, "numWorkers", Dir::Down)
            .bean_effect(crate::stdlib::KILL_WORKER_OP, "workersLost", Dir::Up)
            // Tenancy: share moves redistribute pool capacity between DRR
            // queues — the firing tenant's delivered throughput and backlog
            // follow its weight. Growing the shared pool lifts every
            // tenant's delivered throughput.
            .actuator(crate::stdlib::GROW_SHARE_OP, "tenantShare", Dir::Up)
            .actuator(crate::stdlib::SHRINK_SHARE_OP, "tenantShare", Dir::Down)
            .bean_effect(crate::stdlib::GROW_SHARE_OP, "tenantShare", Dir::Up)
            .bean_effect(crate::stdlib::GROW_SHARE_OP, "tenantThroughput", Dir::Up)
            .bean_effect(crate::stdlib::GROW_SHARE_OP, "tenantQueueDepth", Dir::Down)
            .bean_effect(crate::stdlib::SHRINK_SHARE_OP, "tenantShare", Dir::Down)
            .bean_effect(
                crate::stdlib::SHRINK_SHARE_OP,
                "tenantThroughput",
                Dir::Down,
            )
            .bean_effect(crate::stdlib::SHRINK_SHARE_OP, "tenantQueueDepth", Dir::Up)
            .bean_effect(crate::stdlib::SHED_LOAD_OP, "tenantQueueDepth", Dir::Down)
            .bean_effect(crate::stdlib::SHED_LOAD_OP, "tasksShed", Dir::Up)
            .bean_effect(op::ADD_EXECUTOR, "tenantThroughput", Dir::Up)
            .bean_effect(op::REMOVE_EXECUTOR, "tenantThroughput", Dir::Down)
            // Escalation is pure signalling: it moves no bean and no
            // actuator resource, by design rather than by omission.
            .inert(op::RAISE_VIOLATION)
            // Budget transitions are advisory (the plant-side token bucket
            // is authoritative); they journal a window, not an effect.
            .inert(crate::stdlib::PAUSE_REDISPATCH_OP)
            .inert(crate::stdlib::RESUME_REDISPATCH_OP)
    }

    /// Annotates an operation with a monotone effect on a sensed bean.
    pub fn bean_effect(mut self, op: impl Into<String>, bean: impl Into<String>, dir: Dir) -> Self {
        self.bean_effects
            .entry(op.into())
            .or_default()
            .push((bean.into(), dir));
        self
    }

    /// Annotates an operation as setting an actuator resource up or down.
    pub fn actuator(
        mut self,
        op: impl Into<String>,
        resource: impl Into<String>,
        dir: Dir,
    ) -> Self {
        self.actuators.insert(op.into(), (resource.into(), dir));
        self
    }

    /// Declares an operation *intentionally* effect-free (pure
    /// signalling, e.g. `RAISE_VIOLATION`): `W-no-effect` will not flag
    /// rules whose only actions are inert operations.
    pub fn inert(mut self, op: impl Into<String>) -> Self {
        self.inert.insert(op.into());
        self
    }

    /// Whether an operation is declared intentionally effect-free.
    pub fn is_inert(&self, op: &str) -> bool {
        self.inert.contains(op)
    }

    /// Bean effects of an operation (empty if unannotated).
    pub fn effects_of(&self, op: &str) -> &[(String, Dir)] {
        self.bean_effects.get(op).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The actuator resource an operation drives, if annotated.
    pub fn actuator_of(&self, op: &str) -> Option<(&str, Dir)> {
        self.actuators.get(op).map(|(r, d)| (r.as_str(), *d))
    }

    /// Returns the actuator resource two op lists drive in *opposite*
    /// directions, if any (the contradictory-reconfiguration test).
    pub fn opposing_actuator(&self, ops_a: &[String], ops_b: &[String]) -> Option<&str> {
        for a in ops_a {
            let Some((res, da)) = self.actuator_of(a) else {
                continue;
            };
            for b in ops_b {
                if let Some((res_b, db)) = self.actuator_of(b) {
                    if res == res_b && da == db.flip() {
                        return Some(res);
                    }
                }
            }
        }
        None
    }

    /// Like [`Self::opposing_actuator`], but also recognises opposition
    /// through opposing monotone effects on the same sensed bean (used
    /// for custom vocabularies without actuator annotations).
    fn opposing(&self, ops_a: &[String], ops_b: &[String]) -> Option<String> {
        if let Some(res) = self.opposing_actuator(ops_a, ops_b) {
            return Some(res.to_string());
        }
        for a in ops_a {
            for (bean, da) in self.effects_of(a) {
                for b in ops_b {
                    for (bean_b, db) in self.effects_of(b) {
                        if bean == bean_b && *da == db.flip() {
                            return Some(bean.clone());
                        }
                    }
                }
            }
        }
        None
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not fatal; logged by the manager.
    Warning,
    /// The rule set is broken; rejected under strict mode.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Diagnostic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// Condition references a bean the ABC does not publish.
    UnknownBean,
    /// Condition references a parameter the manager does not bind.
    UnknownParam,
    /// Ill-typed comparison (flag vs non-boolean constant or numeric bean).
    TypeError,
    /// Condition can never hold (structurally, or under bound parameters).
    Unsatisfiable,
    /// Condition always holds — the rule fires every control cycle.
    Tautology,
    /// Rule subsumed by a strictly-higher-salience rule.
    Shadowed,
    /// Two rules mutually re-enable each other with opposing actions.
    Oscillation,
    /// Two managers' rules drive one actuator in opposite directions.
    Conflict,
    /// Every action of a rule lacks an [`EffectTable`] entry, making the
    /// rule invisible to oscillation/conflict and model-checking analysis.
    NoEffect,
    /// Model checker: a reachable contract-violating state from which no
    /// violation-free state is reachable within the recovery bound.
    NoRecovery,
    /// Model checker: a reachable control cycle that keeps firing
    /// actuator operations (livelock/oscillation lasso).
    Livelock,
    /// Model checker: a rule that fires in no reachable state.
    DeadRule,
}

impl LintCode {
    /// Stable kebab-case code used in CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::UnknownBean => "unknown-bean",
            LintCode::UnknownParam => "unknown-param",
            LintCode::TypeError => "type",
            LintCode::Unsatisfiable => "unsat",
            LintCode::Tautology => "tautology",
            LintCode::Shadowed => "shadowed",
            LintCode::Oscillation => "oscillation",
            LintCode::Conflict => "conflict",
            LintCode::NoEffect => "no-effect",
            LintCode::NoRecovery => "no-recovery",
            LintCode::Livelock => "livelock",
            LintCode::DeadRule => "dead-rule",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Which check produced it.
    pub code: LintCode,
    /// Primary rule (for cross-manager findings, `manager:rule`).
    pub rule: String,
    /// Second rule involved (shadowing/oscillation/conflict pairs).
    pub peer: Option<String>,
    /// 1-based (line, col) of the primary rule, when a [`SourceMap`] was
    /// supplied.
    pub span: Option<(u32, u32)>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] rule `{}`", self.severity, self.code, self.rule)?;
        if let Some((l, c)) = self.span {
            write!(f, " ({l}:{c})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// True when any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Substitutes bound parameters for `$NAME` references, turning them into
/// constants the interval engine can reason about. Unbound parameters are
/// left symbolic.
pub fn bind_params(cond: &Condition, params: &ParamTable) -> Condition {
    fn sub(e: &Expr, params: &ParamTable) -> Expr {
        match e {
            Expr::Param(p) => match params.get(p) {
                Some(v) => Expr::Const(v),
                None => e.clone(),
            },
            other => other.clone(),
        }
    }
    match cond {
        Condition::True => Condition::True,
        Condition::False => Condition::False,
        Condition::Cmp { lhs, op, rhs } => Condition::Cmp {
            lhs: sub(lhs, params),
            op: *op,
            rhs: sub(rhs, params),
        },
        Condition::And(cs) => Condition::And(cs.iter().map(|c| bind_params(c, params)).collect()),
        Condition::Or(cs) => Condition::Or(cs.iter().map(|c| bind_params(c, params)).collect()),
        Condition::Not(c) => Condition::Not(Box::new(bind_params(c, params))),
    }
}

// ---------------------------------------------------------------------------
// Interval / DNF satisfiability engine
// ---------------------------------------------------------------------------

/// Maximum number of DNF conjuncts before the analyzer gives up on a
/// condition (verdict `Unknown`). Hand-written rule guards are tiny; the
/// cap only matters for adversarial/randomized inputs.
const DNF_CAP: usize = 64;

#[derive(Debug, Clone, Copy)]
struct Interval {
    lo: f64,
    hi: f64,
    lo_open: bool,
    hi_open: bool,
}

impl Interval {
    fn full() -> Self {
        Self::closed(f64::NEG_INFINITY, f64::INFINITY)
    }

    fn closed(lo: f64, hi: f64) -> Self {
        Interval {
            lo,
            hi,
            lo_open: false,
            hi_open: false,
        }
    }

    fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && (self.lo_open || self.hi_open))
    }

    fn contains(&self, v: f64) -> bool {
        let above = if self.lo_open {
            v > self.lo
        } else {
            v >= self.lo
        };
        let below = if self.hi_open {
            v < self.hi
        } else {
            v <= self.hi
        };
        above && below
    }

    fn clamp_lo(&mut self, lo: f64, open: bool) {
        if lo > self.lo || (lo == self.lo && open && !self.lo_open) {
            self.lo = lo;
            self.lo_open = open;
        }
    }

    fn clamp_hi(&mut self, hi: f64, open: bool) {
        if hi < self.hi || (hi == self.hi && open && !self.hi_open) {
            self.hi = hi;
            self.hi_open = open;
        }
    }
}

/// Per-bean constraint state inside one DNF conjunct.
#[derive(Debug, Clone)]
struct VarState {
    ty: BeanType,
    iv: Interval,
    ne: Vec<f64>,
}

impl VarState {
    fn new(ty: BeanType) -> Self {
        VarState {
            ty,
            iv: ty.domain(),
            ne: Vec::new(),
        }
    }

    fn constrain(&mut self, op: Cmp, c: f64) {
        match op {
            Cmp::Lt => self.iv.clamp_hi(c, true),
            Cmp::Le => self.iv.clamp_hi(c, false),
            Cmp::Gt => self.iv.clamp_lo(c, true),
            Cmp::Ge => self.iv.clamp_lo(c, false),
            Cmp::Eq => {
                self.iv.clamp_lo(c, false);
                self.iv.clamp_hi(c, false);
            }
            Cmp::Ne => self.ne.push(c),
        }
    }

    fn feasible(&self) -> bool {
        if self.iv.is_empty() {
            return false;
        }
        if self.ty == BeanType::Flag {
            return [0.0, 1.0]
                .iter()
                .any(|v| self.iv.contains(*v) && !self.ne.contains(v));
        }
        if self.iv.lo == self.iv.hi {
            return !self.ne.contains(&self.iv.lo);
        }
        true
    }

    /// A concrete value satisfying the accumulated constraints, if the
    /// state is feasible.
    fn witness(&self) -> Option<f64> {
        let iv = &self.iv;
        let mut candidates: Vec<f64> = Vec::new();
        if self.ty == BeanType::Flag {
            candidates.extend([1.0, 0.0]);
        } else if iv.lo.is_finite() && iv.hi.is_finite() {
            let mid = (iv.lo + iv.hi) / 2.0;
            candidates.push(mid);
            for k in 1..8 {
                candidates.push(iv.lo + (iv.hi - iv.lo) * f64::from(k) / 8.0);
            }
            if !iv.lo_open {
                candidates.push(iv.lo);
            }
            if !iv.hi_open {
                candidates.push(iv.hi);
            }
        } else if iv.lo.is_finite() {
            candidates.extend([iv.lo + 1.0, iv.lo + 0.5, iv.lo + 2.0, iv.lo + 3.5]);
            if !iv.lo_open {
                candidates.push(iv.lo);
            }
        } else if iv.hi.is_finite() {
            candidates.extend([iv.hi - 1.0, iv.hi - 0.5, iv.hi - 2.0, iv.hi - 3.5]);
            if !iv.hi_open {
                candidates.push(iv.hi);
            }
        } else {
            candidates.extend([0.0, 1.0, -1.0, 2.5, -2.5]);
        }
        candidates
            .into_iter()
            .find(|v| v.is_finite() && iv.contains(*v) && !self.ne.contains(v))
    }
}

/// Three-valued satisfiability verdict. `Sat` carries a witness state
/// (bean → value) that has been re-checked against the condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Proof {
    /// Provably satisfiable, with a concrete witness assignment.
    Sat(BTreeMap<String, f64>),
    /// Provably unsatisfiable over the schema's bean domains.
    Unsat,
    /// Undecided (symbolic parameters, bean-vs-bean comparisons, or DNF
    /// blow-up).
    Unknown,
}

/// Negation-normal-form literal.
#[derive(Debug, Clone)]
enum Lit {
    Bool(bool),
    Cmp { lhs: Expr, op: Cmp, rhs: Expr },
}

fn negate_cmp(op: Cmp) -> Cmp {
    match op {
        Cmp::Lt => Cmp::Ge,
        Cmp::Le => Cmp::Gt,
        Cmp::Gt => Cmp::Le,
        Cmp::Ge => Cmp::Lt,
        Cmp::Eq => Cmp::Ne,
        Cmp::Ne => Cmp::Eq,
    }
}

/// `c op b` with the constant on the left is `b mirror(op) c`.
fn mirror_cmp(op: Cmp) -> Cmp {
    match op {
        Cmp::Lt => Cmp::Gt,
        Cmp::Le => Cmp::Ge,
        Cmp::Gt => Cmp::Lt,
        Cmp::Ge => Cmp::Le,
        Cmp::Eq => Cmp::Eq,
        Cmp::Ne => Cmp::Ne,
    }
}

/// Converts a condition to DNF (a disjunction of literal conjunctions),
/// pushing negation to the leaves. Returns `None` past [`DNF_CAP`].
fn dnf(cond: &Condition, neg: bool) -> Option<Vec<Vec<Lit>>> {
    match cond {
        Condition::True => Some(vec![vec![Lit::Bool(!neg)]]),
        Condition::False => Some(vec![vec![Lit::Bool(neg)]]),
        Condition::Cmp { lhs, op, rhs } => Some(vec![vec![Lit::Cmp {
            lhs: lhs.clone(),
            op: if neg { negate_cmp(*op) } else { *op },
            rhs: rhs.clone(),
        }]]),
        Condition::Not(c) => dnf(c, !neg),
        Condition::And(cs) if !neg => dnf_product(cs, false),
        Condition::Or(cs) if neg => dnf_product(cs, true),
        Condition::And(cs) | Condition::Or(cs) => {
            // De Morgan'd And, or plain Or: a disjunction of the parts.
            let mut out = Vec::new();
            for c in cs {
                out.extend(dnf(c, neg)?);
                if out.len() > DNF_CAP {
                    return None;
                }
            }
            Some(out)
        }
    }
}

/// Cross product of the parts' DNFs (used for conjunctions).
fn dnf_product(parts: &[Condition], neg: bool) -> Option<Vec<Vec<Lit>>> {
    let mut acc: Vec<Vec<Lit>> = vec![Vec::new()];
    for part in parts {
        let d = dnf(part, neg)?;
        let mut next = Vec::with_capacity(acc.len() * d.len());
        for conj in &acc {
            for extra in &d {
                let mut merged = conj.clone();
                merged.extend(extra.iter().cloned());
                next.push(merged);
            }
        }
        if next.len() > DNF_CAP {
            return None;
        }
        acc = next;
    }
    Some(acc)
}

enum Operand {
    Val(f64),
    Bean(String),
    Opaque,
}

fn resolve(e: &Expr) -> Operand {
    match e {
        Expr::Const(v) => Operand::Val(*v),
        Expr::Bean(b) => Operand::Bean(b.clone()),
        Expr::Param(_) => Operand::Opaque,
    }
}

/// Decides satisfiability of `cond` over the schema's bean domains.
/// Parameters must already be bound with [`bind_params`] to participate;
/// any remaining symbolic parameter makes affected literals opaque.
pub fn satisfiable(cond: &Condition, schema: &BeanSchema) -> Proof {
    let Some(conjuncts) = dnf(cond, false) else {
        return Proof::Unknown;
    };
    let mut any_unknown = false;
    for conj in &conjuncts {
        match conjunct_witness(conj, schema) {
            ConjunctVerdict::Witness(w) => {
                // A conjunct witness satisfies the whole (equivalent) DNF;
                // also re-check against the original condition when it is
                // closed, so `Sat` can never be reported for a state the
                // engine would not fire on.
                let mut full = w.clone();
                for bean in cond.beans() {
                    let ty = schema.bean_type(bean).unwrap_or(BeanType::Real);
                    full.entry(bean.to_string())
                        .or_insert(if ty.domain().contains(0.0) { 0.0 } else { 1.0 });
                }
                let wm = WorkingMemory::from_beans(full.clone());
                match cond.eval(&wm, &ParamTable::new()) {
                    Ok(true) => return Proof::Sat(full),
                    Ok(false) => any_unknown = true,
                    Err(_) => return Proof::Sat(full),
                }
            }
            ConjunctVerdict::Infeasible => {}
            ConjunctVerdict::Unknown => any_unknown = true,
        }
    }
    if any_unknown {
        Proof::Unknown
    } else {
        Proof::Unsat
    }
}

enum ConjunctVerdict {
    Witness(BTreeMap<String, f64>),
    Infeasible,
    Unknown,
}

fn conjunct_witness(conj: &[Lit], schema: &BeanSchema) -> ConjunctVerdict {
    let mut vars: BTreeMap<String, VarState> = BTreeMap::new();
    let mut uncertain = false;
    for lit in conj {
        match lit {
            Lit::Bool(true) => {}
            Lit::Bool(false) => return ConjunctVerdict::Infeasible,
            Lit::Cmp { lhs, op, rhs } => {
                let (bean, op, c) = match (resolve(lhs), resolve(rhs)) {
                    (Operand::Val(a), Operand::Val(b)) => {
                        if op.apply(a, b) {
                            continue;
                        }
                        return ConjunctVerdict::Infeasible;
                    }
                    (Operand::Bean(b), Operand::Val(c)) => (b, *op, c),
                    (Operand::Val(c), Operand::Bean(b)) => (b, mirror_cmp(*op), c),
                    _ => {
                        uncertain = true;
                        continue;
                    }
                };
                let ty = schema.bean_type(&bean).unwrap_or(BeanType::Real);
                vars.entry(bean)
                    .or_insert_with(|| VarState::new(ty))
                    .constrain(op, c);
            }
        }
    }
    if vars.values().any(|v| !v.feasible()) {
        return ConjunctVerdict::Infeasible;
    }
    if uncertain {
        return ConjunctVerdict::Unknown;
    }
    let mut witness = BTreeMap::new();
    for (bean, state) in &vars {
        match state.witness() {
            Some(v) => {
                witness.insert(bean.clone(), v);
            }
            // Feasible but no finite witness found (e.g. pinned at +inf):
            // don't claim sat.
            None => return ConjunctVerdict::Unknown,
        }
    }
    // Re-verify every literal at the witness; a failure means a witness
    // selection bug, so refuse to claim sat rather than mis-report.
    for lit in conj {
        if let Lit::Cmp { lhs, op, rhs } = lit {
            let ok = match (resolve(lhs), resolve(rhs)) {
                (Operand::Val(a), Operand::Val(b)) => op.apply(a, b),
                (Operand::Bean(b), Operand::Val(c)) => {
                    witness.get(&b).is_some_and(|v| op.apply(*v, c))
                }
                (Operand::Val(c), Operand::Bean(b)) => {
                    witness.get(&b).is_some_and(|v| op.apply(c, *v))
                }
                _ => true,
            };
            if !ok {
                return ConjunctVerdict::Unknown;
            }
        }
    }
    ConjunctVerdict::Witness(witness)
}

/// Direction in which a bean must move to help enable `cond`, if the
/// condition is monotone in that bean. `None` when the bean does not
/// appear, appears non-monotonically (`==`), or appears with both
/// polarities.
fn enabling_dir(
    cond: &Condition,
    bean: &str,
    neg: bool,
    dirs: &mut BTreeSet<Dir>,
    mixed: &mut bool,
) {
    match cond {
        Condition::True | Condition::False => {}
        Condition::Not(c) => enabling_dir(c, bean, !neg, dirs, mixed),
        Condition::And(cs) | Condition::Or(cs) => {
            for c in cs {
                enabling_dir(c, bean, neg, dirs, mixed);
            }
        }
        Condition::Cmp { lhs, op, rhs } => {
            let op = if neg { negate_cmp(*op) } else { *op };
            let lhs_is = matches!(lhs, Expr::Bean(b) if b == bean);
            let rhs_is = matches!(rhs, Expr::Bean(b) if b == bean);
            if lhs_is && rhs_is {
                *mixed = true;
                return;
            }
            let op = if rhs_is { mirror_cmp(op) } else { op };
            if lhs_is || rhs_is {
                match op {
                    Cmp::Lt | Cmp::Le => {
                        dirs.insert(Dir::Down);
                    }
                    Cmp::Gt | Cmp::Ge => {
                        dirs.insert(Dir::Up);
                    }
                    Cmp::Eq => *mixed = true,
                    // `!=` (incl. bare-flag sugar) carries no direction.
                    Cmp::Ne => {}
                }
            }
        }
    }
}

fn cond_direction(cond: &Condition, bean: &str) -> Option<Dir> {
    let mut dirs = BTreeSet::new();
    let mut mixed = false;
    enabling_dir(cond, bean, false, &mut dirs, &mut mixed);
    if mixed || dirs.len() != 1 {
        return None;
    }
    dirs.into_iter().next()
}

impl PartialOrd for Dir {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dir {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(d: &Dir) -> u8 {
            match d {
                Dir::Up => 0,
                Dir::Down => 1,
            }
        }
        rank(self).cmp(&rank(other))
    }
}

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

/// The rule-program analyzer: a bean/parameter schema plus operation
/// effect annotations.
#[derive(Debug, Clone)]
pub struct Analyzer {
    schema: BeanSchema,
    effects: EffectTable,
}

impl Analyzer {
    /// Creates an analyzer over the given schema with the standard
    /// operation effects.
    pub fn new(schema: BeanSchema) -> Self {
        Analyzer {
            schema,
            effects: EffectTable::standard(),
        }
    }

    /// Replaces the effect table (custom operation vocabularies).
    pub fn with_effects(mut self, effects: EffectTable) -> Self {
        self.effects = effects;
        self
    }

    /// The schema under analysis.
    pub fn schema(&self) -> &BeanSchema {
        &self.schema
    }

    /// Runs all intra-set checks over a rule program.
    ///
    /// `params` is the manager's bound parameter table when known (at
    /// contract-adoption time); binding parameters makes cross-rule
    /// comparisons decidable, and any diagnostic that *only* appears once
    /// parameters are bound is downgraded to a warning (the program is
    /// fine; this contract merely makes a rule dormant or overlapping).
    /// `spans` attaches source positions when the program came from text.
    pub fn analyze(
        &self,
        rules: &RuleSet,
        params: Option<&ParamTable>,
        spans: Option<&SourceMap>,
    ) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let span_of = |rule: &str| spans.and_then(|s| s.span(rule));

        for rule in rules.rules() {
            self.check_schema(rule, params, span_of(&rule.name), &mut out);
            self.check_sat(rule, params, span_of(&rule.name), &mut out);
            self.check_no_effect(rule, span_of(&rule.name), &mut out);
        }
        self.check_shadowing(rules, params, &span_of, &mut out);
        self.check_oscillation(rules, params, &span_of, &mut out);
        out
    }

    /// Check: a rule none of whose actions carry an [`EffectTable`] entry
    /// (and are not declared [`EffectTable::inert`]) is invisible to the
    /// oscillation/conflict heuristics *and* to the model checker's plant
    /// abstraction — warn so the coverage gap is explicit. Skipped when
    /// the effect table is entirely empty (custom vocabularies without
    /// annotations).
    fn check_no_effect(&self, rule: &Rule, span: Option<(u32, u32)>, out: &mut Vec<Diagnostic>) {
        if self.effects.bean_effects.is_empty() && self.effects.actuators.is_empty() {
            return;
        }
        let ops = rule.execute();
        if ops.is_empty() {
            return;
        }
        let unmodelled: Vec<&str> = ops
            .iter()
            .filter(|call| {
                !self.effects.is_inert(&call.operation)
                    && self.effects.actuator_of(&call.operation).is_none()
                    && self.effects.effects_of(&call.operation).is_empty()
            })
            .map(|call| call.operation.as_str())
            .collect();
        if unmodelled.len() == ops.len() {
            out.push(Diagnostic {
                severity: Severity::Warning,
                code: LintCode::NoEffect,
                rule: rule.name.clone(),
                peer: None,
                span,
                message: format!(
                    "no action of this rule has an effect-table entry ({}); the rule is \
                     invisible to oscillation/conflict analysis and to the model checker — \
                     annotate the operation(s) or declare them inert",
                    unmodelled.join(", ")
                ),
            });
        }
    }

    fn check_schema(
        &self,
        rule: &Rule,
        params: Option<&ParamTable>,
        span: Option<(u32, u32)>,
        out: &mut Vec<Diagnostic>,
    ) {
        let mut unknown_beans = BTreeSet::new();
        let mut unknown_params = BTreeSet::new();
        for bean in rule.when.beans() {
            if self.schema.bean_type(bean).is_none() {
                unknown_beans.insert(bean.to_string());
            }
        }
        for p in rule.when.params() {
            match params {
                Some(t) if t.get(p).is_none() => {
                    unknown_params.insert((p.to_string(), Severity::Error));
                }
                None if self.schema.declares_params() && !self.schema.has_param(p) => {
                    unknown_params.insert((p.to_string(), Severity::Warning));
                }
                _ => {}
            }
        }
        for bean in unknown_beans {
            out.push(Diagnostic {
                severity: Severity::Error,
                code: LintCode::UnknownBean,
                rule: rule.name.clone(),
                peer: None,
                span,
                message: format!(
                    "condition references bean `{bean}`, which the ABC never publishes; \
                     evaluation will fail every control cycle"
                ),
            });
        }
        for (p, severity) in unknown_params {
            let detail = if severity == Severity::Error {
                "not bound by the manager's parameter table"
            } else {
                "not among the declared contract parameters"
            };
            out.push(Diagnostic {
                severity,
                code: LintCode::UnknownParam,
                rule: rule.name.clone(),
                peer: None,
                span,
                message: format!("condition references parameter `${p}`, {detail}"),
            });
        }
        self.check_types(rule, span, out);
    }

    fn check_types(&self, rule: &Rule, span: Option<(u32, u32)>, out: &mut Vec<Diagnostic>) {
        let mut walk = vec![&rule.when];
        while let Some(c) = walk.pop() {
            match c {
                Condition::And(cs) | Condition::Or(cs) => walk.extend(cs.iter()),
                Condition::Not(inner) => walk.push(inner),
                Condition::Cmp { lhs, op, rhs } => {
                    let ty = |e: &Expr| match e {
                        Expr::Bean(b) => self.schema.bean_type(b),
                        _ => None,
                    };
                    let (lt, rt) = (ty(lhs), ty(rhs));
                    let push = |severity, message, out: &mut Vec<Diagnostic>| {
                        out.push(Diagnostic {
                            severity,
                            code: LintCode::TypeError,
                            rule: rule.name.clone(),
                            peer: None,
                            span,
                            message,
                        });
                    };
                    match (lt, rt) {
                        (Some(BeanType::Flag), Some(r)) if r != BeanType::Flag => push(
                            Severity::Error,
                            format!("flag bean compared against numeric bean in `{c}`"),
                            out,
                        ),
                        (Some(l), Some(BeanType::Flag)) if l != BeanType::Flag => push(
                            Severity::Error,
                            format!("numeric bean compared against flag bean in `{c}`"),
                            out,
                        ),
                        _ => {
                            let flag_vs_const = match (lt, rhs, rt, lhs) {
                                (Some(BeanType::Flag), Expr::Const(v), _, _) => Some(*v),
                                (_, _, Some(BeanType::Flag), Expr::Const(v)) => Some(*v),
                                _ => None,
                            };
                            if let Some(v) = flag_vs_const {
                                if matches!(op, Cmp::Eq | Cmp::Ne) && v != 0.0 && v != 1.0 {
                                    let (sev, what) = if *op == Cmp::Eq {
                                        (Severity::Error, "never holds")
                                    } else {
                                        (Severity::Warning, "always holds")
                                    };
                                    push(
                                        sev,
                                        format!(
                                            "flag bean takes only 0/1, so `{c}` {what} \
                                             (compared against {v})"
                                        ),
                                        out,
                                    );
                                } else if matches!(op, Cmp::Lt | Cmp::Le | Cmp::Gt | Cmp::Ge) {
                                    push(
                                        Severity::Warning,
                                        format!(
                                            "ordering comparison on a 0/1 flag bean in `{c}`; \
                                             write the flag test directly"
                                        ),
                                        out,
                                    );
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn check_sat(
        &self,
        rule: &Rule,
        params: Option<&ParamTable>,
        span: Option<(u32, u32)>,
        out: &mut Vec<Diagnostic>,
    ) {
        // Literal `true` / `false` guards are deliberate (unconditional
        // and disabled rules); skip them.
        if matches!(rule.when, Condition::True | Condition::False) {
            return;
        }
        let structural = satisfiable(&rule.when, &self.schema);
        if structural == Proof::Unsat {
            out.push(Diagnostic {
                severity: Severity::Error,
                code: LintCode::Unsatisfiable,
                rule: rule.name.clone(),
                peer: None,
                span,
                message: "condition can never hold for any published sensor state".into(),
            });
        } else if let Some(t) = params {
            if satisfiable(&bind_params(&rule.when, t), &self.schema) == Proof::Unsat {
                out.push(Diagnostic {
                    severity: Severity::Warning,
                    code: LintCode::Unsatisfiable,
                    rule: rule.name.clone(),
                    peer: None,
                    span,
                    message: "condition can never hold under the bound contract parameters; \
                              the rule is dormant"
                        .into(),
                });
            }
        }
        let negated = Condition::Not(Box::new(rule.when.clone()));
        if satisfiable(&negated, &self.schema) == Proof::Unsat {
            out.push(Diagnostic {
                severity: Severity::Warning,
                code: LintCode::Tautology,
                rule: rule.name.clone(),
                peer: None,
                span,
                message: "condition always holds; the rule fires every control cycle \
                          (write `when true` if intended)"
                    .into(),
            });
        } else if let Some(t) = params {
            if satisfiable(&bind_params(&negated, t), &self.schema) == Proof::Unsat {
                out.push(Diagnostic {
                    severity: Severity::Warning,
                    code: LintCode::Tautology,
                    rule: rule.name.clone(),
                    peer: None,
                    span,
                    message: "condition always holds under the bound contract parameters".into(),
                });
            }
        }
    }

    fn check_shadowing(
        &self,
        rules: &RuleSet,
        params: Option<&ParamTable>,
        span_of: &impl Fn(&str) -> Option<(u32, u32)>,
        out: &mut Vec<Diagnostic>,
    ) {
        for shadower in rules.rules() {
            for shadowed in rules.rules() {
                if shadower.salience <= shadowed.salience {
                    continue;
                }
                if matches!(shadowed.when, Condition::True | Condition::False) {
                    continue;
                }
                // `shadowed ⇒ shadower` iff `shadowed ∧ ¬shadower` unsat.
                let gap = Condition::And(vec![
                    shadowed.when.clone(),
                    Condition::Not(Box::new(shadower.when.clone())),
                ]);
                let (proof, bound_only) = match satisfiable(&gap, &self.schema) {
                    Proof::Unsat => (true, false),
                    Proof::Unknown => match params {
                        Some(t) => (
                            satisfiable(&bind_params(&gap, t), &self.schema) == Proof::Unsat,
                            true,
                        ),
                        None => (false, false),
                    },
                    Proof::Sat(_) => (false, false),
                };
                if !proof {
                    continue;
                }
                let ops_a: Vec<String> = shadower
                    .execute()
                    .into_iter()
                    .map(|o| o.operation)
                    .collect();
                let ops_b: Vec<String> = shadowed
                    .execute()
                    .into_iter()
                    .map(|o| o.operation)
                    .collect();
                if let Some(resource) = self.effects.opposing(&ops_a, &ops_b) {
                    out.push(Diagnostic {
                        severity: if bound_only {
                            Severity::Warning
                        } else {
                            Severity::Error
                        },
                        code: LintCode::Shadowed,
                        rule: shadowed.name.clone(),
                        peer: Some(shadower.name.clone()),
                        span: span_of(&shadowed.name),
                        message: format!(
                            "whenever `{}` fires, higher-salience `{}` also fires and drives \
                             `{resource}` the opposite way in the same cycle, so `{}` can never \
                             usefully fire",
                            shadowed.name, shadower.name, shadowed.name
                        ),
                    });
                } else if !ops_b.is_empty() && ops_b.iter().all(|o| ops_a.contains(o)) {
                    out.push(Diagnostic {
                        severity: Severity::Warning,
                        code: LintCode::Shadowed,
                        rule: shadowed.name.clone(),
                        peer: Some(shadower.name.clone()),
                        span: span_of(&shadowed.name),
                        message: format!(
                            "redundant: whenever `{}` fires, higher-salience `{}` already fires \
                             the same operations",
                            shadowed.name, shadower.name
                        ),
                    });
                }
            }
        }
    }

    fn check_oscillation(
        &self,
        rules: &RuleSet,
        params: Option<&ParamTable>,
        span_of: &impl Fn(&str) -> Option<(u32, u32)>,
        out: &mut Vec<Diagnostic>,
    ) {
        let all = rules.rules();
        let ops: Vec<Vec<String>> = all
            .iter()
            .map(|r| r.execute().into_iter().map(|o| o.operation).collect())
            .collect();
        // edge i → j: some effect of rule i's actions moves a bean in the
        // direction that enables rule j.
        let edge = |i: usize, j: usize| {
            ops[i].iter().any(|op| {
                self.effects
                    .effects_of(op)
                    .iter()
                    .any(|(bean, d)| cond_direction(&all[j].when, bean) == Some(*d))
            })
        };
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                if !(edge(i, j) && edge(j, i)) {
                    continue;
                }
                let Some(resource) = self.effects.opposing(&ops[i], &ops[j]) else {
                    continue;
                };
                // Undamped iff both guards can hold in one state: no dead
                // band separates them, so the pair adds and removes (or
                // raises and lowers) in the same or alternating cycles.
                let both = Condition::And(vec![all[i].when.clone(), all[j].when.clone()]);
                let (proof, bound_only) = match satisfiable(&both, &self.schema) {
                    Proof::Sat(w) => (Some(w), false),
                    Proof::Unknown => match params {
                        Some(t) => match satisfiable(&bind_params(&both, t), &self.schema) {
                            Proof::Sat(w) => (Some(w), true),
                            _ => (None, false),
                        },
                        None => (None, false),
                    },
                    Proof::Unsat => (None, false),
                };
                let Some(witness) = proof else {
                    continue;
                };
                out.push(Diagnostic {
                    severity: if bound_only {
                        Severity::Warning
                    } else {
                        Severity::Error
                    },
                    code: LintCode::Oscillation,
                    rule: all[i].name.clone(),
                    peer: Some(all[j].name.clone()),
                    span: span_of(&all[i].name),
                    message: format!(
                        "`{}` and `{}` re-enable each other and drive `{resource}` in opposite \
                         directions with no damping dead band (both fireable at {}); separate \
                         their thresholds",
                        all[i].name,
                        all[j].name,
                        fmt_witness(&witness)
                    ),
                });
            }
        }
    }

    /// Cross-manager conflict detection (TR-09-10): rule pairs from two
    /// managers that drive the same actuator in opposite directions and
    /// whose guards are co-satisfiable in one working-memory state.
    ///
    /// Each side carries its manager label and (optionally) its bound
    /// parameter table. With parameters bound a provable co-fireable
    /// conflict is an error; an undecidable one (symbolic thresholds) is
    /// a warning so the two-phase coordinator's arbitration is at least
    /// pointed at.
    pub fn check_conflicts(
        &self,
        a: (&str, &RuleSet, Option<&ParamTable>),
        b: (&str, &RuleSet, Option<&ParamTable>),
    ) -> Vec<Diagnostic> {
        let (label_a, set_a, params_a) = a;
        let (label_b, set_b, params_b) = b;
        let empty = ParamTable::new();
        let mut out = Vec::new();
        for ra in set_a.rules() {
            let ops_a: Vec<String> = ra.execute().into_iter().map(|o| o.operation).collect();
            let ca = bind_params(&ra.when, params_a.unwrap_or(&empty));
            for rb in set_b.rules() {
                let ops_b: Vec<String> = rb.execute().into_iter().map(|o| o.operation).collect();
                let Some(resource) = self.effects.opposing_actuator(&ops_a, &ops_b) else {
                    continue;
                };
                let cb = bind_params(&rb.when, params_b.unwrap_or(&empty));
                let both = Condition::And(vec![ca.clone(), cb.clone()]);
                let (severity, detail) = match satisfiable(&both, &self.schema) {
                    Proof::Sat(w) => (
                        Severity::Error,
                        format!("both fireable at {}", fmt_witness(&w)),
                    ),
                    Proof::Unknown => (
                        Severity::Warning,
                        "co-firing cannot be ruled out with the given parameters".into(),
                    ),
                    Proof::Unsat => continue,
                };
                out.push(Diagnostic {
                    severity,
                    code: LintCode::Conflict,
                    rule: format!("{label_a}:{}", ra.name),
                    peer: Some(format!("{label_b}:{}", rb.name)),
                    span: None,
                    message: format!(
                        "managers `{label_a}` and `{label_b}` drive `{resource}` in opposite \
                         directions ({} vs {}); {detail}",
                        ra.name, rb.name
                    ),
                });
            }
        }
        out
    }
}

fn fmt_witness(w: &BTreeMap<String, f64>) -> String {
    let parts: Vec<String> = w.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Action;
    use crate::parser::parse_rules_spanned;

    fn schema() -> BeanSchema {
        BeanSchema::new()
            .bean("arrivalRate", BeanType::Rate)
            .bean("departureRate", BeanType::Rate)
            .bean("numWorkers", BeanType::Count)
            .bean("queueVariance", BeanType::Rate)
            .bean("queuedTasks", BeanType::Count)
            .bean("endOfStream", BeanType::Flag)
            .bean("x", BeanType::Real)
            .param("LOW")
            .param("HIGH")
    }

    fn analyze_src(src: &str, params: Option<&ParamTable>) -> Vec<Diagnostic> {
        let (set, spans) = parse_rules_spanned(src).unwrap();
        Analyzer::new(schema()).analyze(&set, params, Some(&spans))
    }

    fn codes(diags: &[Diagnostic]) -> Vec<(Severity, LintCode)> {
        diags.iter().map(|d| (d.severity, d.code)).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let d = analyze_src(
            r#"
            rule "grow" when departureRate < $LOW && numWorkers <= 16 then fire(ADD_EXECUTOR) end
            "#,
            None,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unannotated_op_warns_no_effect() {
        let d = analyze_src(
            "rule \"r\" when departureRate < $LOW then fire(DO_MYSTERY) end",
            None,
        );
        assert_eq!(codes(&d), [(Severity::Warning, LintCode::NoEffect)]);
        // One modelled action is enough to make the rule visible.
        let d = analyze_src(
            "rule \"r\" when departureRate < $LOW then fire(DO_MYSTERY); fire(ADD_EXECUTOR) end",
            None,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn inert_ops_are_not_flagged_no_effect() {
        // RAISE_VIOLATION is declared inert in the standard table: pure
        // signalling, not a coverage gap.
        let d = analyze_src(
            "rule \"r\" when departureRate < $LOW then fireOperation(RAISE_VIOLATION) end",
            None,
        );
        assert!(d.is_empty(), "{d:?}");
        // An empty effect table disables the check entirely.
        let (set, _) =
            parse_rules_spanned("rule \"r\" when departureRate < $LOW then fire(DO_MYSTERY) end")
                .unwrap();
        let d = Analyzer::new(schema())
            .with_effects(EffectTable::new())
            .analyze(&set, None, None);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unknown_bean_is_error_with_span() {
        let d = analyze_src(
            "rule \"r\" when noSuchBean > 1 then fire(ADD_EXECUTOR) end",
            None,
        );
        assert_eq!(codes(&d), [(Severity::Error, LintCode::UnknownBean)]);
        assert_eq!(d[0].span, Some((1, 6)));
    }

    #[test]
    fn unknown_param_warns_structurally_errors_when_bound() {
        let src = "rule \"r\" when departureRate < $NOPE then fire(ADD_EXECUTOR) end";
        let d = analyze_src(src, None);
        assert_eq!(codes(&d), [(Severity::Warning, LintCode::UnknownParam)]);
        let t = ParamTable::new().with("LOW", 1.0);
        let d = analyze_src(src, Some(&t));
        assert_eq!(codes(&d), [(Severity::Error, LintCode::UnknownParam)]);
    }

    #[test]
    fn flag_type_errors() {
        let d = analyze_src(
            "rule \"r\" when endOfStream == 0.5 then fire(ADD_EXECUTOR) end",
            None,
        );
        assert!(
            codes(&d).contains(&(Severity::Error, LintCode::TypeError)),
            "{d:?}"
        );
        let d = analyze_src(
            "rule \"r\" when endOfStream < numWorkers then fire(ADD_EXECUTOR) end",
            None,
        );
        assert!(
            codes(&d).contains(&(Severity::Error, LintCode::TypeError)),
            "{d:?}"
        );
        let d = analyze_src(
            "rule \"r\" when endOfStream >= 1 then fire(ADD_EXECUTOR) end",
            None,
        );
        assert_eq!(codes(&d), [(Severity::Warning, LintCode::TypeError)]);
    }

    #[test]
    fn structural_unsat_is_error() {
        let d = analyze_src(
            "rule \"r\" when departureRate < 5 && departureRate > 7 then fire(ADD_EXECUTOR) end",
            None,
        );
        assert_eq!(codes(&d), [(Severity::Error, LintCode::Unsatisfiable)]);
    }

    #[test]
    fn domain_unsat_is_error() {
        // Rates are non-negative, so `< -1` can never hold.
        let d = analyze_src(
            "rule \"r\" when departureRate < -1 then fire(ADD_EXECUTOR) end",
            None,
        );
        assert_eq!(codes(&d), [(Severity::Error, LintCode::Unsatisfiable)]);
    }

    #[test]
    fn param_bound_unsat_is_dormant_warning() {
        let src = "rule \"r\" when departureRate > $HIGH then fire(REMOVE_EXECUTOR) end";
        assert!(analyze_src(src, None).is_empty());
        let t = ParamTable::new().with("HIGH", f64::INFINITY);
        let d = analyze_src(src, Some(&t));
        assert_eq!(codes(&d), [(Severity::Warning, LintCode::Unsatisfiable)]);
    }

    #[test]
    fn tautology_warns() {
        let d = analyze_src(
            "rule \"r\" when departureRate >= 0 then fire(BALANCE_LOAD) end",
            None,
        );
        assert_eq!(codes(&d), [(Severity::Warning, LintCode::Tautology)]);
        // Literal `true` is an intentional unconditional rule: clean.
        let d = analyze_src("rule \"r\" when true then fire(BALANCE_LOAD) end", None);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn excluded_middle_tautology_warns() {
        let d = analyze_src(
            "rule \"r\" when x < 5 || x >= 5 then fire(BALANCE_LOAD) end",
            None,
        );
        assert_eq!(codes(&d), [(Severity::Warning, LintCode::Tautology)]);
    }

    #[test]
    fn shadowed_conflicting_action_is_error() {
        let d = analyze_src(
            r#"
            rule "shrink" salience 10 when numWorkers > 2 then fire(REMOVE_EXECUTOR) end
            rule "grow" when numWorkers > 4 then fire(ADD_EXECUTOR) end
            "#,
            None,
        );
        assert_eq!(codes(&d), [(Severity::Error, LintCode::Shadowed)]);
        assert_eq!(d[0].rule, "grow");
        assert_eq!(d[0].peer.as_deref(), Some("shrink"));
    }

    #[test]
    fn shadowed_same_action_is_redundancy_warning() {
        let d = analyze_src(
            r#"
            rule "a" salience 10 when numWorkers > 2 then fire(ADD_EXECUTOR) end
            rule "b" when numWorkers > 4 then fire(ADD_EXECUTOR) end
            "#,
            None,
        );
        assert_eq!(codes(&d), [(Severity::Warning, LintCode::Shadowed)]);
    }

    #[test]
    fn non_overlapping_salience_pair_is_clean() {
        let d = analyze_src(
            r#"
            rule "a" salience 10 when numWorkers > 8 then fire(REMOVE_EXECUTOR) end
            rule "b" when numWorkers < 4 then fire(ADD_EXECUTOR) end
            "#,
            None,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn undamped_oscillation_is_error() {
        let d = analyze_src(
            r#"
            rule "grow" when departureRate < 10 then fire(ADD_EXECUTOR) end
            rule "shrink" when departureRate > 5 then fire(REMOVE_EXECUTOR) end
            "#,
            None,
        );
        assert_eq!(codes(&d), [(Severity::Error, LintCode::Oscillation)]);
        assert!(d[0].message.contains("departureRate"), "{}", d[0].message);
    }

    #[test]
    fn dead_band_damps_oscillation() {
        let d = analyze_src(
            r#"
            rule "grow" when departureRate < 5 then fire(ADD_EXECUTOR) end
            rule "shrink" when departureRate > 10 then fire(REMOVE_EXECUTOR) end
            "#,
            None,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn symbolic_thresholds_do_not_flag_oscillation() {
        // Fig. 5 shape: thresholds are contract parameters; without bound
        // values the analyzer must stay silent.
        let d = analyze_src(
            r#"
            rule "grow" when departureRate < $LOW then fire(ADD_EXECUTOR) end
            rule "shrink" when departureRate > $HIGH then fire(REMOVE_EXECUTOR) end
            "#,
            None,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn inverted_bound_params_flag_oscillation_as_warning() {
        let src = r#"
            rule "grow" when departureRate < $LOW then fire(ADD_EXECUTOR) end
            rule "shrink" when departureRate > $HIGH then fire(REMOVE_EXECUTOR) end
        "#;
        let t = ParamTable::new().with("LOW", 0.7).with("HIGH", 0.3);
        let d = analyze_src(src, Some(&t));
        assert_eq!(codes(&d), [(Severity::Warning, LintCode::Oscillation)]);
        // Properly ordered thresholds leave a dead band: clean.
        let t = ParamTable::new().with("LOW", 0.3).with("HIGH", 0.7);
        assert!(analyze_src(src, Some(&t)).is_empty());
    }

    #[test]
    fn fig5_farm_rules_pass_clean() {
        let (set, spans) = parse_rules_spanned(crate::stdlib::FARM_RULES_TEXT).unwrap();
        let schema = BeanSchema::new()
            .bean("arrivalRate", BeanType::Rate)
            .bean("departureRate", BeanType::Rate)
            .bean("numWorkers", BeanType::Count)
            .bean("queueVariance", BeanType::Rate);
        let d = Analyzer::new(schema).analyze(&set, None, Some(&spans));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cross_manager_conflict_detected() {
        let grow: RuleSet = RuleSet::new().with(Rule::new(
            "grow",
            Condition::bean_vs_const("numWorkers", Cmp::Lt, 3.0),
            vec![Action::Fire(crate::op::ADD_EXECUTOR.into())],
        ));
        let shrink: RuleSet = RuleSet::new().with(Rule::new(
            "shrink",
            Condition::bean_vs_const("numWorkers", Cmp::Gt, 1.0),
            vec![Action::Fire(crate::op::REMOVE_EXECUTOR.into())],
        ));
        let d =
            Analyzer::new(schema()).check_conflicts(("ft", &grow, None), ("perf", &shrink, None));
        assert_eq!(codes(&d), [(Severity::Error, LintCode::Conflict)]);
        assert_eq!(d[0].rule, "ft:grow");
        assert_eq!(d[0].peer.as_deref(), Some("perf:shrink"));
    }

    #[test]
    fn disjoint_cross_manager_guards_are_clean() {
        let grow: RuleSet = RuleSet::new().with(Rule::new(
            "grow",
            Condition::bean_vs_const("numWorkers", Cmp::Lt, 3.0),
            vec![Action::Fire(crate::op::ADD_EXECUTOR.into())],
        ));
        let shrink: RuleSet = RuleSet::new().with(Rule::new(
            "shrink",
            Condition::bean_vs_const("numWorkers", Cmp::Gt, 8.0),
            vec![Action::Fire(crate::op::REMOVE_EXECUTOR.into())],
        ));
        let d =
            Analyzer::new(schema()).check_conflicts(("ft", &grow, None), ("perf", &shrink, None));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn symbolic_cross_manager_conflict_warns() {
        let grow: RuleSet = RuleSet::new().with(Rule::new(
            "grow",
            Condition::bean_vs_param("numWorkers", Cmp::Lt, "FT_MIN"),
            vec![Action::Fire(crate::op::ADD_EXECUTOR.into())],
        ));
        let shrink: RuleSet = RuleSet::new().with(Rule::new(
            "shrink",
            Condition::bean_vs_param("numWorkers", Cmp::Gt, "MIN"),
            vec![Action::Fire(crate::op::REMOVE_EXECUTOR.into())],
        ));
        let d =
            Analyzer::new(schema()).check_conflicts(("ft", &grow, None), ("perf", &shrink, None));
        assert_eq!(codes(&d), [(Severity::Warning, LintCode::Conflict)]);
    }

    #[test]
    fn sat_witness_is_verified() {
        // A satisfiable condition yields a witness that actually
        // satisfies it.
        let cond = Condition::And(vec![
            Condition::bean_vs_const("x", Cmp::Gt, 2.0),
            Condition::bean_vs_const("x", Cmp::Lt, 3.0),
            Condition::bean_vs_const("x", Cmp::Ne, 2.5),
        ]);
        match satisfiable(&cond, &schema()) {
            Proof::Sat(w) => {
                let wm = WorkingMemory::from_beans(w);
                assert_eq!(cond.eval(&wm, &ParamTable::new()), Ok(true));
            }
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn flag_domain_reasoning() {
        // A flag pinned to both 0 and 1 is unsatisfiable.
        let cond = Condition::And(vec![
            Condition::flag("endOfStream"),
            Condition::not_flag("endOfStream"),
        ]);
        assert_eq!(satisfiable(&cond, &schema()), Proof::Unsat);
        // != 0 ∨ == 0 over {0,1} is a tautology.
        let cond = Condition::Or(vec![
            Condition::flag("endOfStream"),
            Condition::not_flag("endOfStream"),
        ]);
        let neg = Condition::Not(Box::new(cond));
        assert_eq!(satisfiable(&neg, &schema()), Proof::Unsat);
    }

    #[test]
    fn bean_vs_bean_is_unknown() {
        let cond = Condition::cmp(
            Expr::Bean("arrivalRate".into()),
            Cmp::Lt,
            Expr::Bean("departureRate".into()),
        );
        assert_eq!(satisfiable(&cond, &schema()), Proof::Unknown);
    }

    #[test]
    fn diagnostic_display_format() {
        let d = Diagnostic {
            severity: Severity::Error,
            code: LintCode::Unsatisfiable,
            rule: "r".into(),
            peer: None,
            span: Some((3, 7)),
            message: "nope".into(),
        };
        assert_eq!(d.to_string(), "error[unsat] rule `r` (3:7): nope");
    }
}
