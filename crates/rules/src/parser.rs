//! Parser for the `.rules` text syntax.
//!
//! Rule programs ship as text files, close to the JBoss syntax the paper
//! shows in Fig. 5 but without Java class references (beans are plain
//! names; `ManagersConstants.*` thresholds become `$PARAM` references bound
//! by the active contract):
//!
//! ```text
//! // AM_F farm manager, paper Fig. 5, rule 3
//! rule "CheckRateLow" salience 5
//! when
//!     departureRate < $FARM_LOW_PERF_LEVEL &&
//!     arrivalRate >= $FARM_LOW_PERF_LEVEL &&
//!     numWorkers <= $FARM_MAX_NUM_WORKERS
//! then
//!     setData("farmAddWorkers");
//!     fire(ADD_EXECUTOR);
//!     fire(BALANCE_LOAD);
//! end
//! ```
//!
//! Grammar (EBNF):
//!
//! ```text
//! program   := rule*
//! rule      := "rule" STRING ("salience" INT)? ("once")?
//!              "when" cond "then" action* "end"
//! cond      := or
//! or        := and ("||" and)*
//! and       := unary ("&&" unary)*
//! unary     := "!" unary | "(" cond ")" | "true" | "false" | cmp
//! cmp       := operand OP operand
//! operand   := NUMBER | "$" IDENT | IDENT
//! action    := ("setData" "(" STRING ")" | ("fire"|"fireOperation") "(" IDENT ")") ";"?
//! ```
//!
//! Line comments `//` and block comments `/* */` are supported.

use crate::ast::{Action, Cmp, Condition, Expr, Rule, RuleSet};
use std::collections::BTreeMap;
use std::fmt;

/// Source positions of the rules in a parsed program, keyed by rule name.
///
/// `Rule` itself carries no span (it can be built programmatically and is
/// compared structurally), so the parser reports positions out-of-band for
/// diagnostics such as the ones `crate::analysis` emits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    spans: BTreeMap<String, (u32, u32)>,
}

impl SourceMap {
    /// 1-based (line, column) of the rule-name token, if the rule came from
    /// this source text.
    pub fn span(&self, rule: &str) -> Option<(u32, u32)> {
        self.spans.get(rule).copied()
    }

    /// Records the position of a rule's name token.
    pub fn insert(&mut self, rule: impl Into<String>, line: u32, col: u32) {
        self.spans.insert(rule.into(), (line, col));
    }

    /// Number of rules with a recorded span.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// A parse failure with 1-based line/column of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl ParseError {
    fn new(message: impl Into<String>, line: u32, col: u32) -> Self {
        Self {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    Param(String),
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Bang,
    LParen,
    RParen,
    Semi,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Str(s) => write!(f, "string \"{s}\""),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::Param(p) => write!(f, "parameter ${p}"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: u32,
    col: u32,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.line, self.col)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (line, col) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    line,
                                    col,
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Spanned {
                    tok: Tok::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b';' => {
                    self.bump();
                    Tok::Semi
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Le
                    } else {
                        Tok::Lt
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::EqEq
                    } else {
                        return Err(self.err("expected `==` (single `=` is not an operator)"));
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ne
                    } else {
                        Tok::Bang
                    }
                }
                b'&' => {
                    self.bump();
                    if self.peek() == Some(b'&') {
                        self.bump();
                        Tok::AndAnd
                    } else {
                        return Err(self.err("expected `&&`"));
                    }
                }
                b'|' => {
                    self.bump();
                    if self.peek() == Some(b'|') {
                        self.bump();
                        Tok::OrOr
                    } else {
                        return Err(self.err("expected `||`"));
                    }
                }
                b'$' => {
                    self.bump();
                    let name = self.lex_ident_text();
                    if name.is_empty() {
                        return Err(self.err("expected parameter name after `$`"));
                    }
                    Tok::Param(name)
                }
                b'"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some(b'"') => break,
                            Some(b'\n') | None => {
                                return Err(ParseError::new(
                                    "unterminated string literal",
                                    line,
                                    col,
                                ))
                            }
                            Some(ch) => s.push(ch as char),
                        }
                    }
                    Tok::Str(s)
                }
                b'-' | b'0'..=b'9' => {
                    let mut text = String::new();
                    if c == b'-' {
                        text.push('-');
                        self.bump();
                    }
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() || d == b'.' {
                            text.push(d as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let n: f64 = text
                        .parse()
                        .map_err(|_| ParseError::new(format!("bad number `{text}`"), line, col))?;
                    Tok::Num(n)
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let name = self.lex_ident_text();
                    Tok::Ident(name)
                }
                other => return Err(self.err(format!("unexpected character `{}`", other as char))),
            };
            out.push(Spanned { tok, line, col });
        }
    }

    fn lex_ident_text(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Spanned {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError::new(msg, t.line, t.col)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match &self.peek().tok {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err_here(format!("expected keyword `{kw}`, found {other}"))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn parse_program(&mut self) -> Result<(RuleSet, SourceMap), ParseError> {
        let mut set = RuleSet::new();
        let mut spans = SourceMap::default();
        while !matches!(self.peek().tok, Tok::Eof) {
            let (rule, (line, col)) = self.parse_rule()?;
            if set.get(&rule.name).is_some() {
                let (l0, c0) = spans.span(&rule.name).unwrap_or((0, 0));
                return Err(ParseError::new(
                    format!(
                        "duplicate rule name `{}` (first defined at {l0}:{c0})",
                        rule.name
                    ),
                    line,
                    col,
                ));
            }
            spans.insert(rule.name.clone(), line, col);
            set.push(rule);
        }
        Ok((set, spans))
    }

    /// Parses one rule; also returns the (line, col) of its name token.
    fn parse_rule(&mut self) -> Result<(Rule, (u32, u32)), ParseError> {
        self.expect_kw("rule")?;
        let name_tok = self.bump();
        let span = (name_tok.line, name_tok.col);
        let name = match name_tok.tok {
            Tok::Str(s) => s,
            other => {
                return Err(ParseError::new(
                    format!("expected rule name string, found {other}"),
                    name_tok.line,
                    name_tok.col,
                ))
            }
        };
        let mut salience = 0;
        let mut edge = false;
        loop {
            if self.at_kw("salience") {
                self.bump();
                match self.bump().tok {
                    Tok::Num(n) => salience = n as i32,
                    other => {
                        return Err(
                            self.err_here(format!("expected salience number, found {other}"))
                        )
                    }
                }
            } else if self.at_kw("once") {
                self.bump();
                edge = true;
            } else {
                break;
            }
        }
        self.expect_kw("when")?;
        let when = self.parse_or()?;
        self.expect_kw("then")?;
        let mut then = Vec::new();
        while !self.at_kw("end") {
            then.push(self.parse_action()?);
        }
        self.expect_kw("end")?;
        let mut rule = Rule::new(name, when, then).salience(salience);
        if edge {
            rule = rule.edge_triggered();
        }
        Ok((rule, span))
    }

    fn parse_or(&mut self) -> Result<Condition, ParseError> {
        let first = self.parse_and()?;
        let mut parts = vec![first];
        while matches!(self.peek().tok, Tok::OrOr) {
            self.bump();
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len == 1")
        } else {
            Condition::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<Condition, ParseError> {
        let first = self.parse_unary()?;
        let mut parts = vec![first];
        while matches!(self.peek().tok, Tok::AndAnd) {
            self.bump();
            parts.push(self.parse_unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len == 1")
        } else {
            Condition::And(parts)
        })
    }

    fn parse_unary(&mut self) -> Result<Condition, ParseError> {
        match &self.peek().tok {
            Tok::Bang => {
                self.bump();
                Ok(Condition::Not(Box::new(self.parse_unary()?)))
            }
            Tok::LParen => {
                self.bump();
                let c = self.parse_or()?;
                match self.bump().tok {
                    Tok::RParen => Ok(c),
                    other => Err(self.err_here(format!("expected `)`, found {other}"))),
                }
            }
            Tok::Ident(s) if s == "true" => {
                self.bump();
                Ok(Condition::True)
            }
            Tok::Ident(s) if s == "false" => {
                self.bump();
                Ok(Condition::False)
            }
            _ => self.parse_cmp_or_flag(),
        }
    }

    fn parse_cmp_or_flag(&mut self) -> Result<Condition, ParseError> {
        let lhs = self.parse_operand()?;
        let op = match self.peek().tok {
            Tok::Lt => Cmp::Lt,
            Tok::Le => Cmp::Le,
            Tok::Gt => Cmp::Gt,
            Tok::Ge => Cmp::Ge,
            Tok::EqEq => Cmp::Eq,
            Tok::Ne => Cmp::Ne,
            // A bare bean name is a boolean flag test: `endOfStream` is
            // sugar for `endOfStream != 0`.
            _ => {
                return match lhs {
                    Expr::Bean(_) => Ok(Condition::Cmp {
                        lhs,
                        op: Cmp::Ne,
                        rhs: Expr::Const(0.0),
                    }),
                    other => {
                        Err(self.err_here(format!("expected comparison operator after `{other}`")))
                    }
                };
            }
        };
        self.bump();
        let rhs = self.parse_operand()?;
        Ok(Condition::Cmp { lhs, op, rhs })
    }

    fn parse_operand(&mut self) -> Result<Expr, ParseError> {
        match self.bump().tok {
            Tok::Num(n) => Ok(Expr::Const(n)),
            Tok::Param(p) => Ok(Expr::Param(p)),
            Tok::Ident(name) => Ok(Expr::Bean(name)),
            other => Err(self.err_here(format!("expected bean, $param or number, found {other}"))),
        }
    }

    fn parse_action(&mut self) -> Result<Action, ParseError> {
        let name = match self.bump().tok {
            Tok::Ident(s) => s,
            other => return Err(self.err_here(format!("expected action, found {other}"))),
        };
        match self.bump().tok {
            Tok::LParen => {}
            other => return Err(self.err_here(format!("expected `(`, found {other}"))),
        }
        let action = match name.as_str() {
            "setData" => match self.bump().tok {
                Tok::Str(s) => Action::SetData(s),
                Tok::Ident(s) => Action::SetData(s),
                other => {
                    return Err(self.err_here(format!("expected setData argument, found {other}")))
                }
            },
            "fire" | "fireOperation" => match self.bump().tok {
                Tok::Ident(s) => Action::Fire(s),
                Tok::Str(s) => Action::Fire(s),
                other => {
                    return Err(self.err_here(format!("expected operation name, found {other}")))
                }
            },
            other => {
                return Err(self.err_here(format!(
                    "unknown action `{other}` (expected setData, fire or fireOperation)"
                )))
            }
        };
        match self.bump().tok {
            Tok::RParen => {}
            other => return Err(self.err_here(format!("expected `)`, found {other}"))),
        }
        if matches!(self.peek().tok, Tok::Semi) {
            self.bump();
        }
        Ok(action)
    }
}

/// Parses a rule program from text.
pub fn parse_rules(src: &str) -> Result<RuleSet, ParseError> {
    parse_rules_spanned(src).map(|(set, _)| set)
}

/// Parses a rule program from text, also returning the [`SourceMap`] of
/// per-rule positions for use in diagnostics.
pub fn parse_rules_spanned(src: &str) -> Result<(RuleSet, SourceMap), ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, pos: 0 };
    p.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wm::{ParamTable, WorkingMemory};

    #[test]
    fn parses_minimal_rule() {
        let set = parse_rules(
            r#"
            rule "r"
            when true
            then fire(X);
            end
            "#,
        )
        .unwrap();
        assert_eq!(set.len(), 1);
        let r = set.get("r").unwrap();
        assert_eq!(r.when, Condition::True);
        assert_eq!(r.then, vec![Action::Fire("X".into())]);
        assert_eq!(r.salience, 0);
        assert!(!r.edge_triggered);
    }

    #[test]
    fn parses_salience_and_once() {
        let set = parse_rules(
            r#"
            rule "r" salience 7 once
            when true
            then fire(X)
            end
            "#,
        )
        .unwrap();
        let r = set.get("r").unwrap();
        assert_eq!(r.salience, 7);
        assert!(r.edge_triggered);
    }

    #[test]
    fn parses_fig5_style_rule() {
        let set = parse_rules(
            r#"
            rule "CheckRateLow"
            when
                departureRate < $FARM_LOW_PERF_LEVEL &&
                arrivalRate >= $FARM_LOW_PERF_LEVEL &&
                numWorkers <= $FARM_MAX_NUM_WORKERS
            then
                setData("farmAddWorkers");
                fireOperation(ADD_EXECUTOR);
                fireOperation(BALANCE_LOAD);
            end
            "#,
        )
        .unwrap();
        let r = set.get("CheckRateLow").unwrap();
        let mut beans = r.when.beans();
        beans.sort_unstable();
        assert_eq!(beans, ["arrivalRate", "departureRate", "numWorkers"]);
        let mut params = r.when.params();
        params.sort_unstable();
        assert_eq!(
            params,
            [
                "FARM_LOW_PERF_LEVEL",
                "FARM_LOW_PERF_LEVEL",
                "FARM_MAX_NUM_WORKERS"
            ]
        );
        let calls = r.execute();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].operation, "ADD_EXECUTOR");
        assert_eq!(calls[0].data.as_deref(), Some("farmAddWorkers"));
    }

    #[test]
    fn bare_bean_is_flag_sugar() {
        let set = parse_rules(
            r#"
            rule "r"
            when endOfStream && !reconfiguring
            then fire(X)
            end
            "#,
        )
        .unwrap();
        let r = set.get("r").unwrap();
        let wm = WorkingMemory::from_beans([("endOfStream", 1.0), ("reconfiguring", 0.0)]);
        assert_eq!(r.when.eval(&wm, &ParamTable::new()), Ok(true));
        let wm2 = WorkingMemory::from_beans([("endOfStream", 1.0), ("reconfiguring", 1.0)]);
        assert_eq!(r.when.eval(&wm2, &ParamTable::new()), Ok(false));
    }

    #[test]
    fn or_and_precedence() {
        // a && b || c parses as (a && b) || c
        let set = parse_rules(
            r#"
            rule "r"
            when a == 1 && b == 1 || c == 1
            then fire(X)
            end
            "#,
        )
        .unwrap();
        let r = set.get("r").unwrap();
        let p = ParamTable::new();
        let eval = |a: f64, b: f64, c: f64| {
            let wm = WorkingMemory::from_beans([("a", a), ("b", b), ("c", c)]);
            r.when.eval(&wm, &p).unwrap()
        };
        assert!(eval(1.0, 1.0, 0.0));
        assert!(eval(0.0, 0.0, 1.0));
        assert!(!eval(1.0, 0.0, 0.0));
    }

    #[test]
    fn parentheses_override_precedence() {
        let set = parse_rules(
            r#"
            rule "r"
            when a == 1 && (b == 1 || c == 1)
            then fire(X)
            end
            "#,
        )
        .unwrap();
        let r = set.get("r").unwrap();
        let p = ParamTable::new();
        let wm = WorkingMemory::from_beans([("a", 0.0), ("b", 0.0), ("c", 1.0)]);
        assert_eq!(r.when.eval(&wm, &p), Ok(false));
    }

    #[test]
    fn comments_are_skipped() {
        let set = parse_rules(
            r#"
            // leading comment
            rule "r" /* inline */ salience 1
            when true // trailing
            then fire(X)
            end
            /* closing
               block */
            "#,
        )
        .unwrap();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn negative_numbers_parse() {
        let set = parse_rules(
            r#"
            rule "r"
            when x > -1.5
            then fire(X)
            end
            "#,
        )
        .unwrap();
        let r = set.get("r").unwrap();
        let wm = WorkingMemory::from_beans([("x", 0.0)]);
        assert_eq!(r.when.eval(&wm, &ParamTable::new()), Ok(true));
    }

    #[test]
    fn multiple_rules_preserve_order() {
        let set = parse_rules(
            r#"
            rule "a" when true then fire(A) end
            rule "b" when true then fire(B) end
            "#,
        )
        .unwrap();
        let names: Vec<&str> = set.rules().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn error_unterminated_string() {
        let err = parse_rules("rule \"oops\nwhen true then end").unwrap_err();
        assert!(err.message.contains("unterminated string"), "{err}");
        assert_eq!(err.line, 1);
    }

    #[test]
    fn error_duplicate_rule() {
        let err = parse_rules(
            r#"
            rule "a" when true then end
            rule "a" when true then end
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
        // Points at the *duplicate's* name token and cites the first site.
        assert_eq!(err.line, 3);
        assert_eq!(err.col, 18);
        assert!(err.message.contains("first defined at 2:18"), "{err}");
    }

    #[test]
    fn spanned_parse_records_rule_positions() {
        let (set, spans) = parse_rules_spanned(
            "rule \"a\" when true then end\n  rule \"b\"\nwhen true then end\n",
        )
        .unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(spans.span("a"), Some((1, 6)));
        assert_eq!(spans.span("b"), Some((2, 8)));
        assert_eq!(spans.span("missing"), None);
        assert_eq!(spans.len(), 2);
        assert!(!spans.is_empty());
    }

    #[test]
    fn error_unknown_action() {
        let err = parse_rules(
            r#"
            rule "a" when true then explode(NOW) end
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("unknown action"), "{err}");
    }

    #[test]
    fn error_single_equals() {
        let err = parse_rules("rule \"a\" when x = 1 then end").unwrap_err();
        assert!(err.message.contains("=="), "{err}");
    }

    #[test]
    fn error_reports_position() {
        let err = parse_rules("rule \"a\"\nwhen x ?? 1 then end").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col > 1);
    }

    #[test]
    fn empty_program_is_empty_set() {
        let set = parse_rules("  // nothing here\n").unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn engine_runs_parsed_program() {
        use crate::engine::RuleEngine;
        let set = parse_rules(
            r#"
            rule "hi" salience 2
            when x > $T
            then setData("d"); fire(OP_A)
            end
            rule "lo" salience 1
            when x <= $T
            then fire(OP_B)
            end
            "#,
        )
        .unwrap();
        let mut e = RuleEngine::new(set);
        let p = ParamTable::new().with("T", 5.0);
        let wm = WorkingMemory::from_beans([("x", 9.0)]);
        let ops = e.cycle_ops(&wm, &p).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].operation, "OP_A");
        assert_eq!(ops[0].data.as_deref(), Some("d"));
    }
}
