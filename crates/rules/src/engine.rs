//! The rule engine: fireable-rule selection, salience ordering, execution.
//!
//! Mirrors the control cycle of the paper's §4.1: *"At each invocation,
//! 'fireable' rules are selected, prioritized and executed. Execution of a
//! JBoss rule leads to the invocation of the actuator mechanisms in the
//! action part of the rule."* The engine is deterministic: ties in salience
//! break by definition order, making manager behaviour reproducible under
//! the simulator's fixed seeds.

use crate::ast::{EvalError, OpCall, Rule, RuleSet};
use crate::wm::{ParamTable, WorkingMemory};
use std::collections::BTreeSet;
use std::fmt;

/// One rule firing: the rule's name and the operations its actions produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// Name of the fired rule.
    pub rule: String,
    /// Salience the rule fired at.
    pub salience: i32,
    /// Operation calls produced by the rule's action list.
    pub ops: Vec<OpCall>,
}

/// Engine errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A rule condition failed to evaluate (unknown bean/parameter). The
    /// offending rule name is carried for diagnosis.
    Eval {
        /// Rule whose condition failed.
        rule: String,
        /// Underlying evaluation error.
        source: EvalError,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Eval { rule, source } => {
                write!(f, "rule `{rule}`: {source}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A deterministic forward-chaining engine over a [`RuleSet`].
///
/// The engine is stateful only for *edge-triggered* rules, for which it
/// remembers whether each rule's condition held in the previous cycle.
#[derive(Debug, Clone)]
pub struct RuleEngine {
    rules: RuleSet,
    /// Names of edge-triggered rules whose condition held last cycle.
    active_edges: BTreeSet<String>,
    cycles: u64,
    firings: u64,
}

impl RuleEngine {
    /// Creates an engine over the given rule program.
    pub fn new(rules: RuleSet) -> Self {
        Self {
            rules,
            active_edges: BTreeSet::new(),
            cycles: 0,
            firings: 0,
        }
    }

    /// The rule program.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Replaces the rule program (e.g. after receiving a contract whose
    /// concern needs a different policy set). Edge state is cleared.
    pub fn load(&mut self, rules: RuleSet) {
        self.rules = rules;
        self.active_edges.clear();
    }

    /// Number of control cycles run so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of rule firings so far.
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Runs one control cycle: evaluates every rule against `wm`/`params`,
    /// selects the fireable ones, orders them by salience (descending,
    /// definition order within equal salience) and executes their actions.
    ///
    /// Returns the ordered list of firings. Execution here is *symbolic*:
    /// actually invoking actuators is the caller's (the manager's) job, so
    /// the engine never blocks the control loop.
    pub fn cycle(
        &mut self,
        wm: &WorkingMemory,
        params: &ParamTable,
    ) -> Result<Vec<Firing>, EngineError> {
        self.cycles += 1;

        // Evaluate all conditions first so edge bookkeeping sees a
        // consistent snapshot even if a later rule errors.
        let mut truth = Vec::with_capacity(self.rules.len());
        for rule in self.rules.rules() {
            let held = rule
                .when
                .eval(wm, params)
                .map_err(|source| EngineError::Eval {
                    rule: rule.name.clone(),
                    source,
                })?;
            truth.push(held);
        }

        let mut fireable: Vec<&Rule> = Vec::new();
        for (rule, &held) in self.rules.rules().iter().zip(&truth) {
            if held {
                let suppressed = rule.edge_triggered && self.active_edges.contains(&rule.name);
                if !suppressed {
                    fireable.push(rule);
                }
            }
        }

        // Stable sort: salience descending, definition order preserved
        // within equal salience (matches Drools' default conflict
        // resolution closely enough for our single-pass managers).
        fireable.sort_by_key(|r| std::cmp::Reverse(r.salience));

        let firings: Vec<Firing> = fireable
            .iter()
            .map(|rule| Firing {
                rule: rule.name.clone(),
                salience: rule.salience,
                ops: rule.execute(),
            })
            .collect();
        self.firings += firings.len() as u64;

        // Update edge state from this cycle's truth values.
        for (rule, &held) in self.rules.rules().iter().zip(&truth) {
            if rule.edge_triggered {
                if held {
                    self.active_edges.insert(rule.name.clone());
                } else {
                    self.active_edges.remove(&rule.name);
                }
            }
        }

        Ok(firings)
    }

    /// Like [`RuleEngine::cycle`] but flattening the firings into the bare
    /// operation calls, in firing order.
    pub fn cycle_ops(
        &mut self,
        wm: &WorkingMemory,
        params: &ParamTable,
    ) -> Result<Vec<OpCall>, EngineError> {
        Ok(self
            .cycle(wm, params)?
            .into_iter()
            .flat_map(|f| f.ops)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Action, Cmp, Condition};

    fn engine(rules: Vec<Rule>) -> RuleEngine {
        RuleEngine::new(rules.into_iter().collect())
    }

    fn fire(op: &str) -> Vec<Action> {
        vec![Action::Fire(op.into())]
    }

    #[test]
    fn fires_only_true_conditions() {
        let mut e = engine(vec![
            Rule::new(
                "yes",
                Condition::bean_vs_const("x", Cmp::Gt, 1.0),
                fire("A"),
            ),
            Rule::new("no", Condition::bean_vs_const("x", Cmp::Lt, 1.0), fire("B")),
        ]);
        let wm = WorkingMemory::from_beans([("x", 5.0)]);
        let fs = e.cycle(&wm, &ParamTable::new()).unwrap();
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "yes");
        assert_eq!(fs[0].ops, vec![OpCall::new("A")]);
    }

    #[test]
    fn salience_orders_firings() {
        let mut e = engine(vec![
            Rule::new("low", Condition::True, fire("L")).salience(1),
            Rule::new("high", Condition::True, fire("H")).salience(10),
            Rule::new("mid", Condition::True, fire("M")).salience(5),
        ]);
        let names: Vec<String> = e
            .cycle(&WorkingMemory::new(), &ParamTable::new())
            .unwrap()
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(names, ["high", "mid", "low"]);
    }

    #[test]
    fn equal_salience_keeps_definition_order() {
        let mut e = engine(vec![
            Rule::new("first", Condition::True, fire("1")),
            Rule::new("second", Condition::True, fire("2")),
            Rule::new("third", Condition::True, fire("3")),
        ]);
        let names: Vec<String> = e
            .cycle(&WorkingMemory::new(), &ParamTable::new())
            .unwrap()
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(names, ["first", "second", "third"]);
    }

    #[test]
    fn level_triggered_refires_every_cycle() {
        let mut e = engine(vec![Rule::new("r", Condition::True, fire("A"))]);
        let wm = WorkingMemory::new();
        let p = ParamTable::new();
        assert_eq!(e.cycle(&wm, &p).unwrap().len(), 1);
        assert_eq!(e.cycle(&wm, &p).unwrap().len(), 1);
        assert_eq!(e.firings(), 2);
        assert_eq!(e.cycles(), 2);
    }

    #[test]
    fn edge_triggered_fires_once_per_activation() {
        let mut e = engine(vec![
            Rule::new("r", Condition::flag("cond"), fire("A")).edge_triggered()
        ]);
        let p = ParamTable::new();
        let on = WorkingMemory::from_beans([("cond", 1.0)]);
        let off = WorkingMemory::from_beans([("cond", 0.0)]);

        assert_eq!(e.cycle(&on, &p).unwrap().len(), 1, "rising edge fires");
        assert_eq!(e.cycle(&on, &p).unwrap().len(), 0, "held level suppressed");
        assert_eq!(e.cycle(&off, &p).unwrap().len(), 0, "falling edge silent");
        assert_eq!(e.cycle(&on, &p).unwrap().len(), 1, "re-arms after reset");
    }

    #[test]
    fn eval_error_carries_rule_name() {
        let mut e = engine(vec![Rule::new(
            "needs-bean",
            Condition::flag("missing"),
            fire("A"),
        )]);
        let err = e
            .cycle(&WorkingMemory::new(), &ParamTable::new())
            .unwrap_err();
        match err {
            EngineError::Eval { rule, source } => {
                assert_eq!(rule, "needs-bean");
                assert_eq!(source, EvalError::UnknownBean("missing".into()));
            }
        }
    }

    #[test]
    fn cycle_ops_flattens_in_order() {
        let mut e = engine(vec![
            Rule::new(
                "r1",
                Condition::True,
                vec![
                    Action::SetData("d".into()),
                    Action::Fire("A".into()),
                    Action::Fire("B".into()),
                ],
            )
            .salience(1),
            Rule::new("r2", Condition::True, fire("C")),
        ]);
        let ops = e
            .cycle_ops(&WorkingMemory::new(), &ParamTable::new())
            .unwrap();
        assert_eq!(
            ops,
            vec![
                OpCall::with_data("A", "d"),
                OpCall::with_data("B", "d"),
                OpCall::new("C"),
            ]
        );
    }

    #[test]
    fn load_replaces_program_and_clears_edges() {
        let mut e = engine(vec![
            Rule::new("r", Condition::flag("c"), fire("A")).edge_triggered()
        ]);
        let p = ParamTable::new();
        let on = WorkingMemory::from_beans([("c", 1.0)]);
        assert_eq!(e.cycle(&on, &p).unwrap().len(), 1);
        assert_eq!(e.cycle(&on, &p).unwrap().len(), 0);

        // Reloading the same program resets edge suppression.
        let fresh: RuleSet = vec![Rule::new("r", Condition::flag("c"), fire("A")).edge_triggered()]
            .into_iter()
            .collect();
        e.load(fresh);
        assert_eq!(e.cycle(&on, &p).unwrap().len(), 1);
    }

    #[test]
    fn empty_ruleset_cycles_cleanly() {
        let mut e = RuleEngine::new(RuleSet::new());
        assert!(e
            .cycle(&WorkingMemory::new(), &ParamTable::new())
            .unwrap()
            .is_empty());
    }
}
