//! Working memory and parameter tables.
//!
//! The *working memory* holds the beans sampled from the computation this
//! control period (the dynamic part); the *parameter table* holds the
//! thresholds derived from the currently-agreed contract (the
//! `ManagersConstants` of the paper's Fig. 5 — quasi-static: they change
//! only when a new contract arrives from the user or the parent manager).

use std::collections::BTreeMap;
use std::fmt;

/// Named scalar beans sampled once per control cycle.
///
/// Booleans are encoded 0.0 / 1.0; [`WorkingMemory::is_set`] applies the
/// conventional "non-zero is true" reading.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkingMemory {
    beans: BTreeMap<String, f64>,
}

impl WorkingMemory {
    /// Creates an empty working memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a working memory from `(name, value)` pairs, e.g. the output
    /// of `bskel_monitor::SensorSnapshot::to_beans`.
    pub fn from_beans<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        let mut wm = Self::new();
        for (name, value) in pairs {
            wm.insert(name, value);
        }
        wm
    }

    /// Inserts or updates a bean.
    pub fn insert(&mut self, name: impl Into<String>, value: f64) {
        self.beans.insert(name.into(), value);
    }

    /// Inserts a boolean bean (encoded 0/1).
    pub fn insert_flag(&mut self, name: impl Into<String>, value: bool) {
        self.insert(name, if value { 1.0 } else { 0.0 });
    }

    /// Reads a bean.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.beans.get(name).copied()
    }

    /// Reads a bean as a boolean (missing counts as false).
    pub fn is_set(&self, name: &str) -> bool {
        self.get(name).is_some_and(|v| v != 0.0)
    }

    /// Removes a bean, returning its previous value.
    pub fn remove(&mut self, name: &str) -> Option<f64> {
        self.beans.remove(name)
    }

    /// Number of beans held.
    pub fn len(&self) -> usize {
        self.beans.len()
    }

    /// True when no beans are held.
    pub fn is_empty(&self) -> bool {
        self.beans.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.beans.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl fmt::Display for WorkingMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.beans.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl<S: Into<String>> FromIterator<(S, f64)> for WorkingMemory {
    fn from_iter<I: IntoIterator<Item = (S, f64)>>(iter: I) -> Self {
        Self::from_beans(iter)
    }
}

/// Contract-derived rule parameters (`$NAME` references in rule text).
///
/// The paper's Fig. 5 rules compare beans against `ManagersConstants.*`
/// thresholds; in `bskel` those thresholds are recomputed from the active
/// contract whenever a manager receives a new one, so the same rule file
/// serves any SLA.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamTable {
    params: BTreeMap<String, f64>,
}

impl ParamTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a parameter (builder style).
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Self {
        self.set(name, value);
        self
    }

    /// Sets a parameter.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        self.params.insert(name.into(), value);
    }

    /// Reads a parameter.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.params.get(name).copied()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.params.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of parameters held.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are held.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }
}

impl<S: Into<String>> FromIterator<(S, f64)> for ParamTable {
    fn from_iter<I: IntoIterator<Item = (S, f64)>>(iter: I) -> Self {
        let mut t = Self::new();
        for (k, v) in iter {
            t.set(k, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut wm = WorkingMemory::new();
        wm.insert("arrivalRate", 0.4);
        assert_eq!(wm.get("arrivalRate"), Some(0.4));
        assert_eq!(wm.get("departureRate"), None);
        assert_eq!(wm.len(), 1);
    }

    #[test]
    fn flags_and_is_set() {
        let mut wm = WorkingMemory::new();
        wm.insert_flag("endOfStream", true);
        wm.insert_flag("reconfiguring", false);
        assert!(wm.is_set("endOfStream"));
        assert!(!wm.is_set("reconfiguring"));
        assert!(!wm.is_set("absent"));
    }

    #[test]
    fn from_beans_and_iter_sorted() {
        let wm = WorkingMemory::from_beans([("b", 2.0), ("a", 1.0)]);
        let names: Vec<_> = wm.iter().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn insert_overwrites() {
        let mut wm = WorkingMemory::new();
        wm.insert("x", 1.0);
        wm.insert("x", 2.0);
        assert_eq!(wm.get("x"), Some(2.0));
        assert_eq!(wm.len(), 1);
    }

    #[test]
    fn remove_returns_value() {
        let mut wm = WorkingMemory::from_beans([("x", 5.0)]);
        assert_eq!(wm.remove("x"), Some(5.0));
        assert!(wm.is_empty());
        assert_eq!(wm.remove("x"), None);
    }

    #[test]
    fn display_is_stable() {
        let wm = WorkingMemory::from_beans([("b", 2.0), ("a", 1.0)]);
        assert_eq!(wm.to_string(), "{a=1, b=2}");
    }

    #[test]
    fn param_table_builder() {
        let t = ParamTable::new()
            .with("FARM_LOW_PERF_LEVEL", 0.3)
            .with("FARM_HIGH_PERF_LEVEL", 0.7);
        assert_eq!(t.get("FARM_LOW_PERF_LEVEL"), Some(0.3));
        assert_eq!(t.get("MISSING"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn collect_into_tables() {
        let wm: WorkingMemory = [("k", 1.0)].into_iter().collect();
        assert_eq!(wm.get("k"), Some(1.0));
        let pt: ParamTable = [("P", 2.0)].into_iter().collect();
        assert_eq!(pt.get("P"), Some(2.0));
    }
}
