//! # bskel-rules — a precondition–action rule engine for autonomic managers
//!
//! The GCM reference implementation the paper builds on drives each
//! autonomic manager's analyse/plan phases with the JBoss (Drools) rule
//! engine: *precondition–action* rules whose preconditions are first-order
//! formulas over the beans monitored by the ABC, and whose actions invoke
//! ABC actuator services (paper §4.1, Fig. 5). This crate is a from-scratch
//! Rust equivalent scoped to exactly what behavioural skeletons need:
//!
//! * a [`wm::WorkingMemory`] of named scalar beans (booleans encode 0/1),
//!   refreshed from a sensor snapshot at each control-loop iteration;
//! * a condition [`ast`] (comparisons, `&&`/`||`/`!`, parameters `$NAME`
//!   standing for contract-derived thresholds such as
//!   `FARM_LOW_PERF_LEVEL`);
//! * an [`engine::RuleEngine`] implementing the paper's control cycle:
//!   select *fireable* rules, order by salience, execute their actions
//!   (with optional edge-triggering to avoid re-firing level conditions);
//! * a [`parser`] for a Drools-like text syntax, so rule programs ship as
//!   `.rules` files — the Fig. 5 farm rules are included verbatim
//!   (modulo syntax) in [`stdlib`];
//! * [`stdlib`] — the rule libraries used by the experiments: farm manager
//!   rules (Fig. 5), producer rules, and pipeline-manager rules.
//!
//! The engine is deliberately substrate-free: actions are symbolic
//! operation invocations (`fire(ADD_EXECUTOR)`); binding them to actuators
//! is the manager's job (`bskel-core`).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod ast;
pub mod engine;
pub mod mc;
pub mod parser;
pub mod stdlib;
pub mod wm;

pub use analysis::{Analyzer, BeanSchema, BeanType, Diagnostic, EffectTable, LintCode, Severity};
pub use ast::{Action, Cmp, Condition, Expr, OpCall, Rule, RuleSet};
pub use engine::{EngineError, Firing, RuleEngine};
pub use mc::{
    throughput_violation, Counterexample, EnvMove, McError, McReport, ModelChecker, Spec,
    TraceStep, Verdict,
};
pub use parser::{parse_rules, parse_rules_spanned, ParseError, SourceMap};
pub use wm::{ParamTable, WorkingMemory};

/// Canonical operation names fired by the standard rule libraries.
///
/// These mirror the `ManagerOperation` enumeration of the paper's GCM
/// prototype (Fig. 5): the manager maps them onto typed
/// `bskel_core::abc::ManagerOp` values.
pub mod op {
    /// Report a contract violation to the parent manager (or the user).
    pub const RAISE_VIOLATION: &str = "RAISE_VIOLATION";
    /// Add worker(s) to a functional-replication skeleton.
    pub const ADD_EXECUTOR: &str = "ADD_EXECUTOR";
    /// Remove worker(s) from a functional-replication skeleton.
    pub const REMOVE_EXECUTOR: &str = "REMOVE_EXECUTOR";
    /// Redistribute queued tasks evenly across workers.
    pub const BALANCE_LOAD: &str = "BALANCE_LOAD";
    /// Increase a producer stage's output rate (pipeline manager action).
    pub const INC_RATE: &str = "INC_RATE";
    /// Decrease a producer stage's output rate (pipeline manager action).
    pub const DEC_RATE: &str = "DEC_RATE";
}
