//! Standard rule libraries for behavioural-skeleton managers.
//!
//! Three rule programs ship with the crate, as both text assets
//! (`crates/rules/rules/*.rules`) and pre-parsed constructors:
//!
//! * [`farm_rules`] — the task-farm manager program of the paper's Fig. 5
//!   (AM_F): violation raising on input starvation/overpressure, worker
//!   addition/removal on delivered-throughput deviations, queue rebalance;
//! * [`pipeline_rules`] — the pipeline coordinator program (AM_A of
//!   Fig. 4): incRate/decRate reactions to child violations;
//! * [`producer_rules`] — the producer self-tuning program (AM_P).
//!
//! Parameter names are centralised in [`params`], violation data in
//! [`viol`]; [`farm_params`] and [`producer_params`] derive parameter
//! tables from contract bounds so that the same rule text serves any SLA.

use crate::ast::RuleSet;
use crate::parser::parse_rules;
use crate::wm::ParamTable;

/// Text of the farm manager rule program (Fig. 5).
pub const FARM_RULES_TEXT: &str = include_str!("../rules/farm.rules");
/// Text of the pipeline manager rule program.
pub const PIPELINE_RULES_TEXT: &str = include_str!("../rules/pipeline.rules");
/// Text of the producer manager rule program.
pub const PRODUCER_RULES_TEXT: &str = include_str!("../rules/producer.rules");
/// Text of the fault-tolerance rule program.
pub const FAULT_RULES_TEXT: &str = include_str!("../rules/fault.rules");
/// Text of the worker-migration rule program.
pub const MIGRATE_RULES_TEXT: &str = include_str!("../rules/migrate.rules");
/// Text of the distributed-farm resilience rule program.
pub const RESILIENCE_RULES_TEXT: &str = include_str!("../rules/resilience.rules");
/// Text of the multi-tenant arbitration rule program.
pub const TENANCY_RULES_TEXT: &str = include_str!("../rules/tenancy.rules");

/// Parameter names referenced by the standard programs.
pub mod params {
    /// Farm lower throughput threshold (tasks/s) — contract floor.
    pub const FARM_LOW_PERF_LEVEL: &str = "FARM_LOW_PERF_LEVEL";
    /// Farm upper throughput threshold (tasks/s) — contract ceiling.
    pub const FARM_HIGH_PERF_LEVEL: &str = "FARM_HIGH_PERF_LEVEL";
    /// Minimum parallelism degree the manager may shrink to.
    pub const FARM_MIN_NUM_WORKERS: &str = "FARM_MIN_NUM_WORKERS";
    /// Maximum parallelism degree the manager may grow to.
    pub const FARM_MAX_NUM_WORKERS: &str = "FARM_MAX_NUM_WORKERS";
    /// Queue-length variance above which a rebalance is ordered.
    pub const FARM_MAX_UNBALANCE: &str = "FARM_MAX_UNBALANCE";
    /// Producer output-rate floor (tasks/s).
    pub const PROD_RATE_FLOOR: &str = "PROD_RATE_FLOOR";
    /// Producer output-rate ceiling (tasks/s).
    pub const PROD_RATE_CEIL: &str = "PROD_RATE_CEIL";
    /// Fault tolerance: minimum parallelism degree to restore after
    /// failures.
    pub const FT_MIN_WORKERS: &str = "FT_MIN_WORKERS";
    /// Migration: minimum best-free/slowest-live speed ratio worth a move.
    pub const MIGRATE_MIN_GAIN: &str = "MIGRATE_MIN_GAIN";
    /// Tenant delivered-throughput floor (tasks/s) — contract floor.
    pub const TENANT_RATE_FLOOR: &str = "TENANT_RATE_FLOOR";
    /// Tenant delivered-throughput ceiling (tasks/s) — contract ceiling.
    pub const TENANT_RATE_CEIL: &str = "TENANT_RATE_CEIL";
    /// Guaranteed minimum share weight the arbiter may shrink a tenant to.
    pub const TENANT_MIN_SHARE: &str = "TENANT_MIN_SHARE";
    /// Maximum share weight a single tenant may grow to.
    pub const TENANT_MAX_SHARE: &str = "TENANT_MAX_SHARE";
    /// Admission bound: queue depth above which a tenant is over budget.
    pub const TENANT_QUEUE_LIMIT: &str = "TENANT_QUEUE_LIMIT";
}

/// Violation data attached by `setData` in the standard programs.
pub mod viol {
    /// Input pressure below contract floor: the skeleton is starved and
    /// only an upstream actor can help (paper: `notEnough`).
    pub const NOT_ENOUGH_TASKS: &str = "notEnoughTasks";
    /// Input pressure above contract ceiling (paper: warning-type
    /// violation — buffering would absorb it, but reporting enables
    /// memory-use fine-tuning).
    pub const TOO_MUCH_TASKS: &str = "tooMuchTasks";
    /// Datum attached to worker-addition operations.
    pub const FARM_ADD_WORKERS: &str = "farmAddWorkers";
}

/// Beans set by hierarchy-aware managers (in addition to the sensor beans
/// of `bskel_monitor::snapshot::beans`).
pub mod hier_beans {
    /// 1.0 when a child reported `notEnoughTasks` since the last cycle.
    pub const VIOL_NOT_ENOUGH: &str = "violNotEnough";
    /// 1.0 when a child reported `tooMuchTasks` since the last cycle.
    pub const VIOL_TOO_MUCH: &str = "violTooMuch";
    /// 1.0 once any child has observed the end of the input stream.
    pub const END_STREAM: &str = "endStream";
}

/// The farm manager rule program (paper Fig. 5).
///
/// # Panics
/// Never — the embedded text is covered by tests.
pub fn farm_rules() -> RuleSet {
    parse_rules(FARM_RULES_TEXT).expect("embedded farm.rules must parse")
}

/// The pipeline coordinator rule program.
pub fn pipeline_rules() -> RuleSet {
    parse_rules(PIPELINE_RULES_TEXT).expect("embedded pipeline.rules must parse")
}

/// The producer self-tuning rule program.
pub fn producer_rules() -> RuleSet {
    parse_rules(PRODUCER_RULES_TEXT).expect("embedded producer.rules must parse")
}

/// The fault-tolerance rule program (worker replacement after failures).
pub fn fault_rules() -> RuleSet {
    parse_rules(FAULT_RULES_TEXT).expect("embedded fault.rules must parse")
}

/// Fig. 5 farm rules + fault-tolerance rules merged — the paper's *SM*
/// design point: one manager handling two concerns (§3.2).
pub fn farm_rules_with_ft() -> RuleSet {
    let mut set = farm_rules();
    set.extend(fault_rules());
    set
}

/// Builds the fault-tolerance parameter table.
pub fn fault_params(min_workers: u32) -> ParamTable {
    ParamTable::new().with(params::FT_MIN_WORKERS, f64::from(min_workers))
}

/// The distributed-farm resilience rule program (reacts to the pool's
/// circuit-breaker and speculative-retry beans).
pub fn resilience_rules() -> RuleSet {
    parse_rules(RESILIENCE_RULES_TEXT).expect("embedded resilience.rules must parse")
}

/// Fault-tolerance + resilience rules merged — the self-healing program
/// for the distributed pool (replace lost slots, route growth around
/// quarantined endpoints, smooth queues after retries).
pub fn fault_rules_with_resilience() -> RuleSet {
    let mut set = fault_rules();
    set.extend(resilience_rules());
    set
}

/// Builds the resilience parameter table.
pub fn resilience_params(max_workers: u32) -> ParamTable {
    ParamTable::new().with(params::FARM_MAX_NUM_WORKERS, f64::from(max_workers))
}

/// The worker-migration rule program.
pub fn migrate_rules() -> RuleSet {
    parse_rules(MIGRATE_RULES_TEXT).expect("embedded migrate.rules must parse")
}

/// Operation name fired by the migration program (handled by substrates
/// that support live migration, e.g. the simulator's farm).
pub const MIGRATE_SLOWEST_OP: &str = "MIGRATE_SLOWEST";

/// Fault-injection operation name: kill one worker abruptly (no graceful
/// drain). Handled by substrates that support it — the threaded farm's
/// `kill_workers` actuator — and used by tests, chaos rules and bench
/// harnesses to exercise the FT rule program.
pub const KILL_WORKER_OP: &str = "KILL_WORKER";

/// Share actuation: raise the firing tenant's DRR weight (bounded by
/// `TENANT_MAX_SHARE`). Handled by the tenancy front-end's per-tenant ABC.
pub const GROW_SHARE_OP: &str = "GROW_SHARE";

/// Share actuation: lower the firing tenant's DRR weight (bounded by
/// `TENANT_MIN_SHARE`).
pub const SHRINK_SHARE_OP: &str = "SHRINK_SHARE";

/// Admission actuation: drop queued tasks from the firing tenant (per its
/// shed policy) until its queue is back inside the admission bound.
pub const SHED_LOAD_OP: &str = "SHED_LOAD";

/// Advisory actuation fired by budget-aware controllers when the retry
/// budget is exhausted: substrates that gate re-dispatch locally treat it
/// as a no-op (the plant-side token bucket is authoritative); it exists
/// so the transition is journaled and replayable.
pub const PAUSE_REDISPATCH_OP: &str = "PAUSE_REDISPATCH";

/// Advisory actuation fired when the retry budget refills past one token
/// after a [`PAUSE_REDISPATCH_OP`]; paired transitions bracket the window
/// in which speculation/hedging was suppressed.
pub const RESUME_REDISPATCH_OP: &str = "RESUME_REDISPATCH";

/// The multi-tenant arbitration rule program (share grow/shrink, load
/// shedding, pool growth on aggregate pressure, escalation at the share
/// ceiling).
pub fn tenancy_rules() -> RuleSet {
    parse_rules(TENANCY_RULES_TEXT).expect("embedded tenancy.rules must parse")
}

/// Builds the tenancy parameter table from a tenant's contract bounds.
///
/// * `floor`/`ceil` — the delivered-throughput stripe (tasks/s); for a
///   pure `minThroughput` contract pass `ceil = f64::INFINITY`.
/// * `min_share`/`max_share` — bounds on the tenant's DRR share weight.
/// * `queue_limit` — admission bound on the tenant's queue depth.
/// * `max_workers` — shared-pool parallelism ceiling (arbiter growth
///   stops here; referenced by the pool-pressure rule).
pub fn tenancy_params(
    floor: f64,
    ceil: f64,
    min_share: f64,
    max_share: f64,
    queue_limit: u32,
    max_workers: u32,
) -> ParamTable {
    ParamTable::new()
        .with(params::TENANT_RATE_FLOOR, floor)
        .with(params::TENANT_RATE_CEIL, ceil)
        .with(params::TENANT_MIN_SHARE, min_share)
        .with(params::TENANT_MAX_SHARE, max_share)
        .with(params::TENANT_QUEUE_LIMIT, f64::from(queue_limit))
        .with(params::FARM_MAX_NUM_WORKERS, f64::from(max_workers))
}

/// Fig. 5 farm rules + migration rules.
pub fn farm_rules_with_migration() -> RuleSet {
    let mut set = farm_rules();
    set.extend(migrate_rules());
    set
}

/// Builds the migration parameter table.
pub fn migrate_params(min_gain: f64) -> ParamTable {
    ParamTable::new().with(params::MIGRATE_MIN_GAIN, min_gain)
}

/// Builds the farm parameter table from contract bounds.
///
/// * `low`/`high` — the throughput stripe (tasks/s). For a pure
///   `minThroughput` contract pass `high = f64::INFINITY`.
/// * `min_workers`/`max_workers` — parallelism-degree bounds.
/// * `max_unbalance` — queue-variance threshold for rebalancing.
pub fn farm_params(
    low: f64,
    high: f64,
    min_workers: u32,
    max_workers: u32,
    max_unbalance: f64,
) -> ParamTable {
    ParamTable::new()
        .with(params::FARM_LOW_PERF_LEVEL, low)
        .with(params::FARM_HIGH_PERF_LEVEL, high)
        .with(params::FARM_MIN_NUM_WORKERS, f64::from(min_workers))
        .with(params::FARM_MAX_NUM_WORKERS, f64::from(max_workers))
        .with(params::FARM_MAX_UNBALANCE, max_unbalance)
}

/// Builds the producer parameter table from an output-rate range contract.
pub fn producer_params(floor: f64, ceil: f64) -> ParamTable {
    ParamTable::new()
        .with(params::PROD_RATE_FLOOR, floor)
        .with(params::PROD_RATE_CEIL, ceil)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RuleEngine;
    use crate::op;
    use crate::wm::WorkingMemory;

    fn farm_wm(arrival: f64, departure: f64, workers: f64, qvar: f64) -> WorkingMemory {
        WorkingMemory::from_beans([
            ("arrivalRate", arrival),
            ("departureRate", departure),
            ("numWorkers", workers),
            ("queueVariance", qvar),
        ])
    }

    #[test]
    fn fig5_program_has_the_five_rules() {
        let set = farm_rules();
        let names: Vec<&str> = set.rules().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "CheckInterArrivalRateLow",
                "CheckInterArrivalRateHigh",
                "CheckRateLow",
                "CheckRateHigh",
                "CheckLoadBalance",
            ]
        );
    }

    #[test]
    fn fig5_starvation_raises_not_enough() {
        // Input pressure below the floor: the farm can't fix this locally;
        // it must report to its parent (paper Fig. 4, first phase).
        let mut e = RuleEngine::new(farm_rules());
        let p = farm_params(0.3, 0.7, 1, 16, 4.0);
        let ops = e.cycle_ops(&farm_wm(0.1, 0.1, 2.0, 0.0), &p).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].operation, op::RAISE_VIOLATION);
        assert_eq!(ops[0].data.as_deref(), Some(viol::NOT_ENOUGH_TASKS));
    }

    #[test]
    fn fig5_low_throughput_with_pressure_adds_workers() {
        // Enough input, not enough output: grow the farm (Fig. 4, second
        // phase — the addWorker events).
        let mut e = RuleEngine::new(farm_rules());
        let p = farm_params(0.3, 0.7, 1, 16, 4.0);
        let ops = e.cycle_ops(&farm_wm(0.5, 0.2, 2.0, 0.0), &p).unwrap();
        let names: Vec<&str> = ops.iter().map(|o| o.operation.as_str()).collect();
        assert_eq!(names, [op::ADD_EXECUTOR, op::BALANCE_LOAD]);
        assert_eq!(ops[0].data.as_deref(), Some(viol::FARM_ADD_WORKERS));
    }

    #[test]
    fn fig5_overpressure_raises_too_much() {
        let mut e = RuleEngine::new(farm_rules());
        let p = farm_params(0.3, 0.7, 1, 16, 4.0);
        let ops = e.cycle_ops(&farm_wm(0.9, 0.5, 4.0, 0.0), &p).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].operation, op::RAISE_VIOLATION);
        assert_eq!(ops[0].data.as_deref(), Some(viol::TOO_MUCH_TASKS));
    }

    #[test]
    fn fig5_high_throughput_sheds_workers() {
        let mut e = RuleEngine::new(farm_rules());
        let p = farm_params(0.3, 0.7, 1, 16, 4.0);
        let ops = e.cycle_ops(&farm_wm(0.5, 0.9, 4.0, 0.0), &p).unwrap();
        let names: Vec<&str> = ops.iter().map(|o| o.operation.as_str()).collect();
        assert_eq!(names, [op::REMOVE_EXECUTOR, op::BALANCE_LOAD]);
    }

    #[test]
    fn fig5_unbalance_triggers_rebalance() {
        // Within the stripe but queues skewed (Fig. 4, last phase — the
        // rebalance event at 38:10).
        let mut e = RuleEngine::new(farm_rules());
        let p = farm_params(0.3, 0.7, 1, 16, 4.0);
        let ops = e.cycle_ops(&farm_wm(0.5, 0.5, 4.0, 9.0), &p).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].operation, op::BALANCE_LOAD);
    }

    #[test]
    fn fig5_in_contract_is_quiet() {
        let mut e = RuleEngine::new(farm_rules());
        let p = farm_params(0.3, 0.7, 1, 16, 4.0);
        let ops = e.cycle_ops(&farm_wm(0.5, 0.5, 4.0, 0.5), &p).unwrap();
        assert!(ops.is_empty(), "in-contract farm fired {ops:?}");
    }

    #[test]
    fn fig5_respects_max_workers() {
        let mut e = RuleEngine::new(farm_rules());
        let p = farm_params(0.3, 0.7, 1, 4, 4.0);
        // Under-delivering but already above the max parallelism degree:
        // CheckRateLow must not fire.
        let ops = e.cycle_ops(&farm_wm(0.5, 0.2, 5.0, 0.0), &p).unwrap();
        assert!(ops.iter().all(|o| o.operation != op::ADD_EXECUTOR));
    }

    #[test]
    fn fig5_respects_min_workers() {
        let mut e = RuleEngine::new(farm_rules());
        let p = farm_params(0.3, 0.7, 2, 16, 4.0);
        let ops = e.cycle_ops(&farm_wm(0.5, 0.9, 2.0, 0.0), &p).unwrap();
        assert!(ops.iter().all(|o| o.operation != op::REMOVE_EXECUTOR));
    }

    #[test]
    fn min_throughput_contract_never_sheds() {
        // minThroughput(0.6) => ceiling is +inf: CheckRateHigh and
        // CheckInterArrivalRateHigh can never fire (Fig. 3 scenario).
        let mut e = RuleEngine::new(farm_rules());
        let p = farm_params(0.6, f64::INFINITY, 1, 16, 4.0);
        let ops = e.cycle_ops(&farm_wm(5.0, 5.0, 8.0, 0.0), &p).unwrap();
        assert!(ops.is_empty(), "{ops:?}");
    }

    #[test]
    fn pipeline_rules_react_to_child_violations() {
        let mut e = RuleEngine::new(pipeline_rules());
        let p = ParamTable::new();
        let wm = WorkingMemory::from_beans([
            (hier_beans::VIOL_NOT_ENOUGH, 1.0),
            (hier_beans::VIOL_TOO_MUCH, 0.0),
            (hier_beans::END_STREAM, 0.0),
        ]);
        let ops = e.cycle_ops(&wm, &p).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].operation, op::INC_RATE);
    }

    #[test]
    fn pipeline_ignores_not_enough_after_end_stream() {
        // Paper Fig. 4, last phase: AM_A stops reacting to notEnough once
        // endStream has been observed.
        let mut e = RuleEngine::new(pipeline_rules());
        let wm = WorkingMemory::from_beans([
            (hier_beans::VIOL_NOT_ENOUGH, 1.0),
            (hier_beans::VIOL_TOO_MUCH, 0.0),
            (hier_beans::END_STREAM, 1.0),
        ]);
        let ops = e.cycle_ops(&wm, &ParamTable::new()).unwrap();
        assert!(ops.is_empty());
    }

    #[test]
    fn pipeline_dec_rate_on_too_much() {
        let mut e = RuleEngine::new(pipeline_rules());
        let wm = WorkingMemory::from_beans([
            (hier_beans::VIOL_NOT_ENOUGH, 0.0),
            (hier_beans::VIOL_TOO_MUCH, 1.0),
            (hier_beans::END_STREAM, 1.0),
        ]);
        let ops = e.cycle_ops(&wm, &ParamTable::new()).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].operation, op::DEC_RATE);
    }

    #[test]
    fn producer_rules_track_contract_range() {
        let mut e = RuleEngine::new(producer_rules());
        let p = producer_params(0.4, 0.8);
        let slow = WorkingMemory::from_beans([("departureRate", 0.2), ("endOfStream", 0.0)]);
        let ops = e.cycle_ops(&slow, &p).unwrap();
        assert_eq!(ops[0].operation, op::INC_RATE);

        let fast = WorkingMemory::from_beans([("departureRate", 1.0), ("endOfStream", 0.0)]);
        let ops = e.cycle_ops(&fast, &p).unwrap();
        assert_eq!(ops[0].operation, op::DEC_RATE);

        let done = WorkingMemory::from_beans([("departureRate", 0.0), ("endOfStream", 1.0)]);
        assert!(e.cycle_ops(&done, &p).unwrap().is_empty());
    }

    #[test]
    fn standard_programs_declare_their_params() {
        assert_eq!(
            farm_rules().required_params(),
            [
                params::FARM_HIGH_PERF_LEVEL,
                params::FARM_LOW_PERF_LEVEL,
                params::FARM_MAX_NUM_WORKERS,
                params::FARM_MAX_UNBALANCE,
                params::FARM_MIN_NUM_WORKERS,
            ]
        );
        assert_eq!(
            producer_rules().required_params(),
            [params::PROD_RATE_CEIL, params::PROD_RATE_FLOOR]
        );
        assert!(pipeline_rules().required_params().is_empty());
    }

    #[test]
    fn farm_params_builder_covers_required() {
        let p = farm_params(0.3, 0.7, 1, 16, 4.0);
        for name in farm_rules().required_params() {
            assert!(p.get(&name).is_some(), "missing param {name}");
        }
    }

    #[test]
    fn fault_rules_replace_lost_workers() {
        let mut e = RuleEngine::new(fault_rules());
        let p = fault_params(3);
        let degraded = WorkingMemory::from_beans([
            ("numWorkers", 1.0),
            ("workersLost", 2.0),
            ("queueVariance", 0.0),
        ]);
        let ops = e.cycle_ops(&degraded, &p).unwrap();
        assert_eq!(ops[0].operation, op::ADD_EXECUTOR);
        assert_eq!(ops[0].data.as_deref(), Some("replaceFailed"));
        let healthy = WorkingMemory::from_beans([
            ("numWorkers", 3.0),
            ("workersLost", 0.0),
            ("queueVariance", 0.0),
        ]);
        assert!(e.cycle_ops(&healthy, &p).unwrap().is_empty());
    }

    #[test]
    fn fault_rules_rebalance_after_loss() {
        // Pool already back at the floor but the survivors inherited the
        // dead worker's backlog unevenly: only the loss-triggered
        // rebalance fires.
        let mut e = RuleEngine::new(fault_rules());
        let p = fault_params(3);
        let skewed = WorkingMemory::from_beans([
            ("numWorkers", 3.0),
            ("workersLost", 1.0),
            ("queueVariance", 6.0),
        ]);
        let ops = e.cycle_ops(&skewed, &p).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].operation, op::BALANCE_LOAD);
        // No losses: skew alone is the performance program's business.
        let skewed_no_loss = WorkingMemory::from_beans([
            ("numWorkers", 3.0),
            ("workersLost", 0.0),
            ("queueVariance", 6.0),
        ]);
        assert!(e.cycle_ops(&skewed_no_loss, &p).unwrap().is_empty());
    }

    #[test]
    fn resilience_rules_recruit_around_open_circuit() {
        let mut e = RuleEngine::new(resilience_rules());
        let p = resilience_params(8);
        let quarantined = WorkingMemory::from_beans([
            ("circuitOpenCount", 1.0),
            ("numWorkers", 3.0),
            ("tasksRetried", 0.0),
            ("queueVariance", 0.0),
        ]);
        let ops = e.cycle_ops(&quarantined, &p).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].operation, op::ADD_EXECUTOR);
        assert_eq!(ops[0].data.as_deref(), Some("circuitOpen"));
        // Circuit closed again: nothing to do.
        let healthy = WorkingMemory::from_beans([
            ("circuitOpenCount", 0.0),
            ("numWorkers", 3.0),
            ("tasksRetried", 0.0),
            ("queueVariance", 0.0),
        ]);
        assert!(e.cycle_ops(&healthy, &p).unwrap().is_empty());
        // Already at the ceiling: quarantine alone must not overgrow.
        let full = WorkingMemory::from_beans([
            ("circuitOpenCount", 1.0),
            ("numWorkers", 8.0),
            ("tasksRetried", 0.0),
            ("queueVariance", 0.0),
        ]);
        assert!(e.cycle_ops(&full, &p).unwrap().is_empty());
    }

    #[test]
    fn resilience_rules_rebalance_after_retries() {
        let mut e = RuleEngine::new(resilience_rules());
        let p = resilience_params(8);
        let skewed = WorkingMemory::from_beans([
            ("circuitOpenCount", 0.0),
            ("numWorkers", 4.0),
            ("tasksRetried", 2.0),
            ("queueVariance", 5.0),
        ]);
        let ops = e.cycle_ops(&skewed, &p).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].operation, op::BALANCE_LOAD);
        // Retries with even queues: leave the pool alone.
        let even = WorkingMemory::from_beans([
            ("circuitOpenCount", 0.0),
            ("numWorkers", 4.0),
            ("tasksRetried", 2.0),
            ("queueVariance", 0.5),
        ]);
        assert!(e.cycle_ops(&even, &p).unwrap().is_empty());
    }

    #[test]
    fn merged_sm_program_handles_both_concerns() {
        // One manager, two concerns (the SM design point): FT replacement
        // outranks (salience 50) the performance growth rule when both
        // would fire, and both concern's rules coexist without clashes.
        let mut e = RuleEngine::new(farm_rules_with_ft());
        let mut p = farm_params(0.3, 0.7, 1, 16, 4.0);
        for (k, v) in fault_params(3).iter() {
            p.set(k, v);
        }
        // Degraded AND under-delivering with pressure: both fire, FT first.
        let wm = WorkingMemory::from_beans([
            ("arrivalRate", 0.5),
            ("departureRate", 0.1),
            ("numWorkers", 2.0),
            ("queueVariance", 0.0),
            ("workersLost", 1.0),
        ]);
        let firings = e.cycle(&wm, &p).unwrap();
        assert_eq!(firings[0].rule, "ReplaceLostWorkers");
        assert!(firings.iter().any(|f| f.rule == "CheckRateLow"));
    }
}
