//! Rule abstract syntax: expressions, conditions, actions, rules.
//!
//! Preconditions are first-order formulas over beans and contract
//! parameters (paper §4.1); actions are symbolic actuator invocations. Both
//! can be built programmatically (builder methods here) or parsed from text
//! ([`crate::parser`]).

use crate::wm::{ParamTable, WorkingMemory};
use std::fmt;

/// A scalar expression: a bean reference, a `$PARAM` reference or a literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A working-memory bean, e.g. `arrivalRate`.
    Bean(String),
    /// A contract parameter, e.g. `$FARM_LOW_PERF_LEVEL`.
    Param(String),
    /// A numeric literal.
    Const(f64),
}

impl Expr {
    /// Evaluates against a working memory and parameter table.
    pub fn eval(&self, wm: &WorkingMemory, params: &ParamTable) -> Result<f64, EvalError> {
        match self {
            Expr::Bean(name) => wm
                .get(name)
                .ok_or_else(|| EvalError::UnknownBean(name.clone())),
            Expr::Param(name) => params
                .get(name)
                .ok_or_else(|| EvalError::UnknownParam(name.clone())),
            Expr::Const(v) => Ok(*v),
        }
    }

    /// Names of beans this expression reads.
    fn collect_beans<'a>(&'a self, out: &mut Vec<&'a str>) {
        if let Expr::Bean(name) = self {
            out.push(name);
        }
    }

    /// Names of parameters this expression reads.
    fn collect_params<'a>(&'a self, out: &mut Vec<&'a str>) {
        if let Expr::Param(name) = self {
            out.push(name);
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Bean(n) => write!(f, "{n}"),
            Expr::Param(n) => write!(f, "${n}"),
            Expr::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl Cmp {
    /// Applies the comparison. Equality uses exact f64 comparison: beans are
    /// either exact flags (0/1, counts) or rates compared with `<`/`>`.
    pub fn apply(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A rule precondition.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Always true (unconditional rules, e.g. fall-back violation rules
    /// guarded only by salience).
    True,
    /// Always false (used to disable a rule without removing it).
    False,
    /// `lhs op rhs`.
    Cmp {
        /// Left operand.
        lhs: Expr,
        /// Operator.
        op: Cmp,
        /// Right operand.
        rhs: Expr,
    },
    /// Conjunction.
    And(Vec<Condition>),
    /// Disjunction.
    Or(Vec<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// Builds `lhs op rhs`.
    pub fn cmp(lhs: Expr, op: Cmp, rhs: Expr) -> Self {
        Condition::Cmp { lhs, op, rhs }
    }

    /// Convenience: `bean op $param`.
    pub fn bean_vs_param(bean: &str, op: Cmp, param: &str) -> Self {
        Self::cmp(Expr::Bean(bean.into()), op, Expr::Param(param.into()))
    }

    /// Convenience: `bean op constant`.
    pub fn bean_vs_const(bean: &str, op: Cmp, c: f64) -> Self {
        Self::cmp(Expr::Bean(bean.into()), op, Expr::Const(c))
    }

    /// Convenience: boolean bean is set (`bean != 0`).
    pub fn flag(bean: &str) -> Self {
        Self::bean_vs_const(bean, Cmp::Ne, 0.0)
    }

    /// Convenience: boolean bean is clear (`bean == 0`).
    pub fn not_flag(bean: &str) -> Self {
        Self::bean_vs_const(bean, Cmp::Eq, 0.0)
    }

    /// Evaluates the condition. Unknown beans/params are *errors*, not
    /// silently false: a rule written against a missing sensor is a
    /// programming error the manager must surface, matching the fail-fast
    /// behaviour of the GCM prototype.
    pub fn eval(&self, wm: &WorkingMemory, params: &ParamTable) -> Result<bool, EvalError> {
        match self {
            Condition::True => Ok(true),
            Condition::False => Ok(false),
            Condition::Cmp { lhs, op, rhs } => {
                Ok(op.apply(lhs.eval(wm, params)?, rhs.eval(wm, params)?))
            }
            Condition::And(cs) => {
                for c in cs {
                    if !c.eval(wm, params)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Condition::Or(cs) => {
                for c in cs {
                    if c.eval(wm, params)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Condition::Not(c) => Ok(!c.eval(wm, params)?),
        }
    }

    /// All bean names read by this condition (with duplicates).
    pub fn beans(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |c| {
            if let Condition::Cmp { lhs, rhs, .. } = c {
                lhs.collect_beans(&mut out);
                rhs.collect_beans(&mut out);
            }
        });
        out
    }

    /// All parameter names read by this condition (with duplicates).
    pub fn params(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |c| {
            if let Condition::Cmp { lhs, rhs, .. } = c {
                lhs.collect_params(&mut out);
                rhs.collect_params(&mut out);
            }
        });
        out
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Condition)) {
        f(self);
        match self {
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.walk(f);
                }
            }
            Condition::Not(c) => c.walk(f),
            _ => {}
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => write!(f, "true"),
            Condition::False => write!(f, "false"),
            Condition::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Condition::And(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| format!("({c})")).collect();
                write!(f, "{}", parts.join(" && "))
            }
            Condition::Or(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| format!("({c})")).collect();
                write!(f, "{}", parts.join(" || "))
            }
            Condition::Not(c) => write!(f, "!({c})"),
        }
    }
}

/// Evaluation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A condition referenced a bean absent from the working memory.
    UnknownBean(String),
    /// A condition referenced a `$PARAM` absent from the parameter table.
    UnknownParam(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownBean(n) => write!(f, "unknown bean `{n}` in rule condition"),
            EvalError::UnknownParam(n) => write!(f, "unknown parameter `${n}` in rule condition"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A rule action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Attach a datum to the next fired operation(s) — the paper's
    /// `setData(ManagersConstants.notEnoughTasks_VIOL)`.
    SetData(String),
    /// Invoke a (symbolic) actuator operation — the paper's
    /// `fireOperation(ManagerOperation.ADD_EXECUTOR)`.
    Fire(String),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::SetData(d) => write!(f, "setData(\"{d}\")"),
            Action::Fire(o) => write!(f, "fire({o})"),
        }
    }
}

/// A resolved operation invocation produced by executing a rule's actions:
/// the operation name plus the datum attached by the most recent `setData`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpCall {
    /// Symbolic operation name (see [`crate::op`]).
    pub operation: String,
    /// Datum attached via `setData`, if any (e.g. the violation kind).
    pub data: Option<String>,
}

impl OpCall {
    /// Builds an operation call without a datum.
    pub fn new(operation: impl Into<String>) -> Self {
        Self {
            operation: operation.into(),
            data: None,
        }
    }

    /// Builds an operation call with a datum.
    pub fn with_data(operation: impl Into<String>, data: impl Into<String>) -> Self {
        Self {
            operation: operation.into(),
            data: Some(data.into()),
        }
    }
}

/// A precondition–action rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Unique rule name.
    pub name: String,
    /// Firing priority: higher salience fires first (JBoss semantics).
    pub salience: i32,
    /// If true the rule is *edge-triggered*: it fires when its condition
    /// becomes true and will not fire again until the condition has been
    /// observed false. Level-triggered (false) is the default, matching the
    /// paper's managers which e.g. keep adding workers every cycle while
    /// the contract is violated.
    pub edge_triggered: bool,
    /// Precondition.
    pub when: Condition,
    /// Action list, executed in order.
    pub then: Vec<Action>,
}

impl Rule {
    /// Creates a level-triggered rule with salience 0.
    pub fn new(name: impl Into<String>, when: Condition, then: Vec<Action>) -> Self {
        Self {
            name: name.into(),
            salience: 0,
            edge_triggered: false,
            when,
            then,
        }
    }

    /// Sets the salience (builder style).
    pub fn salience(mut self, salience: i32) -> Self {
        self.salience = salience;
        self
    }

    /// Marks the rule edge-triggered (builder style).
    pub fn edge_triggered(mut self) -> Self {
        self.edge_triggered = true;
        self
    }

    /// Executes the action list, folding `setData` into subsequent `fire`s.
    ///
    /// The datum set by `setData` sticks for *all* following fires in the
    /// same rule (matching the bean-field semantics of the paper's
    /// prototype, where `setData` writes a field later read by the
    /// operation handler).
    pub fn execute(&self) -> Vec<OpCall> {
        let mut data: Option<String> = None;
        let mut out = Vec::new();
        for action in &self.then {
            match action {
                Action::SetData(d) => data = Some(d.clone()),
                Action::Fire(operation) => out.push(OpCall {
                    operation: operation.clone(),
                    data: data.clone(),
                }),
            }
        }
        out
    }
}

/// An ordered collection of rules (a rule program).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule.
    ///
    /// # Panics
    /// Panics if a rule with the same name is already present — duplicate
    /// names would make firing logs and refractory tracking ambiguous.
    pub fn push(&mut self, rule: Rule) {
        assert!(
            !self.rules.iter().any(|r| r.name == rule.name),
            "duplicate rule name `{}`",
            rule.name
        );
        self.rules.push(rule);
    }

    /// Adds a rule (builder style).
    pub fn with(mut self, rule: Rule) -> Self {
        self.push(rule);
        self
    }

    /// The rules, in definition order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Looks a rule up by name.
    pub fn get(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Merges another rule set into this one.
    ///
    /// # Panics
    /// Panics on duplicate rule names, as [`RuleSet::push`] does.
    pub fn extend(&mut self, other: RuleSet) {
        for rule in other.rules {
            self.push(rule);
        }
    }

    /// Every parameter name referenced by any rule (sorted, deduplicated) —
    /// used by managers to validate that a contract provides all thresholds
    /// its rule program needs before activating it.
    pub fn required_params(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .rules
            .iter()
            .flat_map(|r| r.when.params().into_iter().map(str::to_owned))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Every bean name referenced by any rule (sorted, deduplicated).
    pub fn required_beans(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .rules
            .iter()
            .flat_map(|r| r.when.beans().into_iter().map(str::to_owned))
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

impl FromIterator<Rule> for RuleSet {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        let mut set = Self::new();
        for rule in iter {
            set.push(rule);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wm() -> WorkingMemory {
        WorkingMemory::from_beans([("x", 2.0), ("y", 3.0), ("flag", 1.0), ("off", 0.0)])
    }

    fn params() -> ParamTable {
        ParamTable::new().with("LIMIT", 2.5)
    }

    #[test]
    fn expr_eval_all_variants() {
        let wm = wm();
        let p = params();
        assert_eq!(Expr::Bean("x".into()).eval(&wm, &p), Ok(2.0));
        assert_eq!(Expr::Param("LIMIT".into()).eval(&wm, &p), Ok(2.5));
        assert_eq!(Expr::Const(7.0).eval(&wm, &p), Ok(7.0));
        assert_eq!(
            Expr::Bean("zzz".into()).eval(&wm, &p),
            Err(EvalError::UnknownBean("zzz".into()))
        );
        assert_eq!(
            Expr::Param("ZZZ".into()).eval(&wm, &p),
            Err(EvalError::UnknownParam("ZZZ".into()))
        );
    }

    #[test]
    fn cmp_operators() {
        assert!(Cmp::Lt.apply(1.0, 2.0));
        assert!(!Cmp::Lt.apply(2.0, 2.0));
        assert!(Cmp::Le.apply(2.0, 2.0));
        assert!(Cmp::Gt.apply(3.0, 2.0));
        assert!(Cmp::Ge.apply(2.0, 2.0));
        assert!(Cmp::Eq.apply(2.0, 2.0));
        assert!(Cmp::Ne.apply(2.0, 3.0));
    }

    #[test]
    fn condition_bean_vs_param() {
        let c = Condition::bean_vs_param("x", Cmp::Lt, "LIMIT");
        assert_eq!(c.eval(&wm(), &params()), Ok(true)); // 2.0 < 2.5
        let c = Condition::bean_vs_param("y", Cmp::Lt, "LIMIT");
        assert_eq!(c.eval(&wm(), &params()), Ok(false)); // 3.0 < 2.5
    }

    #[test]
    fn condition_boolean_combinators() {
        let t = Condition::flag("flag");
        let f = Condition::flag("off");
        assert_eq!(t.eval(&wm(), &params()), Ok(true));
        assert_eq!(f.eval(&wm(), &params()), Ok(false));
        assert_eq!(
            Condition::And(vec![t.clone(), f.clone()]).eval(&wm(), &params()),
            Ok(false)
        );
        assert_eq!(
            Condition::Or(vec![t.clone(), f.clone()]).eval(&wm(), &params()),
            Ok(true)
        );
        assert_eq!(Condition::Not(Box::new(f)).eval(&wm(), &params()), Ok(true));
        assert_eq!(Condition::True.eval(&wm(), &params()), Ok(true));
        assert_eq!(Condition::False.eval(&wm(), &params()), Ok(false));
    }

    #[test]
    fn and_shortcircuits_before_error() {
        // The first conjunct is false, so the unknown bean in the second is
        // never evaluated — mirroring Drools' left-to-right evaluation.
        let c = Condition::And(vec![Condition::False, Condition::flag("no-such-bean")]);
        assert_eq!(c.eval(&wm(), &params()), Ok(false));
    }

    #[test]
    fn unknown_bean_is_error_not_false() {
        let c = Condition::flag("no-such-bean");
        assert!(matches!(
            c.eval(&wm(), &params()),
            Err(EvalError::UnknownBean(_))
        ));
    }

    #[test]
    fn beans_and_params_collection() {
        let c = Condition::And(vec![
            Condition::bean_vs_param("x", Cmp::Lt, "LIMIT"),
            Condition::Not(Box::new(Condition::bean_vs_const("y", Cmp::Gt, 1.0))),
        ]);
        let mut beans = c.beans();
        beans.sort_unstable();
        assert_eq!(beans, ["x", "y"]);
        assert_eq!(c.params(), ["LIMIT"]);
    }

    #[test]
    fn rule_execute_folds_set_data() {
        let rule = Rule::new(
            "r",
            Condition::True,
            vec![
                Action::SetData("notEnoughTasks".into()),
                Action::Fire("RAISE_VIOLATION".into()),
                Action::Fire("BALANCE_LOAD".into()),
            ],
        );
        let calls = rule.execute();
        assert_eq!(calls.len(), 2);
        assert_eq!(
            calls[0],
            OpCall::with_data("RAISE_VIOLATION", "notEnoughTasks")
        );
        // setData sticks for subsequent fires within the same rule.
        assert_eq!(
            calls[1],
            OpCall::with_data("BALANCE_LOAD", "notEnoughTasks")
        );
    }

    #[test]
    fn rule_execute_without_data() {
        let rule = Rule::new("r", Condition::True, vec![Action::Fire("X".into())]);
        assert_eq!(rule.execute(), vec![OpCall::new("X")]);
    }

    #[test]
    fn ruleset_push_and_lookup() {
        let set = RuleSet::new()
            .with(Rule::new("a", Condition::True, vec![]))
            .with(Rule::new("b", Condition::False, vec![]).salience(5));
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("b").unwrap().salience, 5);
        assert!(set.get("c").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate rule name")]
    fn ruleset_rejects_duplicates() {
        RuleSet::new()
            .with(Rule::new("a", Condition::True, vec![]))
            .with(Rule::new("a", Condition::True, vec![]));
    }

    #[test]
    fn required_params_and_beans() {
        let set = RuleSet::new()
            .with(Rule::new(
                "a",
                Condition::bean_vs_param("arrivalRate", Cmp::Lt, "LOW"),
                vec![],
            ))
            .with(Rule::new(
                "b",
                Condition::And(vec![
                    Condition::bean_vs_param("arrivalRate", Cmp::Gt, "HIGH"),
                    Condition::bean_vs_param("numWorkers", Cmp::Le, "MAX"),
                ]),
                vec![],
            ));
        assert_eq!(set.required_params(), ["HIGH", "LOW", "MAX"]);
        assert_eq!(set.required_beans(), ["arrivalRate", "numWorkers"]);
    }

    #[test]
    fn display_roundtrip_smoke() {
        let c = Condition::And(vec![
            Condition::bean_vs_param("x", Cmp::Lt, "LIMIT"),
            Condition::Not(Box::new(Condition::flag("off"))),
        ]);
        let s = c.to_string();
        assert!(s.contains("x < $LIMIT"), "{s}");
        assert!(s.contains('!'), "{s}");
    }
}
