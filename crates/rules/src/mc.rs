//! Explicit-state bounded model checking of rule programs.
//!
//! `rulelint` (PR 2) checks rule programs with *local* heuristics: one
//! rule's guard is satisfiable, two rules' effect edges form a two-cycle.
//! This module checks the *temporal* properties those heuristics cannot
//! decide, by compiling (rule program × [`EffectTable`] × [`BeanSchema`] ×
//! contract) into a finite transition system and exploring it exhaustively:
//!
//! * **Recovery** — from every reachable contract-violating state, a
//!   violation-free state is reachable within `k` control firings (or the
//!   manager escalates by firing `RAISE_VIOLATION`, discharging the
//!   obligation to its parent — the paper's hierarchy semantics).
//! * **Livelock / oscillation freedom** — a lasso search over the
//!   deterministic controller-only successor function: any reachable cycle
//!   in which actuator operations keep firing is a proof of livelock, and
//!   a cycle driving one actuator resource both ways is an oscillation.
//!   This demotes `rulelint`'s `W-oscillation` effect-graph heuristic to a
//!   fast pre-pass.
//! * **Dead rules** — rules that fire in no reachable state under any
//!   environment behaviour.
//! * **Cross-manager composition** — the product of two programs sharing
//!   one bean space, coupled through the paper's hierarchy protocol: the
//!   child's `RAISE_VIOLATION` data sets the parent's `violNotEnough` /
//!   `violTooMuch` beans for the same round (`P_spl`-split contracts
//!   escalating through `bskel_core::hierarchy`).
//!
//! # The abstraction
//!
//! Bean values are abstracted into the *threshold intervals* induced by
//! the (param-bound) guard and contract constants: for each bean, every
//! constant it is compared against becomes a cut point, and the abstract
//! value is the region between cuts (cut points are their own singleton
//! regions, so strict and non-strict comparisons stay exact). Count beans
//! keep only regions containing an integer. A state is the vector of
//! region indices plus the engine's edge-trigger bits; each region carries
//! a concrete *representative* value, so guards are evaluated by the same
//! [`Condition::eval`] the production engine uses — the abstract controller
//! is the real controller.
//!
//! Transitions:
//!
//! * **Control edges** (deterministic): fire the fireable rules in
//!   salience order exactly as [`crate::engine::RuleEngine::cycle`] would,
//!   then move every affected bean one region in the net direction of the
//!   fired operations' [`EffectTable`] entries. This folds the plant
//!   response into the firing step: `ADD_EXECUTOR` *eventually* raises
//!   `departureRate`, and in the abstraction "eventually" is the next
//!   region.
//! * **Environment edges**: beans not driven by any operation the program
//!   can fire are environment inputs; each may move one region up or down
//!   per step (configurable per bean, e.g. end-of-stream flags only rise).
//!   Plant beans move *only* through effects — failures and load swings
//!   are modelled by initial-state coverage, not plant perturbation (see
//!   DESIGN.md for the soundness discussion).
//!
//! Reductions: beans outside the cone of influence (guards ∪ property
//! conditions) are projected away entirely, and commuting environment
//! moves are explored in canonical (sorted) order only — a partial-order
//! reduction that preserves reachability because environment moves on
//! distinct beans commute.
//!
//! Every property failure carries a [`Counterexample`]: the concrete
//! representative valuations and rule firings step for step, which
//! `bskel_sim`'s replay adapter re-runs against the deterministic DES and
//! the production engine to confirm the trace is real.

use crate::analysis::{
    bind_params, BeanSchema, BeanType, Diagnostic, Dir, EffectTable, LintCode, Severity,
};
use crate::ast::{Condition, Expr, Rule, RuleSet};
use crate::engine::Firing;
use crate::op;
use crate::stdlib::{hier_beans, viol};
use crate::wm::{ParamTable, WorkingMemory};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Specification
// ---------------------------------------------------------------------------

/// How the environment may move a bean between control cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvMove {
    /// May move one region up or down per step (the default for beans the
    /// program never actuates).
    Free,
    /// May only rise (e.g. an end-of-stream flag, a cumulative counter).
    UpOnly,
    /// May only fall.
    DownOnly,
    /// Never moves on its own (the default for actuated beans).
    Frozen,
}

/// What to check, and under which environment assumptions.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Contract-violation condition over beans (param-free). `None`
    /// disables the recovery property (programs without a leaf contract).
    pub violation: Option<Condition>,
    /// States satisfying this condition are exempt from recovery (e.g.
    /// `endOfStream`: the paper's AM stops reacting to `notEnough` once
    /// the stream has ended).
    pub waiver: Option<Condition>,
    /// Recovery bound: a violation-free (or escalated) state must be
    /// reachable within this many control firings.
    pub recovery_k: usize,
    /// Whether firing `RAISE_VIOLATION` discharges the recovery
    /// obligation (true for leaf managers reporting to a parent; false
    /// when the parent is inside the model, i.e. composed checks).
    pub escalation_discharges: bool,
    /// Physical invariants assumed of every state (e.g.
    /// `departureRate <= arrivalRate`: delivered throughput cannot exceed
    /// offered load). Initial states and environment moves violating an
    /// invariant are pruned; a control effect that would cross one is
    /// clamped at it (the plant saturates).
    pub invariants: Vec<Condition>,
    /// Initial-value ranges per bean (inclusive); unlisted beans start in
    /// every region of their domain.
    pub initial: BTreeMap<String, (f64, f64)>,
    /// Per-bean environment overrides (by default actuated beans are
    /// [`EnvMove::Frozen`], all others [`EnvMove::Free`]).
    pub env: BTreeMap<String, EnvMove>,
    /// Min-plant refinement `(bean, input)`: `bean` is modelled as
    /// `min(input, capacity)` for a hidden capacity variable, and
    /// operation effects on `bean` are redirected — to `input` when the
    /// operation already drives `input` (rate actuators), to the hidden
    /// capacity otherwise (parallelism actuators). This is the physical
    /// law `delivered = min(offered, capacity)`: without it, a rate
    /// actuator appears able to drag delivered throughput below what the
    /// current worker pool sustains, producing spurious stuck states in
    /// composed farm/pipeline models. Ignored when `bean` is outside the
    /// cone of influence.
    pub plant_min: Option<(String, String)>,
    /// Exploration budget; exceeding it is an error, not a silent pass.
    pub max_states: usize,
}

impl Default for Spec {
    fn default() -> Self {
        Spec {
            violation: None,
            waiver: None,
            recovery_k: 8,
            escalation_discharges: true,
            invariants: Vec::new(),
            initial: BTreeMap::new(),
            env: BTreeMap::new(),
            plant_min: None,
            max_states: 262_144,
        }
    }
}

impl Spec {
    /// Sets the contract-violation condition (builder style).
    pub fn violation(mut self, cond: Condition) -> Self {
        self.violation = Some(cond);
        self
    }

    /// Sets the recovery-waiver condition.
    pub fn waiver(mut self, cond: Condition) -> Self {
        self.waiver = Some(cond);
        self
    }

    /// Sets the recovery bound `k`.
    pub fn recovery_k(mut self, k: usize) -> Self {
        self.recovery_k = k;
        self
    }

    /// Sets whether `RAISE_VIOLATION` discharges recovery.
    pub fn escalation_discharges(mut self, yes: bool) -> Self {
        self.escalation_discharges = yes;
        self
    }

    /// Adds a physical invariant.
    pub fn invariant(mut self, cond: Condition) -> Self {
        self.invariants.push(cond);
        self
    }

    /// Constrains a bean's initial value to `[lo, hi]`.
    pub fn initial(mut self, bean: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.initial.insert(bean.into(), (lo, hi));
        self
    }

    /// Overrides a bean's environment behaviour.
    pub fn env(mut self, bean: impl Into<String>, mv: EnvMove) -> Self {
        self.env.insert(bean.into(), mv);
        self
    }

    /// Enables the min-plant refinement: `bean = min(input, capacity)`.
    pub fn min_plant(mut self, bean: impl Into<String>, input: impl Into<String>) -> Self {
        self.plant_min = Some((bean.into(), input.into()));
        self
    }

    /// The standard throughput plant: `departureRate` is the minimum of
    /// `arrivalRate` (offered load) and the hidden pool capacity, with
    /// the matching physical invariant.
    pub fn throughput_plant(self) -> Self {
        use crate::ast::Cmp;
        self.min_plant("departureRate", "arrivalRate")
            .invariant(Condition::cmp(
                Expr::Bean("departureRate".into()),
                Cmp::Le,
                Expr::Bean("arrivalRate".into()),
            ))
    }
}

/// Builds the standard throughput-contract violation condition
/// (`departureRate` outside `[lo, hi]`), skipping infinite bounds.
/// Returns `None` when both bounds are unconstrained.
pub fn throughput_violation(lo: f64, hi: f64) -> Option<Condition> {
    use crate::ast::Cmp;
    let mut parts = Vec::new();
    if lo > 0.0 && lo.is_finite() {
        parts.push(Condition::bean_vs_const("departureRate", Cmp::Lt, lo));
    }
    if hi.is_finite() {
        parts.push(Condition::bean_vs_const("departureRate", Cmp::Gt, hi));
    }
    match parts.len() {
        0 => None,
        1 => parts.pop(),
        _ => Some(Condition::Or(parts)),
    }
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// One step of a counterexample trace: the concrete bean valuation the
/// controller saw, and what it fired from that state. The firings of the
/// last step lead to the next step's valuation (or back to `loops_to`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Representative bean values (a full working memory for the cone).
    pub beans: BTreeMap<String, f64>,
    /// Firings, in engine order, labelled with the program that fired
    /// them (one label for single-program checks).
    pub firings: Vec<(String, Firing)>,
}

/// A concrete witness of a property violation, replayable against the
/// deterministic simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Which property failed (`recovery`, `livelock`, `oscillation`).
    pub property: String,
    /// The trace, one entry per control cycle.
    pub steps: Vec<TraceStep>,
    /// For lasso counterexamples: the step index the last step's firings
    /// lead back to.
    pub loops_to: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

/// Verdict of one checked property.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The property holds in every reachable state.
    Proved,
    /// The property fails; here is the trace.
    Violated(Box<Counterexample>),
}

impl Verdict {
    /// True when the property was proved.
    pub fn proved(&self) -> bool {
        matches!(self, Verdict::Proved)
    }

    /// The counterexample, if the property failed.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Proved => None,
            Verdict::Violated(c) => Some(c),
        }
    }
}

/// Everything one `check` run produced.
#[derive(Debug, Clone)]
pub struct McReport {
    /// The label the caller gave the program (file name, manager name).
    pub label: String,
    /// Reachable abstract states explored.
    pub states: usize,
    /// Transitions taken (control + environment).
    pub transitions: usize,
    /// Recovery-within-k verdict (`None` when no violation condition was
    /// supplied).
    pub recovery: Option<Verdict>,
    /// Livelock/oscillation-freedom verdict.
    pub livelock: Verdict,
    /// Rules that fired in no reachable state (guards `when false` are
    /// deliberate kill-switches and not reported).
    pub dead_rules: Vec<String>,
    /// Exploration + property-check wall time.
    pub wall: Duration,
}

impl McReport {
    /// True when every checked property was proved (dead rules are
    /// reported but do not fail a program).
    pub fn ok(&self) -> bool {
        self.recovery.as_ref().is_none_or(Verdict::proved) && self.livelock.proved()
    }

    /// All counterexamples in the report.
    pub fn counterexamples(&self) -> Vec<&Counterexample> {
        self.recovery
            .iter()
            .chain(std::iter::once(&self.livelock))
            .filter_map(Verdict::counterexample)
            .collect()
    }

    /// Renders the report as `rulelint`-style diagnostics: property
    /// failures as errors ([`LintCode::NoRecovery`] /
    /// [`LintCode::Livelock`]), dead rules as warnings
    /// ([`LintCode::DeadRule`]) — so managers and CLIs can funnel model
    /// checking through the same reporting path as the static analysis.
    pub fn to_diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let cex_rule = |c: &Counterexample| {
            c.steps
                .iter()
                .flat_map(|s| s.firings.iter())
                .map(|(_, f)| f.rule.clone())
                .next()
                .unwrap_or_else(|| self.label.clone())
        };
        if let Some(Verdict::Violated(c)) = &self.recovery {
            out.push(Diagnostic {
                severity: Severity::Error,
                code: LintCode::NoRecovery,
                rule: cex_rule(c),
                peer: None,
                span: None,
                message: format!("{} ({} trace steps)", c.message, c.steps.len()),
            });
        }
        if let Verdict::Violated(c) = &self.livelock {
            out.push(Diagnostic {
                severity: Severity::Error,
                code: LintCode::Livelock,
                rule: cex_rule(c),
                peer: None,
                span: None,
                message: format!("{} ({} trace steps)", c.message, c.steps.len()),
            });
        }
        for rule in &self.dead_rules {
            out.push(Diagnostic {
                severity: Severity::Warning,
                code: LintCode::DeadRule,
                rule: rule.clone(),
                peer: None,
                span: None,
                message: "rule fires in no reachable state under any modelled environment"
                    .to_string(),
            });
        }
        out
    }
}

/// Why a model could not be built or explored.
#[derive(Debug, Clone, PartialEq)]
pub enum McError {
    /// Guard or property parameters left unbound — interval cuts need
    /// concrete thresholds.
    UnboundParams(Vec<String>),
    /// A guard or property references a bean missing from the schema.
    UnknownBean(String),
    /// The reachable state space exceeded [`Spec::max_states`].
    StateSpaceExceeded(usize),
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::UnboundParams(ps) => {
                write!(f, "unbound parameters: {}", ps.join(", "))
            }
            McError::UnknownBean(b) => write!(f, "unknown bean `{b}`"),
            McError::StateSpaceExceeded(n) => {
                write!(f, "state space exceeded the {n}-state budget")
            }
        }
    }
}

impl std::error::Error for McError {}

// ---------------------------------------------------------------------------
// Interval domains
// ---------------------------------------------------------------------------

/// One abstract region of a bean's domain, with a concrete representative.
#[derive(Debug, Clone, Copy)]
struct Region {
    rep: f64,
}

#[derive(Debug, Clone)]
struct BeanDomain {
    name: String,
    regions: Vec<Region>,
}

/// Collects `bean ⋈ const` cut points per bean from a (bound) condition,
/// and records bean-vs-bean comparisons so the paired beans can share cut
/// sets (needed for region-level comparability).
fn collect_cuts(
    cond: &Condition,
    cuts: &mut BTreeMap<String, BTreeSet<u64>>,
    pairs: &mut Vec<(String, String)>,
) {
    match cond {
        Condition::True | Condition::False => {}
        Condition::Not(c) => collect_cuts(c, cuts, pairs),
        Condition::And(cs) | Condition::Or(cs) => {
            for c in cs {
                collect_cuts(c, cuts, pairs);
            }
        }
        Condition::Cmp { lhs, rhs, .. } => match (lhs, rhs) {
            (Expr::Bean(b), Expr::Const(c)) | (Expr::Const(c), Expr::Bean(b)) if c.is_finite() => {
                cuts.entry(b.clone()).or_default().insert(c.to_bits());
            }
            (Expr::Bean(a), Expr::Bean(b)) => pairs.push((a.clone(), b.clone())),
            _ => {}
        },
    }
}

fn build_domain(name: &str, ty: BeanType, cut_bits: &BTreeSet<u64>) -> BeanDomain {
    let mut cuts: Vec<f64> = cut_bits.iter().map(|b| f64::from_bits(*b)).collect();
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cuts"));
    let mut regions = Vec::new();
    match ty {
        BeanType::Flag => {
            regions.push(Region { rep: 0.0 });
            regions.push(Region { rep: 1.0 });
        }
        BeanType::Count => {
            // Integer domain [0, ∞): keep only regions containing an
            // integer; cut points that are themselves integers become
            // singleton regions.
            cuts.retain(|c| *c >= 0.0);
            let mut lo = -1.0_f64; // exclusive lower edge; first int is 0
            for c in &cuts {
                let first = (lo.floor() + 1.0).max(0.0);
                if first < *c {
                    regions.push(Region { rep: first });
                }
                if c.fract() == 0.0 {
                    regions.push(Region { rep: *c });
                }
                lo = *c;
            }
            let first = (lo.floor() + 1.0).max(0.0);
            regions.push(Region { rep: first });
        }
        BeanType::Rate | BeanType::Seconds => {
            // Real domain [0, ∞).
            cuts.retain(|c| *c >= 0.0);
            let mut lo = 0.0_f64;
            let mut lo_open = false;
            for c in &cuts {
                if *c > lo || (!lo_open && *c == lo) {
                    if *c > lo {
                        regions.push(Region {
                            rep: (lo + c) / 2.0,
                        });
                    }
                    regions.push(Region { rep: *c });
                }
                lo = *c;
                lo_open = true;
            }
            regions.push(Region {
                rep: if lo_open { lo + 1.0 } else { 1.0 },
            });
        }
        BeanType::Real => {
            if let Some(first) = cuts.first() {
                regions.push(Region { rep: first - 1.0 });
            }
            let mut prev: Option<f64> = None;
            for c in &cuts {
                if let Some(p) = prev {
                    regions.push(Region { rep: (p + c) / 2.0 });
                }
                regions.push(Region { rep: *c });
                prev = Some(*c);
            }
            regions.push(Region {
                rep: prev.map_or(0.0, |p| p + 1.0),
            });
        }
    }
    BeanDomain {
        name: name.to_string(),
        regions,
    }
}

// ---------------------------------------------------------------------------
// The model
// ---------------------------------------------------------------------------

struct Prog<'a> {
    label: &'a str,
    rules: &'a RuleSet,
    params: &'a ParamTable,
    /// Rule indices in firing order (salience desc, stable).
    fire_order: Vec<usize>,
    /// Rule indices that are edge-triggered, in definition order; each
    /// owns one trailing bit of the state vector.
    edge_rules: Vec<usize>,
}

impl<'a> Prog<'a> {
    fn new(label: &'a str, rules: &'a RuleSet, params: &'a ParamTable) -> Self {
        let mut fire_order: Vec<usize> = (0..rules.rules().len()).collect();
        fire_order.sort_by_key(|&i| std::cmp::Reverse(rules.rules()[i].salience));
        let edge_rules = (0..rules.rules().len())
            .filter(|&i| rules.rules()[i].edge_triggered)
            .collect();
        Prog {
            label,
            rules,
            params,
            fire_order,
            edge_rules,
        }
    }
}

/// Abstract state: one region index per cone bean, then one edge bit per
/// edge-triggered rule of each program.
type State = Vec<u8>;

/// Applies the min-plant redirection to an operation's bean effects:
/// effects on the derived bean go to `input` implicitly (dropped — the
/// operation already drives `input` directly) or to the hidden capacity.
fn redirect_effects(
    effects: &EffectTable,
    op: &str,
    plant: Option<&(String, String, String)>,
) -> Vec<(String, Dir)> {
    let list = effects.effects_of(op);
    list.iter()
        .filter_map(|(bean, dir)| {
            if let Some((derived, input, cap)) = plant {
                if bean == derived {
                    // Rate actuators (INC/DEC_RATE) drive the input side;
                    // their derived-bean effect is subsumed by the min.
                    if list.iter().any(|(x, _)| x == input) {
                        return None;
                    }
                    // Parallelism actuators move the capacity side.
                    return Some((cap.clone(), *dir));
                }
            }
            Some((bean.clone(), *dir))
        })
        .collect()
}

struct Model<'a> {
    effects: &'a EffectTable,
    progs: Vec<Prog<'a>>,
    coupled: bool,
    domains: Vec<BeanDomain>,
    bean_pos: BTreeMap<String, usize>,
    /// (bean position, direction) environment moves.
    env_edges: Vec<(usize, i8)>,
    spec: &'a Spec,
    /// Active min-plant names `(derived, input, capacity)`.
    plant_names: Option<(String, String, String)>,
    /// Positions matching `plant_names`.
    plant_pos: Option<(usize, usize, usize)>,
    /// Positions of `violNotEnough` / `violTooMuch` when coupled.
    viol_pos: (Option<usize>, Option<usize>),
    /// Edge-bit offset per program.
    edge_offset: Vec<usize>,
    state_len: usize,
}

struct StepOut {
    next: State,
    firings: Vec<(String, Firing)>,
    fired_raise: bool,
    fired_effectful: bool,
}

impl<'a> Model<'a> {
    fn build(
        schema: &BeanSchema,
        effects: &'a EffectTable,
        progs: Vec<Prog<'a>>,
        coupled: bool,
        spec: &'a Spec,
    ) -> Result<Self, McError> {
        // Validate params and collect cuts from bound guards + spec
        // conditions.
        let mut cuts: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();
        let mut pairs = Vec::new();
        let mut unbound = BTreeSet::new();
        let mut cone: BTreeSet<String> = BTreeSet::new();
        for prog in &progs {
            for rule in prog.rules.rules() {
                let bound = bind_params(&rule.when, prog.params);
                for p in bound.params() {
                    unbound.insert(p.to_string());
                }
                for b in bound.beans() {
                    cone.insert(b.to_string());
                }
                collect_cuts(&bound, &mut cuts, &mut pairs);
            }
        }
        let spec_conds = spec
            .violation
            .iter()
            .chain(spec.waiver.iter())
            .chain(spec.invariants.iter());
        for cond in spec_conds {
            for p in cond.params() {
                unbound.insert(p.to_string());
            }
            for b in cond.beans() {
                cone.insert(b.to_string());
            }
            collect_cuts(cond, &mut cuts, &mut pairs);
        }
        if !unbound.is_empty() {
            return Err(McError::UnboundParams(unbound.into_iter().collect()));
        }
        if coupled {
            cone.insert(hier_beans::VIOL_NOT_ENOUGH.to_string());
            cone.insert(hier_beans::VIOL_TOO_MUCH.to_string());
        }
        // Activate the min-plant refinement only when the derived bean is
        // in the cone and type-compatible with its input.
        let plant_names = match &spec.plant_min {
            Some((b, input))
                if cone.contains(b)
                    && schema.bean_type(b).is_some()
                    && schema.bean_type(b) == schema.bean_type(input) =>
            {
                cone.insert(input.clone());
                pairs.push((b.clone(), input.clone()));
                Some((b.clone(), input.clone(), format!("__cap:{b}")))
            }
            _ => None,
        };
        for b in &cone {
            if schema.bean_type(b).is_none() {
                return Err(McError::UnknownBean(b.clone()));
            }
        }
        // Initial-range bounds are cuts too, so ranges align with region
        // boundaries.
        for (bean, (lo, hi)) in &spec.initial {
            if cone.contains(bean) {
                let e = cuts.entry(bean.clone()).or_default();
                if lo.is_finite() {
                    e.insert(lo.to_bits());
                }
                if hi.is_finite() {
                    e.insert(hi.to_bits());
                }
            }
        }
        // Beans compared against each other share cut sets (fixpoint).
        loop {
            let mut changed = false;
            for (a, b) in &pairs {
                let ca = cuts.get(a).cloned().unwrap_or_default();
                let cb = cuts.get(b).cloned().unwrap_or_default();
                let union: BTreeSet<u64> = ca.union(&cb).copied().collect();
                if union != ca {
                    cuts.insert(a.clone(), union.clone());
                    changed = true;
                }
                if union != cb {
                    cuts.insert(b.clone(), union);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut domains: Vec<BeanDomain> = cone
            .iter()
            .map(|b| {
                let ty = schema.bean_type(b).expect("validated above");
                build_domain(b, ty, cuts.get(b).unwrap_or(&BTreeSet::new()))
            })
            .collect();
        if let Some((b, _, cap)) = &plant_names {
            // The hidden capacity shares the derived bean's type and cut
            // set, so min() is computable region-index-wise.
            let ty = schema.bean_type(b).expect("validated above");
            domains.push(build_domain(
                cap,
                ty,
                cuts.get(b).unwrap_or(&BTreeSet::new()),
            ));
        }
        for d in &domains {
            assert!(d.regions.len() <= u8::MAX as usize, "region overflow");
        }
        let bean_pos: BTreeMap<String, usize> = domains
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), i))
            .collect();
        let plant_pos = plant_names.as_ref().map(|(b, input, cap)| {
            let (dp, ip, cp) = (bean_pos[b], bean_pos[input], bean_pos[cap]);
            assert_eq!(
                domains[dp].regions.len(),
                domains[ip].regions.len(),
                "plant domains must share cut sets"
            );
            assert_eq!(domains[dp].regions.len(), domains[cp].regions.len());
            (dp, ip, cp)
        });

        // Actuated (plant) beans: anything an op reachable from any rule
        // can move, per the (redirected) effect table — plus the coupling
        // flags.
        let mut controlled: BTreeSet<usize> = BTreeSet::new();
        for prog in &progs {
            for rule in prog.rules.rules() {
                for call in rule.execute() {
                    for (bean, _) in
                        redirect_effects(effects, &call.operation, plant_names.as_ref())
                    {
                        if let Some(&p) = bean_pos.get(&bean) {
                            controlled.insert(p);
                        }
                    }
                }
            }
        }
        let viol_pos = (
            bean_pos.get(hier_beans::VIOL_NOT_ENOUGH).copied(),
            bean_pos.get(hier_beans::VIOL_TOO_MUCH).copied(),
        );
        if coupled {
            controlled.extend(viol_pos.0.iter().chain(viol_pos.1.iter()));
        }
        let mut env_edges = Vec::new();
        for (pos, d) in domains.iter().enumerate() {
            // The derived bean never moves on its own: it is recomputed
            // from input and capacity after every transition.
            if plant_pos.is_some_and(|(dp, _, _)| dp == pos) {
                continue;
            }
            let default = if controlled.contains(&pos) {
                EnvMove::Frozen
            } else {
                EnvMove::Free
            };
            let mv = spec.env.get(&d.name).copied().unwrap_or(default);
            if matches!(mv, EnvMove::Free | EnvMove::UpOnly) {
                env_edges.push((pos, 1));
            }
            if matches!(mv, EnvMove::Free | EnvMove::DownOnly) {
                env_edges.push((pos, -1));
            }
        }

        let mut edge_offset = Vec::new();
        let mut state_len = domains.len();
        for prog in &progs {
            edge_offset.push(state_len);
            state_len += prog.edge_rules.len();
        }

        Ok(Model {
            effects,
            progs,
            coupled,
            domains,
            bean_pos,
            env_edges,
            spec,
            plant_names,
            plant_pos,
            viol_pos,
            edge_offset,
            state_len,
        })
    }

    fn wm_of(&self, state: &State) -> WorkingMemory {
        let mut wm = WorkingMemory::new();
        for (i, d) in self.domains.iter().enumerate() {
            wm.insert(d.name.clone(), d.regions[state[i] as usize].rep);
        }
        wm
    }

    fn valuation(&self, state: &State) -> BTreeMap<String, f64> {
        self.domains
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.name.starts_with("__"))
            .map(|(i, d)| (d.name.clone(), d.regions[state[i] as usize].rep))
            .collect()
    }

    /// Re-derives the plant bean from its input and hidden capacity
    /// (`derived = min(input, capacity)`, computable region-index-wise
    /// because all three share one cut set).
    fn renorm(&self, state: &mut State) {
        if let Some((dp, ip, cp)) = self.plant_pos {
            state[dp] = state[ip].min(state[cp]);
        }
    }

    fn eval(&self, cond: &Condition, state: &State, params: &ParamTable) -> bool {
        cond.eval(&self.wm_of(state), params)
            .expect("cone beans and params validated at build time")
    }

    fn invariants_hold(&self, state: &State) -> bool {
        let empty = ParamTable::new();
        self.spec
            .invariants
            .iter()
            .all(|inv| self.eval(inv, state, &empty))
    }

    /// Applies net effect deltas (one region per step, in the net
    /// direction), clamping at domain edges and at the first state where
    /// an invariant would be crossed (the plant saturates there).
    fn apply_deltas(&self, state: &mut State, deltas: &BTreeMap<usize, i32>) {
        let before = state.clone();
        for (&pos, &delta) in deltas {
            let n = self.domains[pos].regions.len() as i32;
            let cur = state[pos] as i32;
            let next = (cur + delta.signum()).clamp(0, n - 1);
            state[pos] = next as u8;
        }
        // Re-derive the plant bean before invariant repair, so that a
        // legitimate input move isn't reverted on account of a stale
        // derived value.
        self.renorm(state);
        if !self.spec.invariants.is_empty() && !self.invariants_hold(state) {
            // Revert moved beans mentioned in a failing invariant, one at
            // a time; the predecessor satisfied the invariants, so this
            // always reaches a satisfying state.
            let empty = ParamTable::new();
            for inv in &self.spec.invariants {
                if self.eval(inv, state, &empty) {
                    continue;
                }
                for bean in inv.beans() {
                    if let Some(&p) = self.bean_pos.get(bean) {
                        if state[p] != before[p] {
                            state[p] = before[p];
                            if self.eval(inv, state, &empty) {
                                break;
                            }
                        }
                    }
                }
            }
        }
        // Repair may have touched the plant's input or capacity.
        self.renorm(state);
    }

    /// One cycle of program `pi` on `state`: evaluate → select → fire →
    /// apply effects → update edge bits. Mirrors `RuleEngine::cycle`.
    fn prog_cycle(&self, pi: usize, state: &mut State, out: &mut StepOut) {
        let prog = &self.progs[pi];
        let wm = self.wm_of(state);
        let rules = prog.rules.rules();
        let truth: Vec<bool> = rules
            .iter()
            .map(|r| {
                r.when
                    .eval(&wm, prog.params)
                    .expect("cone beans and params validated at build time")
            })
            .collect();
        let off = self.edge_offset[pi];
        let mut fired: Vec<&Rule> = Vec::new();
        for &i in &prog.fire_order {
            if !truth[i] {
                continue;
            }
            let suppressed = rules[i].edge_triggered && {
                let bit = prog.edge_rules.iter().position(|&e| e == i).expect("edge");
                state[off + bit] != 0
            };
            if !suppressed {
                fired.push(&rules[i]);
            }
        }
        let mut deltas: BTreeMap<usize, i32> = BTreeMap::new();
        let mut raised: Vec<Option<String>> = Vec::new();
        for rule in &fired {
            let ops = rule.execute();
            for call in &ops {
                if call.operation == op::RAISE_VIOLATION {
                    out.fired_raise = true;
                    raised.push(call.data.clone());
                }
                if self.effects.actuator_of(&call.operation).is_some()
                    || !self.effects.effects_of(&call.operation).is_empty()
                {
                    out.fired_effectful = true;
                }
                for (bean, dir) in
                    redirect_effects(self.effects, &call.operation, self.plant_names.as_ref())
                {
                    if let Some(&p) = self.bean_pos.get(&bean) {
                        *deltas.entry(p).or_insert(0) += match dir {
                            Dir::Up => 1,
                            Dir::Down => -1,
                        };
                    }
                }
            }
            out.firings.push((
                prog.label.to_string(),
                Firing {
                    rule: rule.name.clone(),
                    salience: rule.salience,
                    ops,
                },
            ));
        }
        self.apply_deltas(state, &deltas);
        // Hierarchy coupling: the child's RAISE_VIOLATION data sets the
        // parent's violation flags for this round; no raise clears them.
        if self.coupled && pi == 0 {
            let not_enough = raised
                .iter()
                .any(|d| d.as_deref() == Some(viol::NOT_ENOUGH_TASKS));
            let too_much = raised
                .iter()
                .any(|d| d.as_deref() == Some(viol::TOO_MUCH_TASKS));
            if let Some(p) = self.viol_pos.0 {
                state[p] = u8::from(not_enough);
            }
            if let Some(p) = self.viol_pos.1 {
                state[p] = u8::from(too_much);
            }
        }
        for (bit, &i) in prog.edge_rules.iter().enumerate() {
            state[off + bit] = u8::from(truth[i]);
        }
    }

    /// The deterministic control successor: every program runs one cycle
    /// (child before parent when coupled, matching the mailbox protocol).
    fn control_step(&self, state: &State) -> StepOut {
        let mut out = StepOut {
            next: state.clone(),
            firings: Vec::new(),
            fired_raise: false,
            fired_effectful: false,
        };
        let mut next = state.clone();
        for pi in 0..self.progs.len() {
            self.prog_cycle(pi, &mut next, &mut out);
        }
        out.next = next;
        out
    }

    fn initial_states(&self) -> Result<Vec<State>, McError> {
        // Per-bean allowed initial regions.
        let mut allowed: Vec<Vec<u8>> = Vec::new();
        for (pos, d) in self.domains.iter().enumerate() {
            if self.plant_pos.is_some_and(|(dp, _, _)| dp == pos) {
                // Derived plant bean: placeholder, renorm() at the
                // enumeration leaf computes the real value.
                allowed.push(vec![0]);
                continue;
            }
            let range = self.spec.initial.get(&d.name);
            let mut regs = Vec::new();
            for (ri, r) in d.regions.iter().enumerate() {
                let ok = range.is_none_or(|(lo, hi)| r.rep >= *lo && r.rep <= *hi);
                if ok {
                    regs.push(ri as u8);
                }
            }
            if regs.is_empty() {
                // An initial range excluding every region: fall back to
                // the full domain rather than an empty (vacuous) model.
                regs.extend(0..d.regions.len() as u8);
            }
            allowed.push(regs);
        }
        let mut states = Vec::new();
        let mut cur: State = vec![0; self.state_len];
        self.enumerate(&allowed, 0, &mut cur, &mut states)?;
        Ok(states)
    }

    fn enumerate(
        &self,
        allowed: &[Vec<u8>],
        pos: usize,
        cur: &mut State,
        out: &mut Vec<State>,
    ) -> Result<(), McError> {
        if pos == allowed.len() {
            self.renorm(cur);
            if self.invariants_hold(cur) {
                if out.len() >= self.spec.max_states {
                    return Err(McError::StateSpaceExceeded(self.spec.max_states));
                }
                out.push(cur.clone());
            }
            return Ok(());
        }
        for &r in &allowed[pos] {
            cur[pos] = r;
            self.enumerate(allowed, pos + 1, cur, out)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Exploration + properties
// ---------------------------------------------------------------------------

struct Explored {
    order: Vec<State>,
    /// Control successor index per state.
    succ: Vec<u32>,
    /// Per state: fired an effectful op / fired RAISE_VIOLATION on its
    /// control step.
    effectful: Vec<bool>,
    raised: Vec<bool>,
    transitions: usize,
    fired_rules: BTreeSet<(usize, String)>,
}

fn explore(model: &Model<'_>) -> Result<Explored, McError> {
    let mut index: HashMap<State, u32> = HashMap::new();
    let mut order: Vec<State> = Vec::new();
    // Minimal environment-POR restriction each state was reached with;
    // expanding again with a smaller restriction re-opens pruned moves.
    let mut restriction: Vec<u16> = Vec::new();
    let mut succ: Vec<u32> = Vec::new();
    let mut effectful: Vec<bool> = Vec::new();
    let mut raised: Vec<bool> = Vec::new();
    let mut fired_rules = BTreeSet::new();
    let mut transitions = 0usize;
    let mut queue: VecDeque<u32> = VecDeque::new();

    let intern = |s: State,
                  restr: u16,
                  index: &mut HashMap<State, u32>,
                  order: &mut Vec<State>,
                  restriction: &mut Vec<u16>,
                  queue: &mut VecDeque<u32>|
     -> Result<u32, McError> {
        if let Some(&i) = index.get(&s) {
            if restr < restriction[i as usize] {
                restriction[i as usize] = restr;
                queue.push_back(i);
            }
            return Ok(i);
        }
        if order.len() >= model.spec.max_states {
            return Err(McError::StateSpaceExceeded(model.spec.max_states));
        }
        let i = order.len() as u32;
        index.insert(s.clone(), i);
        order.push(s);
        restriction.push(restr);
        queue.push_back(i);
        Ok(i)
    };

    for s in model.initial_states()? {
        intern(s, 0, &mut index, &mut order, &mut restriction, &mut queue)?;
    }

    let mut expanded: Vec<bool> = Vec::new();
    while let Some(i) = queue.pop_front() {
        let i = i as usize;
        while expanded.len() < order.len() {
            expanded.push(false);
        }
        let state = order[i].clone();
        if !expanded[i] {
            expanded[i] = true;
            // Control edge (resets the environment restriction).
            let step = model.control_step(&state);
            for (label, f) in &step.firings {
                let pi = model
                    .progs
                    .iter()
                    .position(|p| p.label == *label)
                    .unwrap_or(0);
                fired_rules.insert((pi, f.rule.clone()));
            }
            transitions += 1;
            let si = intern(
                step.next,
                0,
                &mut index,
                &mut order,
                &mut restriction,
                &mut queue,
            )?;
            while succ.len() < order.len() {
                succ.push(u32::MAX);
                effectful.push(false);
                raised.push(false);
            }
            succ[i] = si;
            effectful[i] = step.fired_effectful;
            raised[i] = step.fired_raise;
        }
        // Environment edges ≥ the POR restriction this state was reached
        // with (commuting moves explored in sorted order only).
        let restr = restriction[i];
        for (ei, &(pos, dir)) in model.env_edges.iter().enumerate() {
            let ei = ei as u16;
            if ei < restr {
                continue;
            }
            let n = model.domains[pos].regions.len() as i32;
            let cur = state[pos] as i32;
            let next = cur + i32::from(dir);
            if next < 0 || next >= n {
                continue;
            }
            let mut t = state.clone();
            t[pos] = next as u8;
            model.renorm(&mut t);
            if !model.invariants_hold(&t) {
                continue;
            }
            transitions += 1;
            intern(t, ei, &mut index, &mut order, &mut restriction, &mut queue)?;
        }
    }

    // Successor slots exist for every state (states interned last may not
    // have been expanded via the control edge yet — expand them now; the
    // queue loop above always expands everything it interns, so this is
    // just a defensive resize).
    while succ.len() < order.len() {
        succ.push(u32::MAX);
        effectful.push(false);
        raised.push(false);
    }

    Ok(Explored {
        order,
        succ,
        effectful,
        raised,
        transitions,
        fired_rules,
    })
}

fn check_recovery(model: &Model<'_>, ex: &Explored) -> Option<Verdict> {
    let violation = model.spec.violation.as_ref()?;
    let empty = ParamTable::new();
    let k = model.spec.recovery_k;
    for (i, state) in ex.order.iter().enumerate() {
        if !model.eval(violation, state, &empty) {
            continue;
        }
        if let Some(w) = &model.spec.waiver {
            if model.eval(w, state, &empty) {
                continue;
            }
        }
        // Follow the deterministic controller-only chain for k firings.
        let mut cur = i;
        let mut discharged = false;
        let mut chain = vec![i];
        for _ in 0..k {
            if model.spec.escalation_discharges && ex.raised[cur] {
                discharged = true;
                break;
            }
            let next = ex.succ[cur] as usize;
            chain.push(next);
            let ns = &ex.order[next];
            let waived = model
                .spec
                .waiver
                .as_ref()
                .is_some_and(|w| model.eval(w, ns, &empty));
            if !model.eval(violation, ns, &empty) || waived {
                discharged = true;
                break;
            }
            cur = next;
        }
        if discharged {
            continue;
        }
        let steps: Vec<TraceStep> = chain
            .iter()
            .map(|&si| TraceStep {
                beans: model.valuation(&ex.order[si]),
                firings: model.control_step(&ex.order[si]).firings,
            })
            .collect();
        return Some(Verdict::Violated(Box::new(Counterexample {
            property: "recovery".into(),
            steps,
            loops_to: None,
            message: format!(
                "reachable contract-violating state with no violation-free \
                 state (or escalation) within {k} control firings"
            ),
        })));
    }
    Some(Verdict::Proved)
}

fn check_livelock(model: &Model<'_>, ex: &Explored) -> Verdict {
    // Cycle detection on the deterministic control-successor function:
    // colors 0 = unvisited, 1 = on current path, 2 = finished.
    let n = ex.order.len();
    let mut color = vec![0u8; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = start;
        while color[cur] == 0 {
            color[cur] = 1;
            path.push(cur);
            cur = ex.succ[cur] as usize;
        }
        if color[cur] == 1 {
            // Found a fresh cycle: the suffix of `path` from `cur`.
            let cstart = path.iter().position(|&s| s == cur).expect("on path");
            let cycle = &path[cstart..];
            let churning = cycle.iter().any(|&s| ex.effectful[s]);
            if churning {
                let mut ops: Vec<String> = Vec::new();
                let steps: Vec<TraceStep> = cycle
                    .iter()
                    .map(|&si| {
                        let step = model.control_step(&ex.order[si]);
                        for (_, f) in &step.firings {
                            ops.extend(f.ops.iter().map(|o| o.operation.clone()));
                        }
                        TraceStep {
                            beans: model.valuation(&ex.order[si]),
                            firings: step.firings,
                        }
                    })
                    .collect();
                let (property, message) = match model.effects.opposing_actuator(&ops, &ops) {
                    Some(res) => (
                        "oscillation".to_string(),
                        format!(
                            "reachable control cycle of length {} drives actuator \
                             `{res}` in both directions (undamped oscillation)",
                            cycle.len()
                        ),
                    ),
                    None => (
                        "livelock".to_string(),
                        format!(
                            "reachable control cycle of length {} keeps firing \
                             actuator operations without reaching quiescence",
                            cycle.len()
                        ),
                    ),
                };
                for &s in &path {
                    color[s] = 2;
                }
                return Verdict::Violated(Box::new(Counterexample {
                    property,
                    steps,
                    loops_to: Some(0),
                    message,
                }));
            }
        }
        for &s in &path {
            color[s] = 2;
        }
    }
    Verdict::Proved
}

fn dead_rules(model: &Model<'_>, ex: &Explored) -> Vec<String> {
    let mut out = Vec::new();
    for (pi, prog) in model.progs.iter().enumerate() {
        for rule in prog.rules.rules() {
            if matches!(rule.when, Condition::False) {
                continue;
            }
            if !ex.fired_rules.contains(&(pi, rule.name.clone())) {
                out.push(if model.progs.len() > 1 {
                    format!("{}:{}", prog.label, rule.name)
                } else {
                    rule.name.clone()
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// The model checker: a bean schema plus operation-effect annotations,
/// reusable across programs.
#[derive(Debug, Clone)]
pub struct ModelChecker {
    schema: BeanSchema,
    effects: EffectTable,
}

impl ModelChecker {
    /// A checker over `schema` with the standard effect table.
    pub fn new(schema: BeanSchema) -> Self {
        ModelChecker {
            schema,
            effects: EffectTable::standard(),
        }
    }

    /// Replaces the effect table (custom operation vocabularies).
    pub fn with_effects(mut self, effects: EffectTable) -> Self {
        self.effects = effects;
        self
    }

    /// Checks a single program with its bound parameter table.
    pub fn check(
        &self,
        label: &str,
        rules: &RuleSet,
        params: &ParamTable,
        spec: &Spec,
    ) -> Result<McReport, McError> {
        let progs = vec![Prog::new(label, rules, params)];
        self.run(label, progs, false, spec)
    }

    /// Checks the coupled product of a child and a parent program: each
    /// round the child fires first, its `RAISE_VIOLATION` data sets the
    /// parent's `violNotEnough`/`violTooMuch` beans, then the parent
    /// fires — the paper's hierarchy protocol, closed-loop.
    pub fn check_composed(
        &self,
        child: (&str, &RuleSet, &ParamTable),
        parent: (&str, &RuleSet, &ParamTable),
        spec: &Spec,
    ) -> Result<McReport, McError> {
        let label = format!("{}+{}", child.0, parent.0);
        let progs = vec![
            Prog::new(child.0, child.1, child.2),
            Prog::new(parent.0, parent.1, parent.2),
        ];
        self.run(&label, progs, true, spec)
    }

    fn run(
        &self,
        label: &str,
        progs: Vec<Prog<'_>>,
        coupled: bool,
        spec: &Spec,
    ) -> Result<McReport, McError> {
        let start = Instant::now();
        let model = Model::build(&self.schema, &self.effects, progs, coupled, spec)?;
        let ex = explore(&model)?;
        let recovery = check_recovery(&model, &ex);
        let livelock = check_livelock(&model, &ex);
        let dead = dead_rules(&model, &ex);
        Ok(McReport {
            label: label.to_string(),
            states: ex.order.len(),
            transitions: ex.transitions,
            recovery,
            livelock,
            dead_rules: dead,
            wall: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Cmp;
    use crate::parser::parse_rules;
    use crate::stdlib;

    fn schema() -> BeanSchema {
        BeanSchema::new()
            .bean("arrivalRate", BeanType::Rate)
            .bean("departureRate", BeanType::Rate)
            .bean("numWorkers", BeanType::Count)
            .bean("queueVariance", BeanType::Rate)
            .bean("workersLost", BeanType::Count)
            .bean("endOfStream", BeanType::Flag)
            .bean("violNotEnough", BeanType::Flag)
            .bean("violTooMuch", BeanType::Flag)
            .bean("endStream", BeanType::Flag)
    }

    fn farm_spec() -> Spec {
        Spec::default()
            .violation(throughput_violation(0.4, 0.8).unwrap())
            .invariant(Condition::cmp(
                Expr::Bean("departureRate".into()),
                Cmp::Le,
                Expr::Bean("arrivalRate".into()),
            ))
            .initial("numWorkers", 0.0, 16.0)
    }

    fn farm_params() -> ParamTable {
        stdlib::farm_params(0.4, 0.8, 2, 16, 4.0)
    }

    #[test]
    fn count_domain_keeps_only_integer_regions() {
        let mut cuts = BTreeSet::new();
        cuts.insert(3.0_f64.to_bits());
        cuts.insert(4.0_f64.to_bits());
        let d = build_domain("w", BeanType::Count, &cuts);
        let reps: Vec<f64> = d.regions.iter().map(|r| r.rep).collect();
        // [0,3) → 0, {3}, (3,4) has no integer, {4}, (4,∞) → 5.
        assert_eq!(reps, vec![0.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn rate_domain_has_points_and_midpoints() {
        let mut cuts = BTreeSet::new();
        cuts.insert(0.4_f64.to_bits());
        cuts.insert(0.8_f64.to_bits());
        let d = build_domain("r", BeanType::Rate, &cuts);
        let reps: Vec<f64> = d.regions.iter().map(|r| r.rep).collect();
        assert_eq!(reps, vec![0.2, 0.4, 0.6000000000000001, 0.8, 1.8]);
    }

    #[test]
    fn farm_rules_prove_recovery_and_livelock_freedom() {
        let rules = stdlib::farm_rules();
        let report = ModelChecker::new(schema())
            .check("farm", &rules, &farm_params(), &farm_spec())
            .unwrap();
        assert!(report.ok(), "{report:?}");
        assert!(report.dead_rules.is_empty(), "{:?}", report.dead_rules);
        assert!(report.states > 0);
    }

    #[test]
    fn inverted_thresholds_oscillate_with_counterexample() {
        // low/high swapped: the dead band inverts into an overlap and the
        // grow/shrink pair chases itself — the MC must find the lasso.
        let params = stdlib::farm_params(0.8, 0.4, 2, 16, 4.0);
        let spec = Spec::default()
            .violation(throughput_violation(0.8, 0.4).unwrap())
            .invariant(Condition::cmp(
                Expr::Bean("departureRate".into()),
                Cmp::Le,
                Expr::Bean("arrivalRate".into()),
            ))
            .initial("numWorkers", 0.0, 16.0);
        let report = ModelChecker::new(schema())
            .check("farm-inverted", &stdlib::farm_rules(), &params, &spec)
            .unwrap();
        let cex = report.livelock.counterexample().expect("lasso expected");
        assert_eq!(cex.property, "oscillation");
        assert!(cex.loops_to.is_some());
        assert!(!cex.steps.is_empty());
    }

    #[test]
    fn fault_rules_recover_from_worker_loss() {
        let rules = stdlib::fault_rules();
        let params = stdlib::fault_params(3);
        let spec = Spec::default().violation(Condition::bean_vs_const("numWorkers", Cmp::Lt, 3.0));
        let report = ModelChecker::new(schema())
            .check("fault", &rules, &params, &spec)
            .unwrap();
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn unreachable_rule_is_reported_dead() {
        let src = r#"
            rule "live" when arrivalRate > 1 && numWorkers < 4 then fireOperation(ADD_EXECUTOR); end
            rule "dead" when numWorkers > 5 && numWorkers < 4 then fireOperation(BALANCE_LOAD); end
        "#;
        let rules = parse_rules(src).unwrap();
        let report = ModelChecker::new(schema())
            .check("deadtest", &rules, &ParamTable::new(), &Spec::default())
            .unwrap();
        assert_eq!(report.dead_rules, vec!["dead".to_string()]);
        assert!(report.livelock.proved());
    }

    #[test]
    fn stuck_violation_yields_recovery_counterexample() {
        // A program that never reacts to low departure rate: recovery
        // must fail with a concrete trace.
        let src = r#"
            rule "balance" when queueVariance > 4 then fireOperation(BALANCE_LOAD); end
        "#;
        let rules = parse_rules(src).unwrap();
        let spec = Spec::default()
            .violation(throughput_violation(0.4, f64::INFINITY).unwrap())
            .recovery_k(4);
        let report = ModelChecker::new(schema())
            .check("stuck", &rules, &ParamTable::new(), &spec)
            .unwrap();
        let cex = report
            .recovery
            .as_ref()
            .unwrap()
            .counterexample()
            .expect("recovery must fail");
        assert_eq!(cex.property, "recovery");
        assert_eq!(cex.steps.len(), 5); // violating state + k successors
        assert!(cex.steps[0].beans["departureRate"] < 0.4);
    }

    #[test]
    fn escalation_discharges_recovery() {
        // Starved farm (arrival below the floor): nothing to do locally,
        // but RAISE_VIOLATION escalates — recovery holds by escalation.
        let report = ModelChecker::new(schema())
            .check("farm", &stdlib::farm_rules(), &farm_params(), &farm_spec())
            .unwrap();
        assert!(report.recovery.as_ref().unwrap().proved());
        // With escalation disabled the starved states become stuck.
        let spec = farm_spec().escalation_discharges(false);
        let report = ModelChecker::new(schema())
            .check("farm", &stdlib::farm_rules(), &farm_params(), &spec)
            .unwrap();
        assert!(!report.recovery.as_ref().unwrap().proved());
    }

    #[test]
    fn composed_farm_pipeline_recovers_through_hierarchy() {
        // Child farm + parent pipeline: starvation escalates as
        // notEnoughTasks, the parent raises the source rate, arrival
        // rises, the farm recovers — provable only in the composition.
        let spec = Spec::default()
            .violation(throughput_violation(0.4, 0.8).unwrap())
            .throughput_plant()
            .initial("numWorkers", 0.0, 16.0)
            .waiver(Condition::flag("endStream"))
            .env("endStream", EnvMove::UpOnly)
            .escalation_discharges(false)
            .recovery_k(12);
        let report = ModelChecker::new(schema())
            .check_composed(
                ("farm", &stdlib::farm_rules(), &farm_params()),
                ("pipeline", &stdlib::pipeline_rules(), &ParamTable::new()),
                &spec,
            )
            .unwrap();
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn unbound_params_are_an_error() {
        let err = ModelChecker::new(schema())
            .check(
                "farm",
                &stdlib::farm_rules(),
                &ParamTable::new(),
                &Spec::default(),
            )
            .unwrap_err();
        assert!(matches!(err, McError::UnboundParams(_)));
    }

    #[test]
    fn state_budget_is_enforced() {
        let mut spec = farm_spec();
        spec.max_states = 3;
        let err = ModelChecker::new(schema())
            .check("farm", &stdlib::farm_rules(), &farm_params(), &spec)
            .unwrap_err();
        assert_eq!(err, McError::StateSpaceExceeded(3));
    }
}
