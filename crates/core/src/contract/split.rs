//! Contract splitting — the paper's P_spl problem.
//!
//! §3.1: *"A strategy must be devised that allows splitting of a contract c
//! of a top level manager into a set of sub-contracts c₁…c_m to be
//! propagated to the nested managers."* No general solution exists; the
//! paper adopts *domain-specific heuristics* keyed on the well-known
//! performance models of the patterns:
//!
//! * **pipeline / throughput** — a pipeline's throughput is bounded by its
//!   slowest stage, so a throughput SLA splits into *identical* throughput
//!   SLAs for every stage;
//! * **pipeline / parallelism degree** — split *proportionally* to the
//!   relative computational weight of the stages;
//! * **farm** — workers receive `bestEffort` (paper §4.2: "it passes the
//!   AM_Wi a c_bestEffort contract in accordance with the definition of
//!   task farm BS");
//! * **security** — secure-domain sets are global facts and propagate
//!   unchanged to every child.

use crate::bs::BsExpr;
use crate::contract::Contract;

/// A sub-contract assigned to a named child.
#[derive(Debug, Clone, PartialEq)]
pub struct SubContract {
    /// Child node name (a [`BsExpr`] child of the split node).
    pub child: String,
    /// The contract the child must ensure.
    pub contract: Contract,
}

/// Splits `contract` at skeleton node `node` into sub-contracts for its
/// direct children. Leaves split to nothing (they have no children).
pub fn split(contract: &Contract, node: &BsExpr) -> Vec<SubContract> {
    match node {
        BsExpr::Seq { .. } => Vec::new(),
        BsExpr::Farm { worker, .. } => split_farm(contract, worker),
        BsExpr::Pipe { stages, .. } => split_pipe(contract, stages),
    }
}

fn split_farm(contract: &Contract, worker: &BsExpr) -> Vec<SubContract> {
    // Workers receive best-effort, conjoined with any security goal (a
    // boolean concern cannot be weakened by delegation).
    let base = match contract.secure_domain_set() {
        Some(domains) if !domains.is_empty() => {
            Contract::all([Contract::BestEffort, Contract::SecureDomains(domains)])
        }
        _ => Contract::BestEffort,
    };
    vec![SubContract {
        child: worker.name().to_owned(),
        contract: base,
    }]
}

fn split_pipe(contract: &Contract, stages: &[BsExpr]) -> Vec<SubContract> {
    let throughput = contract.throughput_bounds();
    let par_degree = contract.par_degree_bounds();
    let security = contract.secure_domain_set();
    let total_weight: f64 = stages.iter().map(BsExpr::weight).sum();

    stages
        .iter()
        .map(|stage| {
            let mut parts = Vec::new();
            if let Some((lo, hi)) = throughput {
                // Identical stage SLAs: the pipeline delivers the minimum
                // over stages, so every stage holding [lo, hi] keeps the
                // composition inside [lo, hi].
                parts.push(if hi.is_finite() {
                    Contract::ThroughputRange { lo, hi }
                } else {
                    Contract::MinThroughput(lo)
                });
            }
            if let Some((min, max)) = par_degree {
                // Proportional split by relative stage weight; every stage
                // keeps at least one worker.
                let share = if total_weight > 0.0 {
                    stage.weight() / total_weight
                } else {
                    1.0 / stages.len() as f64
                };
                let smin = ((f64::from(min) * share).floor() as u32).max(1);
                let smax = ((f64::from(max) * share).ceil() as u32).max(smin);
                parts.push(Contract::ParDegree {
                    min: smin,
                    max: smax,
                });
            }
            if let Some(domains) = &security {
                if !domains.is_empty() {
                    parts.push(Contract::SecureDomains(domains.clone()));
                }
            }
            let contract = if parts.is_empty() {
                Contract::BestEffort
            } else {
                Contract::all(parts)
            };
            SubContract {
                child: stage.name().to_owned(),
                contract,
            }
        })
        .collect()
}

/// The pipeline performance model used by the splitting heuristic and by
/// the soundness property tests: the delivered throughput of a pipeline is
/// the minimum of its stages' throughputs.
pub fn pipeline_throughput(stage_throughputs: &[f64]) -> f64 {
    stage_throughputs
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
}

/// The farm performance model: `n` workers of per-worker service time `ts`
/// deliver up to `n / ts` tasks/s, capped by the input arrival rate.
pub fn farm_throughput(workers: u32, service_time: f64, arrival_rate: f64) -> f64 {
    if service_time <= 0.0 {
        return arrival_rate;
    }
    (f64::from(workers) / service_time).min(arrival_rate)
}

/// The minimum parallelism degree a farm needs to sustain `rate` tasks/s at
/// per-worker service time `ts` — the "optimal initial value" heuristic the
/// paper cites from its earlier work (ref. \[10\]).
pub fn optimal_farm_workers(rate: f64, service_time: f64) -> u32 {
    if rate <= 0.0 || service_time <= 0.0 {
        return 1;
    }
    (rate * service_time).ceil().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_right() -> BsExpr {
        BsExpr::pipe(
            "app",
            vec![
                BsExpr::seq("producer"),
                BsExpr::farm("filter", BsExpr::seq("worker"), 3),
                BsExpr::seq("consumer"),
            ],
        )
    }

    #[test]
    fn pipeline_throughput_contract_replicates() {
        // Paper §4.2: "As the topmost behavioural skeleton is a pipeline,
        // its manager AM_A simply forwards the contract to the stage
        // managers."
        let c = Contract::throughput_range(0.3, 0.7);
        let subs = split(&c, &fig2_right());
        assert_eq!(subs.len(), 3);
        for sub in &subs {
            assert_eq!(sub.contract, c, "stage {} got {}", sub.child, sub.contract);
        }
        assert_eq!(subs[0].child, "producer");
        assert_eq!(subs[1].child, "filter");
        assert_eq!(subs[2].child, "consumer");
    }

    #[test]
    fn min_throughput_splits_to_min_throughput() {
        let c = Contract::min_throughput(0.6);
        let subs = split(&c, &fig2_right());
        for sub in subs {
            assert_eq!(sub.contract, Contract::min_throughput(0.6));
        }
    }

    #[test]
    fn farm_gives_workers_best_effort() {
        let farm = BsExpr::farm("filter", BsExpr::seq("worker"), 4);
        let subs = split(&Contract::throughput_range(0.3, 0.7), &farm);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].child, "worker");
        assert_eq!(subs[0].contract, Contract::BestEffort);
    }

    #[test]
    fn par_degree_splits_proportionally_to_weight() {
        let pipe = BsExpr::pipe(
            "p",
            vec![
                BsExpr::seq_weighted("light", 1.0),
                BsExpr::seq_weighted("heavy", 3.0),
            ],
        );
        let subs = split(&Contract::par_degree(4, 8), &pipe);
        let light = &subs[0].contract;
        let heavy = &subs[1].contract;
        assert_eq!(light.par_degree_bounds(), Some((1, 2)));
        assert_eq!(heavy.par_degree_bounds(), Some((3, 6)));
    }

    #[test]
    fn par_degree_split_never_starves_a_stage() {
        let pipe = BsExpr::pipe(
            "p",
            vec![
                BsExpr::seq_weighted("tiny", 0.01),
                BsExpr::seq_weighted("huge", 100.0),
            ],
        );
        let subs = split(&Contract::par_degree(2, 4), &pipe);
        for sub in subs {
            let (min, max) = sub.contract.par_degree_bounds().unwrap();
            assert!(min >= 1);
            assert!(max >= min);
        }
    }

    #[test]
    fn security_goal_propagates_everywhere() {
        let c = Contract::all([
            Contract::throughput_range(0.3, 0.7),
            Contract::secure_domains(["untrusted_ip_domain_A"]),
        ]);
        let subs = split(&c, &fig2_right());
        for sub in &subs {
            let domains = sub.contract.secure_domain_set().unwrap();
            assert!(domains.contains("untrusted_ip_domain_A"), "{}", sub.child);
        }
        // ...including through a farm to its workers.
        let farm = fig2_right().find("filter").unwrap().clone();
        let farm_subs = split(&c, &farm);
        assert!(farm_subs[0].contract.secure_domain_set().is_some());
        assert!(!farm_subs[0].contract.is_best_effort());
    }

    #[test]
    fn best_effort_splits_to_best_effort() {
        let subs = split(&Contract::BestEffort, &fig2_right());
        for sub in subs {
            assert!(sub.contract.is_best_effort());
        }
    }

    #[test]
    fn leaves_split_to_nothing() {
        assert!(split(&Contract::min_throughput(1.0), &BsExpr::seq("s")).is_empty());
    }

    #[test]
    fn split_soundness_on_pipeline_model() {
        // If every stage meets the identical sub-contract, the pipeline
        // model (min over stages) meets the parent contract.
        let c = Contract::throughput_range(0.3, 0.7);
        let (lo, hi) = c.throughput_bounds().unwrap();
        // Any per-stage throughputs inside [lo, hi]:
        let stages = [0.45, 0.7, 0.3];
        let composed = pipeline_throughput(&stages);
        assert!(composed >= lo && composed <= hi);
    }

    #[test]
    fn farm_model_caps_at_arrival() {
        assert!((farm_throughput(4, 5.0, 10.0) - 0.8).abs() < 1e-12);
        assert!((farm_throughput(100, 5.0, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(farm_throughput(4, 0.0, 2.0), 2.0);
    }

    #[test]
    fn optimal_workers_heuristic() {
        // 0.6 task/s at 5 s/task needs ceil(3) = 3 workers (Fig. 3's
        // final configuration shape).
        assert_eq!(optimal_farm_workers(0.6, 5.0), 3);
        assert_eq!(optimal_farm_workers(0.6, 5.1), 4);
        assert_eq!(optimal_farm_workers(0.0, 5.0), 1);
        assert_eq!(optimal_farm_workers(1.0, 0.0), 1);
    }
}
