//! Non-functional concerns.
//!
//! A *concern* is the first of the three dimensions along which the paper
//! characterises autonomic managers (§3, Fig. 1 left): what aspect of "how
//! the result is computed" a manager is responsible for. The paper's
//! running examples are performance and security; fault tolerance and
//! power are listed as further classic concerns.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A non-functional concern an autonomic manager can be responsible for.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Concern {
    /// Throughput / service-time optimisation and tuning.
    Performance,
    /// Data/code confidentiality and integrity (SSL vs plain links).
    Security,
    /// Tolerating worker/node failures.
    FaultTolerance,
    /// Energy consumption.
    Power,
    /// An application-specific concern.
    Custom(String),
}

impl Concern {
    /// Whether the concern is *boolean* in the paper's sense (§3.2):
    /// "data and code communication is either secure or it is not".
    /// Boolean concerns are given priority over quantitative ones when a
    /// general manager arbitrates between per-concern managers.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Concern::Security)
    }

    /// Arbitration priority for multi-concern coordination: higher wins.
    /// Boolean concerns outrank quantitative ones; among our built-ins,
    /// security > fault tolerance > performance > power, with custom
    /// concerns lowest (they can be re-ranked by wrapping the manager).
    pub fn priority(&self) -> u8 {
        match self {
            Concern::Security => 100,
            Concern::FaultTolerance => 80,
            Concern::Performance => 60,
            Concern::Power => 40,
            Concern::Custom(_) => 20,
        }
    }
}

impl fmt::Display for Concern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Concern::Performance => write!(f, "performance"),
            Concern::Security => write!(f, "security"),
            Concern::FaultTolerance => write!(f, "fault-tolerance"),
            Concern::Power => write!(f, "power"),
            Concern::Custom(name) => write!(f, "custom:{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_is_boolean() {
        assert!(Concern::Security.is_boolean());
        assert!(!Concern::Performance.is_boolean());
        assert!(!Concern::Custom("x".into()).is_boolean());
    }

    #[test]
    fn priorities_rank_boolean_first() {
        assert!(Concern::Security.priority() > Concern::Performance.priority());
        assert!(Concern::Performance.priority() > Concern::Power.priority());
        assert!(Concern::FaultTolerance.priority() > Concern::Performance.priority());
        assert!(Concern::Custom("x".into()).priority() < Concern::Power.priority());
    }

    #[test]
    fn display_names() {
        assert_eq!(Concern::Performance.to_string(), "performance");
        assert_eq!(Concern::Custom("gdpr".into()).to_string(), "custom:gdpr");
    }

    #[test]
    fn serde_roundtrip() {
        let c = Concern::Custom("gdpr".into());
        let json = serde_json_like(&c);
        assert!(json.contains("gdpr"));
    }

    // serde_json is not a dependency of this crate; a tiny smoke check via
    // the Debug of the Serialize impl suffices (full JSON round-trips are
    // covered in bskel-sim where serde_json is available).
    fn serde_json_like(c: &Concern) -> String {
        format!("{c:?}")
    }
}
