//! Multi-concern coordination (paper §3.2).
//!
//! When several non-functional concerns are managed at once, the paper
//! identifies the MM design point — one manager (hierarchy) per concern
//! plus a *general manager* (GM) orchestrating them — and a **two-phase
//! protocol** for actions that cross concern boundaries:
//!
//! 1. the initiating manager *expresses the intent* (e.g. "AM_perf intends
//!    to add a worker on node n in `untrusted_ip_domain_A`");
//! 2. the other managers *react* (AM_sec prompts securing of the
//!    communications to/from n — an [`Obligation`] applied **before** the
//!    action is actuated);
//! 3. the initiating manager *instantiates the new secure worker*.
//!
//! Boolean concerns (security) have priority over quantitative ones
//! (performance): a veto from a higher-priority concern aborts the intent.
//! Without the protocol there is a window in which tasks flow to the new
//! worker over a plain channel — the `ablation_two_phase` experiment
//! measures exactly that window.

use crate::concern::Concern;
use crate::events::{EventKind, EventLog};
use std::collections::BTreeSet;
use std::fmt;

/// A node of the (possibly virtualised) execution environment, as seen by
/// concern managers when reviewing intents.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    /// Node identifier.
    pub id: String,
    /// IP domain the node belongs to (paper: `untrusted_ip_domain_A`).
    pub domain: String,
    /// Whether the domain is trusted (private network segments).
    pub trusted: bool,
    /// Relative speed of the node (1.0 = reference core).
    pub speed: f64,
}

impl NodeInfo {
    /// A trusted node at reference speed.
    pub fn trusted(id: impl Into<String>, domain: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            domain: domain.into(),
            trusted: true,
            speed: 1.0,
        }
    }

    /// An untrusted node at reference speed.
    pub fn untrusted(id: impl Into<String>, domain: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            domain: domain.into(),
            trusted: false,
            speed: 1.0,
        }
    }

    /// Sets the relative speed (builder style).
    pub fn with_speed(mut self, speed: f64) -> Self {
        self.speed = speed;
        self
    }
}

/// The environment state concern managers review intents against: the node
/// inventory, which node channels are currently secured, and which nodes
/// are occupied by running activities.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnvView {
    /// Known nodes.
    pub nodes: Vec<NodeInfo>,
    /// Node ids whose channels currently run the secure protocol.
    pub secured: BTreeSet<String>,
    /// Node ids currently hosting activities (cores drawing power).
    pub in_use: BTreeSet<String>,
}

impl EnvView {
    /// Creates a view over a node inventory; no channels secured yet.
    pub fn new(nodes: Vec<NodeInfo>) -> Self {
        Self {
            nodes,
            secured: BTreeSet::new(),
            in_use: BTreeSet::new(),
        }
    }

    /// Looks a node up.
    pub fn node(&self, id: &str) -> Option<&NodeInfo> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Whether the channel to `node` runs the secure protocol.
    pub fn is_secured(&self, node: &str) -> bool {
        self.secured.contains(node)
    }

    /// Marks the channel to `node` secure.
    pub fn secure(&mut self, node: &str) {
        self.secured.insert(node.to_owned());
    }

    /// Marks a node occupied (after the caller actuates a committed
    /// worker-placement intent).
    pub fn occupy(&mut self, node: &str) {
        self.in_use.insert(node.to_owned());
    }

    /// Marks a node free again.
    pub fn vacate(&mut self, node: &str) {
        self.in_use.remove(node);
    }

    /// Nodes currently in use.
    pub fn in_use_count(&self) -> usize {
        self.in_use.len()
    }
}

/// A reconfiguration intent expressed by a concern manager.
#[derive(Debug, Clone, PartialEq)]
pub enum Intent {
    /// Recruit `node` and instantiate a worker on it.
    AddWorkerOn {
        /// Target node id.
        node: String,
    },
    /// Migrate an activity between nodes.
    Migrate {
        /// Current node id.
        from: String,
        /// Destination node id.
        to: String,
    },
    /// Change a producer's emission rate.
    SetRate(
        /// New rate, tasks/s.
        f64,
    ),
}

impl fmt::Display for Intent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intent::AddWorkerOn { node } => write!(f, "addWorkerOn({node})"),
            Intent::Migrate { from, to } => write!(f, "migrate({from}→{to})"),
            Intent::SetRate(r) => write!(f, "setRate({r})"),
        }
    }
}

/// Something a reviewing concern requires to happen *before* the intent is
/// actuated.
#[derive(Debug, Clone, PartialEq)]
pub enum Obligation {
    /// Secure the channel to `node` first (SSL instead of plain sockets).
    SecureChannel {
        /// Node whose channel must be secured.
        node: String,
    },
    /// Cap a rate change.
    LimitRate {
        /// Maximum admissible rate, tasks/s.
        max: f64,
    },
}

/// A concern manager's verdict on an intent.
#[derive(Debug, Clone, PartialEq)]
pub enum Review {
    /// No objection.
    Approve,
    /// Approve provided the obligations are fulfilled before commit.
    ApproveWith(Vec<Obligation>),
    /// Refuse outright.
    Veto {
        /// Why.
        reason: String,
    },
}

/// The per-concern participant in the GM's two-phase protocol.
///
/// The paper (§3.2): "all managers make available means to ask for contract
/// satisfiability of a given system configuration … and ways to intervene
/// to finalize the configuration before it is actually used" — that is
/// [`ConcernManager::review`] and [`ConcernManager::prepare`].
pub trait ConcernManager: Send {
    /// The concern this manager is responsible for.
    fn concern(&self) -> Concern;

    /// Phase 1: would the post-intent configuration still satisfy this
    /// concern's contract? Returns obligations needed to make it so.
    fn review(&self, intent: &Intent, env: &EnvView) -> Review;

    /// Phase 2: fulfil one of this manager's own obligations, adjusting
    /// the environment before the intent commits.
    fn prepare(
        &mut self,
        intent: &Intent,
        obligation: &Obligation,
        env: &mut EnvView,
    ) -> Result<(), String>;
}

/// Outcome of proposing an intent to the general manager.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Whether the intent may now be actuated.
    pub committed: bool,
    /// Obligations applied during phase 2, with the concern that imposed
    /// each.
    pub obligations: Vec<(Concern, Obligation)>,
    /// The concern that vetoed, if any.
    pub vetoed_by: Option<Concern>,
    /// Veto/failure reason, if any.
    pub reason: Option<String>,
}

/// The general manager orchestrating per-concern managers (the MM design
/// point of §3.2).
pub struct GeneralManager {
    concerns: Vec<Box<dyn ConcernManager>>,
    log: EventLog,
}

impl GeneralManager {
    /// Creates a GM logging into `log`.
    pub fn new(log: EventLog) -> Self {
        Self {
            concerns: Vec::new(),
            log,
        }
    }

    /// Registers a concern manager. Managers are consulted in descending
    /// concern priority (boolean concerns first, per §3.2).
    pub fn register(&mut self, cm: Box<dyn ConcernManager>) {
        self.concerns.push(cm);
        self.concerns
            .sort_by_key(|c| std::cmp::Reverse(c.concern().priority()));
    }

    /// Registered concerns, in consultation order.
    pub fn concerns(&self) -> Vec<Concern> {
        self.concerns.iter().map(|c| c.concern()).collect()
    }

    /// Runs the two-phase protocol for `intent` against `env`.
    ///
    /// On commit, `env` reflects all fulfilled obligations (e.g. channels
    /// secured); the *caller* then actuates the intent itself — the
    /// protocol guarantees the configuration was finalised "before it is
    /// actually used".
    pub fn propose(&mut self, intent: &Intent, env: &mut EnvView, now: f64) -> Decision {
        self.log.push(
            now,
            "GM",
            EventKind::Other(format!("intent:{intent}")),
            None,
        );

        // Phase 1: collect reviews in priority order.
        let mut pending: Vec<(usize, Obligation)> = Vec::new();
        for (i, cm) in self.concerns.iter().enumerate() {
            match cm.review(intent, env) {
                Review::Approve => {}
                Review::ApproveWith(obls) => {
                    pending.extend(obls.into_iter().map(|o| (i, o)));
                }
                Review::Veto { reason } => {
                    let concern = cm.concern();
                    self.log.push(
                        now,
                        "GM",
                        EventKind::Other(format!("veto:{concern}")),
                        Some(reason.clone()),
                    );
                    return Decision {
                        committed: false,
                        obligations: Vec::new(),
                        vetoed_by: Some(concern),
                        reason: Some(reason),
                    };
                }
            }
        }

        // Phase 2: fulfil obligations (priority order is preserved because
        // reviews were collected in that order).
        let mut applied = Vec::new();
        for (i, obligation) in pending {
            let concern = self.concerns[i].concern();
            match self.concerns[i].prepare(intent, &obligation, env) {
                Ok(()) => {
                    self.log.push(
                        now,
                        "GM",
                        EventKind::Other(format!("prepared:{concern}")),
                        Some(format!("{obligation:?}")),
                    );
                    applied.push((concern, obligation));
                }
                Err(reason) => {
                    self.log.push(
                        now,
                        "GM",
                        EventKind::Other(format!("prepareFailed:{concern}")),
                        Some(reason.clone()),
                    );
                    return Decision {
                        committed: false,
                        obligations: applied,
                        vetoed_by: Some(concern),
                        reason: Some(reason),
                    };
                }
            }
        }

        self.log.push(
            now,
            "GM",
            EventKind::Other(format!("commit:{intent}")),
            None,
        );
        Decision {
            committed: true,
            obligations: applied,
            vetoed_by: None,
            reason: None,
        }
    }
}

/// The security concern manager: enforces a secure-domains contract
/// (channels to nodes in untrusted domains must run the secure protocol).
#[derive(Debug, Clone)]
pub struct SecurityConcern {
    /// Domains whose nodes require secured channels.
    pub untrusted_domains: BTreeSet<String>,
}

impl SecurityConcern {
    /// Creates a security manager for the given untrusted domains.
    pub fn new<I, S>(domains: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            untrusted_domains: domains.into_iter().map(Into::into).collect(),
        }
    }

    fn needs_securing(&self, env: &EnvView, node: &str) -> bool {
        match env.node(node) {
            Some(info) => {
                (self.untrusted_domains.contains(&info.domain) || !info.trusted)
                    && !env.is_secured(node)
            }
            // Unknown node: fail safe — it needs securing.
            None => !env.is_secured(node),
        }
    }
}

impl ConcernManager for SecurityConcern {
    fn concern(&self) -> Concern {
        Concern::Security
    }

    fn review(&self, intent: &Intent, env: &EnvView) -> Review {
        let target = match intent {
            Intent::AddWorkerOn { node } => Some(node),
            Intent::Migrate { to, .. } => Some(to),
            Intent::SetRate(_) => None,
        };
        match target {
            Some(node) if self.needs_securing(env, node) => {
                Review::ApproveWith(vec![Obligation::SecureChannel { node: node.clone() }])
            }
            _ => Review::Approve,
        }
    }

    fn prepare(
        &mut self,
        _intent: &Intent,
        obligation: &Obligation,
        env: &mut EnvView,
    ) -> Result<(), String> {
        match obligation {
            Obligation::SecureChannel { node } => {
                env.secure(node);
                Ok(())
            }
            other => Err(format!("security cannot fulfil {other:?}")),
        }
    }
}

/// The performance concern manager's GM-facing half: it reviews *other*
/// managers' intents (its own planning lives in the `AutonomicManager`
/// hierarchy). It vetoes deployments on nodes too slow to help.
#[derive(Debug, Clone)]
pub struct PerformanceConcern {
    /// Minimum relative node speed worth recruiting.
    pub min_node_speed: f64,
    /// Maximum admissible producer rate, if any.
    pub max_rate: Option<f64>,
}

impl Default for PerformanceConcern {
    fn default() -> Self {
        Self {
            min_node_speed: 0.25,
            max_rate: None,
        }
    }
}

impl ConcernManager for PerformanceConcern {
    fn concern(&self) -> Concern {
        Concern::Performance
    }

    fn review(&self, intent: &Intent, env: &EnvView) -> Review {
        match intent {
            Intent::AddWorkerOn { node } | Intent::Migrate { to: node, .. } => {
                match env.node(node) {
                    Some(info) if info.speed < self.min_node_speed => Review::Veto {
                        reason: format!(
                            "node {node} speed {} below minimum {}",
                            info.speed, self.min_node_speed
                        ),
                    },
                    Some(_) => Review::Approve,
                    None => Review::Veto {
                        reason: format!("unknown node {node}"),
                    },
                }
            }
            Intent::SetRate(r) => match self.max_rate {
                Some(max) if *r > max => Review::ApproveWith(vec![Obligation::LimitRate { max }]),
                _ => Review::Approve,
            },
        }
    }

    fn prepare(
        &mut self,
        _intent: &Intent,
        obligation: &Obligation,
        _env: &mut EnvView,
    ) -> Result<(), String> {
        match obligation {
            Obligation::LimitRate { .. } => Ok(()),
            other => Err(format!("performance cannot fulfil {other:?}")),
        }
    }
}

/// The power concern manager: caps the number of occupied nodes (cores
/// drawing power). Power is a *quantitative* concern (paper Fig. 1 left
/// lists it among the classic concerns); unlike security it does not veto
/// structurally — it vetoes only past its budget.
#[derive(Debug, Clone)]
pub struct PowerConcern {
    /// Maximum nodes that may be occupied simultaneously.
    pub max_nodes: usize,
}

impl ConcernManager for PowerConcern {
    fn concern(&self) -> Concern {
        Concern::Power
    }

    fn review(&self, intent: &Intent, env: &EnvView) -> Review {
        match intent {
            Intent::AddWorkerOn { .. } if env.in_use_count() >= self.max_nodes => Review::Veto {
                reason: format!(
                    "power budget exhausted ({} of {} nodes in use)",
                    env.in_use_count(),
                    self.max_nodes
                ),
            },
            // Migration is power-neutral (one node vacated per node
            // occupied); rate changes do not recruit nodes.
            _ => Review::Approve,
        }
    }

    fn prepare(
        &mut self,
        _intent: &Intent,
        obligation: &Obligation,
        _env: &mut EnvView,
    ) -> Result<(), String> {
        Err(format!("power imposes no obligations, got {obligation:?}"))
    }
}

/// Linear-combination arbitration between quantitative concerns — the
/// paper's §3.2 suggestion for deriving a summary contract c̄ from
/// c₁…c_h: "it may be possible to devise c̄ from c₁,…,c_h using some sort
/// of linear combination".
///
/// Concretely for the performance/power pair on a farm: given the farm
/// model (throughput `min(n/ts, λ)`) and a per-core power cost, the
/// summary utility of running `n` workers is
///
/// ```text
/// U(n) = w_perf · throughput(n)/target  −  w_power · n/max_workers
/// ```
///
/// [`tradeoff::choose_par_degree`] returns the `n` maximising `U` — the parallelism
/// degree a combined perf+power manager would adopt as its working target.
pub mod tradeoff {
    /// Inputs of the summary-contract optimisation.
    #[derive(Debug, Clone, Copy)]
    pub struct TradeoffModel {
        /// Per-task service time on a reference core, seconds.
        pub service_time: f64,
        /// Offered load, tasks/s.
        pub arrival_rate: f64,
        /// Throughput target the performance goal normalises against.
        pub target_rate: f64,
        /// Largest admissible parallelism degree.
        pub max_workers: u32,
    }

    /// Farm throughput model (same as `contract::split::farm_throughput`).
    fn throughput(m: &TradeoffModel, n: u32) -> f64 {
        if m.service_time <= 0.0 {
            return m.arrival_rate;
        }
        (f64::from(n) / m.service_time).min(m.arrival_rate)
    }

    /// The linear-combination utility of `n` workers.
    pub fn utility(m: &TradeoffModel, n: u32, w_perf: f64, w_power: f64) -> f64 {
        let perf = (throughput(m, n) / m.target_rate).min(1.5);
        let power = f64::from(n) / f64::from(m.max_workers.max(1));
        w_perf * perf - w_power * power
    }

    /// The parallelism degree maximising the weighted utility (ties break
    /// toward fewer cores — the power-frugal choice).
    pub fn choose_par_degree(m: &TradeoffModel, w_perf: f64, w_power: f64) -> u32 {
        (1..=m.max_workers.max(1))
            .map(|n| (n, utility(m, n, w_perf, w_power)))
            .fold((1u32, f64::NEG_INFINITY), |(bn, bu), (n, u)| {
                if u > bu + 1e-12 {
                    (n, u)
                } else {
                    (bn, bu)
                }
            })
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_env() -> EnvView {
        EnvView::new(vec![
            NodeInfo::trusted("n0", "lab"),
            NodeInfo::trusted("n1", "lab"),
            NodeInfo::untrusted("n2", "untrusted_ip_domain_A"),
            NodeInfo::untrusted("n3", "untrusted_ip_domain_A").with_speed(0.1),
        ])
    }

    fn gm_with_both() -> GeneralManager {
        let mut gm = GeneralManager::new(EventLog::new());
        gm.register(Box::new(PerformanceConcern::default()));
        gm.register(Box::new(SecurityConcern::new(["untrusted_ip_domain_A"])));
        gm
    }

    #[test]
    fn security_consulted_before_performance() {
        let gm = gm_with_both();
        assert_eq!(
            gm.concerns(),
            vec![Concern::Security, Concern::Performance],
            "boolean concern outranks quantitative"
        );
    }

    #[test]
    fn trusted_node_commits_without_obligations() {
        let mut gm = gm_with_both();
        let mut env = mixed_env();
        let d = gm.propose(&Intent::AddWorkerOn { node: "n0".into() }, &mut env, 0.0);
        assert!(d.committed);
        assert!(d.obligations.is_empty());
        assert!(!env.is_secured("n0"), "no needless encryption overhead");
    }

    #[test]
    fn untrusted_node_is_secured_before_commit() {
        // The paper's two-phase example: AM_perf wants a worker on a node
        // in untrusted_ip_domain_A; AM_sec secures the channel first.
        let mut gm = gm_with_both();
        let mut env = mixed_env();
        let d = gm.propose(&Intent::AddWorkerOn { node: "n2".into() }, &mut env, 0.0);
        assert!(d.committed);
        assert_eq!(d.obligations.len(), 1);
        assert_eq!(d.obligations[0].0, Concern::Security);
        assert!(env.is_secured("n2"), "channel secured before actuation");
    }

    #[test]
    fn already_secured_node_needs_no_obligation() {
        let mut gm = gm_with_both();
        let mut env = mixed_env();
        env.secure("n2");
        let d = gm.propose(&Intent::AddWorkerOn { node: "n2".into() }, &mut env, 0.0);
        assert!(d.committed);
        assert!(d.obligations.is_empty());
    }

    #[test]
    fn slow_node_vetoed_by_performance() {
        let mut gm = gm_with_both();
        let mut env = mixed_env();
        let d = gm.propose(&Intent::AddWorkerOn { node: "n3".into() }, &mut env, 0.0);
        assert!(!d.committed);
        assert_eq!(d.vetoed_by, Some(Concern::Performance));
        // Security had already been consulted (higher priority), but the
        // performance veto aborts before phase 2 — nothing was secured.
        assert!(!env.is_secured("n3"));
    }

    #[test]
    fn unknown_node_vetoed() {
        let mut gm = gm_with_both();
        let mut env = mixed_env();
        let d = gm.propose(
            &Intent::AddWorkerOn {
                node: "ghost".into(),
            },
            &mut env,
            0.0,
        );
        assert!(!d.committed);
        assert!(d.reason.unwrap().contains("unknown node"));
    }

    #[test]
    fn migration_target_is_reviewed() {
        let mut gm = gm_with_both();
        let mut env = mixed_env();
        let d = gm.propose(
            &Intent::Migrate {
                from: "n0".into(),
                to: "n2".into(),
            },
            &mut env,
            0.0,
        );
        assert!(d.committed);
        assert!(env.is_secured("n2"));
    }

    #[test]
    fn rate_intents_bypass_security() {
        let mut gm = gm_with_both();
        let mut env = mixed_env();
        let d = gm.propose(&Intent::SetRate(2.0), &mut env, 0.0);
        assert!(d.committed);
        assert!(d.obligations.is_empty());
    }

    #[test]
    fn rate_cap_obligation() {
        let mut gm = GeneralManager::new(EventLog::new());
        gm.register(Box::new(PerformanceConcern {
            min_node_speed: 0.0,
            max_rate: Some(1.0),
        }));
        let mut env = mixed_env();
        let d = gm.propose(&Intent::SetRate(5.0), &mut env, 0.0);
        assert!(d.committed);
        assert_eq!(
            d.obligations,
            vec![(Concern::Performance, Obligation::LimitRate { max: 1.0 })]
        );
    }

    #[test]
    fn untrusted_flag_alone_triggers_securing() {
        // A node outside the contract's named domains but marked untrusted
        // still gets secured (fail-safe).
        let sec = SecurityConcern::new(Vec::<String>::new());
        let env = EnvView::new(vec![NodeInfo::untrusted("nx", "other_domain")]);
        match sec.review(&Intent::AddWorkerOn { node: "nx".into() }, &env) {
            Review::ApproveWith(obls) => {
                assert_eq!(obls, vec![Obligation::SecureChannel { node: "nx".into() }]);
            }
            other => panic!("expected obligation, got {other:?}"),
        }
    }

    #[test]
    fn gm_logs_protocol_steps() {
        let log = EventLog::new();
        let mut gm = GeneralManager::new(log.clone());
        gm.register(Box::new(SecurityConcern::new(["untrusted_ip_domain_A"])));
        let mut env = mixed_env();
        gm.propose(&Intent::AddWorkerOn { node: "n2".into() }, &mut env, 1.0);
        let rendered = log.render();
        assert!(rendered.contains("intent:addWorkerOn(n2)"), "{rendered}");
        assert!(rendered.contains("prepared:security"), "{rendered}");
        assert!(rendered.contains("commit:addWorkerOn(n2)"), "{rendered}");
    }

    #[test]
    fn env_view_basics() {
        let mut env = mixed_env();
        assert_eq!(env.node("n0").unwrap().domain, "lab");
        assert!(env.node("zz").is_none());
        assert!(!env.is_secured("n2"));
        env.secure("n2");
        assert!(env.is_secured("n2"));
        env.occupy("n0");
        env.occupy("n1");
        assert_eq!(env.in_use_count(), 2);
        env.vacate("n0");
        assert_eq!(env.in_use_count(), 1);
    }

    #[test]
    fn power_concern_caps_occupied_nodes() {
        let mut gm = GeneralManager::new(EventLog::new());
        gm.register(Box::new(PowerConcern { max_nodes: 2 }));
        gm.register(Box::new(SecurityConcern::new(["untrusted_ip_domain_A"])));
        let mut env = mixed_env();

        for node in ["n0", "n1"] {
            let d = gm.propose(&Intent::AddWorkerOn { node: node.into() }, &mut env, 0.0);
            assert!(d.committed, "{node} within budget");
            env.occupy(node);
        }
        let d = gm.propose(&Intent::AddWorkerOn { node: "n2".into() }, &mut env, 1.0);
        assert!(!d.committed);
        assert_eq!(d.vetoed_by, Some(Concern::Power));
        // ...and the security phase never secured the vetoed node.
        assert!(!env.is_secured("n2"));

        // Migration stays power-neutral: allowed at the cap.
        let d = gm.propose(
            &Intent::Migrate {
                from: "n0".into(),
                to: "n2".into(),
            },
            &mut env,
            2.0,
        );
        assert!(d.committed);
    }

    #[test]
    fn power_outranked_by_security_but_not_perf() {
        let mut gm = GeneralManager::new(EventLog::new());
        gm.register(Box::new(PowerConcern { max_nodes: 8 }));
        gm.register(Box::new(PerformanceConcern::default()));
        gm.register(Box::new(SecurityConcern::new(["d"])));
        assert_eq!(
            gm.concerns(),
            vec![Concern::Security, Concern::Performance, Concern::Power]
        );
    }

    #[test]
    fn tradeoff_extremes() {
        use tradeoff::{choose_par_degree, TradeoffModel};
        let m = TradeoffModel {
            service_time: 5.0,
            arrival_rate: 1.0,
            target_rate: 0.6,
            max_workers: 16,
        };
        // Pure performance: grow until throughput saturates at the
        // arrival rate (5 workers: 5/5 = 1.0 task/s = λ).
        assert_eq!(choose_par_degree(&m, 1.0, 0.0), 5);
        // Pure power: one core.
        assert_eq!(choose_par_degree(&m, 0.0, 1.0), 1);
    }

    #[test]
    fn tradeoff_is_monotone_in_power_weight() {
        use tradeoff::{choose_par_degree, TradeoffModel};
        let m = TradeoffModel {
            service_time: 10.0,
            arrival_rate: 2.0,
            target_rate: 1.0,
            max_workers: 32,
        };
        let mut last = u32::MAX;
        for w_power in [0.0, 0.2, 0.5, 1.0, 2.0, 5.0] {
            let n = choose_par_degree(&m, 1.0, w_power);
            assert!(n <= last, "more power weight must not add cores");
            last = n;
        }
        assert!(last >= 1);
    }

    #[test]
    fn tradeoff_utility_shape() {
        use tradeoff::{utility, TradeoffModel};
        let m = TradeoffModel {
            service_time: 5.0,
            arrival_rate: 1.0,
            target_rate: 0.6,
            max_workers: 16,
        };
        // Beyond saturation, extra workers only cost power.
        assert!(utility(&m, 5, 1.0, 0.5) > utility(&m, 10, 1.0, 0.5));
        // Below saturation with tiny power weight, more workers help.
        assert!(utility(&m, 3, 1.0, 0.01) > utility(&m, 1, 1.0, 0.01));
    }
}
