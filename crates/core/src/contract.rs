//! Contracts (SLAs) and their algebra.
//!
//! A contract is what the user agrees with the top-level manager and what
//! each manager, in turn, agrees with its children (paper §3.1): *"the
//! contract is described in a formalism appropriate to the non-functional
//! concern and represents the target for the autonomic activity"*. The
//! grammar here covers the contracts the paper's experiments use — a
//! minimum throughput (Fig. 3's `0.6 task/s`), a throughput range
//! (Fig. 4's `0.3–0.7 task/s`), best-effort (the farm→worker sub-contract),
//! producer output rates (the incRate/decRate contracts), parallelism
//! degrees, and the security concern's secure-domain sets — plus
//! conjunctions for multi-concern SLAs.

pub mod split;

use bskel_monitor::SensorSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A service-level agreement between a user/parent manager and a manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Contract {
    /// "Do your best": the sub-contract a farm manager hands its workers
    /// (paper §4.2 — workers are passive from the farm's viewpoint but
    /// locally autonomically optimise).
    BestEffort,
    /// Deliver at least this many tasks/s (Fig. 3).
    MinThroughput(f64),
    /// Keep delivered throughput inside `[lo, hi]` tasks/s (Fig. 4).
    ThroughputRange {
        /// Lower bound (tasks/s).
        lo: f64,
        /// Upper bound (tasks/s).
        hi: f64,
    },
    /// Emit output at `target` tasks/s within a relative `tolerance`
    /// (the producer contracts sent by incRate/decRate actions).
    OutputRate {
        /// Target emission rate (tasks/s).
        target: f64,
        /// Relative tolerance: the accepted band is
        /// `[target·(1−tolerance), target·(1+tolerance)]`.
        tolerance: f64,
    },
    /// Keep the parallelism degree inside `[min, max]` workers.
    ParDegree {
        /// Minimum parallelism degree.
        min: u32,
        /// Maximum parallelism degree.
        max: u32,
    },
    /// Security concern: communication with nodes in these (untrusted)
    /// domains must use a secure protocol (paper §3.2's
    /// `untrusted_ip_domain_A`).
    SecureDomains(BTreeSet<String>),
    /// Conjunction of contracts (multi-goal SLAs).
    All(Vec<Contract>),
}

/// Contract validation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ContractError {
    /// A numeric bound was negative, NaN or an empty/inverted range.
    InvalidBound(String),
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::InvalidBound(msg) => write!(f, "invalid contract bound: {msg}"),
        }
    }
}

impl std::error::Error for ContractError {}

impl Contract {
    /// `MinThroughput` builder.
    pub fn min_throughput(tasks_per_sec: f64) -> Self {
        Contract::MinThroughput(tasks_per_sec)
    }

    /// `ThroughputRange` builder.
    pub fn throughput_range(lo: f64, hi: f64) -> Self {
        Contract::ThroughputRange { lo, hi }
    }

    /// `OutputRate` builder with the default ±20% tolerance.
    pub fn output_rate(target: f64) -> Self {
        Contract::OutputRate {
            target,
            tolerance: 0.2,
        }
    }

    /// `ParDegree` builder.
    pub fn par_degree(min: u32, max: u32) -> Self {
        Contract::ParDegree { min, max }
    }

    /// `SecureDomains` builder.
    pub fn secure_domains<I, S>(domains: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Contract::SecureDomains(domains.into_iter().map(Into::into).collect())
    }

    /// Conjunction builder; flattens nested `All`s.
    pub fn all(parts: impl IntoIterator<Item = Contract>) -> Self {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Contract::All(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len == 1")
        } else {
            Contract::All(flat)
        }
    }

    /// Checks numeric sanity of all bounds.
    pub fn validate(&self) -> Result<(), ContractError> {
        let bad = |msg: String| Err(ContractError::InvalidBound(msg));
        match self {
            Contract::BestEffort | Contract::SecureDomains(_) => Ok(()),
            Contract::MinThroughput(t) => {
                if t.is_nan() || *t < 0.0 {
                    bad(format!("minThroughput {t}"))
                } else {
                    Ok(())
                }
            }
            Contract::ThroughputRange { lo, hi } => {
                if lo.is_nan() || hi.is_nan() || *lo < 0.0 || lo > hi {
                    bad(format!("throughputRange [{lo}, {hi}]"))
                } else {
                    Ok(())
                }
            }
            Contract::OutputRate { target, tolerance } => {
                if target.is_nan() || *target < 0.0 || !(0.0..1.0).contains(tolerance) {
                    bad(format!("outputRate {target} ±{tolerance}"))
                } else {
                    Ok(())
                }
            }
            Contract::ParDegree { min, max } => {
                if min > max {
                    bad(format!("parDegree [{min}, {max}]"))
                } else {
                    Ok(())
                }
            }
            Contract::All(parts) => parts.iter().try_for_each(Contract::validate),
        }
    }

    /// The delivered-throughput stripe `[lo, hi]` this contract implies,
    /// if any. `MinThroughput(t)` maps to `[t, +inf)`. For conjunctions the
    /// stripes intersect.
    pub fn throughput_bounds(&self) -> Option<(f64, f64)> {
        match self {
            Contract::MinThroughput(t) => Some((*t, f64::INFINITY)),
            Contract::ThroughputRange { lo, hi } => Some((*lo, *hi)),
            Contract::All(parts) => {
                let mut acc: Option<(f64, f64)> = None;
                for p in parts {
                    if let Some((lo, hi)) = p.throughput_bounds() {
                        acc = Some(match acc {
                            None => (lo, hi),
                            Some((alo, ahi)) => (alo.max(lo), ahi.min(hi)),
                        });
                    }
                }
                acc
            }
            _ => None,
        }
    }

    /// The output-rate band `[floor, ceil]` this contract implies, if any.
    pub fn output_rate_bounds(&self) -> Option<(f64, f64)> {
        match self {
            Contract::OutputRate { target, tolerance } => {
                Some((target * (1.0 - tolerance), target * (1.0 + tolerance)))
            }
            Contract::All(parts) => parts.iter().find_map(Contract::output_rate_bounds),
            _ => None,
        }
    }

    /// The parallelism-degree bounds `[min, max]`, if constrained.
    pub fn par_degree_bounds(&self) -> Option<(u32, u32)> {
        match self {
            Contract::ParDegree { min, max } => Some((*min, *max)),
            Contract::All(parts) => parts.iter().find_map(Contract::par_degree_bounds),
            _ => None,
        }
    }

    /// The set of domains requiring secure communication, if the contract
    /// carries a security goal. Conjunctions union their domain sets.
    pub fn secure_domain_set(&self) -> Option<BTreeSet<String>> {
        match self {
            Contract::SecureDomains(set) => Some(set.clone()),
            Contract::All(parts) => {
                let mut acc: Option<BTreeSet<String>> = None;
                for p in parts {
                    if let Some(set) = p.secure_domain_set() {
                        acc.get_or_insert_with(BTreeSet::new).extend(set);
                    }
                }
                acc
            }
            _ => None,
        }
    }

    /// Whether the contract is pure best-effort (no enforceable goal).
    pub fn is_best_effort(&self) -> bool {
        match self {
            Contract::BestEffort => true,
            Contract::All(parts) => parts.iter().all(Contract::is_best_effort),
            _ => false,
        }
    }

    /// Evaluates the *performance* goals of this contract against a sensor
    /// snapshot. Returns `None` when the contract carries no goal checkable
    /// from a snapshot (e.g. pure security contracts — those are checked by
    /// the security manager against deployment state instead).
    pub fn satisfied_by(&self, snap: &SensorSnapshot) -> Option<bool> {
        match self {
            Contract::BestEffort => Some(true),
            Contract::MinThroughput(t) => Some(snap.departure_rate >= *t),
            Contract::ThroughputRange { lo, hi } => {
                Some(snap.departure_rate >= *lo && snap.departure_rate <= *hi)
            }
            Contract::OutputRate { .. } => {
                let (lo, hi) = self.output_rate_bounds().expect("OutputRate has bounds");
                Some(snap.departure_rate >= lo && snap.departure_rate <= hi)
            }
            Contract::ParDegree { min, max } => {
                Some(snap.num_workers >= *min && snap.num_workers <= *max)
            }
            Contract::SecureDomains(_) => None,
            Contract::All(parts) => {
                let mut any = false;
                for p in parts {
                    match p.satisfied_by(snap) {
                        Some(false) => return Some(false),
                        Some(true) => any = true,
                        None => {}
                    }
                }
                any.then_some(true)
            }
        }
    }
}

impl fmt::Display for Contract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Contract::BestEffort => write!(f, "bestEffort"),
            Contract::MinThroughput(t) => write!(f, "minThroughput({t} task/s)"),
            Contract::ThroughputRange { lo, hi } => {
                write!(f, "throughputRange({lo}–{hi} task/s)")
            }
            Contract::OutputRate { target, tolerance } => {
                write!(f, "outputRate({target} task/s ±{:.0}%)", tolerance * 100.0)
            }
            Contract::ParDegree { min, max } => write!(f, "parDegree({min}–{max})"),
            Contract::SecureDomains(set) => {
                let names: Vec<&str> = set.iter().map(String::as_str).collect();
                write!(f, "secure({})", names.join(","))
            }
            Contract::All(parts) => {
                let texts: Vec<String> = parts.iter().map(Contract::to_string).collect();
                write!(f, "all[{}]", texts.join(" ∧ "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(departure: f64, workers: u32) -> SensorSnapshot {
        let mut s = SensorSnapshot::empty(0.0);
        s.departure_rate = departure;
        s.num_workers = workers;
        s
    }

    #[test]
    fn min_throughput_satisfaction() {
        let c = Contract::min_throughput(0.6);
        assert_eq!(c.satisfied_by(&snap(0.7, 4)), Some(true));
        assert_eq!(c.satisfied_by(&snap(0.5, 4)), Some(false));
        assert_eq!(c.throughput_bounds(), Some((0.6, f64::INFINITY)));
    }

    #[test]
    fn throughput_range_satisfaction() {
        let c = Contract::throughput_range(0.3, 0.7);
        assert_eq!(c.satisfied_by(&snap(0.5, 4)), Some(true));
        assert_eq!(c.satisfied_by(&snap(0.2, 4)), Some(false));
        assert_eq!(c.satisfied_by(&snap(0.8, 4)), Some(false));
        assert_eq!(
            c.satisfied_by(&snap(0.3, 4)),
            Some(true),
            "bounds inclusive"
        );
    }

    #[test]
    fn output_rate_band() {
        let c = Contract::output_rate(1.0);
        let (lo, hi) = c.output_rate_bounds().unwrap();
        assert!((lo - 0.8).abs() < 1e-12);
        assert!((hi - 1.2).abs() < 1e-12);
        assert_eq!(c.satisfied_by(&snap(1.1, 1)), Some(true));
        assert_eq!(c.satisfied_by(&snap(0.5, 1)), Some(false));
    }

    #[test]
    fn par_degree_satisfaction() {
        let c = Contract::par_degree(2, 8);
        assert_eq!(c.satisfied_by(&snap(0.0, 4)), Some(true));
        assert_eq!(c.satisfied_by(&snap(0.0, 1)), Some(false));
        assert_eq!(c.satisfied_by(&snap(0.0, 9)), Some(false));
    }

    #[test]
    fn security_contract_not_snapshot_checkable() {
        let c = Contract::secure_domains(["untrusted_ip_domain_A"]);
        assert_eq!(c.satisfied_by(&snap(1.0, 1)), None);
        assert_eq!(
            c.secure_domain_set()
                .unwrap()
                .into_iter()
                .collect::<Vec<_>>(),
            ["untrusted_ip_domain_A"]
        );
    }

    #[test]
    fn best_effort_always_satisfied() {
        assert_eq!(Contract::BestEffort.satisfied_by(&snap(0.0, 0)), Some(true));
        assert!(Contract::BestEffort.is_best_effort());
        assert!(!Contract::min_throughput(1.0).is_best_effort());
    }

    #[test]
    fn conjunction_semantics() {
        let c = Contract::all([
            Contract::throughput_range(0.3, 0.7),
            Contract::par_degree(1, 8),
            Contract::secure_domains(["domA"]),
        ]);
        assert_eq!(c.satisfied_by(&snap(0.5, 4)), Some(true));
        assert_eq!(c.satisfied_by(&snap(0.5, 9)), Some(false));
        assert_eq!(c.satisfied_by(&snap(0.1, 4)), Some(false));
        assert_eq!(c.secure_domain_set().unwrap().len(), 1);
        assert_eq!(c.par_degree_bounds(), Some((1, 8)));
    }

    #[test]
    fn conjunction_of_unknowns_is_none() {
        let c = Contract::all([
            Contract::secure_domains(["a"]),
            Contract::secure_domains(["b"]),
        ]);
        assert_eq!(c.satisfied_by(&snap(0.5, 4)), None);
        let set = c.secure_domain_set().unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn all_flattens_and_collapses() {
        let c = Contract::all([Contract::all([Contract::BestEffort])]);
        assert_eq!(c, Contract::BestEffort);
        let c = Contract::all([
            Contract::all([Contract::min_throughput(0.5), Contract::par_degree(1, 2)]),
            Contract::BestEffort,
        ]);
        match c {
            Contract::All(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected All, got {other:?}"),
        }
    }

    #[test]
    fn throughput_bounds_intersect_in_conjunction() {
        let c = Contract::all([
            Contract::min_throughput(0.4),
            Contract::throughput_range(0.3, 0.7),
        ]);
        assert_eq!(c.throughput_bounds(), Some((0.4, 0.7)));
    }

    #[test]
    fn validate_accepts_good_contracts() {
        for c in [
            Contract::BestEffort,
            Contract::min_throughput(0.6),
            Contract::throughput_range(0.3, 0.7),
            Contract::output_rate(1.0),
            Contract::par_degree(1, 16),
            Contract::secure_domains(["d"]),
        ] {
            assert_eq!(c.validate(), Ok(()), "{c}");
        }
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        assert!(Contract::min_throughput(-1.0).validate().is_err());
        assert!(Contract::throughput_range(0.7, 0.3).validate().is_err());
        assert!(Contract::par_degree(5, 2).validate().is_err());
        assert!(Contract::OutputRate {
            target: 1.0,
            tolerance: 1.5
        }
        .validate()
        .is_err());
        assert!(
            Contract::all([Contract::BestEffort, Contract::min_throughput(f64::NAN)])
                .validate()
                .is_err()
        );
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            Contract::throughput_range(0.3, 0.7).to_string(),
            "throughputRange(0.3–0.7 task/s)"
        );
        assert!(Contract::all([
            Contract::min_throughput(0.6),
            Contract::secure_domains(["domA"])
        ])
        .to_string()
        .contains('∧'));
    }
}
