//! Behavioural-skeleton expression trees.
//!
//! The paper models applications as trees of behavioural skeletons "where
//! nodes are BSs and leaves are sequential portions of code" (§3.1), e.g.
//! `farm(pipeline(sequential, farm(sequential), sequential))`. [`BsExpr`]
//! is that tree; it drives contract splitting ([`crate::contract::split`]),
//! manager-hierarchy construction ([`crate::hierarchy`]) and the scenario
//! builders of the substrates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A skeleton expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BsExpr {
    /// A sequential stage (a leaf: plain code, no manager of its own unless
    /// it is a pipeline stage, in which case it gets a stage manager).
    Seq {
        /// Stage name (unique within its parent).
        name: String,
        /// Relative computational weight, used by the proportional
        /// parallelism-degree splitting heuristic (paper §3.1 footnote:
        /// "depending on the relative computational weight of the stages").
        weight: f64,
    },
    /// A functional-replication (task-farm) behavioural skeleton.
    Farm {
        /// Skeleton name.
        name: String,
        /// The replicated worker computation.
        worker: Box<BsExpr>,
        /// Parallelism degree at start-up.
        initial_workers: u32,
    },
    /// A pipeline behavioural skeleton.
    Pipe {
        /// Skeleton name.
        name: String,
        /// The stages, in order.
        stages: Vec<BsExpr>,
    },
}

impl BsExpr {
    /// A sequential stage with weight 1.
    pub fn seq(name: impl Into<String>) -> Self {
        BsExpr::Seq {
            name: name.into(),
            weight: 1.0,
        }
    }

    /// A sequential stage with an explicit relative weight.
    pub fn seq_weighted(name: impl Into<String>, weight: f64) -> Self {
        BsExpr::Seq {
            name: name.into(),
            weight,
        }
    }

    /// A farm over a worker expression.
    pub fn farm(name: impl Into<String>, worker: BsExpr, initial_workers: u32) -> Self {
        BsExpr::Farm {
            name: name.into(),
            worker: Box::new(worker),
            initial_workers,
        }
    }

    /// A pipeline over stages.
    pub fn pipe(name: impl Into<String>, stages: Vec<BsExpr>) -> Self {
        BsExpr::Pipe {
            name: name.into(),
            stages,
        }
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        match self {
            BsExpr::Seq { name, .. } | BsExpr::Farm { name, .. } | BsExpr::Pipe { name, .. } => {
                name
            }
        }
    }

    /// Direct children: pipeline stages, or the farm's worker template.
    pub fn children(&self) -> Vec<&BsExpr> {
        match self {
            BsExpr::Seq { .. } => Vec::new(),
            BsExpr::Farm { worker, .. } => vec![worker.as_ref()],
            BsExpr::Pipe { stages, .. } => stages.iter().collect(),
        }
    }

    /// Total relative weight: sum of the leaf weights below this node.
    pub fn weight(&self) -> f64 {
        match self {
            BsExpr::Seq { weight, .. } => *weight,
            BsExpr::Farm { worker, .. } => worker.weight(),
            BsExpr::Pipe { stages, .. } => stages.iter().map(BsExpr::weight).sum(),
        }
    }

    /// Number of nodes in the tree (managers + leaves).
    pub fn node_count(&self) -> usize {
        1 + match self {
            BsExpr::Seq { .. } => 0,
            BsExpr::Farm { worker, .. } => worker.node_count(),
            BsExpr::Pipe { stages, .. } => stages.iter().map(BsExpr::node_count).sum(),
        }
    }

    /// Number of *managed* nodes — nodes that get an autonomic manager:
    /// every farm and pipe, plus sequential stages that are direct pipeline
    /// stages (the paper's AM_P / AM_C).
    pub fn manager_count(&self) -> usize {
        match self {
            BsExpr::Seq { .. } => 0,
            BsExpr::Farm { worker, .. } => 1 + worker.manager_count(),
            BsExpr::Pipe { stages, .. } => {
                1 + stages
                    .iter()
                    .map(|s| match s {
                        BsExpr::Seq { .. } => 1, // stage manager for sequential stages
                        other => other.manager_count(),
                    })
                    .sum::<usize>()
            }
        }
    }

    /// Maximum nesting depth (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children()
            .into_iter()
            .map(BsExpr::depth)
            .max()
            .unwrap_or(0)
    }

    /// Finds a node by name (pre-order).
    pub fn find(&self, name: &str) -> Option<&BsExpr> {
        if self.name() == name {
            return Some(self);
        }
        self.children().into_iter().find_map(|c| c.find(name))
    }

    /// Parses a skeleton expression in the paper's notation, extended with
    /// optional names and weights:
    ///
    /// ```text
    /// expr  := ("seq" | "farm" | "pipe" | "pipeline" | "sequential")
    ///          (":" name)? ("@" weight)? ("(" expr ("," expr)* ")")? ("*" count)?
    /// ```
    ///
    /// `farm` takes exactly one child (the worker; `*count` after the
    /// closing parenthesis sets the initial parallelism degree, default 1);
    /// `pipe` takes one or more stages; `seq` takes none. Unnamed nodes are
    /// auto-named by their path (`pipe0`, `pipe0.farm1`, …).
    ///
    /// ```
    /// use bskel_core::bs::BsExpr;
    /// let e = BsExpr::parse("pipe(seq:producer, farm(seq:filter)*4, seq:consumer)").unwrap();
    /// assert_eq!(e.manager_count(), 4); // AM_A, AM_P, AM_F, AM_C
    /// ```
    pub fn parse(src: &str) -> Result<Self, String> {
        let mut p = ExprParser {
            src: src.as_bytes(),
            pos: 0,
        };
        let e = p.parse_expr("")?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(e)
    }
}

struct ExprParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl ExprParser<'_> {
    fn skip_ws(&mut self) {
        while self.src.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.src.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_' || *c == b'-')
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .src
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || *c == b'.')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn parse_expr(&mut self, path: &str) -> Result<BsExpr, String> {
        let kind = self.ident();
        let kind = match kind.as_str() {
            "seq" | "sequential" => "seq",
            "farm" => "farm",
            "pipe" | "pipeline" => "pipe",
            other => return Err(format!("unknown skeleton kind `{other}`")),
        };
        let name = if self.eat(b':') {
            self.ident()
        } else {
            let idx = self.pos; // byte position makes auto-names unique
            if path.is_empty() {
                format!("{kind}{idx}")
            } else {
                format!("{path}.{kind}{idx}")
            }
        };
        let weight = if self.eat(b'@') { self.number()? } else { 1.0 };

        let mut children = Vec::new();
        if self.eat(b'(') {
            loop {
                children.push(self.parse_expr(&name)?);
                if !self.eat(b',') {
                    break;
                }
            }
            if !self.eat(b')') {
                return Err(format!("expected `)` at byte {}", self.pos));
            }
        }
        let count = if self.eat(b'*') {
            self.number()? as u32
        } else {
            1
        };

        match kind {
            "seq" => {
                if !children.is_empty() {
                    return Err(format!("seq `{name}` cannot have children"));
                }
                Ok(BsExpr::Seq { name, weight })
            }
            "farm" => {
                if children.len() != 1 {
                    return Err(format!(
                        "farm `{name}` needs exactly one worker expression, got {}",
                        children.len()
                    ));
                }
                Ok(BsExpr::Farm {
                    name,
                    worker: Box::new(children.remove(0)),
                    initial_workers: count.max(1),
                })
            }
            "pipe" => {
                if children.is_empty() {
                    return Err(format!("pipe `{name}` needs at least one stage"));
                }
                Ok(BsExpr::Pipe {
                    name,
                    stages: children,
                })
            }
            _ => unreachable!("kind filtered above"),
        }
    }
}

impl BsExpr {
    /// Rewrites the tree, replacing the named **sequential pipeline stage**
    /// with a farm of `workers` instances of that stage — the structural
    /// adaptation the paper's §4.2 closes on: *"in the pipeline stage case
    /// we are investigating ways to transform the pipeline stage into a
    /// farm with the workers behaving as instances of the original
    /// stage."*
    ///
    /// Returns the rewritten tree, or an error if the stage is missing or
    /// is not a sequential pipeline stage (farms/pipes already carry their
    /// own parallelism; a farm worker is not independently promotable).
    pub fn promote_stage_to_farm(&self, stage: &str, workers: u32) -> Result<BsExpr, String> {
        fn rewrite(node: &BsExpr, stage: &str, workers: u32, hits: &mut u32) -> BsExpr {
            match node {
                BsExpr::Pipe { name, stages } => BsExpr::Pipe {
                    name: name.clone(),
                    stages: stages
                        .iter()
                        .map(|s| match s {
                            BsExpr::Seq { name: sn, weight } if sn == stage => {
                                *hits += 1;
                                BsExpr::Farm {
                                    name: format!("{sn}_farm"),
                                    worker: Box::new(BsExpr::Seq {
                                        name: sn.clone(),
                                        weight: *weight,
                                    }),
                                    initial_workers: workers.max(1),
                                }
                            }
                            other => rewrite(other, stage, workers, hits),
                        })
                        .collect(),
                },
                BsExpr::Farm {
                    name,
                    worker,
                    initial_workers,
                } => BsExpr::Farm {
                    name: name.clone(),
                    worker: Box::new(rewrite(worker, stage, workers, hits)),
                    initial_workers: *initial_workers,
                },
                leaf => leaf.clone(),
            }
        }
        let mut hits = 0;
        let out = rewrite(self, stage, workers, &mut hits);
        match hits {
            0 => match self.find(stage) {
                Some(BsExpr::Seq { .. }) => Err(format!(
                    "stage `{stage}` is not a pipeline stage (cannot promote a farm worker)"
                )),
                Some(_) => Err(format!("`{stage}` is not a sequential stage")),
                None => Err(format!("no stage named `{stage}`")),
            },
            1 => Ok(out),
            n => Err(format!("stage name `{stage}` is ambiguous ({n} matches)")),
        }
    }

    /// Advises which pipeline stage to promote, given per-stage service
    /// times: the bottleneck (largest service time) sequential stage, with
    /// the parallelism degree needed to bring it level with the
    /// second-slowest stage. Returns `None` when no sequential stage is
    /// the bottleneck (the pipeline model: throughput is bounded by the
    /// slowest stage, so only promoting the bottleneck helps).
    pub fn promotion_advice(stage_service: &[(String, f64)]) -> Option<(String, u32)> {
        if stage_service.len() < 2 {
            return None;
        }
        let (bottleneck, t_max) = stage_service
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))?;
        let t_next = stage_service
            .iter()
            .filter(|(n, _)| n != bottleneck)
            .map(|(_, t)| *t)
            .fold(0.0f64, f64::max);
        if t_next <= 0.0 || *t_max <= t_next {
            return None;
        }
        Some((bottleneck.clone(), (t_max / t_next).ceil() as u32))
    }
}

impl fmt::Display for BsExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BsExpr::Seq { name, .. } => write!(f, "seq:{name}"),
            BsExpr::Farm {
                name,
                worker,
                initial_workers,
            } => write!(f, "farm:{name}({worker})*{initial_workers}"),
            BsExpr::Pipe { name, stages } => {
                let parts: Vec<String> = stages.iter().map(BsExpr::to_string).collect();
                write!(f, "pipe:{name}({})", parts.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_right() -> BsExpr {
        BsExpr::pipe(
            "app",
            vec![
                BsExpr::seq("producer"),
                BsExpr::farm("filter", BsExpr::seq("worker"), 3),
                BsExpr::seq("consumer"),
            ],
        )
    }

    #[test]
    fn structure_accessors() {
        let e = fig2_right();
        assert_eq!(e.name(), "app");
        assert_eq!(e.children().len(), 3);
        assert_eq!(e.node_count(), 5);
        assert_eq!(e.depth(), 3);
        assert!((e.weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn manager_count_matches_fig4() {
        // AM_A (pipe) + AM_P + AM_F + AM_C — the four managers of Fig. 4.
        // (Workers get best-effort contracts, not managers of their own in
        // the count: their managers are implicit per the farm BS
        // definition.)
        assert_eq!(fig2_right().manager_count(), 4);
    }

    #[test]
    fn find_by_name() {
        let e = fig2_right();
        assert_eq!(e.find("filter").unwrap().name(), "filter");
        assert_eq!(e.find("worker").unwrap().name(), "worker");
        assert!(e.find("nope").is_none());
    }

    #[test]
    fn parse_paper_expression() {
        // §3.1's example: farm(pipeline(sequential, farm(sequential), sequential))
        let e = BsExpr::parse("farm(pipeline(sequential, farm(sequential), sequential))").unwrap();
        match &e {
            BsExpr::Farm { worker, .. } => match worker.as_ref() {
                BsExpr::Pipe { stages, .. } => {
                    assert_eq!(stages.len(), 3);
                    assert!(matches!(stages[1], BsExpr::Farm { .. }));
                }
                other => panic!("expected pipe, got {other}"),
            },
            other => panic!("expected farm, got {other}"),
        }
    }

    #[test]
    fn parse_names_weights_counts() {
        let e = BsExpr::parse("pipe:app(seq:prod@0.5, farm:filter(seq:w)*4, seq:cons)").unwrap();
        assert_eq!(e.name(), "app");
        match e.find("filter").unwrap() {
            BsExpr::Farm {
                initial_workers, ..
            } => assert_eq!(*initial_workers, 4),
            other => panic!("{other}"),
        }
        match e.find("prod").unwrap() {
            BsExpr::Seq { weight, .. } => assert!((weight - 0.5).abs() < 1e-12),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(BsExpr::parse("farm(seq, seq)").is_err(), "farm arity");
        assert!(BsExpr::parse("pipe").is_err(), "pipe needs stages");
        assert!(BsExpr::parse("seq(seq)").is_err(), "seq is a leaf");
        assert!(BsExpr::parse("blob").is_err(), "unknown kind");
        assert!(BsExpr::parse("seq extra").is_err(), "trailing input");
    }

    #[test]
    fn auto_names_are_unique() {
        let e = BsExpr::parse("pipe(seq, seq, seq)").unwrap();
        let names: Vec<&str> = e.children().iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let e = fig2_right();
        let shown = e.to_string();
        assert_eq!(
            shown,
            "pipe:app(seq:producer, farm:filter(seq:worker)*3, seq:consumer)"
        );
        let reparsed = BsExpr::parse(&shown).unwrap();
        assert_eq!(reparsed, e);
    }

    #[test]
    fn promote_bottleneck_stage() {
        let e = fig2_right();
        let promoted = e.promote_stage_to_farm("consumer", 4).unwrap();
        let farm = promoted.find("consumer_farm").expect("promoted farm");
        match farm {
            BsExpr::Farm {
                worker,
                initial_workers,
                ..
            } => {
                assert_eq!(worker.name(), "consumer");
                assert_eq!(*initial_workers, 4);
            }
            other => panic!("expected farm, got {other}"),
        }
        // Manager count grew by one (the new farm's AM joins the tree,
        // and the consumer stage manager is replaced by the farm's).
        assert_eq!(promoted.manager_count(), e.manager_count());
        // Original tree untouched.
        assert!(e.find("consumer_farm").is_none());
    }

    #[test]
    fn promote_rejects_non_stages() {
        let e = fig2_right();
        assert!(e.promote_stage_to_farm("ghost", 2).is_err());
        assert!(
            e.promote_stage_to_farm("filter", 2).is_err(),
            "farms are not promotable"
        );
        assert!(
            e.promote_stage_to_farm("worker", 2).is_err(),
            "farm workers are not pipeline stages"
        );
    }

    #[test]
    fn promote_rejects_ambiguous_names() {
        let e = BsExpr::pipe(
            "p",
            vec![
                BsExpr::seq("dup"),
                BsExpr::pipe("inner", vec![BsExpr::seq("dup"), BsExpr::seq("z")]),
            ],
        );
        let err = e.promote_stage_to_farm("dup", 2).unwrap_err();
        assert!(err.contains("ambiguous"), "{err}");
    }

    #[test]
    fn promotion_advice_picks_the_bottleneck() {
        let times = vec![
            ("acquire".to_owned(), 1.0),
            ("filter".to_owned(), 8.0),
            ("render".to_owned(), 2.0),
        ];
        let (stage, workers) = BsExpr::promotion_advice(&times).unwrap();
        assert_eq!(stage, "filter");
        assert_eq!(workers, 4, "8s / 2s = 4 instances to level the pipeline");
        // Balanced pipeline: nothing to promote.
        let flat = vec![("a".to_owned(), 2.0), ("b".to_owned(), 2.0)];
        assert!(BsExpr::promotion_advice(&flat).is_none());
        assert!(BsExpr::promotion_advice(&[]).is_none());
    }

    #[test]
    fn farm_star_zero_clamps_to_one() {
        let e = BsExpr::parse("farm(seq)*0").unwrap();
        match e {
            BsExpr::Farm {
                initial_workers, ..
            } => assert_eq!(initial_workers, 1),
            other => panic!("{other}"),
        }
    }
}
