//! # bskel-core — behavioural skeletons and autonomic management
//!
//! This crate implements the contribution of Aldinucci, Danelutto &
//! Kilpatrick, *"Autonomic management of non-functional concerns in
//! distributed & parallel application programming"* (IPDPS 2009):
//!
//! * **Behavioural skeletons** ([`bs`]): pairs ⟨parallelism-exploitation
//!   pattern 𝒫, autonomic manager ℳ_C⟩, expressed as a skeleton tree of
//!   farms, pipelines and sequential stages;
//! * **Contracts** ([`contract`]): the SLA grammar users hand to a top-level
//!   manager (throughput ranges, parallelism-degree bounds, security
//!   domains) and the per-pattern splitting heuristics for the paper's
//!   P_spl problem ([`contract::split`]);
//! * **Autonomic managers** ([`manager`]): the MAPE control loop with the
//!   paper's *active/passive* role state machine (P_rol), driven by the
//!   rule engine of `bskel-rules` and bound to a computation through the
//!   [`abc::Abc`] trait — the Autonomic Behaviour Controller separating
//!   policy (manager) from mechanism (substrate);
//! * **Manager hierarchies** ([`hierarchy`]): contract propagation downward
//!   and violation reporting upward through a tree of managers mirroring
//!   the skeleton tree (paper §3.1, Fig. 4);
//! * **Multi-concern coordination** ([`coord`]): the two-phase
//!   intent/review/commit protocol between per-concern managers
//!   orchestrated by a general manager, with boolean concerns (security)
//!   taking priority over quantitative ones (performance) — paper §3.2;
//! * **Event streams** ([`events`]): the timestamped manager event records
//!   (`contrLow`, `notEnough`, `raiseViol`, `incRate`, `addWorker`,
//!   `rebalance`, …) from which the paper's Figs. 3–4 are plotted.
//!
//! The crate is substrate-agnostic: both the threaded runtime
//! (`bskel-skel`) and the discrete-event simulator (`bskel-sim`) implement
//! [`abc::Abc`] and run the *same* managers and rule programs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod abc;
pub mod bs;
pub mod concern;
pub mod contract;
pub mod controller;
pub mod coord;
pub mod events;
pub mod hierarchy;
pub mod manager;

pub use abc::{standard_schema, Abc, AbcError, ActuationOutcome, ManagerOp};
pub use concern::Concern;
pub use contract::Contract;
pub use controller::{
    build_controller, AimdController, BudgetedRuleController, Controller, ControllerKind,
    RuleController,
};
pub use events::{EventKind, EventLog, EventRecord};
pub use manager::{
    AmState, AutonomicManager, ManagerConfig, ManagerKind, RuleCheck, RuleLintError,
};
