//! Manager event streams.
//!
//! The evaluation of the paper is read off *event lines*: Figs. 3–4 plot,
//! per manager, the timestamped events its control loop emitted —
//! `contrLow`, `contrHigh`, `notEnough`, `raiseViol`, `incRate`, `decRate`,
//! `addWorker`, `removeWorker`, `rebalance`, `endStream` — alongside the
//! measured throughput and resource series. [`EventLog`] is a shared,
//! append-only record of such events; the experiment harness renders it as
//! the same series the paper plots.

use bskel_monitor::{Journal, Time};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, Mutex};

/// The kinds of events a manager can emit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Delivered throughput below the contract floor.
    ContrLow,
    /// Delivered throughput above the contract ceiling.
    ContrHigh,
    /// Input pressure insufficient to exploit the allocated resources
    /// (paper: `notEnough`).
    NotEnough,
    /// Input pressure exceeds what the contract needs (paper's
    /// warning-type violation).
    TooMuch,
    /// A violation was reported to the parent manager (paper: `raiseViol`).
    RaiseViol,
    /// A new contract was sent to a child demanding a rate increase.
    IncRate,
    /// A new contract was sent to a child demanding a rate decrease.
    DecRate,
    /// Workers were added (paper: `addWorker`).
    AddWorker,
    /// Workers were removed.
    RemoveWorker,
    /// Queued tasks were redistributed (paper: `rebalance`).
    Rebalance,
    /// The end of the input stream was observed (paper: `endStream`).
    EndStream,
    /// A new contract was received and adopted.
    NewContract,
    /// The manager entered active mode.
    EnterActive,
    /// The manager entered passive mode.
    EnterPassive,
    /// A channel to a node was secured (security concern actuation).
    Secured,
    /// Workers were lost to failures since the previous control cycle
    /// (fault-tolerance concern; detail carries the delta).
    WorkerLost,
    /// A tenant's fair-share weight was raised (multi-tenancy concern).
    GrowShare,
    /// A tenant's fair-share weight was lowered.
    ShrinkShare,
    /// Queued tasks were dropped from an over-budget tenant (detail
    /// carries the shed count when the substrate reports one).
    ShedLoad,
    /// Free-form event (substrate extensions).
    Other(String),
}

impl EventKind {
    /// The paper's event-line label.
    pub fn label(&self) -> &str {
        match self {
            EventKind::ContrLow => "contrLow",
            EventKind::ContrHigh => "contrHigh",
            EventKind::NotEnough => "notEnough",
            EventKind::TooMuch => "tooMuch",
            EventKind::RaiseViol => "raiseViol",
            EventKind::IncRate => "incRate",
            EventKind::DecRate => "decRate",
            EventKind::AddWorker => "addWorker",
            EventKind::RemoveWorker => "removeWorker",
            EventKind::Rebalance => "rebalance",
            EventKind::EndStream => "endStream",
            EventKind::NewContract => "newContract",
            EventKind::EnterActive => "enterActive",
            EventKind::EnterPassive => "enterPassive",
            EventKind::Secured => "secured",
            EventKind::WorkerLost => "workerLost",
            EventKind::GrowShare => "growShare",
            EventKind::ShrinkShare => "shrinkShare",
            EventKind::ShedLoad => "shedLoad",
            EventKind::Other(s) => s,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One timestamped manager event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Event time (seconds since run origin).
    pub at: Time,
    /// Emitting manager's name (e.g. `AM_F`).
    pub manager: String,
    /// Event kind.
    pub kind: EventKind,
    /// Optional detail (violation datum, worker count, new rate, …).
    pub detail: Option<String>,
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mins = (self.at / 60.0).floor() as u64;
        let secs = self.at - mins as f64 * 60.0;
        write!(f, "{mins:02}:{secs:04.1} {:<6} {}", self.manager, self.kind)?;
        if let Some(d) = &self.detail {
            write!(f, " [{d}]")?;
        }
        Ok(())
    }
}

/// Shared state behind an [`EventLog`] handle: the event vector plus an
/// optional journal sink every event is mirrored into.
#[derive(Debug, Default)]
struct LogShared {
    events: Mutex<Vec<EventRecord>>,
    journal: Mutex<Option<Arc<Journal>>>,
}

/// A shared, append-only event log. Cloning yields a handle onto the same
/// log, so every manager in a hierarchy writes into one merged trace.
///
/// A [`Journal`] can be attached with [`EventLog::attach_journal`]; from
/// then on every pushed event is also recorded as a structured journal
/// entry (the ops plane's durable, replayable trace). The attachment is
/// shared log state, so attaching through any clone takes effect for all
/// handles, including managers constructed earlier.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    inner: Arc<LogShared>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirrors all events (past none, future all) into `journal`.
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        *self
            .inner
            .journal
            .lock()
            .expect("event log journal lock poisoned") = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<Arc<Journal>> {
        self.inner
            .journal
            .lock()
            .expect("event log journal lock poisoned")
            .clone()
    }

    /// Appends an event.
    pub fn push(&self, at: Time, manager: &str, kind: EventKind, detail: Option<String>) {
        if let Some(journal) = self.journal() {
            journal.manager_event(at, manager, kind.label(), detail.as_deref());
        }
        self.inner
            .events
            .lock()
            .expect("event log lock poisoned")
            .push(EventRecord {
                at,
                manager: manager.to_owned(),
                kind,
                detail,
            });
    }

    /// A snapshot of all events so far, in append order.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.inner
            .events
            .lock()
            .expect("event log lock poisoned")
            .clone()
    }

    /// Events emitted by one manager.
    pub fn by_manager(&self, manager: &str) -> Vec<EventRecord> {
        self.snapshot()
            .into_iter()
            .filter(|e| e.manager == manager)
            .collect()
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: &EventKind) -> Vec<EventRecord> {
        self.snapshot()
            .into_iter()
            .filter(|e| &e.kind == kind)
            .collect()
    }

    /// Number of events logged.
    pub fn len(&self) -> usize {
        self.inner
            .events
            .lock()
            .expect("event log lock poisoned")
            .len()
    }

    /// True when no events have been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the log (between experiment repetitions).
    pub fn clear(&self) {
        self.inner
            .events
            .lock()
            .expect("event log lock poisoned")
            .clear();
    }

    /// Renders the log as the paper's event-line text, one event per line.
    pub fn render(&self) -> String {
        self.snapshot()
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_snapshot() {
        let log = EventLog::new();
        assert!(log.is_empty());
        log.push(1.0, "AM_F", EventKind::ContrLow, None);
        log.push(2.0, "AM_F", EventKind::AddWorker, Some("2".into()));
        log.push(3.0, "AM_A", EventKind::IncRate, None);
        assert_eq!(log.len(), 3);
        let all = log.snapshot();
        assert_eq!(all[0].kind, EventKind::ContrLow);
        assert_eq!(all[1].detail.as_deref(), Some("2"));
    }

    #[test]
    fn clones_share_storage() {
        let log = EventLog::new();
        let handle = log.clone();
        handle.push(0.0, "m", EventKind::EndStream, None);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn filters() {
        let log = EventLog::new();
        log.push(1.0, "AM_F", EventKind::ContrLow, None);
        log.push(2.0, "AM_A", EventKind::ContrLow, None);
        log.push(3.0, "AM_F", EventKind::Rebalance, None);
        assert_eq!(log.by_manager("AM_F").len(), 2);
        assert_eq!(log.of_kind(&EventKind::ContrLow).len(), 2);
        assert_eq!(log.of_kind(&EventKind::Rebalance).len(), 1);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(EventKind::ContrLow.label(), "contrLow");
        assert_eq!(EventKind::NotEnough.label(), "notEnough");
        assert_eq!(EventKind::RaiseViol.label(), "raiseViol");
        assert_eq!(EventKind::IncRate.label(), "incRate");
        assert_eq!(EventKind::AddWorker.label(), "addWorker");
        assert_eq!(EventKind::EndStream.label(), "endStream");
        assert_eq!(EventKind::Other("x".into()).label(), "x");
    }

    #[test]
    fn record_display_uses_min_sec() {
        let r = EventRecord {
            at: 125.0,
            manager: "AM_F".into(),
            kind: EventKind::AddWorker,
            detail: Some("2".into()),
        };
        let s = r.to_string();
        assert!(s.starts_with("02:05.0"), "{s}");
        assert!(s.contains("addWorker"), "{s}");
        assert!(s.contains("[2]"), "{s}");
    }

    #[test]
    fn clear_resets() {
        let log = EventLog::new();
        log.push(0.0, "m", EventKind::EndStream, None);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn attached_journal_mirrors_events_across_clones() {
        use bskel_monitor::{Journal, JournalEntry};
        let log = EventLog::new();
        let handle = log.clone(); // cloned BEFORE the journal is attached
        let journal = Journal::shared();
        log.attach_journal(Arc::clone(&journal));
        handle.push(1.0, "AM_F", EventKind::AddWorker, Some("2".into()));
        let entries = journal.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].entry,
            JournalEntry::Manager {
                at: 1.0,
                manager: "AM_F".into(),
                kind: "addWorker".into(),
                detail: Some("2".into()),
            }
        );
    }

    #[test]
    fn render_joins_lines() {
        let log = EventLog::new();
        log.push(0.0, "a", EventKind::ContrLow, None);
        log.push(1.0, "b", EventKind::ContrHigh, None);
        let text = log.render();
        assert_eq!(text.lines().count(), 2);
    }
}
