//! Pluggable control laws for the autonomic manager.
//!
//! The paper expresses management policy as JBoss-style rule programs; the
//! ninelives roadmap (and the RL-skeleton line of work in PAPERS.md) treat
//! the controller as a swappable policy instead. [`Controller`] is that
//! seam: the manager's MAPE loop senses, builds working memory, and hands
//! both to whatever law is plugged in — the rule engine, an AIMD
//! congestion-control law, or a budget-mirroring wrapper — then interprets
//! the returned [`OpCall`]s exactly as it always has. Policies stay
//! substrate-agnostic: a controller only ever sees sensed beans and emits
//! symbolic operations.
//!
//! Three non-rule laws ship beside [`RuleController`]:
//!
//! * [`AimdController`] — additive-increase/multiplicative-decrease of the
//!   par-degree ceiling: contract pressure (backlogged delivery below the
//!   floor) adds one worker's headroom per cycle; contract headroom
//!   (delivery above the ceiling) cuts the ceiling multiplicatively
//!   (×0.75). The asymmetry is the classic congestion-control argument:
//!   probing up is cheap, overshoot is expensive, and the multiplicative
//!   backoff is what prevents synchronized grow/shrink oscillation.
//! * [`BudgetedRuleController`] — the rule program for the manager's kind,
//!   plus a mirror of the plant-side retry-budget token bucket
//!   (`bskel_net`'s [`RetryBudget`]; ratio-of-successful-work deposits, a
//!   min-tokens floor). The mirror exists for observability and replay: it
//!   publishes `retryBudgetTokens` when the plant doesn't, and journals
//!   `PAUSE_REDISPATCH`/`RESUME_REDISPATCH` transitions bracketing every
//!   window in which re-dispatch was suppressed. Enforcement lives in the
//!   plant (the reactor pool), never here — a controller that merely
//!   *advises* cannot be bypassed by a stale snapshot.

use bskel_monitor::snapshot::beans;
use bskel_monitor::SensorSnapshot;
use bskel_rules::stdlib::{self, params, viol};
use bskel_rules::{op, OpCall, ParamTable, RuleEngine, RuleSet, WorkingMemory};

/// Which control law a manager runs (wired through `ManagerConfig` and
/// scenario JSON as `"rules" | "aimd" | "retry_budget" | "hedge"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControllerKind {
    /// The rule engine over the kind's standard (or custom) program.
    #[default]
    Rules,
    /// AIMD par-degree control; no rule program.
    Aimd,
    /// Rule program plus a retry-budget mirror (plant gates re-dispatch).
    RetryBudget,
    /// Rule program plus the budget mirror, with plant-side hedging
    /// enabled (quantile-triggered duplicate dispatch).
    Hedge,
}

impl ControllerKind {
    /// Canonical JSON/journal spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ControllerKind::Rules => "rules",
            ControllerKind::Aimd => "aimd",
            ControllerKind::RetryBudget => "retry_budget",
            ControllerKind::Hedge => "hedge",
        }
    }

    /// Every shipped kind, in bench/table order.
    pub fn all() -> [ControllerKind; 4] {
        [
            ControllerKind::Rules,
            ControllerKind::Aimd,
            ControllerKind::RetryBudget,
            ControllerKind::Hedge,
        ]
    }
}

impl std::str::FromStr for ControllerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rules" => Ok(ControllerKind::Rules),
            "aimd" => Ok(ControllerKind::Aimd),
            "retry_budget" | "retry-budget" | "budget" => Ok(ControllerKind::RetryBudget),
            "hedge" | "hedged" => Ok(ControllerKind::Hedge),
            other => Err(format!(
                "unknown controller {other:?} (expected rules|aimd|retry_budget|hedge)"
            )),
        }
    }
}

impl std::fmt::Display for ControllerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A control law: sensed state in, symbolic operations out.
///
/// The manager owns the loop (sense, journal, blackout, hierarchy beans,
/// op interpretation, mode derivation); the controller owns only the
/// *analyse/plan* step. Laws with no rule program return `None` from
/// [`Controller::rules`], which disables rule linting/model-checking for
/// that manager — there is nothing to lint.
pub trait Controller: Send {
    /// Law name as journaled on every actuation (`rules`, `aimd`, …).
    fn name(&self) -> &'static str;

    /// The rule program, when this law has one (lint/mc target).
    fn rules(&self) -> Option<&RuleSet> {
        None
    }

    /// Replaces the rule program (custom policies). Laws without a
    /// program ignore this — a caller swapping rules on an AIMD manager
    /// changes nothing, by design.
    fn set_rules(&mut self, _rules: RuleSet) {}

    /// One analyse/plan step: operations to order this cycle.
    fn decide(
        &mut self,
        snap: &SensorSnapshot,
        wm: &WorkingMemory,
        params: &ParamTable,
    ) -> Result<Vec<OpCall>, String>;

    /// Controller-internal state published as beans (merged into the
    /// journaled snapshot *before* working memory is built, so replay
    /// and rule programs both see it).
    fn state_beans(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}

/// Constructs the controller for a kind, over the given rule program
/// (used by the rule-based laws; AIMD ignores it).
pub fn build_controller(kind: ControllerKind, rules: RuleSet) -> Box<dyn Controller> {
    match kind {
        ControllerKind::Rules => Box::new(RuleController::new(rules)),
        ControllerKind::Aimd => Box::new(AimdController::new()),
        ControllerKind::RetryBudget => Box::new(BudgetedRuleController::new(rules, "retry_budget")),
        ControllerKind::Hedge => Box::new(BudgetedRuleController::new(rules, "hedge")),
    }
}

/// The existing rule engine behind the [`Controller`] seam.
pub struct RuleController {
    engine: RuleEngine,
}

impl RuleController {
    /// Wraps a rule program.
    pub fn new(rules: RuleSet) -> Self {
        Self {
            engine: RuleEngine::new(rules),
        }
    }
}

impl Controller for RuleController {
    fn name(&self) -> &'static str {
        "rules"
    }

    fn rules(&self) -> Option<&RuleSet> {
        Some(self.engine.rules())
    }

    fn set_rules(&mut self, rules: RuleSet) {
        self.engine = RuleEngine::new(rules);
    }

    fn decide(
        &mut self,
        _snap: &SensorSnapshot,
        wm: &WorkingMemory,
        params: &ParamTable,
    ) -> Result<Vec<OpCall>, String> {
        self.engine.cycle_ops(wm, params).map_err(|e| e.to_string())
    }
}

/// AIMD par-degree control.
///
/// Update law, per control cycle, over the contract thresholds the farm
/// rules also use (`$FARM_LOW_PERF_LEVEL` = floor, `$FARM_HIGH_PERF_LEVEL`
/// = ceiling, worker bounds from the contract):
///
/// ```text
/// pressure  = departureRate < floor ∧ arrivalRate ≥ floor
/// headroom  = departureRate > ceiling
/// pressure → C ← min(maxWorkers, C + 1)        (additive increase)
/// headroom → C ← max(minWorkers, 0.75 × C)     (multiplicative decrease)
/// target    = max(round(C), minWorkers, ftMinWorkers)
/// ```
///
/// then one `ADD_EXECUTOR`/`REMOVE_EXECUTOR` step toward `target` (plus a
/// `BALANCE_LOAD` alongside any resize, and standalone when
/// `queueVariance > $FARM_MAX_UNBALANCE`). Violation escalation mirrors
/// the farm program: starved arrivals raise `notEnoughTasks`, arrivals
/// above the ceiling raise `tooMuchTasks` — the hierarchy protocol is a
/// property of the manager, not of the law.
///
/// The fault-tolerance floor rides the `ftMinWorkers` bean (published by
/// substrates running with an FT policy), so AIMD composes with worker
/// loss without any merged rule program.
pub struct AimdController {
    ceiling: f64,
}

impl AimdController {
    /// A fresh law; the ceiling initializes from the first snapshot's
    /// observed par-degree.
    pub fn new() -> Self {
        Self { ceiling: 0.0 }
    }

    /// Current ceiling (0.0 before the first cycle).
    pub fn ceiling(&self) -> f64 {
        self.ceiling
    }
}

impl Default for AimdController {
    fn default() -> Self {
        Self::new()
    }
}

/// Multiplicative-decrease factor: β = 0.75 sheds capacity fast enough to
/// matter yet keeps ⌈C×β⌉ < C only from C ≥ 2, so the law can never
/// underflow a one-worker farm on its own.
const AIMD_BETA: f64 = 0.75;

impl Controller for AimdController {
    fn name(&self) -> &'static str {
        "aimd"
    }

    fn decide(
        &mut self,
        snap: &SensorSnapshot,
        _wm: &WorkingMemory,
        params: &ParamTable,
    ) -> Result<Vec<OpCall>, String> {
        let floor = params.get(params::FARM_LOW_PERF_LEVEL).unwrap_or(0.0);
        let ceil = params
            .get(params::FARM_HIGH_PERF_LEVEL)
            .unwrap_or(f64::INFINITY);
        let min_w = params.get(params::FARM_MIN_NUM_WORKERS).unwrap_or(1.0);
        let max_w = params.get(params::FARM_MAX_NUM_WORKERS).unwrap_or(64.0);
        let max_unbalance = params.get(params::FARM_MAX_UNBALANCE).unwrap_or(4.0);

        let num = f64::from(snap.num_workers);
        if self.ceiling <= 0.0 {
            self.ceiling = num.max(min_w).max(1.0);
        }

        let mut ops = Vec::new();

        // Escalation mirrors the farm rule program's arrival checks.
        if snap.arrival_rate < floor && !snap.end_of_stream {
            ops.push(OpCall {
                operation: op::RAISE_VIOLATION.to_owned(),
                data: Some(viol::NOT_ENOUGH_TASKS.to_owned()),
            });
        } else if snap.arrival_rate > ceil {
            ops.push(OpCall {
                operation: op::RAISE_VIOLATION.to_owned(),
                data: Some(viol::TOO_MUCH_TASKS.to_owned()),
            });
        }

        let pressure = snap.departure_rate < floor && snap.arrival_rate >= floor;
        let headroom = snap.departure_rate > ceil;
        if pressure {
            self.ceiling = (self.ceiling + 1.0).min(max_w);
        } else if headroom {
            self.ceiling = (self.ceiling * AIMD_BETA).max(min_w);
        }

        let ft_floor = f64::from(snap.ft_min_workers);
        let target = self.ceiling.round().max(min_w).max(ft_floor).max(1.0);

        if num < target {
            ops.push(OpCall::new(op::ADD_EXECUTOR));
            ops.push(OpCall::new(op::BALANCE_LOAD));
        } else if num > target {
            ops.push(OpCall::new(op::REMOVE_EXECUTOR));
            ops.push(OpCall::new(op::BALANCE_LOAD));
        } else if snap.queue_variance > max_unbalance {
            ops.push(OpCall::new(op::BALANCE_LOAD));
        }
        Ok(ops)
    }

    fn state_beans(&self) -> Vec<(&'static str, f64)> {
        vec![(beans::AIMD_CEILING, self.ceiling)]
    }
}

/// Default deposit ratio of the manager-side budget mirror (tokens per
/// unit of successful work) when the plant publishes no budget of its own.
const MIRROR_RATIO: f64 = 0.2;
/// Default floor of the mirror bucket (tokens held while idle).
const MIRROR_MIN_TOKENS: f64 = 5.0;

/// A rule program plus a mirror of the plant-side retry budget.
///
/// Scaling decisions come from the wrapped rule engine (so in scenarios
/// without re-dispatch this law is benchmark-identical to `rules`, which
/// the CTRL1 table makes explicit); the added value is the budget window:
/// the mirror deposits `ratio × delivered work` per cycle, drains one
/// token per observed re-dispatch (`Δ tasksRetried + Δ hedgesLaunched`),
/// and fires a transition-only `PAUSE_REDISPATCH`/`RESUME_REDISPATCH`
/// pair around every exhaustion window. Substrates treat the pair as a
/// no-op (the plant bucket is authoritative); the journal gains an
/// explicit, replayable record of *when* the storm brake held.
pub struct BudgetedRuleController {
    engine: RuleEngine,
    law: &'static str,
    tokens: f64,
    last_at: Option<f64>,
    last_redispatched: f64,
    paused: bool,
}

impl BudgetedRuleController {
    /// Wraps the rule program; `law` is the journaled name
    /// (`retry_budget` or `hedge`).
    pub fn new(rules: RuleSet, law: &'static str) -> Self {
        Self {
            engine: RuleEngine::new(rules),
            law,
            tokens: MIRROR_MIN_TOKENS,
            last_at: None,
            last_redispatched: 0.0,
            paused: false,
        }
    }

    /// Current mirror-bucket level.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

impl Controller for BudgetedRuleController {
    fn name(&self) -> &'static str {
        self.law
    }

    fn rules(&self) -> Option<&RuleSet> {
        Some(self.engine.rules())
    }

    fn set_rules(&mut self, rules: RuleSet) {
        self.engine = RuleEngine::new(rules);
    }

    fn decide(
        &mut self,
        snap: &SensorSnapshot,
        wm: &WorkingMemory,
        params: &ParamTable,
    ) -> Result<Vec<OpCall>, String> {
        let mut ops = self
            .engine
            .cycle_ops(wm, params)
            .map_err(|e| e.to_string())?;

        if snap.retry_budget_tokens > 0.0 {
            // Plant-published truth wins over the mirror.
            self.tokens = snap.retry_budget_tokens;
        } else {
            let dt = self.last_at.map_or(0.0, |prev| (snap.at - prev).max(0.0));
            let cap = (MIRROR_MIN_TOKENS * 10.0).max(10.0);
            let deposit = MIRROR_RATIO * snap.departure_rate * dt;
            let redispatched = snap.tasks_retried as f64 + snap.hedges_launched as f64;
            let drain = (redispatched - self.last_redispatched).max(0.0);
            self.last_redispatched = redispatched;
            self.tokens = (self.tokens + deposit - drain).clamp(0.0, cap);
        }
        self.last_at = Some(snap.at);

        if self.tokens < 1.0 && !self.paused {
            self.paused = true;
            ops.push(OpCall::new(stdlib::PAUSE_REDISPATCH_OP));
        } else if self.tokens >= 1.0 && self.paused {
            self.paused = false;
            ops.push(OpCall::new(stdlib::RESUME_REDISPATCH_OP));
        }
        Ok(ops)
    }

    fn state_beans(&self) -> Vec<(&'static str, f64)> {
        vec![(beans::RETRY_BUDGET_TOKENS, self.tokens)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_at(at: f64) -> SensorSnapshot {
        SensorSnapshot::empty(at)
    }

    fn farm_params() -> ParamTable {
        stdlib::farm_params(4.0, 8.0, 1, 16, 4.0)
    }

    #[test]
    fn kind_round_trips_through_str() {
        for kind in ControllerKind::all() {
            assert_eq!(kind.as_str().parse::<ControllerKind>().unwrap(), kind);
        }
        assert!("nonsense".parse::<ControllerKind>().is_err());
    }

    #[test]
    fn aimd_additively_increases_under_pressure() {
        let mut c = AimdController::new();
        let params = farm_params();
        let wm = WorkingMemory::new();
        let mut snap = snap_at(1.0);
        snap.num_workers = 2;
        snap.arrival_rate = 6.0;
        snap.departure_rate = 2.0; // below floor, demand present
        let ops = c.decide(&snap, &wm, &params).unwrap();
        assert!((c.ceiling() - 3.0).abs() < 1e-9);
        assert!(ops.iter().any(|o| o.operation == op::ADD_EXECUTOR));
    }

    #[test]
    fn aimd_multiplicatively_decreases_on_headroom() {
        let mut c = AimdController::new();
        let params = farm_params();
        let wm = WorkingMemory::new();
        let mut snap = snap_at(1.0);
        snap.num_workers = 8;
        snap.arrival_rate = 6.0;
        snap.departure_rate = 9.0; // above ceiling
        let ops = c.decide(&snap, &wm, &params).unwrap();
        assert!((c.ceiling() - 6.0).abs() < 1e-9); // 8 × 0.75
        assert!(ops.iter().any(|o| o.operation == op::REMOVE_EXECUTOR));
    }

    #[test]
    fn aimd_ceiling_respects_contract_bounds() {
        let mut c = AimdController::new();
        let params = stdlib::farm_params(4.0, 8.0, 2, 3, 4.0);
        let wm = WorkingMemory::new();
        for i in 0..10 {
            let mut snap = snap_at(f64::from(i));
            snap.num_workers = 3;
            snap.arrival_rate = 6.0;
            snap.departure_rate = 2.0;
            c.decide(&snap, &wm, &params).unwrap();
        }
        assert!(c.ceiling() <= 3.0);
        for i in 10..30 {
            let mut snap = snap_at(f64::from(i));
            snap.num_workers = 2;
            snap.arrival_rate = 6.0;
            snap.departure_rate = 9.0;
            c.decide(&snap, &wm, &params).unwrap();
        }
        assert!(c.ceiling() >= 2.0);
    }

    #[test]
    fn aimd_honours_ft_floor_bean() {
        let mut c = AimdController::new();
        let params = farm_params();
        let wm = WorkingMemory::new();
        let mut snap = snap_at(1.0);
        snap.num_workers = 1;
        snap.ft_min_workers = 4;
        snap.arrival_rate = 6.0;
        snap.departure_rate = 6.0; // in contract: no AIMD move
        let ops = c.decide(&snap, &wm, &params).unwrap();
        assert!(ops.iter().any(|o| o.operation == op::ADD_EXECUTOR));
    }

    #[test]
    fn budget_mirror_pauses_and_resumes_once_per_window() {
        let mut c = BudgetedRuleController::new(RuleSet::new(), "retry_budget");
        let params = ParamTable::new();
        let wm = WorkingMemory::new();
        // Drain the bucket: a retry storm with no successful work.
        let mut snap = snap_at(1.0);
        snap.tasks_retried = 50;
        let ops = c.decide(&snap, &wm, &params).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].operation, stdlib::PAUSE_REDISPATCH_OP);
        // Still exhausted: no duplicate PAUSE.
        let mut snap = snap_at(2.0);
        snap.tasks_retried = 55;
        assert!(c.decide(&snap, &wm, &params).unwrap().is_empty());
        // Successful work refills past one token → RESUME, exactly once.
        let mut snap = snap_at(12.0);
        snap.tasks_retried = 55;
        snap.departure_rate = 2.0;
        let ops = c.decide(&snap, &wm, &params).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].operation, stdlib::RESUME_REDISPATCH_OP);
    }

    #[test]
    fn budget_mirror_defers_to_plant_published_tokens() {
        let mut c = BudgetedRuleController::new(RuleSet::new(), "hedge");
        let params = ParamTable::new();
        let wm = WorkingMemory::new();
        let mut snap = snap_at(1.0);
        snap.retry_budget_tokens = 7.5;
        c.decide(&snap, &wm, &params).unwrap();
        assert!((c.tokens() - 7.5).abs() < 1e-9);
        assert_eq!(c.state_beans(), vec![(beans::RETRY_BUDGET_TOKENS, 7.5)]);
    }
}
