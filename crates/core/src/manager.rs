//! The autonomic manager: a MAPE control loop over an ABC.
//!
//! Each behavioural skeleton carries an autonomic manager executing the
//! classical control loop (paper §3): *monitor* (sample the ABC's sensors),
//! *analyse* (evaluate the rule program against the sampled beans),
//! *plan/execute* (run the fired rules' actions through the ABC's
//! actuators, or report a violation to the parent manager when no local
//! action applies).
//!
//! ## Active/passive roles (P_rol)
//!
//! Following §4.2, the manager's mode is *derived from rule fireability*:
//! "transition to the passive state is modelled by the absence of fireable
//! 'active' rules (rules not raising a violation)". Concretely, after each
//! cycle:
//!
//! * some actuator rule fired → **active**;
//! * only violation-raising rules fired → **passive** (the manager has
//!   reported upward and is waiting for the situation to change — a new
//!   contract, or sensors making a local rule fireable again);
//! * nothing fired → the contract is being met; the manager stays active.
//!
//! ## Hierarchy plumbing
//!
//! Managers communicate through two tiny shared cells: a parent posts
//! contracts into each child's [`ContractSlot`]; children push
//! [`ViolationReport`]s into their parent's [`Mailbox`]. Both substrates
//! (threads, simulator) drive managers by calling
//! [`AutonomicManager::control_cycle`] at each control period.

use crate::abc::{Abc, AbcError, ActuationOutcome, ManagerOp};
use crate::concern::Concern;
use crate::contract::Contract;
use crate::controller::{build_controller, Controller, ControllerKind};
use crate::events::{EventKind, EventLog};
use bskel_monitor::{SensorSnapshot, Time};
use bskel_rules::stdlib::{self, hier_beans, viol};
use bskel_rules::{op, Analyzer, OpCall, RuleSet, WorkingMemory};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Manager mode (paper Fig. 1, right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AmState {
    /// Autonomically ensuring the contract via the local control loop.
    #[default]
    Active,
    /// Only monitoring; a violation has been reported and no local plan is
    /// fireable. Left when a new contract arrives or a local rule becomes
    /// fireable again.
    Passive,
}

/// A violation reported by a manager to its parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Input pressure below what the contract requires (only an upstream
    /// actor can fix this).
    NotEnoughTasks,
    /// Input pressure above what the contract needs (warning; enables
    /// upstream throttling / memory tuning).
    TooMuchTasks,
    /// The reporting manager observed the end of its input stream.
    EndOfStream,
    /// The contract cannot be met and no local plan exists.
    Unsatisfiable(String),
}

/// A violation report in a parent's mailbox.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationReport {
    /// Reporting manager's name.
    pub from: String,
    /// What went wrong.
    pub kind: ViolationKind,
    /// When it was reported.
    pub at: Time,
}

/// A shared mailbox children push violation reports into.
#[derive(Debug, Clone, Default)]
pub struct Mailbox {
    inner: Arc<Mutex<Vec<ViolationReport>>>,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a report.
    pub fn push(&self, report: ViolationReport) {
        self.inner.lock().expect("mailbox poisoned").push(report);
    }

    /// Takes all pending reports.
    pub fn drain(&self) -> Vec<ViolationReport> {
        std::mem::take(&mut *self.inner.lock().expect("mailbox poisoned"))
    }

    /// Number of pending reports.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("mailbox poisoned").len()
    }

    /// True when no reports are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A shared cell a parent posts contracts into.
#[derive(Debug, Clone, Default)]
pub struct ContractSlot {
    inner: Arc<Mutex<Option<Contract>>>,
}

impl ContractSlot {
    /// Creates an empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts a contract, replacing any unconsumed one.
    pub fn post(&self, c: Contract) {
        *self.inner.lock().expect("contract slot poisoned") = Some(c);
    }

    /// Takes the pending contract, if any.
    pub fn take(&self) -> Option<Contract> {
        self.inner.lock().expect("contract slot poisoned").take()
    }
}

/// A parent's handle on one child manager.
#[derive(Debug, Clone)]
pub struct ChildLink {
    /// Child manager name.
    pub name: String,
    /// Slot to post sub-contracts into.
    pub slot: ContractSlot,
    /// Whether this child is the stream *source* (a producer stage): the
    /// pipeline manager drives sources with output-rate contracts
    /// (incRate/decRate) rather than forwarding the throughput SLA.
    pub is_source: bool,
}

/// What pattern the manager manages — selects the rule program and the
/// binding of symbolic operations to actuators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManagerKind {
    /// Functional-replication (task farm) manager: Fig. 5 rules.
    Farm,
    /// Pipeline coordinator: reacts to child violations with rate
    /// contracts for the source stage.
    Pipeline,
    /// Stream-source (producer) manager: self-tunes its emission rate
    /// within the output-rate contract.
    Producer,
    /// Monitor-only sequential stage (e.g. the consumer).
    Sequential,
    /// Multi-tenant share manager: arbitrates one tenant's slice of a
    /// shared worker pool (grow/shrink the fair-share weight, shed load,
    /// escalate at the share ceiling). Runs `tenancy.rules`; the same
    /// kind serves both the per-tenant child managers and the
    /// pool-level arbiter (whose share is pinned to 1.0, leaving only
    /// the pool-growth and escalation rules live).
    Tenant,
}

/// How strictly a manager checks its rule program with
/// `bskel_rules::analysis` when the program is loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuleCheck {
    /// Skip the analysis entirely.
    Off,
    /// Run the analysis and log every finding as a `rulelint` event, but
    /// accept the program (the default: misconfigured policies surface in
    /// the event log instead of failing silently at runtime).
    #[default]
    Warn,
    /// Reject a rule program with error-severity findings at load time
    /// (deploy-time enforcement; see ROADMAP "production system").
    Strict,
}

/// A rule program rejected at load time under [`RuleCheck::Strict`].
#[derive(Debug, Clone)]
pub struct RuleLintError(pub Vec<bskel_rules::Diagnostic>);

impl fmt::Display for RuleLintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "rule program rejected by rulelint:")?;
        for d in &self.0 {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for RuleLintError {}

/// Manager tuning knobs.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Manager name (e.g. `AM_F`).
    pub name: String,
    /// The concern managed. The built-in kinds manage
    /// [`Concern::Performance`].
    pub concern: Concern,
    /// Pattern kind.
    pub kind: ManagerKind,
    /// Seconds between control cycles.
    pub control_period: f64,
    /// Workers added per `ADD_EXECUTOR` firing (the paper's Fig. 4 adds
    /// two at a time).
    pub add_batch: u32,
    /// Workers removed per `REMOVE_EXECUTOR` firing.
    pub remove_batch: u32,
    /// Parallelism-degree floor when the contract does not constrain it.
    pub min_workers: u32,
    /// Parallelism-degree ceiling when the contract does not constrain it.
    pub max_workers: u32,
    /// Queue-variance threshold for rebalancing.
    pub max_unbalance: f64,
    /// Multiplicative step of an `incRate` contract (paper: the producer
    /// emits "more and more frequently").
    pub rate_inc_factor: f64,
    /// Multiplicative step of a `decRate` contract ("slightly decrease").
    pub rate_dec_factor: f64,
    /// Initial target rate assumed for a source child before the first
    /// incRate (tasks/s).
    pub initial_source_rate: f64,
    /// Extra rule parameters merged over the contract-derived ones
    /// (e.g. `FT_MIN_WORKERS` for a merged perf+FT rule program).
    pub extra_params: Vec<(String, f64)>,
    /// Model-based initial parallelism-degree setup (the ASSIST-heritage
    /// policy the paper cites from refs. \[10\]/\[13\]): on adopting a throughput
    /// contract, a farm manager jumps straight to
    /// `ceil(rate_floor × service_time)` workers instead of ramping
    /// reactively. Requires a service-time sensor (the simulator's cost
    /// model, or a workload specification).
    pub model_initial_setup: bool,
    /// Load-time rule-program checking policy (see [`RuleCheck`]).
    pub rule_check: RuleCheck,
    /// Opt-in model checking of the rule program at load/adoption time:
    /// `Some(k)` runs `bskel_rules::mc` with recovery bound `k` beside
    /// the static analysis, reporting findings as `rulemc:*` events
    /// (property failures are error-severity and reject the program
    /// under [`RuleCheck::Strict`], like any other lint error). `None`
    /// (the default) skips it — exhaustive exploration costs more than a
    /// lint pass and belongs at deploy time, not in every unit test.
    pub model_check: Option<usize>,
    /// The control law this manager runs (see
    /// [`crate::controller::ControllerKind`]). Defaults to the rule
    /// engine; `Aimd` replaces the scaling rules with a congestion-control
    /// law, `RetryBudget`/`Hedge` wrap the rule program with a
    /// retry-budget mirror (plant-side enforcement in `bskel_net`).
    pub controller: ControllerKind,
}

impl ManagerConfig {
    fn base(name: &str, kind: ManagerKind) -> Self {
        Self {
            name: name.to_owned(),
            concern: Concern::Performance,
            kind,
            control_period: 1.0,
            add_batch: 1,
            remove_batch: 1,
            min_workers: 1,
            max_workers: 64,
            max_unbalance: 4.0,
            rate_inc_factor: 1.25,
            rate_dec_factor: 0.92,
            initial_source_rate: 0.2,
            extra_params: Vec::new(),
            model_initial_setup: false,
            rule_check: RuleCheck::default(),
            model_check: None,
            controller: ControllerKind::Rules,
        }
    }

    /// Defaults for a farm manager.
    pub fn farm(name: &str) -> Self {
        Self::base(name, ManagerKind::Farm)
    }

    /// Defaults for a pipeline manager.
    pub fn pipeline(name: &str) -> Self {
        Self::base(name, ManagerKind::Pipeline)
    }

    /// Defaults for a producer manager.
    pub fn producer(name: &str) -> Self {
        Self::base(name, ManagerKind::Producer)
    }

    /// Defaults for a monitor-only sequential-stage manager.
    pub fn sequential(name: &str) -> Self {
        Self::base(name, ManagerKind::Sequential)
    }

    /// Defaults for a tenant share manager.
    pub fn tenant(name: &str) -> Self {
        Self::base(name, ManagerKind::Tenant)
    }
}

/// An autonomic manager bound to a computation through an ABC.
pub struct AutonomicManager {
    cfg: ManagerConfig,
    state: AmState,
    contract: Contract,
    controller: Box<dyn Controller>,
    params: bskel_rules::ParamTable,
    abc: Box<dyn Abc>,
    log: EventLog,
    contract_slot: ContractSlot,
    parent: Option<Mailbox>,
    inbox: Mailbox,
    children: Vec<ChildLink>,
    source_rate: f64,
    end_stream_seen: bool,
    end_stream_reported: bool,
    needs_initial_setup: bool,
    last_snapshot: Option<SensorSnapshot>,
}

impl AutonomicManager {
    /// Creates a manager with its pattern's standard rule program and a
    /// best-effort contract; call [`AutonomicManager::contract_slot`] /
    /// [`AutonomicManager::mailbox`] to wire it into a hierarchy, and post
    /// the real contract into its slot.
    ///
    /// # Panics
    ///
    /// Under [`RuleCheck::Strict`], if the standard rule program for this
    /// kind fails the static analysis (it doesn't; use
    /// [`AutonomicManager::try_new`] for fallible construction with
    /// custom-schema ABCs).
    pub fn new(cfg: ManagerConfig, abc: Box<dyn Abc>, log: EventLog) -> Self {
        Self::try_new(cfg, abc, log).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AutonomicManager::new`]: returns the `rulelint`
    /// diagnostics instead of panicking when the standard rule program is
    /// rejected under [`RuleCheck::Strict`].
    pub fn try_new(
        cfg: ManagerConfig,
        abc: Box<dyn Abc>,
        log: EventLog,
    ) -> Result<Self, RuleLintError> {
        let rules = match cfg.kind {
            ManagerKind::Farm => stdlib::farm_rules(),
            ManagerKind::Pipeline => stdlib::pipeline_rules(),
            ManagerKind::Producer => stdlib::producer_rules(),
            ManagerKind::Sequential => RuleSet::new(),
            ManagerKind::Tenant => stdlib::tenancy_rules(),
        };
        let source_rate = cfg.initial_source_rate;
        let controller = build_controller(cfg.controller, rules);
        let mut m = Self {
            cfg,
            state: AmState::Active,
            contract: Contract::BestEffort,
            controller,
            params: bskel_rules::ParamTable::new(),
            abc,
            log,
            contract_slot: ContractSlot::new(),
            parent: None,
            inbox: Mailbox::new(),
            children: Vec::new(),
            source_rate,
            end_stream_seen: false,
            end_stream_reported: false,
            needs_initial_setup: false,
            last_snapshot: None,
        };
        m.params = m.derive_params(&Contract::BestEffort);
        m.lint_rules(None, 0.0)?;
        Ok(m)
    }

    /// Replaces the rule program (custom policies).
    ///
    /// # Panics
    ///
    /// Under [`RuleCheck::Strict`], if the program fails the static
    /// analysis — use [`AutonomicManager::try_with_rules`] to handle the
    /// rejection.
    pub fn with_rules(self, rules: RuleSet) -> Self {
        self.try_with_rules(rules).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Replaces the rule program, first checking it with
    /// `bskel_rules::analysis` against the ABC's published bean schema
    /// according to [`ManagerConfig::rule_check`]: findings are logged as
    /// `rulelint` events, and under [`RuleCheck::Strict`] error-severity
    /// findings (unknown beans, unsatisfiable guards, undamped
    /// oscillation pairs, conflicting shadowing) reject the program.
    pub fn try_with_rules(mut self, rules: RuleSet) -> Result<Self, RuleLintError> {
        self.controller.set_rules(rules);
        self.lint_rules(None, 0.0)?;
        Ok(self)
    }

    /// Runs the rule-program analysis, logging findings; errors reject the
    /// program under [`RuleCheck::Strict`]. With `params` bound (contract
    /// adoption) the verdicts are sharper but only ever logged: a contract
    /// making a rule dormant is a property of this contract, not of the
    /// program.
    fn lint_rules(
        &self,
        params: Option<&bskel_rules::ParamTable>,
        now: Time,
    ) -> Result<(), RuleLintError> {
        if self.cfg.rule_check == RuleCheck::Off {
            return Ok(());
        }
        // Laws without a rule program have nothing to lint or model-check.
        let Some(rules) = self.controller.rules() else {
            return Ok(());
        };
        let analyzer = Analyzer::new(self.abc.bean_schema());
        let mut diags = analyzer.analyze(rules, params, None);
        for d in &diags {
            self.emit(
                now,
                EventKind::Other(format!("rulelint:{}", d.code)),
                Some(d.to_string()),
            );
        }
        diags.extend(self.model_check_rules(params, now));
        let errors: Vec<_> = diags
            .into_iter()
            .filter(|d| d.severity == bskel_rules::Severity::Error)
            .collect();
        if self.cfg.rule_check == RuleCheck::Strict && params.is_none() && !errors.is_empty() {
            return Err(RuleLintError(errors));
        }
        Ok(())
    }

    /// Opt-in exhaustive model check of the rule program
    /// ([`ManagerConfig::model_check`]); findings flow through the same
    /// diagnostic path as the static analysis, under `rulemc:*` events.
    fn model_check_rules(
        &self,
        params: Option<&bskel_rules::ParamTable>,
        now: Time,
    ) -> Vec<bskel_rules::Diagnostic> {
        use bskel_rules::mc::{throughput_violation, EnvMove, ModelChecker, Spec};
        let Some(k) = self.cfg.model_check else {
            return Vec::new();
        };
        let Some(rules) = self.controller.rules() else {
            return Vec::new();
        };
        if rules.rules().is_empty() {
            return Vec::new();
        }
        let bound = params.unwrap_or(&self.params);
        let (lo, hi) = match self.cfg.kind {
            ManagerKind::Producer => self
                .contract
                .output_rate_bounds()
                .or_else(|| self.contract.throughput_bounds()),
            _ => self.contract.throughput_bounds(),
        }
        .unwrap_or((0.0, f64::INFINITY));
        let (min_w, max_w) = self
            .contract
            .par_degree_bounds()
            .unwrap_or((self.cfg.min_workers, self.cfg.max_workers));
        let mut spec = Spec::default()
            .recovery_k(k)
            .initial(
                bskel_monitor::snapshot::beans::NUM_WORKERS,
                f64::from(min_w),
                f64::from(max_w),
            )
            .env(hier_beans::END_STREAM, EnvMove::UpOnly)
            .waiver(bskel_rules::Condition::flag(
                bskel_monitor::snapshot::beans::END_OF_STREAM,
            ));
        if let Some(v) = throughput_violation(lo, hi) {
            spec = spec.violation(v).throughput_plant();
        }
        let report = match ModelChecker::new(self.abc.bean_schema()).check(
            &self.cfg.name,
            rules,
            bound,
            &spec,
        ) {
            Ok(r) => r,
            Err(e) => {
                // Unbound params / unknown beans are already surfaced by
                // the static analysis; a budget overrun is news.
                self.emit(now, EventKind::Other(format!("rulemcError:{e}")), None);
                return Vec::new();
            }
        };
        self.emit(
            now,
            EventKind::Other("rulemc".to_string()),
            Some(format!(
                "states={} transitions={} recovery={} livelock={} dead={} wall={:?}",
                report.states,
                report.transitions,
                report
                    .recovery
                    .as_ref()
                    .map_or("skipped", |v| if v.proved() {
                        "proved"
                    } else {
                        "violated"
                    }),
                if report.livelock.proved() {
                    "proved"
                } else {
                    "violated"
                },
                report.dead_rules.len(),
                report.wall,
            )),
        );
        let diags = report.to_diagnostics();
        for d in &diags {
            self.emit(
                now,
                EventKind::Other(format!("rulemc:{}", d.code)),
                Some(d.to_string()),
            );
        }
        diags
    }

    /// Sets the parent mailbox violations are reported to.
    pub fn with_parent(mut self, parent: Mailbox) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Registers a child manager link.
    pub fn add_child(&mut self, link: ChildLink) {
        self.children.push(link);
    }

    /// The slot a parent (or the user) posts this manager's contract into.
    pub fn contract_slot(&self) -> ContractSlot {
        self.contract_slot.clone()
    }

    /// The mailbox this manager's children report violations into.
    pub fn mailbox(&self) -> Mailbox {
        self.inbox.clone()
    }

    /// Manager name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// Current mode.
    pub fn state(&self) -> AmState {
        self.state
    }

    /// Currently adopted contract.
    pub fn contract(&self) -> &Contract {
        &self.contract
    }

    /// Configured control period (seconds).
    pub fn control_period(&self) -> f64 {
        self.cfg.control_period
    }

    /// The most recent sensor snapshot (for inspection/tests).
    pub fn last_snapshot(&self) -> Option<&SensorSnapshot> {
        self.last_snapshot.as_ref()
    }

    /// The event log handle.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Mutable access to the underlying ABC (substrate-specific drivers).
    pub fn abc_mut(&mut self) -> &mut dyn Abc {
        self.abc.as_mut()
    }

    fn emit(&self, at: Time, kind: EventKind, detail: Option<String>) {
        self.log.push(at, &self.cfg.name, kind, detail);
    }

    /// Derives the rule parameters implied by a contract for this kind.
    fn derive_params(&self, contract: &Contract) -> bskel_rules::ParamTable {
        let mut params = self.derive_kind_params(contract);
        for (name, value) in &self.cfg.extra_params {
            params.set(name.clone(), *value);
        }
        params
    }

    fn derive_kind_params(&self, contract: &Contract) -> bskel_rules::ParamTable {
        match self.cfg.kind {
            ManagerKind::Farm => {
                let (lo, hi) = contract.throughput_bounds().unwrap_or((0.0, f64::INFINITY));
                let (min_w, max_w) = contract
                    .par_degree_bounds()
                    .unwrap_or((self.cfg.min_workers, self.cfg.max_workers));
                stdlib::farm_params(lo, hi, min_w, max_w, self.cfg.max_unbalance)
            }
            ManagerKind::Producer => {
                let (floor, ceil) = contract
                    .output_rate_bounds()
                    .or_else(|| contract.throughput_bounds())
                    .unwrap_or((0.0, f64::INFINITY));
                stdlib::producer_params(floor, ceil)
            }
            ManagerKind::Tenant => {
                // Contract stripe → delivered-throughput thresholds; the
                // share/admission knobs default conservatively and are
                // tuned per tenant via `extra_params`.
                let (lo, hi) = contract.throughput_bounds().unwrap_or((0.0, f64::INFINITY));
                stdlib::tenancy_params(lo, hi, 0.05, 0.8, 64, self.cfg.max_workers)
            }
            ManagerKind::Pipeline | ManagerKind::Sequential => bskel_rules::ParamTable::new(),
        }
    }

    /// Adopts a new contract: recomputes rule parameters, propagates
    /// sub-contracts to children, (re-)enters active mode.
    fn adopt_contract(&mut self, contract: Contract, now: Time) {
        self.params = self.derive_params(&contract);
        self.emit(now, EventKind::NewContract, Some(contract.to_string()));
        self.contract = contract;
        // Binding the contract's parameters makes cross-rule reasoning
        // decidable; re-lint (and model-check, if enabled) against the
        // adopted contract so dormant rules and parameter-induced
        // overlaps land in the event log (never a rejection).
        let _ = self.lint_rules(Some(&self.params), now);
        if self.cfg.model_initial_setup && self.cfg.kind == ManagerKind::Farm {
            self.needs_initial_setup = true;
        }
        if self.state == AmState::Passive {
            self.state = AmState::Active;
            self.emit(now, EventKind::EnterActive, None);
        }

        // Contract propagation (P_spl): the pipeline forwards the SLA to
        // its non-source children; the source is driven by rate contracts.
        // The farm hands workers best-effort — our ChildLinks for farms are
        // the worker managers, if any are registered.
        if self.children.is_empty() {
            return;
        }
        match self.cfg.kind {
            ManagerKind::Pipeline => {
                for child in &self.children {
                    if child.is_source {
                        child.slot.post(Contract::output_rate(self.source_rate));
                    } else {
                        child.slot.post(self.contract.clone());
                    }
                }
            }
            ManagerKind::Farm => {
                let workers_sub = match self.contract.secure_domain_set() {
                    Some(d) if !d.is_empty() => {
                        Contract::all([Contract::BestEffort, Contract::SecureDomains(d)])
                    }
                    _ => Contract::BestEffort,
                };
                for child in &self.children {
                    child.slot.post(workers_sub.clone());
                }
            }
            // Tenant children receive their contracts from their tenant
            // specs, not from the arbiter: the arbiter redistributes
            // *shares*, it does not rewrite tenant SLAs.
            ManagerKind::Producer | ManagerKind::Sequential | ManagerKind::Tenant => {}
        }
    }

    /// Orders one actuation through the ABC, journaling the plant's
    /// response. Outcomes are control-loop *inputs* — a `NoOp` emits no
    /// event line yet still shapes the decision trajectory — so the ops
    /// journal must carry them for deterministic replay.
    fn actuate(&mut self, op: &ManagerOp, now: Time) -> Result<ActuationOutcome, AbcError> {
        let result = self.abc.actuate(op, now);
        if let Some(journal) = self.log.journal() {
            let outcome = match &result {
                Ok(ActuationOutcome::Applied) => "applied".to_owned(),
                Ok(ActuationOutcome::NoOp) => "noop".to_owned(),
                Ok(ActuationOutcome::Refused { reason }) => format!("refused:{reason}"),
                Err(e) => format!("error:{e}"),
            };
            journal.actuation_by(
                now,
                &self.cfg.name,
                &op.to_string(),
                &outcome,
                self.controller.name(),
            );
        }
        result
    }

    /// Runs one monitor–analyse–plan–execute cycle at time `now`.
    ///
    /// Returns the operation calls the rule engine produced (after their
    /// effects have been applied), which drivers may inspect.
    pub fn control_cycle(&mut self, now: Time) -> Vec<OpCall> {
        // New contract first: adopting is allowed even mid-reconfiguration.
        if let Some(c) = self.contract_slot.take() {
            self.adopt_contract(c, now);
        }

        let mut snap = self.abc.sense(now);
        // Controller-internal state (AIMD ceiling, budget-mirror tokens)
        // rides the snapshot so both the journal and the working memory
        // see it; plant-published budget tokens stay authoritative.
        for (name, v) in self.controller.state_beans() {
            match name {
                bskel_monitor::snapshot::beans::AIMD_CEILING => snap.aimd_ceiling = v,
                bskel_monitor::snapshot::beans::RETRY_BUDGET_TOKENS => {
                    if snap.retry_budget_tokens == 0.0 {
                        snap.retry_budget_tokens = v;
                    }
                }
                _ => snap.extra.push((name.to_owned(), v)),
            }
        }
        // Ops plane: every sensed snapshot is journaled (when a journal
        // is attached to the log), making the control loop's full input
        // durable and the run replayable offline.
        if let Some(journal) = self.log.journal() {
            journal.snapshot(now, &self.cfg.name, &snap);
        }
        let reconfiguring = snap.reconfiguring;
        // Failure sensing: a rise in the cumulative `workersLost` bean is
        // logged even during a blackout — the FT rules may be the only
        // thing that ever reacts to it.
        let prev_lost = self
            .last_snapshot
            .as_ref()
            .map_or(0, |prev| prev.workers_lost);
        if snap.workers_lost > prev_lost {
            self.emit(
                now,
                EventKind::WorkerLost,
                Some(format!("{}", snap.workers_lost - prev_lost)),
            );
        }
        self.last_snapshot = Some(snap.clone());

        // Sensor blackout during reconfiguration (paper: "No sensor data is
        // available for AM_F during the reconfiguration").
        if reconfiguring {
            return Vec::new();
        }

        // Model-based initial parallelism-degree setup (paper §3, citing
        // [10]: the parallelism degree "can be initially set to some
        // 'optimal' value and then adapted"). One shot per contract.
        if self.needs_initial_setup {
            self.needs_initial_setup = false;
            if let Some((lo, _)) = self.contract.throughput_bounds() {
                if snap.service_time > 0.0 && lo > 0.0 {
                    let target = (lo * snap.service_time).ceil().max(1.0) as u32;
                    if target > snap.num_workers {
                        let add = target - snap.num_workers;
                        if let Ok(ActuationOutcome::Applied) =
                            self.actuate(&ManagerOp::AddWorkers(add), now)
                        {
                            self.emit(
                                now,
                                EventKind::AddWorker,
                                Some(format!("{add} (model-init)")),
                            );
                            // Reconfiguration in flight; resume next cycle.
                            return Vec::new();
                        }
                    }
                }
            }
        }

        // Drain child violations into hierarchy beans.
        let mut viol_not_enough = false;
        let mut viol_too_much = false;
        for report in self.inbox.drain() {
            match report.kind {
                ViolationKind::NotEnoughTasks => viol_not_enough = true,
                ViolationKind::TooMuchTasks => viol_too_much = true,
                ViolationKind::EndOfStream => {
                    if !self.end_stream_seen {
                        self.end_stream_seen = true;
                        self.emit(now, EventKind::EndStream, Some(report.from.clone()));
                    }
                }
                ViolationKind::Unsatisfiable(reason) => {
                    // Escalate: this manager has no generic plan for an
                    // unsatisfiable child; report upward.
                    self.raise(now, ViolationKind::Unsatisfiable(reason));
                }
            }
        }

        // Own end-of-stream observation: report once to the parent.
        if snap.end_of_stream && !self.end_stream_reported {
            self.end_stream_reported = true;
            self.end_stream_seen = true;
            self.emit(now, EventKind::EndStream, None);
            if let Some(parent) = &self.parent {
                parent.push(ViolationReport {
                    from: self.cfg.name.clone(),
                    kind: ViolationKind::EndOfStream,
                    at: now,
                });
            }
        }

        // Contract-check events (the contrLow/contrHigh lines of Fig. 4).
        let check_bounds = match self.cfg.kind {
            ManagerKind::Producer => self
                .contract
                .output_rate_bounds()
                .or_else(|| self.contract.throughput_bounds()),
            _ => self.contract.throughput_bounds(),
        };
        if let Some((lo, hi)) = check_bounds {
            if snap.departure_rate < lo && !(snap.end_of_stream && snap.queued_tasks == 0) {
                self.emit(now, EventKind::ContrLow, None);
            } else if snap.departure_rate > hi {
                self.emit(now, EventKind::ContrHigh, None);
            }
        }

        // Working memory: sensors + hierarchy beans.
        let mut wm = WorkingMemory::from_beans(snap.to_beans());
        wm.insert_flag(hier_beans::VIOL_NOT_ENOUGH, viol_not_enough);
        wm.insert_flag(hier_beans::VIOL_TOO_MUCH, viol_too_much);
        wm.insert_flag(hier_beans::END_STREAM, self.end_stream_seen);

        let ops = match self.controller.decide(&snap, &wm, &self.params) {
            Ok(ops) => ops,
            Err(e) => {
                // A broken rule program is a policy bug: surface it loudly
                // in the event log and raise it upward.
                self.emit(now, EventKind::Other(format!("ruleError:{e}")), None);
                self.raise(now, ViolationKind::Unsatisfiable(e.to_string()));
                return Vec::new();
            }
        };

        let mut acted = false;
        let mut violated = false;
        let mut refused = false;
        for call in &ops {
            match call.operation.as_str() {
                op::RAISE_VIOLATION => {
                    violated = true;
                    let kind = match call.data.as_deref() {
                        Some(viol::NOT_ENOUGH_TASKS) => {
                            self.emit(now, EventKind::NotEnough, None);
                            ViolationKind::NotEnoughTasks
                        }
                        Some(viol::TOO_MUCH_TASKS) => {
                            self.emit(now, EventKind::TooMuch, None);
                            ViolationKind::TooMuchTasks
                        }
                        other => {
                            ViolationKind::Unsatisfiable(other.unwrap_or("unspecified").to_owned())
                        }
                    };
                    self.raise(now, kind);
                }
                op::ADD_EXECUTOR => {
                    let op_ = ManagerOp::AddWorkers(self.cfg.add_batch);
                    match self.actuate(&op_, now) {
                        Ok(ActuationOutcome::Applied) => {
                            acted = true;
                            self.emit(
                                now,
                                EventKind::AddWorker,
                                Some(self.cfg.add_batch.to_string()),
                            );
                        }
                        Ok(ActuationOutcome::NoOp) => {}
                        Ok(ActuationOutcome::Refused { reason }) => {
                            violated = true;
                            refused = true;
                            self.raise(now, ViolationKind::Unsatisfiable(reason));
                        }
                        Err(e) => {
                            self.emit(now, EventKind::Other(format!("abcError:{e}")), None);
                        }
                    }
                }
                op::REMOVE_EXECUTOR => {
                    let op_ = ManagerOp::RemoveWorkers(self.cfg.remove_batch);
                    if let Ok(ActuationOutcome::Applied) = self.actuate(&op_, now) {
                        acted = true;
                        self.emit(
                            now,
                            EventKind::RemoveWorker,
                            Some(self.cfg.remove_batch.to_string()),
                        );
                    }
                }
                op::BALANCE_LOAD => {
                    if let Ok(ActuationOutcome::Applied) =
                        self.actuate(&ManagerOp::BalanceLoad, now)
                    {
                        acted = true;
                        self.emit(now, EventKind::Rebalance, None);
                    }
                }
                op::INC_RATE => match self.cfg.kind {
                    ManagerKind::Pipeline => {
                        self.source_rate *= self.cfg.rate_inc_factor;
                        let c = Contract::output_rate(self.source_rate);
                        for child in self.children.iter().filter(|c| c.is_source) {
                            child.slot.post(c.clone());
                        }
                        acted = true;
                        self.emit(
                            now,
                            EventKind::IncRate,
                            Some(format!("{:.3}", self.source_rate)),
                        );
                    }
                    _ => {
                        let op_ = ManagerOp::ScaleRate(self.cfg.rate_inc_factor);
                        if let Ok(ActuationOutcome::Applied) = self.actuate(&op_, now) {
                            acted = true;
                            self.emit(now, EventKind::IncRate, None);
                        }
                    }
                },
                op::DEC_RATE => match self.cfg.kind {
                    ManagerKind::Pipeline => {
                        self.source_rate *= self.cfg.rate_dec_factor;
                        let c = Contract::output_rate(self.source_rate);
                        for child in self.children.iter().filter(|c| c.is_source) {
                            child.slot.post(c.clone());
                        }
                        acted = true;
                        self.emit(
                            now,
                            EventKind::DecRate,
                            Some(format!("{:.3}", self.source_rate)),
                        );
                    }
                    _ => {
                        let op_ = ManagerOp::ScaleRate(self.cfg.rate_dec_factor);
                        if let Ok(ActuationOutcome::Applied) = self.actuate(&op_, now) {
                            acted = true;
                            self.emit(now, EventKind::DecRate, None);
                        }
                    }
                },
                other => {
                    // Unknown symbolic operations pass through as custom
                    // actuations (substrate extensions). The tenancy share
                    // operations get typed events so tenant traces filter
                    // like the paper's event lines.
                    let op_ = ManagerOp::Custom(other.to_owned());
                    if let Ok(ActuationOutcome::Applied) = self.actuate(&op_, now) {
                        acted = true;
                        let kind = match other {
                            stdlib::GROW_SHARE_OP => EventKind::GrowShare,
                            stdlib::SHRINK_SHARE_OP => EventKind::ShrinkShare,
                            stdlib::SHED_LOAD_OP => EventKind::ShedLoad,
                            _ => EventKind::Other(other.to_owned()),
                        };
                        self.emit(now, kind, None);
                    }
                }
            }
        }

        // Mode derivation (P_rol, §4.2). A refused corrective action means
        // the planned local repair is unavailable — passive even if some
        // secondary actuation (e.g. a rebalance) went through.
        let new_state = if refused {
            AmState::Passive
        } else if acted {
            AmState::Active
        } else if violated {
            AmState::Passive
        } else {
            self.state
        };
        if new_state != self.state {
            self.state = new_state;
            self.emit(
                now,
                match new_state {
                    AmState::Active => EventKind::EnterActive,
                    AmState::Passive => EventKind::EnterPassive,
                },
                None,
            );
        }

        ops
    }

    fn raise(&self, now: Time, kind: ViolationKind) {
        self.emit(now, EventKind::RaiseViol, Some(format!("{kind:?}")));
        if let Some(parent) = &self.parent {
            parent.push(ViolationReport {
                from: self.cfg.name.clone(),
                kind,
                at: now,
            });
        }
    }
}

impl std::fmt::Debug for AutonomicManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutonomicManager")
            .field("name", &self.cfg.name)
            .field("kind", &self.cfg.kind)
            .field("state", &self.state)
            .field("contract", &self.contract)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abc::{AbcError, NullAbc};

    /// Scripted ABC: a queue of snapshots plus a log of actuations.
    struct MockAbc {
        snapshots: Vec<SensorSnapshot>,
        cursor: usize,
        pub actuations: Arc<Mutex<Vec<ManagerOp>>>,
        refuse_adds: bool,
    }

    impl MockAbc {
        fn new(snapshots: Vec<SensorSnapshot>) -> Self {
            Self {
                snapshots,
                cursor: 0,
                actuations: Arc::new(Mutex::new(Vec::new())),
                refuse_adds: false,
            }
        }
    }

    impl Abc for MockAbc {
        fn sense(&mut self, now: Time) -> SensorSnapshot {
            let i = self.cursor.min(self.snapshots.len().saturating_sub(1));
            self.cursor += 1;
            self.snapshots
                .get(i)
                .cloned()
                .unwrap_or_else(|| SensorSnapshot::empty(now))
        }

        fn actuate(&mut self, op: &ManagerOp, _now: Time) -> Result<ActuationOutcome, AbcError> {
            self.actuations.lock().unwrap().push(op.clone());
            if self.refuse_adds && matches!(op, ManagerOp::AddWorkers(_)) {
                return Ok(ActuationOutcome::Refused {
                    reason: "no resources".into(),
                });
            }
            Ok(ActuationOutcome::Applied)
        }
    }

    fn farm_snap(arrival: f64, departure: f64, workers: u32, qvar: f64) -> SensorSnapshot {
        let mut s = SensorSnapshot::empty(0.0);
        s.arrival_rate = arrival;
        s.departure_rate = departure;
        s.num_workers = workers;
        s.queue_variance = qvar;
        s
    }

    fn farm_manager(snaps: Vec<SensorSnapshot>) -> (AutonomicManager, Arc<Mutex<Vec<ManagerOp>>>) {
        let abc = MockAbc::new(snaps);
        let acts = Arc::clone(&abc.actuations);
        let m = AutonomicManager::new(ManagerConfig::farm("AM_F"), Box::new(abc), EventLog::new());
        (m, acts)
    }

    /// An undamped grow/shrink pair: both guards hold at departureRate 7.
    fn oscillating_rules() -> RuleSet {
        bskel_rules::parse_rules(
            r#"
            rule "grow" when departureRate < 10 then fire(ADD_EXECUTOR) end
            rule "shrink" when departureRate > 5 then fire(REMOVE_EXECUTOR) end
            "#,
        )
        .unwrap()
    }

    #[test]
    fn strict_mode_rejects_oscillating_rules_at_load_time() {
        let mut cfg = ManagerConfig::farm("AM_F");
        cfg.rule_check = RuleCheck::Strict;
        let m = AutonomicManager::new(cfg, Box::new(MockAbc::new(vec![])), EventLog::new());
        let err = m.try_with_rules(oscillating_rules()).unwrap_err();
        assert!(
            err.0
                .iter()
                .any(|d| d.code == bskel_rules::LintCode::Oscillation),
            "{err}"
        );
        assert!(err.to_string().contains("oscillation"), "{err}");
    }

    #[test]
    fn warn_mode_accepts_oscillating_rules_but_logs() {
        let (m, _) = farm_manager(vec![]);
        let m = m.with_rules(oscillating_rules());
        let events = m
            .log()
            .of_kind(&EventKind::Other("rulelint:oscillation".into()));
        assert_eq!(events.len(), 1, "{:?}", m.log().snapshot());
    }

    #[test]
    fn off_mode_skips_linting() {
        let mut cfg = ManagerConfig::farm("AM_F");
        cfg.rule_check = RuleCheck::Off;
        let m = AutonomicManager::new(cfg, Box::new(MockAbc::new(vec![])), EventLog::new())
            .with_rules(oscillating_rules());
        assert!(m.log().is_empty());
    }

    #[test]
    fn strict_mode_accepts_standard_programs() {
        for cfg in [
            ManagerConfig::farm("f"),
            ManagerConfig::pipeline("p"),
            ManagerConfig::producer("s"),
        ] {
            let mut cfg = cfg;
            cfg.rule_check = RuleCheck::Strict;
            let m = AutonomicManager::try_new(cfg, Box::new(MockAbc::new(vec![])), EventLog::new());
            assert!(m.is_ok());
        }
    }

    #[test]
    fn model_check_proves_standard_farm_on_contract_adoption() {
        let mut cfg = ManagerConfig::farm("AM_F");
        cfg.model_check = Some(8);
        let mut m = AutonomicManager::new(cfg, Box::new(MockAbc::new(vec![])), EventLog::new());
        m.contract_slot().post(Contract::throughput_range(0.4, 0.8));
        m.control_cycle(0.0);
        let events = m.log().of_kind(&EventKind::Other("rulemc".into()));
        assert!(!events.is_empty(), "{:?}", m.log().snapshot());
        let last = events.last().unwrap().detail.clone().unwrap();
        assert!(last.contains("recovery=proved"), "{last}");
        assert!(last.contains("livelock=proved"), "{last}");
        assert!(m
            .log()
            .of_kind(&EventKind::Other("rulemc:no-recovery".into()))
            .is_empty());
    }

    #[test]
    fn strict_mode_with_model_check_rejects_livelocking_program() {
        // A single self-re-enabling rule: no pair for the W-oscillation
        // heuristic to catch, but the lasso search proves the livelock.
        let mut cfg = ManagerConfig::farm("AM_F");
        cfg.rule_check = RuleCheck::Strict;
        cfg.model_check = Some(4);
        let m = AutonomicManager::new(cfg, Box::new(MockAbc::new(vec![])), EventLog::new());
        let rules = bskel_rules::parse_rules(
            r#"rule "grow" when numWorkers > 0 then fire(ADD_EXECUTOR) end"#,
        )
        .unwrap();
        let err = m.try_with_rules(rules).unwrap_err();
        assert!(
            err.0
                .iter()
                .any(|d| d.code == bskel_rules::LintCode::Livelock),
            "{err}"
        );
    }

    #[test]
    fn adopting_contract_relints_with_bound_params() {
        // A best-effort contract pins FARM_HIGH_PERF_LEVEL to +inf, which
        // makes the shedding rule provably dormant: warn, don't reject.
        let mut cfg = ManagerConfig::farm("AM_F");
        cfg.rule_check = RuleCheck::Strict;
        let mut m = AutonomicManager::new(cfg, Box::new(MockAbc::new(vec![])), EventLog::new());
        m.contract_slot().post(Contract::BestEffort);
        m.control_cycle(0.0);
        let events = m.log().of_kind(&EventKind::Other("rulelint:unsat".into()));
        assert!(
            events
                .iter()
                .any(|e| e.detail.as_deref().is_some_and(|d| d.contains("dormant"))),
            "{:?}",
            m.log().snapshot()
        );
    }

    #[test]
    fn adopts_contract_and_derives_params() {
        let (mut m, _) = farm_manager(vec![farm_snap(0.5, 0.5, 4, 0.0)]);
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        m.control_cycle(0.0);
        assert_eq!(m.contract(), &Contract::throughput_range(0.3, 0.7));
        assert!(!m.log().of_kind(&EventKind::NewContract).is_empty());
    }

    #[test]
    fn rise_in_workers_lost_emits_one_delta_event() {
        let mut lost2 = farm_snap(0.5, 0.5, 2, 0.0);
        lost2.workers_lost = 2;
        let (mut m, _) = farm_manager(vec![
            farm_snap(0.5, 0.5, 4, 0.0),
            lost2.clone(),
            lost2, // plateau: cumulative bean unchanged
        ]);
        m.contract_slot().post(Contract::BestEffort);
        m.control_cycle(0.0);
        assert!(m.log().of_kind(&EventKind::WorkerLost).is_empty());
        m.control_cycle(1.0);
        let events = m.log().of_kind(&EventKind::WorkerLost);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].detail.as_deref(), Some("2"));
        // No new losses: no new event.
        m.control_cycle(2.0);
        assert_eq!(m.log().of_kind(&EventKind::WorkerLost).len(), 1);
    }

    #[test]
    fn workers_lost_is_sensed_through_a_blackout() {
        let mut lost = farm_snap(0.5, 0.5, 3, 0.0);
        lost.workers_lost = 1;
        lost.reconfiguring = true;
        let (mut m, _) = farm_manager(vec![farm_snap(0.5, 0.5, 4, 0.0), lost]);
        m.contract_slot().post(Contract::BestEffort);
        m.control_cycle(0.0);
        m.control_cycle(1.0);
        assert_eq!(
            m.log().of_kind(&EventKind::WorkerLost).len(),
            1,
            "failure sensing must not be suppressed by the blackout"
        );
    }

    #[test]
    fn underdelivery_with_pressure_adds_workers() {
        let (mut m, acts) = farm_manager(vec![farm_snap(0.5, 0.1, 1, 0.0)]);
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        let ops = m.control_cycle(0.0);
        assert!(!ops.is_empty());
        assert!(acts
            .lock()
            .unwrap()
            .iter()
            .any(|o| matches!(o, ManagerOp::AddWorkers(_))));
        assert_eq!(m.state(), AmState::Active);
        assert_eq!(m.log().of_kind(&EventKind::AddWorker).len(), 1);
        assert_eq!(m.log().of_kind(&EventKind::ContrLow).len(), 1);
    }

    #[test]
    fn starvation_raises_violation_and_goes_passive() {
        let (mut m, acts) = farm_manager(vec![farm_snap(0.05, 0.05, 2, 0.0)]);
        let parent = Mailbox::new();
        m = m.with_parent(parent.clone());
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        m.control_cycle(0.0);
        assert!(acts.lock().unwrap().is_empty(), "no local action possible");
        assert_eq!(m.state(), AmState::Passive);
        let reports = parent.drain();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, ViolationKind::NotEnoughTasks);
        assert_eq!(reports[0].from, "AM_F");
        assert_eq!(m.log().of_kind(&EventKind::NotEnough).len(), 1);
        assert_eq!(m.log().of_kind(&EventKind::RaiseViol).len(), 1);
        assert_eq!(m.log().of_kind(&EventKind::EnterPassive).len(), 1);
    }

    #[test]
    fn passive_manager_reactivates_when_local_rule_fires() {
        // Cycle 1: starvation → passive. Cycle 2: pressure returned and
        // throughput low → addWorker fires → active again (paper §4.2,
        // second phase).
        let (mut m, _) = farm_manager(vec![
            farm_snap(0.05, 0.05, 2, 0.0),
            farm_snap(0.5, 0.2, 2, 0.0),
        ]);
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        m.control_cycle(0.0);
        assert_eq!(m.state(), AmState::Passive);
        m.control_cycle(1.0);
        assert_eq!(m.state(), AmState::Active);
        assert_eq!(m.log().of_kind(&EventKind::EnterActive).len(), 1);
    }

    #[test]
    fn new_contract_reactivates_passive_manager() {
        let (mut m, _) = farm_manager(vec![
            farm_snap(0.05, 0.05, 2, 0.0),
            farm_snap(0.05, 0.05, 2, 0.0),
        ]);
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        m.control_cycle(0.0);
        assert_eq!(m.state(), AmState::Passive);
        m.contract_slot()
            .post(Contract::throughput_range(0.01, 0.7));
        m.control_cycle(1.0);
        assert_eq!(m.state(), AmState::Active);
    }

    #[test]
    fn refused_add_escalates_unsatisfiable() {
        let mut abc = MockAbc::new(vec![farm_snap(0.5, 0.1, 4, 0.0)]);
        abc.refuse_adds = true;
        let parent = Mailbox::new();
        let mut m =
            AutonomicManager::new(ManagerConfig::farm("AM_F"), Box::new(abc), EventLog::new())
                .with_parent(parent.clone());
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        m.control_cycle(0.0);
        assert_eq!(m.state(), AmState::Passive);
        let reports = parent.drain();
        assert!(reports
            .iter()
            .any(|r| matches!(r.kind, ViolationKind::Unsatisfiable(_))));
    }

    #[test]
    fn reconfiguration_blackout_suppresses_cycle() {
        let mut blackout = farm_snap(0.5, 0.1, 1, 0.0);
        blackout.reconfiguring = true;
        let (mut m, acts) = farm_manager(vec![blackout]);
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        let ops = m.control_cycle(0.0);
        assert!(ops.is_empty());
        assert!(acts.lock().unwrap().is_empty());
        // Contract was still adopted (only sensing is blacked out).
        assert_eq!(m.contract(), &Contract::throughput_range(0.3, 0.7));
    }

    #[test]
    fn overdelivery_removes_workers() {
        let (mut m, acts) = farm_manager(vec![farm_snap(0.5, 0.9, 4, 0.0)]);
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        m.control_cycle(0.0);
        assert!(acts
            .lock()
            .unwrap()
            .iter()
            .any(|o| matches!(o, ManagerOp::RemoveWorkers(_))));
        assert_eq!(m.log().of_kind(&EventKind::RemoveWorker).len(), 1);
    }

    #[test]
    fn queue_unbalance_rebalances() {
        let (mut m, acts) = farm_manager(vec![farm_snap(0.5, 0.5, 4, 25.0)]);
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        m.control_cycle(0.0);
        assert!(acts
            .lock()
            .unwrap()
            .iter()
            .any(|o| matches!(o, ManagerOp::BalanceLoad)));
        assert_eq!(m.log().of_kind(&EventKind::Rebalance).len(), 1);
    }

    #[test]
    fn end_of_stream_reported_once() {
        let mut eos = farm_snap(0.0, 0.0, 2, 0.0);
        eos.end_of_stream = true;
        let parent = Mailbox::new();
        let (mut m, _) = farm_manager(vec![eos.clone(), eos]);
        m = m.with_parent(parent.clone());
        m.contract_slot().post(Contract::BestEffort);
        m.control_cycle(0.0);
        m.control_cycle(1.0);
        let eos_reports: Vec<_> = parent
            .drain()
            .into_iter()
            .filter(|r| r.kind == ViolationKind::EndOfStream)
            .collect();
        assert_eq!(eos_reports.len(), 1);
        assert_eq!(m.log().of_kind(&EventKind::EndStream).len(), 1);
    }

    #[test]
    fn pipeline_inc_rate_posts_contract_to_source() {
        let log = EventLog::new();
        let mut am_a = AutonomicManager::new(
            ManagerConfig::pipeline("AM_A"),
            Box::new(NullAbc::default()),
            log.clone(),
        );
        let source_slot = ContractSlot::new();
        am_a.add_child(ChildLink {
            name: "AM_P".into(),
            slot: source_slot.clone(),
            is_source: true,
        });
        // A child reported starvation.
        am_a.mailbox().push(ViolationReport {
            from: "AM_F".into(),
            kind: ViolationKind::NotEnoughTasks,
            at: 0.0,
        });
        am_a.control_cycle(0.0);
        let posted = source_slot.take().expect("incRate contract posted");
        let (floor, _) = posted.output_rate_bounds().unwrap();
        assert!(floor > 0.0);
        assert_eq!(log.of_kind(&EventKind::IncRate).len(), 1);
        assert_eq!(am_a.state(), AmState::Active);
    }

    #[test]
    fn pipeline_stops_reacting_after_end_stream() {
        let mut am_a = AutonomicManager::new(
            ManagerConfig::pipeline("AM_A"),
            Box::new(NullAbc::default()),
            EventLog::new(),
        );
        let source_slot = ContractSlot::new();
        am_a.add_child(ChildLink {
            name: "AM_P".into(),
            slot: source_slot.clone(),
            is_source: true,
        });
        am_a.mailbox().push(ViolationReport {
            from: "AM_F".into(),
            kind: ViolationKind::EndOfStream,
            at: 0.0,
        });
        am_a.control_cycle(0.0);
        am_a.mailbox().push(ViolationReport {
            from: "AM_F".into(),
            kind: ViolationKind::NotEnoughTasks,
            at: 1.0,
        });
        am_a.control_cycle(1.0);
        assert!(source_slot.take().is_none(), "no incRate after endStream");
        assert!(am_a.log().of_kind(&EventKind::IncRate).is_empty());
    }

    #[test]
    fn pipeline_dec_rate_on_too_much() {
        let mut am_a = AutonomicManager::new(
            ManagerConfig::pipeline("AM_A"),
            Box::new(NullAbc::default()),
            EventLog::new(),
        );
        let source_slot = ContractSlot::new();
        am_a.add_child(ChildLink {
            name: "AM_P".into(),
            slot: source_slot.clone(),
            is_source: true,
        });
        am_a.mailbox().push(ViolationReport {
            from: "AM_F".into(),
            kind: ViolationKind::TooMuchTasks,
            at: 0.0,
        });
        am_a.control_cycle(0.0);
        let posted = source_slot.take().unwrap();
        let (_, ceil) = posted.output_rate_bounds().unwrap();
        // decRate shrank the target below the initial 0.2·1.2 ceiling.
        assert!(ceil < 0.2 * 1.2);
        assert_eq!(am_a.log().of_kind(&EventKind::DecRate).len(), 1);
    }

    #[test]
    fn pipeline_forwards_contract_to_stages_on_adoption() {
        let mut am_a = AutonomicManager::new(
            ManagerConfig::pipeline("AM_A"),
            Box::new(NullAbc::default()),
            EventLog::new(),
        );
        let prod = ContractSlot::new();
        let farm = ContractSlot::new();
        let cons = ContractSlot::new();
        am_a.add_child(ChildLink {
            name: "AM_P".into(),
            slot: prod.clone(),
            is_source: true,
        });
        am_a.add_child(ChildLink {
            name: "AM_F".into(),
            slot: farm.clone(),
            is_source: false,
        });
        am_a.add_child(ChildLink {
            name: "AM_C".into(),
            slot: cons.clone(),
            is_source: false,
        });
        am_a.contract_slot()
            .post(Contract::throughput_range(0.3, 0.7));
        am_a.control_cycle(0.0);
        assert_eq!(farm.take(), Some(Contract::throughput_range(0.3, 0.7)));
        assert_eq!(cons.take(), Some(Contract::throughput_range(0.3, 0.7)));
        // The source gets a rate contract at the initial source rate.
        let p = prod.take().unwrap();
        assert!(p.output_rate_bounds().is_some());
    }

    #[test]
    fn producer_scales_rate_within_contract() {
        let mut snap = SensorSnapshot::empty(0.0);
        snap.departure_rate = 0.1;
        let abc = MockAbc::new(vec![snap]);
        let acts = Arc::clone(&abc.actuations);
        let mut m = AutonomicManager::new(
            ManagerConfig::producer("AM_P"),
            Box::new(abc),
            EventLog::new(),
        );
        m.contract_slot().post(Contract::output_rate(0.5));
        m.control_cycle(0.0);
        let recorded = acts.lock().unwrap();
        assert!(recorded
            .iter()
            .any(|o| matches!(o, ManagerOp::ScaleRate(f) if *f > 1.0)));
    }

    #[test]
    fn sequential_manager_is_quiet() {
        let mut m = AutonomicManager::new(
            ManagerConfig::sequential("AM_C"),
            Box::new(NullAbc::default()),
            EventLog::new(),
        );
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        let ops = m.control_cycle(0.0);
        assert!(ops.is_empty());
        // It still logs contract-check events (contrLow at zero rate).
        assert_eq!(m.log().of_kind(&EventKind::ContrLow).len(), 1);
        assert_eq!(m.state(), AmState::Active);
    }

    #[test]
    fn farm_propagates_best_effort_to_worker_children() {
        let (mut m, _) = farm_manager(vec![farm_snap(0.5, 0.5, 2, 0.0)]);
        let w0 = ContractSlot::new();
        m.add_child(ChildLink {
            name: "AM_W0".into(),
            slot: w0.clone(),
            is_source: false,
        });
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        m.control_cycle(0.0);
        assert_eq!(w0.take(), Some(Contract::BestEffort));
    }

    #[test]
    fn rule_error_surfaces_as_violation() {
        use bskel_rules::{Condition, Rule};
        let parent = Mailbox::new();
        let bad_rules: RuleSet = vec![Rule::new(
            "needs-missing-bean",
            Condition::flag("noSuchBean"),
            vec![],
        )]
        .into_iter()
        .collect();
        let mut m = AutonomicManager::new(
            ManagerConfig::sequential("AM_X"),
            Box::new(NullAbc::default()),
            EventLog::new(),
        )
        .with_rules(bad_rules)
        .with_parent(parent.clone());
        m.control_cycle(0.0);
        assert!(parent
            .drain()
            .iter()
            .any(|r| matches!(r.kind, ViolationKind::Unsatisfiable(_))));
    }

    #[test]
    fn mailbox_and_slot_basics() {
        let mb = Mailbox::new();
        assert!(mb.is_empty());
        mb.push(ViolationReport {
            from: "x".into(),
            kind: ViolationKind::NotEnoughTasks,
            at: 0.0,
        });
        assert_eq!(mb.len(), 1);
        assert_eq!(mb.drain().len(), 1);
        assert!(mb.is_empty());

        let slot = ContractSlot::new();
        assert!(slot.take().is_none());
        slot.post(Contract::BestEffort);
        slot.post(Contract::min_throughput(1.0));
        assert_eq!(slot.take(), Some(Contract::min_throughput(1.0)));
        assert!(slot.take().is_none());
    }

    #[test]
    fn in_contract_farm_logs_nothing_and_stays_active() {
        let (mut m, acts) = farm_manager(vec![farm_snap(0.5, 0.5, 3, 0.0)]);
        m.contract_slot().post(Contract::throughput_range(0.3, 0.7));
        m.control_cycle(0.0);
        assert!(acts.lock().unwrap().is_empty());
        assert_eq!(m.state(), AmState::Active);
        assert!(m.log().of_kind(&EventKind::ContrLow).is_empty());
    }
}
