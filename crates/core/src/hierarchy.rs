//! Manager hierarchies over behavioural-skeleton trees.
//!
//! §3.1: managers are attached to the software modules of the application
//! and therefore themselves form a tree. Contracts flow downward (split per
//! pattern), violations flow upward (mailbox callbacks). [`build`]
//! constructs the manager tree mirroring a [`BsExpr`]:
//!
//! * every **pipe** gets a [`ManagerKind::Pipeline`] manager;
//! * every **farm** gets a [`ManagerKind::Farm`] manager;
//! * a **seq** that is the *first* stage of a pipe gets a
//!   [`ManagerKind::Producer`] manager (it is the stream source the
//!   pipeline drives with incRate/decRate contracts);
//! * any other **seq** pipe stage gets a monitor-only
//!   [`ManagerKind::Sequential`] manager;
//! * a **seq** farm worker gets *no* manager of its own (workers receive
//!   best-effort sub-contracts; their micro-management is the farm
//!   runtime's job) — but a *composite* farm worker gets its own manager
//!   subtree, nested under the farm manager.
//!
//! The resulting [`Hierarchy`] is substrate-free: the caller supplies one
//! ABC per managed node through a factory closure.

use crate::abc::Abc;
use crate::bs::BsExpr;
use crate::contract::Contract;
use crate::events::EventLog;
use crate::manager::{AutonomicManager, ChildLink, Mailbox, ManagerConfig, ManagerKind};
use bskel_monitor::Time;
use bskel_rules::OpCall;

/// A built manager tree.
pub struct Hierarchy {
    /// Managers in post-order (children before parents); the root is last.
    managers: Vec<AutonomicManager>,
    log: EventLog,
}

/// The structural role a node plays, deciding its manager kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeRole {
    Root,
    PipeSource,
    PipeStage,
    FarmWorker,
}

/// Builds the manager hierarchy for `expr`.
///
/// `make_abc` is called once per managed node with the node and the chosen
/// manager kind, and must return the ABC binding that manager to the
/// substrate. `configure` may adjust each manager's [`ManagerConfig`]
/// (e.g. control periods, worker batches) before construction.
pub fn build(
    expr: &BsExpr,
    log: EventLog,
    make_abc: &mut dyn FnMut(&BsExpr, &ManagerKind) -> Box<dyn Abc>,
    configure: &mut dyn FnMut(&BsExpr, ManagerConfig) -> ManagerConfig,
) -> Hierarchy {
    let mut managers = Vec::new();
    build_node(
        expr,
        NodeRole::Root,
        None,
        &log,
        make_abc,
        configure,
        &mut managers,
    );
    Hierarchy { managers, log }
}

/// Recursively builds the manager for `expr` (if its role warrants one) and
/// its descendants, pushing managers in post-order. Returns the link a
/// parent needs to adopt the node as a child.
fn build_node(
    expr: &BsExpr,
    role: NodeRole,
    parent: Option<&Mailbox>,
    log: &EventLog,
    make_abc: &mut dyn FnMut(&BsExpr, &ManagerKind) -> Box<dyn Abc>,
    configure: &mut dyn FnMut(&BsExpr, ManagerConfig) -> ManagerConfig,
    out: &mut Vec<AutonomicManager>,
) -> Option<ChildLink> {
    let kind = match (expr, role) {
        (BsExpr::Seq { .. }, NodeRole::FarmWorker) => return None,
        (BsExpr::Seq { .. }, NodeRole::PipeSource) => ManagerKind::Producer,
        (BsExpr::Seq { .. }, _) => ManagerKind::Sequential,
        (BsExpr::Farm { .. }, _) => ManagerKind::Farm,
        (BsExpr::Pipe { .. }, _) => ManagerKind::Pipeline,
    };

    let cfg = configure(expr, base_config(expr.name(), kind.clone()));
    let abc = make_abc(expr, &kind);
    let mut manager = AutonomicManager::new(cfg, abc, log.clone());
    if let Some(parent_mailbox) = parent {
        manager = manager.with_parent(parent_mailbox.clone());
    }
    let mailbox = manager.mailbox();
    let slot = manager.contract_slot();

    // Recurse into managed children.
    match expr {
        BsExpr::Seq { .. } => {}
        BsExpr::Farm { worker, .. } => {
            if let Some(link) = build_node(
                worker,
                NodeRole::FarmWorker,
                Some(&mailbox),
                log,
                make_abc,
                configure,
                out,
            ) {
                manager.add_child(link);
            }
        }
        BsExpr::Pipe { stages, .. } => {
            for (i, stage) in stages.iter().enumerate() {
                let stage_role = if i == 0 && matches!(stage, BsExpr::Seq { .. }) {
                    NodeRole::PipeSource
                } else {
                    NodeRole::PipeStage
                };
                if let Some(link) = build_node(
                    stage,
                    stage_role,
                    Some(&mailbox),
                    log,
                    make_abc,
                    configure,
                    out,
                ) {
                    manager.add_child(link);
                }
            }
        }
    }

    out.push(manager);
    Some(ChildLink {
        name: format!("AM_{}", expr.name()),
        slot,
        is_source: role == NodeRole::PipeSource,
    })
}

fn base_config(node_name: &str, kind: ManagerKind) -> ManagerConfig {
    let name = format!("AM_{node_name}");
    match kind {
        ManagerKind::Farm => ManagerConfig::farm(&name),
        ManagerKind::Pipeline => ManagerConfig::pipeline(&name),
        ManagerKind::Producer => ManagerConfig::producer(&name),
        ManagerKind::Sequential => ManagerConfig::sequential(&name),
        ManagerKind::Tenant => ManagerConfig::tenant(&name),
    }
}

impl Hierarchy {
    /// Number of managers in the tree.
    pub fn len(&self) -> usize {
        self.managers.len()
    }

    /// True when the tree holds no managers.
    pub fn is_empty(&self) -> bool {
        self.managers.is_empty()
    }

    /// Manager names, in post-order.
    pub fn names(&self) -> Vec<&str> {
        self.managers.iter().map(AutonomicManager::name).collect()
    }

    /// The root manager (the application manager the user talks to).
    ///
    /// # Panics
    /// Panics on an empty hierarchy.
    pub fn root(&self) -> &AutonomicManager {
        self.managers.last().expect("hierarchy has a root manager")
    }

    /// Mutable root access.
    pub fn root_mut(&mut self) -> &mut AutonomicManager {
        self.managers
            .last_mut()
            .expect("hierarchy has a root manager")
    }

    /// Looks a manager up by name (`AM_<node>`).
    pub fn manager(&self, name: &str) -> Option<&AutonomicManager> {
        self.managers.iter().find(|m| m.name() == name)
    }

    /// Mutable lookup by name.
    pub fn manager_mut(&mut self, name: &str) -> Option<&mut AutonomicManager> {
        self.managers.iter_mut().find(|m| m.name() == name)
    }

    /// Posts the user's top-level SLA to the root manager.
    pub fn post_contract(&self, contract: Contract) {
        self.root().contract_slot().post(contract);
    }

    /// Runs one control cycle on every manager, children before parents,
    /// so a violation raised by a child is seen by its parent within the
    /// same hierarchy pass. Returns the per-manager operation calls.
    pub fn run_cycle(&mut self, now: Time) -> Vec<(String, Vec<OpCall>)> {
        self.managers
            .iter_mut()
            .map(|m| (m.name().to_owned(), m.control_cycle(now)))
            .collect()
    }

    /// The shared event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Iterates managers in post-order.
    pub fn iter(&self) -> impl Iterator<Item = &AutonomicManager> {
        self.managers.iter()
    }
}

impl std::fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("managers", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abc::NullAbc;
    use crate::events::EventKind;
    use crate::manager::{AmState, ViolationKind, ViolationReport};
    use bskel_monitor::SensorSnapshot;

    fn null_factory() -> impl FnMut(&BsExpr, &ManagerKind) -> Box<dyn Abc> {
        |_, _| Box::new(NullAbc::default()) as Box<dyn Abc>
    }

    fn fig2_right() -> BsExpr {
        BsExpr::parse("pipe:app(seq:producer, farm:filter(seq:worker)*2, seq:consumer)").unwrap()
    }

    fn build_fig2() -> Hierarchy {
        build(
            &fig2_right(),
            EventLog::new(),
            &mut null_factory(),
            &mut |_, c| c,
        )
    }

    #[test]
    fn builds_the_four_managers_of_fig4() {
        let h = build_fig2();
        assert_eq!(h.len(), 4);
        let names = h.names();
        assert!(names.contains(&"AM_app"));
        assert!(names.contains(&"AM_producer"));
        assert!(names.contains(&"AM_filter"));
        assert!(names.contains(&"AM_consumer"));
        assert_eq!(h.root().name(), "AM_app", "root is last (post-order)");
    }

    #[test]
    fn post_order_puts_children_first() {
        let h = build_fig2();
        let names = h.names();
        let pos = |n: &str| names.iter().position(|x| *x == n).unwrap();
        assert!(pos("AM_producer") < pos("AM_app"));
        assert!(pos("AM_filter") < pos("AM_app"));
        assert!(pos("AM_consumer") < pos("AM_app"));
    }

    #[test]
    fn farm_seq_worker_gets_no_manager() {
        let h = build(
            &BsExpr::parse("farm:f(seq:w)*4").unwrap(),
            EventLog::new(),
            &mut null_factory(),
            &mut |_, c| c,
        );
        assert_eq!(h.len(), 1);
        assert_eq!(h.root().name(), "AM_f");
    }

    #[test]
    fn composite_farm_worker_gets_nested_managers() {
        // §3.1's farm(pipeline(seq, farm(seq), seq)): outer farm AM +
        // inner pipe AM + inner stage AMs (source, farm, sink) + none for
        // the innermost seq worker.
        let e = BsExpr::parse("farm(pipeline(sequential, farm(sequential), sequential))").unwrap();
        let h = build(&e, EventLog::new(), &mut null_factory(), &mut |_, c| c);
        assert_eq!(h.len(), 5);
    }

    #[test]
    fn contract_propagates_down_the_tree() {
        let mut h = build_fig2();
        h.post_contract(Contract::throughput_range(0.3, 0.7));
        // Cycle 1: root adopts and posts sub-contracts; children already
        // ran this pass, so they adopt on cycle 2.
        h.run_cycle(0.0);
        h.run_cycle(1.0);
        assert_eq!(
            h.manager("AM_filter").unwrap().contract(),
            &Contract::throughput_range(0.3, 0.7)
        );
        assert_eq!(
            h.manager("AM_consumer").unwrap().contract(),
            &Contract::throughput_range(0.3, 0.7)
        );
        // The producer got an output-rate contract instead.
        assert!(h
            .manager("AM_producer")
            .unwrap()
            .contract()
            .output_rate_bounds()
            .is_some());
    }

    #[test]
    fn child_violation_reaches_parent_within_a_pass() {
        let mut h = build_fig2();
        h.post_contract(Contract::throughput_range(0.3, 0.7));
        h.run_cycle(0.0);
        // Fake the farm manager reporting starvation by pushing straight
        // into the root's mailbox (the farm's NullAbc senses nothing).
        h.root().mailbox().push(ViolationReport {
            from: "AM_filter".into(),
            kind: ViolationKind::NotEnoughTasks,
            at: 1.0,
        });
        h.run_cycle(1.0);
        assert_eq!(h.log().of_kind(&EventKind::IncRate).len(), 1);
    }

    #[test]
    fn inc_rate_contract_reaches_producer_next_cycle() {
        let mut h = build_fig2();
        h.post_contract(Contract::throughput_range(0.3, 0.7));
        h.run_cycle(0.0);
        h.run_cycle(1.0);
        let before = h
            .manager("AM_producer")
            .unwrap()
            .contract()
            .output_rate_bounds()
            .unwrap();
        h.root().mailbox().push(ViolationReport {
            from: "AM_filter".into(),
            kind: ViolationKind::NotEnoughTasks,
            at: 2.0,
        });
        h.run_cycle(2.0); // root posts incRate contract
        h.run_cycle(3.0); // producer adopts it
        let after = h
            .manager("AM_producer")
            .unwrap()
            .contract()
            .output_rate_bounds()
            .unwrap();
        assert!(after.0 > before.0, "floor raised: {before:?} -> {after:?}");
    }

    #[test]
    fn configure_hook_customises_managers() {
        let h = build(
            &fig2_right(),
            EventLog::new(),
            &mut null_factory(),
            &mut |_, mut cfg| {
                cfg.add_batch = 2;
                cfg.control_period = 0.5;
                cfg
            },
        );
        assert_eq!(h.root().control_period(), 0.5);
    }

    #[test]
    fn end_stream_propagates_to_root_log() {
        let mut h = build(
            &fig2_right(),
            EventLog::new(),
            &mut |_, _| {
                let mut snap = SensorSnapshot::empty(0.0);
                snap.end_of_stream = true;
                Box::new(NullAbc {
                    snapshot: Some(snap),
                }) as Box<dyn Abc>
            },
            &mut |_, c| c,
        );
        h.post_contract(Contract::BestEffort);
        h.run_cycle(0.0);
        h.run_cycle(1.0);
        // Every stage manager and the root observed/logged endStream.
        assert!(!h.log().of_kind(&EventKind::EndStream).is_empty());
        let root_events = h.log().by_manager("AM_app");
        assert!(root_events.iter().any(|e| e.kind == EventKind::EndStream));
    }

    #[test]
    fn managers_start_active() {
        let h = build_fig2();
        for m in h.iter() {
            assert_eq!(m.state(), AmState::Active);
        }
    }

    #[test]
    fn single_seq_root_builds_one_sequential_manager() {
        let h = build(
            &BsExpr::seq("only"),
            EventLog::new(),
            &mut null_factory(),
            &mut |_, c| c,
        );
        assert_eq!(h.len(), 1);
        assert_eq!(h.root().name(), "AM_only");
    }
}
