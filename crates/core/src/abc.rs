//! The Autonomic Behaviour Controller (ABC) interface.
//!
//! Paper §4.1: *"The AM interacts with (uses services provided by) an
//! Autonomic Behaviour Controller (ABC) that provides methods to access the
//! computation status (monitoring) and to implement the actions ordered by
//! the AM (actuators)."* The [`Abc`] trait is that boundary: it is the
//! *only* way a manager touches the computation, which is what lets the
//! same manager (and the same rule programs) drive both the threaded
//! skeleton runtime and the discrete-event simulator.

use bskel_monitor::{SensorSnapshot, Time};
use bskel_rules::analysis::{BeanSchema, BeanType};
use std::fmt;

/// The bean/parameter schema every standard ABC publishes: the nine
/// snapshot beans of [`bskel_monitor::snapshot::beans`], the hierarchy
/// flags a parent manager injects (`bskel_rules::stdlib::hier_beans`),
/// and the contract-derived parameter names the standard rule libraries
/// reference. This is what `rulelint` checks rule programs against; ABCs
/// publishing extra beans override [`Abc::bean_schema`] and extend it.
pub fn standard_schema() -> BeanSchema {
    use bskel_monitor::snapshot::beans;
    use bskel_rules::stdlib::{hier_beans, params};
    BeanSchema::new()
        .bean(beans::ARRIVAL_RATE, BeanType::Rate)
        .bean(beans::DEPARTURE_RATE, BeanType::Rate)
        .bean(beans::NUM_WORKERS, BeanType::Count)
        .bean(beans::QUEUE_VARIANCE, BeanType::Rate)
        .bean(beans::QUEUED_TASKS, BeanType::Count)
        .bean(beans::SERVICE_TIME, BeanType::Seconds)
        .bean(beans::END_OF_STREAM, BeanType::Flag)
        .bean(beans::IDLE_FOR, BeanType::Seconds)
        .bean(beans::RECONFIGURING, BeanType::Flag)
        .bean(beans::WORKERS_LOST, BeanType::Count)
        .bean(beans::FT_MIN_WORKERS, BeanType::Count)
        .bean(beans::REMOTE_WORKERS, BeanType::Count)
        .bean(beans::NET_RTT_MS, BeanType::Rate)
        .bean(beans::CIRCUIT_OPEN_COUNT, BeanType::Count)
        .bean(beans::RECONNECT_BACKOFF_MS, BeanType::Rate)
        .bean(beans::TASKS_RETRIED, BeanType::Count)
        .bean(beans::SPECULATIVE_WINS, BeanType::Count)
        .bean(beans::REACTOR_LOOP_LAG_US, BeanType::Rate)
        .bean(beans::NET_SEND_QUEUE_DEPTH, BeanType::Count)
        .bean(beans::TASKS_SHED, BeanType::Count)
        .bean(beans::TENANT_QUEUE_DEPTH, BeanType::Count)
        .bean(beans::TENANT_SHARE, BeanType::Rate)
        .bean(beans::TENANT_THROUGHPUT, BeanType::Rate)
        .bean(beans::RETRY_BUDGET_TOKENS, BeanType::Rate)
        .bean(beans::HEDGES_LAUNCHED, BeanType::Count)
        .bean(beans::HEDGE_WINS, BeanType::Count)
        .bean(beans::AIMD_CEILING, BeanType::Rate)
        .bean(hier_beans::VIOL_NOT_ENOUGH, BeanType::Flag)
        .bean(hier_beans::VIOL_TOO_MUCH, BeanType::Flag)
        .bean(hier_beans::END_STREAM, BeanType::Flag)
        .param(params::FARM_LOW_PERF_LEVEL)
        .param(params::FARM_HIGH_PERF_LEVEL)
        .param(params::FARM_MIN_NUM_WORKERS)
        .param(params::FARM_MAX_NUM_WORKERS)
        .param(params::FARM_MAX_UNBALANCE)
        .param(params::PROD_RATE_FLOOR)
        .param(params::PROD_RATE_CEIL)
        .param(params::FT_MIN_WORKERS)
        .param(params::MIGRATE_MIN_GAIN)
        .param(params::TENANT_RATE_FLOOR)
        .param(params::TENANT_RATE_CEIL)
        .param(params::TENANT_MIN_SHARE)
        .param(params::TENANT_MAX_SHARE)
        .param(params::TENANT_QUEUE_LIMIT)
}

/// Typed actuator operations a manager can order.
///
/// These are the `ManagerOperation`s of the paper's prototype, mapped from
/// the symbolic names fired by rules (see `bskel_rules::op`).
#[derive(Debug, Clone, PartialEq)]
pub enum ManagerOp {
    /// Recruit resources and add `n` workers to a functional-replication
    /// skeleton (paper: `ADD_EXECUTOR`; Fig. 4 adds two at a time).
    AddWorkers(u32),
    /// Remove `n` workers (paper: `REMOVE_EXECUTOR`).
    RemoveWorkers(u32),
    /// Redistribute queued tasks evenly across workers
    /// (paper: `BALANCE_LOAD`).
    BalanceLoad,
    /// Set a producer's emission rate to an absolute value (tasks/s).
    SetRate(f64),
    /// Scale a producer's emission rate by a factor (incRate/decRate).
    ScaleRate(f64),
    /// Require communications with the named node to use the secure
    /// protocol (security-concern actuator, paper §3.2).
    SecureChannel {
        /// Node identifier, substrate-specific.
        node: String,
    },
    /// A substrate-specific operation, passed through uninterpreted.
    Custom(String),
}

impl fmt::Display for ManagerOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerOp::AddWorkers(n) => write!(f, "addWorkers({n})"),
            ManagerOp::RemoveWorkers(n) => write!(f, "removeWorkers({n})"),
            ManagerOp::BalanceLoad => write!(f, "balanceLoad"),
            ManagerOp::SetRate(r) => write!(f, "setRate({r})"),
            ManagerOp::ScaleRate(x) => write!(f, "scaleRate({x})"),
            ManagerOp::SecureChannel { node } => write!(f, "secureChannel({node})"),
            ManagerOp::Custom(s) => write!(f, "custom({s})"),
        }
    }
}

/// What happened to an ordered actuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActuationOutcome {
    /// The action was applied (possibly asynchronously — e.g. worker
    /// recruitment completes after a deployment delay, during which the
    /// ABC reports `reconfiguring` in its snapshots).
    Applied,
    /// The action was accepted but had no effect (e.g. `BalanceLoad` on
    /// already-balanced queues). Managers do not log an event for these.
    NoOp,
    /// The substrate refused the action (e.g. no recruitable resources
    /// left). The manager treats this as "no locally available plan" and
    /// reports a violation / enters passive mode.
    Refused {
        /// Human-readable reason.
        reason: String,
    },
}

/// ABC errors: the substrate is broken (as opposed to merely refusing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbcError(pub String);

impl fmt::Display for AbcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ABC error: {}", self.0)
    }
}

impl std::error::Error for AbcError {}

/// The monitoring + actuation boundary between a manager and its
/// computation.
pub trait Abc: Send {
    /// Samples the computation's sensors.
    fn sense(&mut self, now: Time) -> SensorSnapshot;

    /// Executes an actuator operation.
    fn actuate(&mut self, op: &ManagerOp, now: Time) -> Result<ActuationOutcome, AbcError>;

    /// The beans this ABC publishes (and the parameters the standard rule
    /// libraries may reference), used to lint rule programs at load time.
    /// Override when `sense` attaches extra beans via
    /// [`SensorSnapshot::with_extra`].
    fn bean_schema(&self) -> BeanSchema {
        standard_schema()
    }
}

/// A trivially inert ABC for managers over components with no actuators
/// (e.g. a consumer stage that is monitored but never reconfigured), and
/// for tests.
#[derive(Debug, Default)]
pub struct NullAbc {
    /// Snapshot returned by `sense` (tests can preload it).
    pub snapshot: Option<SensorSnapshot>,
}

impl Abc for NullAbc {
    fn sense(&mut self, now: Time) -> SensorSnapshot {
        self.snapshot
            .clone()
            .unwrap_or_else(|| SensorSnapshot::empty(now))
    }

    fn actuate(&mut self, _op: &ManagerOp, _now: Time) -> Result<ActuationOutcome, AbcError> {
        Ok(ActuationOutcome::NoOp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_abc_senses_empty() {
        let mut abc = NullAbc::default();
        let s = abc.sense(3.0);
        assert_eq!(s.at, 3.0);
        assert_eq!(s.num_workers, 0);
    }

    #[test]
    fn null_abc_returns_preloaded_snapshot() {
        let mut preset = SensorSnapshot::empty(1.0);
        preset.departure_rate = 0.5;
        let mut abc = NullAbc {
            snapshot: Some(preset.clone()),
        };
        assert_eq!(abc.sense(9.0), preset);
    }

    #[test]
    fn null_abc_actuations_are_noops() {
        let mut abc = NullAbc::default();
        assert_eq!(
            abc.actuate(&ManagerOp::AddWorkers(2), 0.0),
            Ok(ActuationOutcome::NoOp)
        );
    }

    #[test]
    fn manager_op_display() {
        assert_eq!(ManagerOp::AddWorkers(2).to_string(), "addWorkers(2)");
        assert_eq!(ManagerOp::BalanceLoad.to_string(), "balanceLoad");
        assert_eq!(
            ManagerOp::SecureChannel { node: "n3".into() }.to_string(),
            "secureChannel(n3)"
        );
    }

    #[test]
    fn abc_is_object_safe() {
        let _: Box<dyn Abc> = Box::new(NullAbc::default());
    }
}
