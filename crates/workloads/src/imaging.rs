//! The medical-image-processing workload of the paper's experiments.
//!
//! Fig. 3 processes a stream of medical images under a 0.6 image/s
//! contract; Fig. 4 runs a produce/filter/display pipeline under a 0.3–0.7
//! task/s contract. Only the task *cost profile* matters to the managers,
//! so [`ImagingWorkload`] bundles an arrival process and a service-time
//! distribution, and [`ImageTask`]/[`process_image`] give the threaded
//! runtime a real CPU-burning body with the same profile (scaled so live
//! examples run in seconds rather than the paper's minutes).

use crate::arrival::ArrivalProcess;
use crate::service::ServiceDist;

/// A synthetic image-processing task.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageTask {
    /// Stream position.
    pub id: u64,
    /// Synthetic payload size (pixels); scales the filtering cost.
    pub pixels: u64,
    /// Nominal service time of this task on a reference core, seconds.
    pub cost: f64,
}

/// An experiment workload: arrivals plus per-task cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ImagingWorkload {
    /// When tasks arrive.
    pub arrivals: ArrivalProcess,
    /// How long each task takes on a reference core.
    pub service: ServiceDist,
    /// How many tasks the stream carries.
    pub count: u64,
}

impl ImagingWorkload {
    /// The Fig. 3 workload: ample input pressure (1 image/s), ~5 s of
    /// filtering per image, so ceil(0.6·5) = 3 workers are needed to meet
    /// the 0.6 image/s contract.
    pub fn fig3() -> Self {
        Self {
            arrivals: ArrivalProcess::cbr(1.0),
            service: ServiceDist::det(5.0),
            count: 300,
        }
    }

    /// The Fig. 4 filter-stage workload: ~10 s of filtering per task (so
    /// the 0.3–0.7 task/s stripe needs several workers), stream of 200.
    pub fn fig4_filter() -> Self {
        Self {
            arrivals: ArrivalProcess::cbr(0.5), // shaped by the producer in the experiment
            service: ServiceDist::det(10.0),
            count: 200,
        }
    }

    /// Fig. 3's hot-spot variant: image processing triples in cost during
    /// `[start, end)` (the paper's "temporary hot spots").
    pub fn fig3_with_hot_spot(start: f64, end: f64) -> Self {
        let base = Self::fig3();
        Self {
            service: base.service.with_hot_spot(3.0, start, end),
            ..base
        }
    }

    /// Scales all times by `1/speedup` (a 60× speedup turns the paper's
    /// minutes-long run into seconds for live examples). Arrival rates
    /// multiply by `speedup`; service times divide.
    pub fn scaled(self, speedup: f64) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        let arrivals = match self.arrivals {
            ArrivalProcess::Cbr { rate } => ArrivalProcess::Cbr {
                rate: rate * speedup,
            },
            ArrivalProcess::Poisson { rate } => ArrivalProcess::Poisson {
                rate: rate * speedup,
            },
            ArrivalProcess::Ramp { from, to, duration } => ArrivalProcess::Ramp {
                from: from * speedup,
                to: to * speedup,
                duration: duration / speedup,
            },
            ArrivalProcess::OnOff {
                on_rate,
                on_for,
                off_for,
            } => ArrivalProcess::OnOff {
                on_rate: on_rate * speedup,
                on_for: on_for / speedup,
                off_for: off_for / speedup,
            },
        };
        let service = scale_service(self.service, speedup);
        Self {
            arrivals,
            service,
            count: self.count,
        }
    }
}

fn scale_service(s: ServiceDist, speedup: f64) -> ServiceDist {
    match s {
        ServiceDist::Deterministic(t) => ServiceDist::Deterministic(t / speedup),
        ServiceDist::Exponential { mean } => ServiceDist::Exponential {
            mean: mean / speedup,
        },
        ServiceDist::Uniform { lo, hi } => ServiceDist::Uniform {
            lo: lo / speedup,
            hi: hi / speedup,
        },
        ServiceDist::HotSpot {
            base,
            factor,
            start,
            end,
        } => ServiceDist::HotSpot {
            base: Box::new(scale_service(*base, speedup)),
            factor,
            start: start / speedup,
            end: end / speedup,
        },
    }
}

/// Burns CPU for approximately `task.cost` seconds — the task body the
/// threaded-runtime examples execute. Busy-work (not sleep) so external
/// load on the cores genuinely slows processing, which is what the
/// adaptation experiments rely on.
pub fn process_image(task: &ImageTask) -> u64 {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(task.cost);
    let mut acc: u64 = task.pixels ^ 0x9e37_79b9_7f4a_7c15;
    while std::time::Instant::now() < deadline {
        // A cheap PRNG round keeps the ALU busy and defeats loop deletion.
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        std::hint::black_box(acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_preset_shape() {
        let w = ImagingWorkload::fig3();
        assert_eq!(w.service.mean(), 5.0);
        assert_eq!(w.arrivals.rate_at(0.0), 1.0);
        assert!(w.count >= 100);
    }

    #[test]
    fn scaling_preserves_offered_load_ratio() {
        // Offered load ρ = arrival_rate × service_time is scale-invariant.
        let w = ImagingWorkload::fig3();
        let rho = w.arrivals.rate_at(0.0) * w.service.mean();
        let s = w.scaled(60.0);
        let rho_scaled = s.arrivals.rate_at(0.0) * s.service.mean();
        assert!((rho - rho_scaled).abs() < 1e-9);
        assert_eq!(s.service.mean(), 5.0 / 60.0);
    }

    #[test]
    fn scaling_hot_spot_window() {
        let w = ImagingWorkload::fig3_with_hot_spot(60.0, 120.0).scaled(60.0);
        match w.service {
            ServiceDist::HotSpot { start, end, .. } => {
                assert!((start - 1.0).abs() < 1e-12);
                assert!((end - 2.0).abs() < 1e-12);
            }
            other => panic!("expected hot spot, got {other:?}"),
        }
    }

    #[test]
    fn process_image_takes_roughly_cost() {
        let task = ImageTask {
            id: 0,
            pixels: 1 << 20,
            cost: 0.02,
        };
        let t0 = std::time::Instant::now();
        process_image(&task);
        let dt = t0.elapsed().as_secs_f64();
        assert!(dt >= 0.02, "finished early: {dt}");
        assert!(dt < 0.2, "overshot: {dt}");
    }

    #[test]
    #[should_panic(expected = "speedup must be positive")]
    fn bad_speedup_rejected() {
        let _ = ImagingWorkload::fig3().scaled(0.0);
    }
}
