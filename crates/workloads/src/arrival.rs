//! Arrival processes: when does the next task reach the skeleton input?

use rand::Rng;

/// A stream arrival process. [`ArrivalProcess::next_interval`] returns the
/// time until the next arrival, given the current time — time-varying
/// processes (ramps, on/off) need it.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Constant bit rate: one task every `1/rate` seconds.
    Cbr {
        /// Arrival rate, tasks/s.
        rate: f64,
    },
    /// Poisson arrivals: exponentially distributed inter-arrival times.
    Poisson {
        /// Mean arrival rate, tasks/s.
        rate: f64,
    },
    /// Linear ramp from `from` to `to` tasks/s over `duration` seconds
    /// (constant at `to` afterwards).
    Ramp {
        /// Initial rate, tasks/s.
        from: f64,
        /// Final rate, tasks/s.
        to: f64,
        /// Ramp duration, seconds.
        duration: f64,
    },
    /// Bursty on/off source: `on_rate` for `on_for` seconds, silent for
    /// `off_for` seconds, repeating.
    OnOff {
        /// Rate while on, tasks/s.
        on_rate: f64,
        /// On-phase length, seconds.
        on_for: f64,
        /// Off-phase length, seconds.
        off_for: f64,
    },
}

impl ArrivalProcess {
    /// Constant-rate builder.
    pub fn cbr(rate: f64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        ArrivalProcess::Cbr { rate }
    }

    /// Poisson builder.
    pub fn poisson(rate: f64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        ArrivalProcess::Poisson { rate }
    }

    /// The instantaneous rate at time `now`, tasks/s.
    pub fn rate_at(&self, now: f64) -> f64 {
        match self {
            ArrivalProcess::Cbr { rate } | ArrivalProcess::Poisson { rate } => *rate,
            ArrivalProcess::Ramp { from, to, duration } => {
                if now >= *duration {
                    *to
                } else {
                    from + (to - from) * (now / duration)
                }
            }
            ArrivalProcess::OnOff {
                on_rate,
                on_for,
                off_for,
            } => {
                let phase = now.rem_euclid(on_for + off_for);
                if phase < *on_for {
                    *on_rate
                } else {
                    0.0
                }
            }
        }
    }

    /// Seconds from `now` until the next arrival.
    pub fn next_interval(&self, now: f64, rng: &mut impl Rng) -> f64 {
        match self {
            ArrivalProcess::Cbr { rate } => 1.0 / rate,
            ArrivalProcess::Poisson { rate } => {
                // Inverse-CDF sample of Exp(rate); guard the log(0) corner.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() / rate
            }
            ArrivalProcess::Ramp { .. } => {
                let r = self.rate_at(now).max(1e-9);
                1.0 / r
            }
            ArrivalProcess::OnOff {
                on_rate,
                on_for,
                off_for,
            } => {
                let period = on_for + off_for;
                let phase = now.rem_euclid(period);
                if phase < *on_for {
                    let step = 1.0 / on_rate;
                    if phase + step <= *on_for {
                        step
                    } else {
                        // The next arrival falls into the off phase: skip
                        // to the start of the next on phase.
                        (period - phase) + 0.0
                    }
                } else {
                    period - phase
                }
            }
        }
    }

    /// Generates the first `n` arrival times starting at `start`.
    pub fn times(&self, start: f64, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        let mut t = start;
        for _ in 0..n {
            t += self.next_interval(t, rng);
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn cbr_is_exactly_periodic() {
        let p = ArrivalProcess::cbr(4.0);
        let times = p.times(0.0, 8, &mut rng());
        for (i, t) in times.iter().enumerate() {
            assert!((t - 0.25 * (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_mean_rate_converges() {
        let p = ArrivalProcess::poisson(10.0);
        let times = p.times(0.0, 20_000, &mut rng());
        let span = times.last().unwrap() - times.first().unwrap();
        let rate = (times.len() - 1) as f64 / span;
        assert!((rate - 10.0).abs() < 0.5, "empirical rate {rate}");
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let p = ArrivalProcess::poisson(1.0);
        let a = p.times(0.0, 50, &mut StdRng::seed_from_u64(7));
        let b = p.times(0.0, 50, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn ramp_rate_profile() {
        let p = ArrivalProcess::Ramp {
            from: 1.0,
            to: 5.0,
            duration: 10.0,
        };
        assert_eq!(p.rate_at(0.0), 1.0);
        assert_eq!(p.rate_at(5.0), 3.0);
        assert_eq!(p.rate_at(10.0), 5.0);
        assert_eq!(p.rate_at(100.0), 5.0);
        // Intervals shrink as the rate rises.
        let early = p.next_interval(0.0, &mut rng());
        let late = p.next_interval(9.0, &mut rng());
        assert!(late < early);
    }

    #[test]
    fn onoff_goes_silent_in_off_phase() {
        let p = ArrivalProcess::OnOff {
            on_rate: 10.0,
            on_for: 1.0,
            off_for: 2.0,
        };
        assert_eq!(p.rate_at(0.5), 10.0);
        assert_eq!(p.rate_at(1.5), 0.0);
        assert_eq!(p.rate_at(3.5), 10.0);
        // An arrival in the off phase waits for the next on phase.
        let wait = p.next_interval(1.5, &mut rng());
        assert!((wait - 1.5).abs() < 1e-9, "wait {wait}");
    }

    #[test]
    fn onoff_burst_boundaries() {
        let p = ArrivalProcess::OnOff {
            on_rate: 2.0,
            on_for: 1.0,
            off_for: 1.0,
        };
        // At phase 0.6 the next step (0.5) would cross 1.0 => jump to 2.0.
        let wait = p.next_interval(0.6, &mut rng());
        assert!((wait - 1.4).abs() < 1e-9, "wait {wait}");
    }

    #[test]
    fn times_are_strictly_increasing() {
        for p in [
            ArrivalProcess::cbr(3.0),
            ArrivalProcess::poisson(3.0),
            ArrivalProcess::Ramp {
                from: 1.0,
                to: 4.0,
                duration: 3.0,
            },
        ] {
            let times = p.times(0.0, 200, &mut rng());
            for w in times.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_rejected() {
        ArrivalProcess::cbr(0.0);
    }
}
