//! Service-time distributions: how long does one task take on one
//! reference worker?

use rand::Rng;

/// A per-task service-time distribution. Samples may depend on the current
/// time (hot spots) and are scaled by node speed at the point of use.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceDist {
    /// Every task takes exactly `t` seconds.
    Deterministic(f64),
    /// Exponentially distributed with the given mean.
    Exponential {
        /// Mean service time, seconds.
        mean: f64,
    },
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound, seconds.
        lo: f64,
        /// Upper bound, seconds.
        hi: f64,
    },
    /// A base distribution whose samples are multiplied by `factor` inside
    /// the `[start, end)` time window — the paper's "temporary hot spots
    /// in image processing".
    HotSpot {
        /// Base distribution.
        base: Box<ServiceDist>,
        /// Cost multiplier during the hot spot.
        factor: f64,
        /// Hot-spot start time, seconds.
        start: f64,
        /// Hot-spot end time, seconds.
        end: f64,
    },
}

impl ServiceDist {
    /// Deterministic builder.
    pub fn det(t: f64) -> Self {
        assert!(t >= 0.0 && t.is_finite(), "service time must be >= 0");
        ServiceDist::Deterministic(t)
    }

    /// Exponential builder.
    pub fn exp(mean: f64) -> Self {
        assert!(mean > 0.0, "mean service time must be positive");
        ServiceDist::Exponential { mean }
    }

    /// Uniform builder.
    pub fn uniform(lo: f64, hi: f64) -> Self {
        assert!(0.0 <= lo && lo <= hi, "bad uniform bounds [{lo}, {hi}]");
        ServiceDist::Uniform { lo, hi }
    }

    /// Wraps `self` in a hot-spot window.
    pub fn with_hot_spot(self, factor: f64, start: f64, end: f64) -> Self {
        assert!(factor > 0.0 && start <= end, "bad hot spot");
        ServiceDist::HotSpot {
            base: Box::new(self),
            factor,
            start,
            end,
        }
    }

    /// The long-run mean service time outside any hot spot.
    pub fn mean(&self) -> f64 {
        match self {
            ServiceDist::Deterministic(t) => *t,
            ServiceDist::Exponential { mean } => *mean,
            ServiceDist::Uniform { lo, hi } => (lo + hi) / 2.0,
            ServiceDist::HotSpot { base, .. } => base.mean(),
        }
    }

    /// Samples the service time of a task starting at `now`.
    pub fn sample(&self, now: f64, rng: &mut impl Rng) -> f64 {
        match self {
            ServiceDist::Deterministic(t) => *t,
            ServiceDist::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                -u.ln() * mean
            }
            ServiceDist::Uniform { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..*hi)
                }
            }
            ServiceDist::HotSpot {
                base,
                factor,
                start,
                end,
            } => {
                let s = base.sample(now, rng);
                if now >= *start && now < *end {
                    s * factor
                } else {
                    s
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn deterministic_is_constant() {
        let d = ServiceDist::det(5.0);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(0.0, &mut r), 5.0);
        }
        assert_eq!(d.mean(), 5.0);
    }

    #[test]
    fn exponential_mean_converges() {
        let d = ServiceDist::exp(2.0);
        let mut r = rng();
        let n = 50_000;
        let total: f64 = (0..n).map(|_| d.sample(0.0, &mut r)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "empirical mean {mean}");
    }

    #[test]
    fn uniform_bounds_respected() {
        let d = ServiceDist::uniform(1.0, 3.0);
        let mut r = rng();
        for _ in 0..1000 {
            let s = d.sample(0.0, &mut r);
            assert!((1.0..3.0).contains(&s));
        }
        assert_eq!(d.mean(), 2.0);
        // Degenerate uniform.
        assert_eq!(ServiceDist::uniform(2.0, 2.0).sample(0.0, &mut r), 2.0);
    }

    #[test]
    fn hot_spot_inflates_inside_window_only() {
        let d = ServiceDist::det(1.0).with_hot_spot(3.0, 10.0, 20.0);
        let mut r = rng();
        assert_eq!(d.sample(5.0, &mut r), 1.0);
        assert_eq!(d.sample(10.0, &mut r), 3.0);
        assert_eq!(d.sample(19.9, &mut r), 3.0);
        assert_eq!(d.sample(20.0, &mut r), 1.0);
        assert_eq!(d.mean(), 1.0, "mean reports the base distribution");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = ServiceDist::exp(1.0);
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..20).map(|_| d.sample(0.0, &mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..20).map(|_| d.sample(0.0, &mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_exponential_rejected() {
        ServiceDist::exp(0.0);
    }

    #[test]
    #[should_panic(expected = "bad uniform bounds")]
    fn inverted_uniform_rejected() {
        ServiceDist::uniform(3.0, 1.0);
    }
}
