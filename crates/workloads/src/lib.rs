//! # bskel-workloads — synthetic workload generation
//!
//! The paper's experiments run a medical image processing application: a
//! stream of images filtered in parallel by a task farm (Fig. 3) or by the
//! farm stage of a three-stage pipeline (Fig. 4). The images themselves are
//! irrelevant to the managers — only the *arrival process* (input
//! pressure) and the *service-time distribution* (per-task compute cost)
//! shape the autonomic behaviour. This crate generates both:
//!
//! * [`arrival`] — constant-rate, Poisson, ramp and on/off arrival
//!   processes;
//! * [`service`] — deterministic, exponential, uniform and hot-spot
//!   service-time distributions (the paper's "temporary hot spots in image
//!   processing");
//! * [`imaging`] — the presets used by the figure-reproduction
//!   experiments, plus a CPU-burning task body for the threaded runtime.
//!
//! All randomness is drawn from caller-seeded RNGs: every experiment in
//! `bskel-bench` is reproducible bit-for-bit.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arrival;
pub mod imaging;
pub mod service;

pub use arrival::ArrivalProcess;
pub use imaging::{ImageTask, ImagingWorkload};
pub use service::ServiceDist;
