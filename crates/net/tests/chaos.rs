//! Chaos soak: seeded adversarial fault schedules against the
//! distributed pool's resilience policies.
//!
//! Every test routes a pool through a [`ChaosProxy`] whose injected
//! faults are fixed by a seed (see `bskel_net::chaos`), and asserts the
//! resilience acceptance properties end to end:
//!
//! * **zero task loss and ordered output** under frame drop, corruption,
//!   duplication, delay, mid-stream disconnect, silent stall, and
//!   connect refusal — via in-flight replay, heartbeat deadlines, and
//!   soft task deadlines with speculative re-execution;
//! * **no double delivery**: the ordered gather's reorder buffer panics
//!   on a duplicate sequence, so every soak run is itself a proof that
//!   the speculation registry deduplicates;
//! * **breaker quarantine**: a flapping endpoint stops receiving connect
//!   attempts while its circuit is Open, and a Half-Open probe restores
//!   it after the cooldown;
//! * **determinism**: the same seed replays the same injected-fault
//!   schedule for a scripted frame sequence.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bskel_net::proto::{encode_hello, FrameType, Hello};
use bskel_net::wire::{FillStatus, FrameReader, FrameWriter};
use bskel_net::{
    spawn_chaos_local, spawn_local, ChaosPlan, ChaosPolicy, ChaosProxy, Direction, Endpoint,
    FaultKind, InjectedFault, RemotePoolBuilder, RemoteWorkerPool,
};
use bskel_skel::farm::{FarmEventKind, ShutdownReport};
use bskel_skel::stream::StreamMsg;
use bskel_skel::GatherPolicy;

// -- helpers ------------------------------------------------------------

fn enc(x: u64) -> Vec<u8> {
    x.to_le_bytes().to_vec()
}

fn dec(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// A doubling pool with one chaos-proxied endpoint and one clean one —
/// the canonical soak topology: the clean slot is where speculation and
/// replay land, the chaotic slot is where faults strike.
fn chaos_pool(
    plan: ChaosPlan,
    task_deadline: Duration,
) -> (RemoteWorkerPool<u64, u64>, ChaosProxy) {
    let seed = plan.seed;
    let proxy = spawn_chaos_local(plan).expect("spawn chaos proxy + daemon");
    let clean = spawn_local("127.0.0.1:0").expect("spawn clean daemon");
    let pool = RemotePoolBuilder::new("double", enc, dec)
        .name("chaos")
        .initial_workers(2)
        .max_workers(4)
        .gather(GatherPolicy::Ordered)
        .heartbeat_period(Duration::from_millis(20))
        .failure_timeout(Duration::from_millis(400))
        .reconnect_backoff(Duration::from_millis(20), Duration::from_millis(200))
        .breaker_cooldown(Duration::from_millis(150))
        .task_deadline(task_deadline)
        .resilience_seed(seed)
        .endpoint(Endpoint::plain(proxy.addr().to_string()))
        .endpoint(Endpoint::plain(clean.to_string()))
        .build()
        .expect("chaos + clean endpoints reachable");
    (pool, proxy)
}

/// Sends `0..n` and `End`, returns the ordered payloads received.
fn run_stream(pool: &RemoteWorkerPool<u64, u64>, n: u64) -> Vec<u64> {
    let tx = pool.input();
    let producer = std::thread::spawn(move || {
        for i in 0..n {
            tx.send(StreamMsg::item(i, i)).unwrap();
        }
        tx.send(StreamMsg::End).unwrap();
    });
    let mut got = Vec::with_capacity(n as usize);
    for msg in pool.output().iter() {
        match msg {
            StreamMsg::Item { payload, .. } => got.push(payload),
            StreamMsg::End => break,
        }
    }
    producer.join().unwrap();
    got
}

/// A shutdown under chaos is acceptable when it is clean, or when every
/// blemish is an *explained* consequence of injected faults: no worker
/// panics ever (the soak workloads cannot panic), and every lost slot
/// has a matching `worker:lost` event naming why. Goodbye failures on
/// severed sockets land in `disconnects`, which is exactly what that
/// field is for.
fn assert_clean_or_explained(report: &ShutdownReport) {
    if report.is_clean() {
        return;
    }
    assert!(
        report.worker_panics.is_empty(),
        "chaos must not manufacture panics: {report:?}"
    );
    let lost_events = report
        .events
        .iter()
        .filter(|e| e.kind == FarmEventKind::WorkerLost)
        .count() as u64;
    assert_eq!(
        report.workers_lost, lost_events,
        "every lost slot must be evented: {report:?}"
    );
}

/// One soak run: `n` tasks through a chaos topology, asserting zero
/// loss, preserved order, and a clean-or-explained shutdown. Returns
/// the pool's shutdown report plus the proxy for extra assertions.
fn soak(plan: ChaosPlan, n: u64, deadline: Duration) -> (ShutdownReport, Vec<InjectedFault>) {
    let seed = plan.seed;
    let (pool, proxy) = chaos_pool(plan, deadline);
    let got = run_stream(&pool, n);
    let want: Vec<u64> = (0..n).map(|x| x * 2).collect();
    assert_eq!(got.len(), want.len(), "seed {seed:#x}: tasks lost");
    assert_eq!(got, want, "seed {seed:#x}: order broken");
    let report = pool.shutdown();
    assert_clean_or_explained(&report);
    (report, proxy.log())
}

// -- seeded soak schedules ----------------------------------------------

#[test]
fn soak_drop_heavy() {
    // Dropped Task/Result frames leave tasks in-flight forever on the
    // chaotic slot (heartbeats keep it alive) — only the task deadline
    // plus speculative re-execution can finish the stream.
    let plan = ChaosPlan {
        seed: 0xD1,
        policy: ChaosPolicy {
            drop_p: 0.04,
            ..ChaosPolicy::default()
        },
    };
    let (_, log) = soak(plan, 800, Duration::from_millis(150));
    assert!(
        log.iter().any(|f| f.kind == FaultKind::Drop),
        "the schedule must actually drop frames: {log:?}"
    );
}

#[test]
fn soak_drop_heavy_second_seed() {
    // A different seed is a genuinely different schedule (the chaos
    // module unit-tests that); the resilience properties must hold for
    // it all the same.
    let plan = ChaosPlan {
        seed: 0x7707,
        policy: ChaosPolicy {
            drop_p: 0.04,
            ..ChaosPolicy::default()
        },
    };
    soak(plan, 800, Duration::from_millis(150));
}

#[test]
fn soak_corrupt_heavy() {
    // Corrupted frames are garbage to the receiving decoder: the frame
    // is effectively dropped and the wire resyncs. Same recovery story
    // as drops, plus decoder resilience.
    let plan = ChaosPlan {
        seed: 0xC2,
        policy: ChaosPolicy {
            corrupt_p: 0.04,
            ..ChaosPolicy::default()
        },
    };
    let (_, log) = soak(plan, 800, Duration::from_millis(150));
    assert!(log.iter().any(|f| f.kind == FaultKind::Corrupt));
}

#[test]
fn soak_duplicate_storm() {
    // Duplicated Task frames make the daemon answer twice; duplicated
    // Result frames arrive twice. Either way the second answer finds no
    // in-flight entry and is dropped — the ordered gather would panic
    // on any double delivery, so completion is the proof.
    let plan = ChaosPlan {
        seed: 0xD3,
        policy: ChaosPolicy {
            dup_p: 0.15,
            ..ChaosPolicy::default()
        },
    };
    let (_, log) = soak(plan, 1000, Duration::from_millis(150));
    assert!(log.iter().any(|f| f.kind == FaultKind::Duplicate));
}

#[test]
fn soak_delay_makes_speculation_win_without_double_emit() {
    // Long injected delays push tasks past the soft deadline while the
    // original copy still completes eventually: both answers come home.
    // Exactly one may be delivered; the duplicate must be counted, not
    // emitted.
    let plan = ChaosPlan {
        seed: 0xD4,
        policy: ChaosPolicy {
            delay_p: 0.05,
            delay_ms: (120, 250),
            ..ChaosPolicy::default()
        },
    };
    let seed = plan.seed;
    let (pool, proxy) = chaos_pool(plan, Duration::from_millis(80));
    let got = run_stream(&pool, 150);
    let want: Vec<u64> = (0..150u64).map(|x| x * 2).collect();
    assert_eq!(got, want, "seed {seed:#x}: loss or disorder");
    assert!(
        pool.tasks_retried() > 0,
        "injected delays must trigger speculative retries"
    );
    let log = proxy.log();
    assert!(log.iter().any(|f| f.kind == FaultKind::Delay));
    let report = pool.shutdown();
    assert_clean_or_explained(&report);
}

#[test]
fn soak_mixed_storm() {
    // Everything at once: the composed fault classes must not interact
    // into a loss. Run the same policy under two seeds.
    for seed in [0xA5u64, 0xB6] {
        let plan = ChaosPlan {
            seed,
            policy: ChaosPolicy {
                drop_p: 0.02,
                corrupt_p: 0.02,
                dup_p: 0.05,
                delay_p: 0.05,
                delay_ms: (1, 20),
                ..ChaosPolicy::default()
            },
        };
        soak(plan, 1000, Duration::from_millis(150));
    }
}

#[test]
fn soak_stall_silent_peer() {
    // The stalled relay keeps draining but forwards nothing: a silent
    // peer with open sockets. The heartbeat deadline must declare the
    // slot dead and replay its harvest; nothing may be lost.
    let plan = ChaosPlan {
        seed: 0xE7,
        policy: ChaosPolicy {
            stall_after: Some(80),
            ..ChaosPolicy::default()
        },
    };
    let (report, log) = soak(plan, 600, Duration::from_millis(150));
    assert!(
        report.workers_lost >= 1,
        "a stalled slot must be declared dead: {report:?}"
    );
    assert!(log.iter().any(|f| f.kind == FaultKind::Stall));
}

#[test]
fn soak_disconnect_midstream() {
    // Severed sockets wake the reader into the death path immediately —
    // the fast-failure sibling of the stall.
    let plan = ChaosPlan {
        seed: 0xF8,
        policy: ChaosPolicy {
            disconnect_after: Some(60),
            ..ChaosPolicy::default()
        },
    };
    let (report, log) = soak(plan, 600, Duration::from_millis(150));
    assert!(
        report.workers_lost >= 1,
        "a severed slot must be declared dead: {report:?}"
    );
    assert!(log.iter().any(|f| f.kind == FaultKind::Disconnect));
}

// -- recovery, quarantine, determinism ----------------------------------

/// A single flaky endpoint that disconnects mid-stream *and* refuses the
/// first reconnect attempts: the pool must park the stranded tasks, ride
/// the backoff through the refusals, reconnect when the endpoint
/// accepts again, and finish the stream with zero loss.
#[test]
fn disconnect_then_refused_reconnects_recover() {
    const TASKS: u64 = 150;
    let plan = ChaosPlan {
        seed: 0x9E,
        policy: ChaosPolicy {
            disconnect_after: Some(40),
            refuse_connects: 2,
            healthy_connects: 1, // the build's initial connect succeeds
            ..ChaosPolicy::default()
        },
    };
    let proxy = spawn_chaos_local(plan).expect("spawn chaos proxy + daemon");
    let pool = RemotePoolBuilder::new("double", enc, dec)
        .name("flaky")
        .initial_workers(1)
        .max_workers(1)
        .gather(GatherPolicy::Ordered)
        .heartbeat_period(Duration::from_millis(20))
        .failure_timeout(Duration::from_millis(300))
        .reconnect_backoff(Duration::from_millis(10), Duration::from_millis(80))
        .breaker_threshold(3)
        .breaker_cooldown(Duration::from_millis(80))
        .endpoint(Endpoint::plain(proxy.addr().to_string()))
        .build()
        .expect("initial connect is scheduled healthy");
    let ctl = pool.control();

    // A flow-controlled client: at most 8 tasks outstanding. Against a
    // link that severs every 40 frames, an unwindowed burst would put
    // the whole stream in flight before the first result could come
    // home, and every reconnect cycle would replay it from scratch.
    let received = Arc::new(AtomicU64::new(0));
    let tx = pool.input();
    let producer = {
        let received = Arc::clone(&received);
        std::thread::spawn(move || {
            for i in 0..TASKS {
                while i.saturating_sub(received.load(Ordering::SeqCst)) >= 8 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                tx.send(StreamMsg::item(i, i)).unwrap();
            }
            tx.send(StreamMsg::End).unwrap();
        })
    };
    let consumer = {
        let output = pool.output();
        let received = Arc::clone(&received);
        std::thread::spawn(move || {
            let mut got = Vec::with_capacity(TASKS as usize);
            for msg in output.iter() {
                match msg {
                    StreamMsg::Item { payload, .. } => {
                        got.push(payload);
                        received.fetch_add(1, Ordering::SeqCst);
                    }
                    StreamMsg::End => break,
                }
            }
            got
        })
    };

    // Stand-in for the autonomic manager's FT rule: keep trying to
    // restore capacity. Most calls fail fast ("worker limit reached"
    // while the slot lives, backoff/quarantine while it does not).
    let deadline = Instant::now() + Duration::from_secs(60);
    while !consumer.is_finished() {
        assert!(Instant::now() < deadline, "stream never completed");
        let _ = ctl.add_workers(1);
        std::thread::sleep(Duration::from_millis(10));
    }
    let got = consumer.join().unwrap();
    producer.join().unwrap();

    let want: Vec<u64> = (0..TASKS).map(|x| x * 2).collect();
    assert_eq!(got, want, "reconnect cycles must not lose or reorder");
    assert!(pool.workers_lost() >= 1, "the disconnect must be observed");
    assert_eq!(
        proxy.refused_connects(),
        2,
        "the scheduled refusals must be exercised"
    );
    let report = pool.shutdown();
    assert_clean_or_explained(&report);
}

/// The circuit breaker quarantines a flapping endpoint: once Open, no
/// connect attempts reach it until the cooldown elapses; afterwards a
/// single Half-Open probe restores it.
#[test]
fn breaker_quarantines_flapping_endpoint_and_probe_restores() {
    let proxy = spawn_chaos_local(ChaosPlan::inert(1)).expect("spawn proxy");
    let pool = RemotePoolBuilder::new("double", enc, dec)
        .name("breaker")
        .initial_workers(1)
        .max_workers(2)
        .gather(GatherPolicy::Ordered)
        .heartbeat_period(Duration::from_millis(20))
        .failure_timeout(Duration::from_millis(300))
        .reconnect_backoff(Duration::from_millis(10), Duration::from_millis(100))
        .breaker_threshold(3)
        .breaker_cooldown(Duration::from_millis(300))
        .endpoint(Endpoint::plain(proxy.addr().to_string()))
        .build()
        .expect("proxy reachable");
    let ctl = pool.control();
    assert_eq!(pool.circuit_open_count(), 0);

    // The endpoint starts refusing; kill the live slot so its death
    // registers the first failure, then let add_workers fail into Open.
    proxy.set_refusing(true);
    ctl.kill_workers(1).expect("one live slot");
    let deadline = Instant::now() + Duration::from_secs(10);
    while pool.circuit_open_count() == 0 {
        assert!(Instant::now() < deadline, "circuit never opened");
        let _ = ctl.add_workers(1);
        std::thread::sleep(Duration::from_millis(10));
    }

    // Quarantine: while Open and before the cooldown, add_workers must
    // not generate a single connect attempt against the endpoint.
    let attempts_at_open = proxy.connect_attempts();
    for _ in 0..25 {
        let res = ctl.add_workers(1);
        assert!(res.is_err(), "no capacity may appear while quarantined");
    }
    assert_eq!(
        proxy.connect_attempts(),
        attempts_at_open,
        "an Open circuit must stop connect traffic entirely"
    );

    // Heal the endpoint and wait out the cooldown: the next add_workers
    // is the Half-Open probe, which closes the circuit and restores the
    // slot.
    proxy.set_refusing(false);
    std::thread::sleep(Duration::from_millis(450));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match ctl.add_workers(1) {
            Ok(n) => {
                assert_eq!(n, 1);
                break;
            }
            Err(_) => {
                assert!(Instant::now() < deadline, "probe never restored the slot");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    assert_eq!(
        pool.circuit_open_count(),
        0,
        "probe success closes the circuit"
    );
    assert_eq!(ctl.num_workers(), 1);

    // The restored slot must actually carry work (and the stream must
    // complete before shutdown joins the emitter).
    let got = run_stream(&pool, 8);
    assert_eq!(got, (0..8u64).map(|x| x * 2).collect::<Vec<_>>());
    let report = pool.shutdown();
    assert_clean_or_explained(&report);
}

/// Replays a fixed frame script through two proxies under the same plan
/// and asserts the injected-fault schedules are identical; a different
/// seed must produce a different schedule. The comparison covers the
/// pool→daemon direction, whose frame sequence the script fixes exactly
/// (the daemon→pool frame indices depend on the daemon's result
/// batching, which is timing, not seed).
#[test]
fn same_seed_replays_identical_fault_schedule() {
    fn scripted_session(proxy: &ChaosProxy) -> Vec<InjectedFault> {
        let stream = TcpStream::connect(proxy.addr()).expect("connect proxy");
        let mut w = FrameWriter::new(stream.try_clone().expect("clone"));
        let mut r = FrameReader::new(stream.try_clone().expect("clone"));
        w.send(
            FrameType::Hello,
            0,
            &encode_hello(&Hello {
                secure: false,
                nonce: 1,
                workload: "echo".into(),
            }),
        )
        .expect("hello");
        // Handshake frames are spared, so the ack always arrives.
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .expect("read timeout");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if let Ok(Some(f)) = r.try_next() {
                if f.ftype == FrameType::HelloAck {
                    break;
                }
            }
            match r.fill_once() {
                Ok(FillStatus::Bytes) => {}
                Ok(FillStatus::WouldBlock) => assert!(Instant::now() < deadline, "no ack"),
                Ok(FillStatus::Eof) | Err(_) => panic!("handshake severed"),
            }
        }
        for i in 0..200u64 {
            w.push(FrameType::Task, i, &i.to_le_bytes());
        }
        w.flush().expect("flush tasks");
        let _ = w.send(FrameType::Goodbye, 0, &[]);
        // Give the relay time to drain the script (injected delays are
        // bounded), then read the log.
        std::thread::sleep(Duration::from_millis(600));
        let mut log: Vec<InjectedFault> = proxy
            .log()
            .into_iter()
            .filter(|f| f.dir == Direction::ToDaemon)
            .collect();
        log.sort_by_key(|f| (f.conn, f.frame));
        log
    }

    let policy = ChaosPolicy {
        drop_p: 0.05,
        corrupt_p: 0.05,
        dup_p: 0.05,
        delay_p: 0.05,
        delay_ms: (1, 5),
        ..ChaosPolicy::default()
    };
    let plan = ChaosPlan {
        seed: 0x5EED,
        policy: policy.clone(),
    };
    let a = scripted_session(&spawn_chaos_local(plan.clone()).expect("proxy a"));
    let b = scripted_session(&spawn_chaos_local(plan).expect("proxy b"));
    assert!(!a.is_empty(), "the schedule must inject something");
    assert_eq!(a, b, "same seed must replay the same fault schedule");

    let other = scripted_session(
        &spawn_chaos_local(ChaosPlan {
            seed: 0x5EEE,
            policy,
        })
        .expect("proxy c"),
    );
    assert_ne!(a, other, "a different seed is a different schedule");
}

/// Regression (busy-pulse sidecar): a task longer than the failure
/// timeout used to read as a dead slot — the daemon answered heartbeats
/// only between tasks, so the detector severed the connection mid-
/// computation and the pool replayed the task onto nothing, forever.
/// The sidecar pulses during the busy window, so the slot survives.
#[test]
fn long_task_outlives_failure_timeout_via_busy_pulse() {
    let addr = spawn_local("127.0.0.1:0").expect("bind daemon");
    // 500ms spin per task vs a 200ms failure timeout: without the busy
    // pulse this configuration can never finish a single task.
    let pool = RemotePoolBuilder::new("spin:500000", enc, dec)
        .name("longtask")
        .initial_workers(1)
        .max_workers(2)
        .gather(GatherPolicy::Ordered)
        .heartbeat_period(Duration::from_millis(20))
        .failure_timeout(Duration::from_millis(200))
        .endpoint(Endpoint::plain(addr.to_string()))
        .build()
        .expect("daemon reachable");

    let got = run_stream(&pool, 2);
    assert_eq!(got, vec![0, 1], "long tasks must complete, in order");
    assert_eq!(
        pool.workers_lost(),
        0,
        "a busy slot is not a dead slot: the pulse must keep it alive"
    );
    let report = pool.shutdown();
    assert!(report.is_clean(), "unexpected faults: {report:?}");
}
