//! End-to-end distributed farm tests over loopback TCP.
//!
//! Covers the full acceptance path of the distributed substrate: a pool of
//! remote `bskel-workerd` slots completes an ordered stream; killing a
//! daemon process mid-run loses zero tasks while the autonomic manager
//! (running the unchanged FT rule program) senses the loss through the
//! `workersLost` bean and restores the pool; the heartbeat deadline
//! detects a peer that is connected but silent; the secure channel
//! roundtrips and meters its cost; and remote elasticity + sensor
//! plumbing work through the ordinary `FarmControl` surface.

use std::io::BufRead;
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bskel_core::contract::Contract;
use bskel_core::events::{EventKind, EventLog};
use bskel_core::manager::{AutonomicManager, ManagerConfig};
use bskel_monitor::RealClock;
use bskel_net::proto::{decode_hello, encode_hello_ack, FrameType, HelloAck};
use bskel_net::wire::{FrameReader, FrameWriter};
use bskel_net::{spawn_local, Endpoint, RemotePoolBuilder, RemoteWorkerPool};
use bskel_skel::abc_impl::FarmAbc;
use bskel_skel::farm::FarmEventKind;
use bskel_skel::runtime::ManagerDriver;
use bskel_skel::stream::StreamMsg;
use bskel_skel::GatherPolicy;

// -- helpers ------------------------------------------------------------

fn enc(x: u64) -> Vec<u8> {
    x.to_le_bytes().to_vec()
}

fn dec(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// A pool of `u64 -> u64` doubling workers over the given endpoints.
fn double_pool(endpoints: &[Endpoint], initial: u32) -> RemoteWorkerPool<u64, u64> {
    let mut b = RemotePoolBuilder::new("double", enc, dec)
        .name("dfarm")
        .initial_workers(initial)
        .max_workers(8)
        .gather(GatherPolicy::Ordered)
        .heartbeat_period(Duration::from_millis(20))
        .failure_timeout(Duration::from_millis(400));
    for e in endpoints {
        b = b.endpoint(e.clone());
    }
    b.build().expect("loopback daemons are reachable")
}

/// Spawns a real `bskel-workerd` child process on an OS-assigned port and
/// parses the bound address from its announcement line.
fn spawn_workerd() -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_bskel-workerd"))
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn bskel-workerd");
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("daemon announces its address");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("unparseable announcement: {line:?}"));
    (child, addr)
}

/// Sends `0..n` and `End`, returns the ordered payloads received.
fn run_stream(pool: &RemoteWorkerPool<u64, u64>, n: u64) -> Vec<u64> {
    let tx = pool.input();
    let producer = std::thread::spawn(move || {
        for i in 0..n {
            tx.send(StreamMsg::item(i, i)).unwrap();
        }
        tx.send(StreamMsg::End).unwrap();
    });
    let mut got = Vec::with_capacity(n as usize);
    for msg in pool.output().iter() {
        match msg {
            StreamMsg::Item { payload, .. } => got.push(payload),
            StreamMsg::End => break,
        }
    }
    producer.join().unwrap();
    got
}

// -- tests --------------------------------------------------------------

/// Two in-process daemon slots complete a 10k-task ordered stream; the
/// plain channel meters no handshakes and shutdown is clean.
#[test]
fn loopback_pool_completes_ordered_stream() {
    let a = spawn_local("127.0.0.1:0").expect("bind daemon A");
    let b = spawn_local("127.0.0.1:0").expect("bind daemon B");
    let pool = double_pool(
        &[
            Endpoint::plain(a.to_string()),
            Endpoint::plain(b.to_string()),
        ],
        2,
    );
    assert_eq!(pool.num_workers(), 2);

    let got = run_stream(&pool, 10_000);
    let want: Vec<u64> = (0..10_000u64).map(|x| x * 2).collect();
    assert_eq!(got, want, "ordered gather must preserve stream order");

    let cost = pool.cost_report();
    assert_eq!(cost.handshakes, 0, "plain channels never handshake");
    assert_eq!(cost.bytes, 0, "plain channels never cipher");

    let report = pool.shutdown();
    assert!(report.is_clean(), "unexpected faults: {report:?}");
}

/// The secure channel produces identical results and a non-trivial cost
/// report (the numbers that calibrate the simulator's `SslCostModel`).
#[test]
fn secure_channel_roundtrips_and_meters_cost() {
    let addr = spawn_local("127.0.0.1:0").expect("bind daemon");
    let pool = double_pool(&[Endpoint::secure(addr.to_string())], 2);

    let got = run_stream(&pool, 2_000);
    let want: Vec<u64> = (0..2_000u64).map(|x| x * 2).collect();
    assert_eq!(got, want, "ciphering must be transparent to the stream");

    let cost = pool.cost_report();
    assert_eq!(cost.handshakes, 2, "one key-stretch per slot");
    assert!(cost.handshake_seconds() > 0.0);
    assert!(cost.bytes > 0, "every frame is ciphered");
    assert!(cost.per_byte_seconds() > 0.0);

    let report = pool.shutdown();
    assert!(report.is_clean(), "unexpected faults: {report:?}");
}

/// The acceptance test: ≥2 real worker daemons over loopback, 10k tasks,
/// one daemon killed mid-run. Zero tasks may be lost, the gather stays
/// ordered, and the AM — running the unchanged FT rule program over the
/// standard beans — senses the loss (`workersLost`) and restores the
/// pool to the `ftMinWorkers` floor by connecting a replacement slot.
#[test]
fn killing_a_workerd_mid_run_loses_zero_tasks_and_am_rebalances() {
    const TASKS: u64 = 10_000;
    const FT_FLOOR: u32 = 2;

    let (mut victim, addr_a) = spawn_workerd();
    let (mut survivor, addr_b) = spawn_workerd();

    let pool = RemotePoolBuilder::new("sleep:100", enc, dec)
        .name("healnet")
        .initial_workers(2)
        .max_workers(4)
        .gather(GatherPolicy::Ordered)
        .heartbeat_period(Duration::from_millis(20))
        .failure_timeout(Duration::from_millis(400))
        .endpoint(Endpoint::plain(addr_a.to_string()))
        .endpoint(Endpoint::plain(addr_b.to_string()))
        .build()
        .expect("both daemons reachable");
    let ctl = pool.control();

    // The manager drives the pool exactly as it drives the threaded farm:
    // same ABC adapter, same rules, same beans.
    let mut cfg = ManagerConfig::farm("AM_NET");
    cfg.control_period = 0.005;
    cfg.extra_params.push((
        bskel_rules::stdlib::params::FT_MIN_WORKERS.to_owned(),
        f64::from(FT_FLOOR),
    ));
    let manager = AutonomicManager::new(
        cfg,
        Box::new(FarmAbc::new(Arc::clone(&ctl)).with_ft_floor(FT_FLOOR)),
        EventLog::new(),
    )
    .with_rules(bskel_rules::stdlib::farm_rules_with_ft());
    manager.contract_slot().post(Contract::BestEffort);
    let driver = ManagerDriver::spawn(manager, Arc::new(RealClock::new()));

    let producer = {
        let tx = pool.input();
        std::thread::spawn(move || {
            for i in 0..TASKS {
                tx.send(StreamMsg::item(i, i)).unwrap();
            }
            tx.send(StreamMsg::End).unwrap();
        })
    };

    // Let the stream spread over both slots, then kill one daemon
    // process outright (SIGKILL: no goodbye, no flush).
    std::thread::sleep(Duration::from_millis(150));
    victim.kill().expect("kill daemon A");
    victim.wait().expect("reap daemon A");

    // The AM must sense the loss and restore the floor. The dead
    // endpoint is still in the endpoint list — reconnection round-robins
    // past the refused connect onto the survivor.
    let deadline = Instant::now() + Duration::from_secs(10);
    while ctl.num_workers() < FT_FLOOR as usize {
        assert!(
            Instant::now() < deadline,
            "AM never restored the pool: {} workers",
            ctl.num_workers()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Zero loss, order preserved: the killed daemon's in-flight and
    // queued tasks were replayed onto the survivor.
    let mut got = Vec::with_capacity(TASKS as usize);
    for msg in pool.output().iter() {
        match msg {
            StreamMsg::Item { payload, .. } => got.push(payload),
            StreamMsg::End => break,
        }
    }
    producer.join().unwrap();
    let want: Vec<u64> = (0..TASKS).collect();
    assert_eq!(got.len(), want.len(), "tasks lost with the killed daemon");
    assert_eq!(got, want, "replay must preserve ordered gather");

    assert_eq!(pool.workers_lost(), 1);
    let lost = ctl
        .events()
        .iter()
        .filter(|e| e.kind == FarmEventKind::WorkerLost)
        .count();
    assert_eq!(lost, 1, "exactly one worker:lost event: {:?}", ctl.events());

    let manager = driver.stop();
    let sensed: u64 = manager
        .log()
        .of_kind(&EventKind::WorkerLost)
        .iter()
        .filter_map(|e| e.detail.as_deref()?.parse::<u64>().ok())
        .sum();
    assert_eq!(sensed, 1, "AM must sense the loss via workersLost");
    assert!(
        !manager.log().of_kind(&EventKind::AddWorker).is_empty(),
        "recovery must be logged as worker addition: {:?}",
        manager.log().snapshot()
    );

    let report = pool.shutdown();
    assert_eq!(report.workers_lost, 1);
    assert!(report.worker_panics.is_empty());
    survivor.kill().ok();
    survivor.wait().ok();
}

/// A peer that completes the handshake and then goes silent (socket open,
/// no heartbeat acks) is detected by the deadline sweep, and its tasks
/// are replayed onto the live slot.
#[test]
fn heartbeat_deadline_detects_silent_peer() {
    // A fake daemon: accepts, answers the Hello, then never speaks again.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake");
    let silent_addr = listener.local_addr().expect("bound");
    let _fake = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("pool connects");
        let mut reader = FrameReader::new(stream.try_clone().expect("clone"));
        let hello = loop {
            match reader.next_blocking() {
                Ok(Some(f)) if f.ftype == FrameType::Hello => {
                    break decode_hello(&f.payload).expect("well-formed hello")
                }
                Ok(Some(_)) => continue,
                _ => return,
            }
        };
        let ack = HelloAck {
            ok: true,
            secure: hello.secure,
            nonce: 1,
            error: String::new(),
        };
        let mut writer = FrameWriter::new(stream.try_clone().expect("clone"));
        writer
            .send(FrameType::HelloAck, 0, &encode_hello_ack(&ack))
            .expect("ack the hello");
        // Hold the socket open, read nothing, say nothing: the pool's
        // writes succeed but the heartbeat deadline must still fire.
        std::thread::sleep(Duration::from_secs(30));
        drop(stream);
    });

    let live = spawn_local("127.0.0.1:0").expect("bind live daemon");
    let pool = double_pool(
        &[
            Endpoint::plain(silent_addr.to_string()),
            Endpoint::plain(live.to_string()),
        ],
        2,
    );
    assert_eq!(pool.num_workers(), 2);

    let got = run_stream(&pool, 1_000);
    let want: Vec<u64> = (0..1_000u64).map(|x| x * 2).collect();
    assert_eq!(got, want, "silent peer's tasks must be replayed in order");

    assert_eq!(
        pool.workers_lost(),
        1,
        "deadline must declare the peer dead"
    );
    let events = pool.control().events();
    let lost: Vec<_> = events
        .iter()
        .filter(|e| e.kind == FarmEventKind::WorkerLost)
        .collect();
    assert_eq!(lost.len(), 1);
    assert!(
        lost[0].detail.contains("heartbeat"),
        "loss must name the deadline: {:?}",
        lost[0].detail
    );

    let report = pool.shutdown();
    assert_eq!(report.workers_lost, 1);
}

/// Elasticity through the ordinary control surface: slots are added and
/// cooperatively retired mid-stream, sensors report remote beans, and no
/// task is lost across the reconfigurations.
#[test]
fn remote_elasticity_and_sensors() {
    let addr = spawn_local("127.0.0.1:0").expect("bind daemon");
    let pool = RemotePoolBuilder::new("spin:50", enc, dec)
        .name("elastic")
        .initial_workers(1)
        .max_workers(4)
        .gather(GatherPolicy::Ordered)
        .heartbeat_period(Duration::from_millis(10))
        .failure_timeout(Duration::from_millis(500))
        .endpoint(Endpoint::plain(addr.to_string()))
        .build()
        .expect("daemon reachable");
    let ctl = pool.control();

    let producer = {
        let tx = pool.input();
        std::thread::spawn(move || {
            for i in 0..4_000u64 {
                tx.send(StreamMsg::item(i, i)).unwrap();
                std::thread::sleep(Duration::from_micros(50));
            }
            tx.send(StreamMsg::End).unwrap();
        })
    };

    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(ctl.add_workers(2).expect("room for 2 more"), 2);
    assert_eq!(ctl.num_workers(), 3);

    // Heartbeat acks populate RTT; task results populate service time.
    std::thread::sleep(Duration::from_millis(300));
    let snap = ctl.sense(0.5);
    assert_eq!(snap.num_workers, 3);
    assert_eq!(snap.remote_workers, 3);
    assert!(
        snap.net_rtt_ms > 0.0,
        "heartbeat acks must measure RTT: {snap:?}"
    );

    assert_eq!(ctl.remove_workers(2).expect("3 are alive"), 2);
    assert_eq!(ctl.num_workers(), 1);

    let got: Vec<u64> = pool
        .output()
        .iter()
        .take_while(|m| !matches!(m, StreamMsg::End))
        .map(|m| match m {
            StreamMsg::Item { payload, .. } => payload,
            StreamMsg::End => unreachable!(),
        })
        .collect();
    producer.join().unwrap();
    let want: Vec<u64> = (0..4_000u64).collect();
    assert_eq!(got, want, "elasticity must not lose or reorder tasks");

    assert_eq!(pool.workers_lost(), 0, "retirement is not a fault");
    let report = pool.shutdown();
    assert!(report.is_clean(), "unexpected faults: {report:?}");
}

/// A remote worker panic poisons exactly the task that caused it: the
/// daemon reports a `Lost` frame, the gather skips the hole with dense
/// renumbering, and the slot itself survives.
#[test]
fn remote_panic_poisons_only_that_task() {
    let addr = spawn_local("127.0.0.1:0").expect("bind daemon");
    let pool = RemotePoolBuilder::new("panic_on:13", enc, dec)
        .name("poison")
        .initial_workers(2)
        .max_workers(4)
        .gather(GatherPolicy::Ordered)
        .heartbeat_period(Duration::from_millis(20))
        .failure_timeout(Duration::from_millis(500))
        .endpoint(Endpoint::plain(addr.to_string()))
        .build()
        .expect("daemon reachable");

    let got = run_stream(&pool, 100);
    let want: Vec<u64> = (0..100u64).filter(|&x| x != 13).collect();
    assert_eq!(got, want, "exactly the poisoned task is missing");

    assert_eq!(pool.workers_lost(), 0, "a task panic is not a slot death");
    let events = pool.control().events();
    assert_eq!(
        events
            .iter()
            .filter(|e| e.kind == FarmEventKind::WorkerPanic)
            .count(),
        1,
        "one worker:panic event: {events:?}"
    );

    let report = pool.shutdown();
    assert_eq!(report.worker_panics.len(), 1);
    assert_eq!(report.workers_lost, 0);
}
