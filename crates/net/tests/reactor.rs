//! Partial-I/O edge cases of the reactor substrate: the send queue must
//! survive `WouldBlock` mid-frame and resume at the exact byte offset,
//! the decoder must reassemble frames from arbitrarily fragmented reads,
//! and spurious readiness wakeups must be harmless no-ops.
//!
//! These are the failure modes a readiness-driven loop has that the old
//! blocking thread-per-connection substrate never saw: a kernel send
//! buffer filling up halfway through a frame header, a `read` returning
//! one byte, an `epoll_wait` that reports readiness with nothing to do.

use bskel_net::{
    encode_frame, Decoder, FrameType, Interest, Poller, SendQueue, Waker, WriteOutcome,
};
use bskel_net::{BufferPool, FrameView};
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::Duration;

/// A writer that accepts at most `cap` bytes per call and returns
/// `WouldBlock` on every second call — the worst polite behaviour a
/// nonblocking socket can exhibit short of an error.
struct TrickleWriter {
    out: Vec<u8>,
    cap: usize,
    calls: usize,
}

impl Write for TrickleWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.calls += 1;
        if self.calls & 1 == 0 {
            return Err(ErrorKind::WouldBlock.into());
        }
        let n = buf.len().min(self.cap);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn owned(v: &FrameView<'_>) -> (FrameType, u64, Vec<u8>) {
    (v.ftype, v.seq, v.payload.to_vec())
}

fn decode_all(bytes: &[u8]) -> Vec<(FrameType, u64, Vec<u8>)> {
    let mut dec = Decoder::new();
    dec.extend(bytes);
    let mut frames = Vec::new();
    while let Some(v) = dec.next_frame_view().expect("valid frames") {
        frames.push(owned(&v));
    }
    assert_eq!(dec.buffered(), 0, "no trailing partial bytes");
    frames
}

/// A loopback socket pair, both ends nonblocking.
fn socket_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    client.set_nonblocking(true).expect("nonblocking client");
    server.set_nonblocking(true).expect("nonblocking server");
    (client, server)
}

/// `WouldBlock` halfway through a frame must leave the queue resumable:
/// repeated `write_to` calls eventually emit the byte-exact frame
/// stream, never duplicating or dropping the already-written prefix.
#[test]
fn would_block_mid_frame_resumes_at_exact_offset() {
    let mut pool = BufferPool::new(8, 64 * 1024);
    let mut q = SendQueue::new();
    let mut expect = Vec::new();
    // Three chunks: a coalesced pair of small frames, a 0-payload frame,
    // and one large frame — every one will be split mid-frame by the
    // 7-byte trickle (frame header alone is 16 bytes).
    let mut chunk = pool.get();
    encode_frame(&mut chunk, FrameType::Task, 1, b"alpha");
    encode_frame(&mut chunk, FrameType::Task, 2, b"beta");
    expect.extend_from_slice(&chunk);
    q.push(chunk, 2);
    let mut chunk = pool.get();
    encode_frame(&mut chunk, FrameType::Heartbeat, 9, b"");
    expect.extend_from_slice(&chunk);
    q.push(chunk, 1);
    let mut chunk = pool.get();
    encode_frame(&mut chunk, FrameType::Task, 3, &vec![0xAB; 4096]);
    expect.extend_from_slice(&chunk);
    q.push(chunk, 1);

    let mut w = TrickleWriter {
        out: Vec::new(),
        cap: 7,
        calls: 0,
    };
    let mut blocked = 0u32;
    loop {
        match q.write_to(&mut w, &mut pool).expect("no hard error") {
            WriteOutcome::Drained => break,
            WriteOutcome::Blocked => blocked += 1,
        }
    }
    assert!(
        blocked > 0,
        "trickle writer must have blocked at least once"
    );
    assert!(q.is_empty());
    assert_eq!(q.bytes(), 0);
    assert_eq!(w.out, expect, "resumed writes must be byte-exact");
    // And the stream is decodable as the original frames.
    let frames = decode_all(&w.out);
    assert_eq!(frames.len(), 4);
    assert_eq!(frames[0], (FrameType::Task, 1, b"alpha".to_vec()));
    assert_eq!(frames[1], (FrameType::Task, 2, b"beta".to_vec()));
    assert_eq!(frames[2], (FrameType::Heartbeat, 9, Vec::new()));
    assert_eq!(frames[3], (FrameType::Task, 3, vec![0xAB; 4096]));
}

/// A kernel send buffer genuinely filling up: write a multi-megabyte
/// frame backlog into a nonblocking loopback socket until `Blocked`,
/// drain the peer, wait for writability, resume — the receiver must see
/// every frame intact.
#[test]
fn socket_backpressure_blocks_then_drains_losslessly() {
    let (mut tx, mut rx) = socket_pair();
    let mut pool = BufferPool::new(8, 256 * 1024);
    let mut q = SendQueue::new();
    let payload = vec![0x5A; 32 * 1024];

    // Fill phase: keep queueing frames (nobody reading) until the kernel
    // buffer genuinely pushes back. Loopback buffers auto-tune, so the
    // backlog needed is discovered, not assumed; the cap is a safety net
    // far above any real tuning.
    let mut frames_total = 0u64;
    let mut saw_block = false;
    while !saw_block {
        assert!(
            frames_total < 4096,
            "64 MiB never blocked a loopback socket"
        );
        let mut chunk = pool.get();
        encode_frame(&mut chunk, FrameType::Task, frames_total, &payload);
        frames_total += 1;
        q.push(chunk, 1);
        match q.write_to(&mut tx, &mut pool).expect("no hard error") {
            WriteOutcome::Drained => {}
            WriteOutcome::Blocked => saw_block = true,
        }
    }
    let total = frames_total as usize * (payload.len() + 16);

    let mut poller = Poller::new().expect("poller");
    poller
        .add(tx.as_raw_fd(), 7, Interest::READ_WRITE)
        .expect("add");
    let mut events = Vec::new();
    let mut dec = Decoder::new();
    let mut got = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    while !q.is_empty() {
        // Drain the receiving end so the kernel buffer frees up, then
        // wait until the socket is writable again.
        loop {
            match rx.read(&mut scratch) {
                Ok(0) => panic!("peer closed"),
                Ok(n) => dec.extend(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => panic!("read: {e}"),
            }
        }
        while let Some(v) = dec.next_frame_view().expect("valid") {
            got.push(owned(&v));
        }
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.token == 7 && e.writable),
            "socket must become writable after peer drained"
        );
        // Resume mid-frame where the last attempt left off.
        let _ = q.write_to(&mut tx, &mut pool).expect("no hard error");
    }
    // Flush anything still buffered and collect the tail.
    drop(tx);
    let mut tail = Vec::new();
    rx.set_nonblocking(false).expect("blocking drain");
    rx.read_to_end(&mut tail).expect("drain tail");
    dec.extend(&tail);
    while let Some(v) = dec.next_frame_view().expect("valid") {
        got.push(owned(&v));
    }
    assert_eq!(got.len() as u64, frames_total);
    let received: usize = got.iter().map(|(_, _, p)| p.len() + 16).sum();
    assert_eq!(received, total);
    for (i, (ftype, seq, p)) in got.iter().enumerate() {
        assert_eq!(*ftype, FrameType::Task);
        assert_eq!(*seq, i as u64);
        assert_eq!(p, &payload);
    }
}

/// One-byte-at-a-time reads must reassemble the exact frame stream:
/// every header boundary, a zero-length payload, and a multi-KiB payload
/// all crossing `extend` calls one byte at a time.
#[test]
fn one_byte_reads_reassemble_frames() {
    let mut wire = Vec::new();
    encode_frame(&mut wire, FrameType::Task, 42, b"x");
    encode_frame(&mut wire, FrameType::Heartbeat, 0, b"");
    encode_frame(&mut wire, FrameType::Result, 43, &vec![7u8; 5000]);
    encode_frame(&mut wire, FrameType::Lost, 44, b"panic: oh no");

    let mut dec = Decoder::new();
    let mut got = Vec::new();
    for b in &wire {
        dec.extend(std::slice::from_ref(b));
        while let Some(v) = dec.next_frame_view().expect("valid mid-stream") {
            got.push(owned(&v));
        }
    }
    assert_eq!(dec.buffered(), 0);
    assert_eq!(
        got,
        vec![
            (FrameType::Task, 42, b"x".to_vec()),
            (FrameType::Heartbeat, 0, Vec::new()),
            (FrameType::Result, 43, vec![7u8; 5000]),
            (FrameType::Lost, 44, b"panic: oh no".to_vec()),
        ]
    );
}

/// Same fragmentation, but over a real socket: the peer writes the wire
/// bytes one `write` call per byte; the reader decodes as they trickle
/// in, driven by the poller.
#[test]
fn one_byte_socket_reads_through_poller() {
    let (tx, mut rx) = socket_pair();
    let mut wire = Vec::new();
    encode_frame(&mut wire, FrameType::Result, 1, b"first");
    encode_frame(&mut wire, FrameType::Result, 2, b"second");

    let writer = std::thread::spawn(move || {
        let mut tx = tx;
        tx.set_nonblocking(false).expect("blocking writer");
        for b in &wire {
            tx.write_all(std::slice::from_ref(b)).expect("write byte");
            tx.flush().expect("flush");
        }
        // Keep the socket open until the reader is done; dropping here
        // would race EOF against the last reads.
        tx
    });

    let mut poller = Poller::new().expect("poller");
    poller.add(rx.as_raw_fd(), 3, Interest::READ).expect("add");
    let mut events = Vec::new();
    let mut dec = Decoder::new();
    let mut got = Vec::new();
    let mut scratch = [0u8; 1];
    while got.len() < 2 {
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        if !events.iter().any(|e| e.token == 3 && e.readable) {
            continue;
        }
        // Read exactly one byte per readiness notification — maximal
        // fragmentation of the read path.
        match rx.read(&mut scratch) {
            Ok(0) => panic!("unexpected EOF"),
            Ok(n) => dec.extend(&scratch[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
            Err(e) => panic!("read: {e}"),
        }
        while let Some(v) = dec.next_frame_view().expect("valid") {
            got.push(owned(&v));
        }
    }
    assert_eq!(got[0], (FrameType::Result, 1, b"first".to_vec()));
    assert_eq!(got[1], (FrameType::Result, 2, b"second".to_vec()));
    let _tx = writer.join().expect("writer thread");
}

/// Spurious wakeups: waker fires with no socket data, and a readiness
/// poll on a quiet socket reads `WouldBlock`. Neither may produce an
/// event for the socket, an EOF, or a decoder disturbance.
#[test]
fn spurious_wakeups_are_harmless() {
    let (mut tx, mut rx) = socket_pair();
    let mut poller = Poller::new().expect("poller");
    let waker = Waker::new().expect("waker");
    poller
        .add(waker.raw_fd(), u64::MAX, Interest::READ)
        .expect("add waker");
    poller
        .add(rx.as_raw_fd(), 11, Interest::READ)
        .expect("add socket");

    // Wake three times with nothing to do.
    waker.wake();
    waker.wake();
    waker.wake();
    let mut events = Vec::new();
    poller
        .wait(&mut events, Some(Duration::from_secs(5)))
        .expect("wait");
    assert!(
        events.iter().any(|e| e.token == u64::MAX && e.readable),
        "waker readiness must surface"
    );
    assert!(
        events.iter().all(|e| e.token != 11),
        "quiet socket must not report readiness: {events:?}"
    );
    // The reactor's response to a spurious socket poll: WouldBlock, not
    // death.
    let mut scratch = [0u8; 64];
    match rx.read(&mut scratch) {
        Err(e) => assert_eq!(e.kind(), ErrorKind::WouldBlock),
        Ok(n) => panic!("quiet socket returned {n} bytes"),
    }
    waker.drain();
    // Level-triggered: after the drain the waker is quiet again.
    events.clear();
    poller
        .wait(&mut events, Some(Duration::ZERO))
        .expect("wait");
    assert!(
        events.is_empty(),
        "drained waker and quiet socket: no events, got {events:?}"
    );
    // Real data still gets through afterwards.
    let mut frame = Vec::new();
    encode_frame(&mut frame, FrameType::Result, 5, b"real");
    tx.write_all(&frame).expect("write");
    events.clear();
    poller
        .wait(&mut events, Some(Duration::from_secs(5)))
        .expect("wait");
    assert!(events
        .iter()
        .any(|e| e.token == 11 && e.readable && !e.closed));
    let n = rx.read(&mut scratch).expect("read");
    let mut dec = Decoder::new();
    dec.extend(&scratch[..n]);
    let v = dec
        .next_frame_view()
        .expect("valid")
        .expect("one whole frame");
    assert_eq!(owned(&v), (FrameType::Result, 5, b"real".to_vec()));
}
