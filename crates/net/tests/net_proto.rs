//! Decoder-under-corruption property tests.
//!
//! Feeds the wire decoder byte streams mangled by the chaos corruption
//! generator and asserts the protocol-resilience contract: the decoder
//! never panics, never fabricates a frame that was not sent, and always
//! resyncs onto the next intact frame (corrupted bytes are accounted as
//! garbage, not silently absorbed).
//!
//! Frame payloads and sequence numbers are kept below `0x80` so an
//! *uncorrupted* byte can never alias the magic bytes (`0xE7 0xB5`) —
//! any resync the decoder performs is therefore attributable to the
//! injected corruption alone.

use bskel_net::chaos::{corrupt_frame_bytes, ChaosRng};
use bskel_net::proto::{encode_frame, Decoder, FrameType};
use proptest::prelude::*;

const FTYPES: [FrameType; 3] = [FrameType::Task, FrameType::Result, FrameType::Heartbeat];

proptest! {
    #[test]
    fn decoder_survives_corrupted_streams(
        seed in any::<u64>(),
        corrupt_p in 0.0f64..0.8,
        specs in proptest::collection::vec(
            (0usize..3, 0u64..0x80, proptest::collection::vec(0u8..0x80, 0..48)),
            1..40,
        ),
        chunk in 1usize..97,
    ) {
        let mut rng = ChaosRng::new(seed);
        let mut wire = Vec::new();
        let mut kept = Vec::new();
        let mut corrupted = 0usize;
        for (t, seq, payload) in &specs {
            let mut bytes = Vec::new();
            encode_frame(&mut bytes, FTYPES[*t], *seq, payload);
            if rng.chance(corrupt_p) {
                corrupt_frame_bytes(&mut rng, &mut bytes);
                corrupted += 1;
            } else {
                kept.push((FTYPES[*t], *seq, payload.clone()));
            }
            wire.extend_from_slice(&bytes);
        }
        // A trailing intact sentinel: decoding it proves the decoder
        // resynced past whatever garbage preceded it.
        let sentinel = (FrameType::Goodbye, 0x55u64, vec![0x7Fu8; 5]);
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, sentinel.0, sentinel.1, &sentinel.2);
        wire.extend_from_slice(&bytes);
        kept.push(sentinel);

        let mut dec = Decoder::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            dec.extend(piece);
            loop {
                match dec.next_frame() {
                    Ok(Some(f)) => got.push((f.ftype, f.seq, f.payload)),
                    Ok(None) => break,
                    // Corrupted headers are unrecognizable garbage, never
                    // a plausible frame with an oversized length.
                    Err(e) => panic!("decoder went fatal on garbage: {e}"),
                }
            }
        }

        // Exactly the uncorrupted frames, in order: nothing lost past the
        // garbage, nothing fabricated from it.
        prop_assert_eq!(got, kept);
        prop_assert_eq!(dec.buffered(), 0, "no bytes may linger");
        if corrupted > 0 {
            prop_assert!(
                dec.garbage_bytes() as usize >= corrupted,
                "corrupted frames must be accounted as garbage"
            );
        } else {
            prop_assert_eq!(dec.garbage_bytes(), 0);
        }
    }
}

/// Deterministic spot-check of the same property: a fixed seed produces a
/// fixed mangled stream, and the decoder's recovery over it is exact.
#[test]
fn decoder_resyncs_after_every_corrupted_frame() {
    let mut rng = ChaosRng::new(0xBAD_F00D);
    let mut wire = Vec::new();
    let mut kept = Vec::new();
    for seq in 0..64u64 {
        let payload = vec![(seq & 0x7F) as u8; 16];
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, FrameType::Task, seq, &payload);
        if seq % 3 == 0 {
            corrupt_frame_bytes(&mut rng, &mut bytes);
        } else {
            kept.push(seq);
        }
        wire.extend_from_slice(&bytes);
    }
    let mut dec = Decoder::new();
    dec.extend(&wire);
    let mut got = Vec::new();
    while let Ok(Some(f)) = dec.next_frame() {
        got.push(f.seq);
    }
    assert_eq!(got, kept);
    assert!(dec.garbage_bytes() > 0);
}
