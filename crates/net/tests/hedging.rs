//! Hedged-dispatch correctness under a seeded slow-endpoint schedule.
//!
//! Topology: one endpoint behind a [`ChaosProxy`] that *delays* (never
//! drops) every frame, plus one clean endpoint. Delay-only chaos is the
//! point — without hedging every task still completes eventually, so
//! these tests isolate the hedging properties from loss recovery:
//!
//! * **first result wins, exactly once**: the ordered gather's reorder
//!   buffer panics on a duplicate sequence, so a completed soak proves
//!   the speculation-registry dedup holds for hedges too;
//! * **hedges actually launch and win** when the slow tail exceeds the
//!   rolling latency quantile;
//! * **an exhausted retry budget suppresses hedging entirely** (the
//!   always-empty `ratio: 0, min_tokens: 0` bucket) while the stream
//!   still completes via the delayed originals.

use std::time::Duration;

use bskel_net::{
    spawn_chaos_local, spawn_local, ChaosPlan, ChaosPolicy, Endpoint, RemotePoolBuilder,
    RemoteWorkerPool,
};
use bskel_skel::stream::StreamMsg;
use bskel_skel::GatherPolicy;

fn enc(x: u64) -> Vec<u8> {
    x.to_le_bytes().to_vec()
}

fn dec(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// A delay-only chaos plan: a slice of the proxied endpoint's frames
/// wait `lo..=hi` ms, nothing is ever dropped or corrupted. The proxy
/// sleeps inline per delayed frame, so `p` stays well below 1.0 to keep
/// its forwarding threads from falling permanently behind the
/// heartbeat traffic.
fn slow_plan(seed: u64, p: f64, lo: u64, hi: u64) -> ChaosPlan {
    ChaosPlan {
        seed,
        policy: ChaosPolicy {
            delay_p: p,
            delay_ms: (lo, hi),
            ..ChaosPolicy::default()
        },
    }
}

/// Builds the two-endpoint pool (slow proxied + clean) with hedging at
/// the given quantile and an optional retry budget.
fn hedging_pool(
    plan: ChaosPlan,
    quantile: f64,
    budget: Option<(f64, f64)>,
) -> RemoteWorkerPool<u64, u64> {
    let seed = plan.seed;
    let proxy = spawn_chaos_local(plan).expect("spawn chaos proxy + daemon");
    let clean = spawn_local("127.0.0.1:0").expect("spawn clean daemon");
    let mut b = RemotePoolBuilder::new("double", enc, dec)
        .name("hedge")
        .initial_workers(2)
        .max_workers(4)
        .gather(GatherPolicy::Ordered)
        .heartbeat_period(Duration::from_millis(100))
        .failure_timeout(Duration::from_secs(5))
        .hedge_quantile(quantile)
        .resilience_seed(seed)
        .endpoint(Endpoint::plain(proxy.addr().to_string()))
        .endpoint(Endpoint::plain(clean.to_string()));
    if let Some((ratio, min_tokens)) = budget {
        b = b.retry_budget(ratio, min_tokens);
    }
    b.build().expect("both endpoints reachable")
}

/// Sends `0..n` and `End`, returns the ordered payloads received.
fn run_stream(pool: &RemoteWorkerPool<u64, u64>, n: u64) -> Vec<u64> {
    let tx = pool.input();
    let producer = std::thread::spawn(move || {
        for i in 0..n {
            tx.send(StreamMsg::item(i, i)).unwrap();
        }
        tx.send(StreamMsg::End).unwrap();
    });
    let mut got = Vec::with_capacity(n as usize);
    for msg in pool.output().iter() {
        match msg {
            StreamMsg::Item { payload, .. } => got.push(payload),
            StreamMsg::End => break,
        }
    }
    producer.join().unwrap();
    got
}

#[test]
fn hedges_launch_win_and_never_double_emit() {
    // An aggressive quantile (0.3) sits below the slow endpoint's delay
    // band once the clean endpoint's fast deliveries fill the window, so
    // every slow-slot task in the tail gets hedged onto the clean slot.
    let pool = hedging_pool(slow_plan(0x4ED6E, 0.45, 40, 80), 0.3, None);
    let n = 300;
    let got = run_stream(&pool, n);
    let want: Vec<u64> = (0..n).map(|x| x * 2).collect();
    assert_eq!(got, want, "hedging lost, reordered or duplicated a task");
    let hedges = pool.hedges_launched();
    let wins = pool.hedge_wins();
    assert!(hedges > 0, "slow tail above the quantile never hedged");
    assert!(
        wins > 0,
        "a ~200ms-delayed original beat every ~1ms hedge ({hedges} hedges)"
    );
    assert!(wins <= hedges, "{wins} wins from {hedges} hedges");
    // No task deadline is configured: every duplicate must be a hedge.
    assert_eq!(
        pool.tasks_retried(),
        0,
        "speculation fired without a deadline"
    );
    let report = pool.shutdown();
    assert!(
        report.worker_panics.is_empty() && report.lost_undelivered.is_empty(),
        "delay-only chaos must not lose anything: {report:?}"
    );
}

#[test]
fn exhausted_budget_suppresses_hedging() {
    // ratio 0 / min 0 is the always-empty bucket: every discretionary
    // re-dispatch is refused. The stream still completes because delayed
    // frames are merely late, never lost.
    let pool = hedging_pool(slow_plan(0xB4D6E7, 0.4, 30, 60), 0.3, Some((0.0, 0.0)));
    let n = 150;
    let got = run_stream(&pool, n);
    let want: Vec<u64> = (0..n).map(|x| x * 2).collect();
    assert_eq!(got, want, "budget gating must not affect delivery");
    assert_eq!(
        pool.hedges_launched(),
        0,
        "hedged despite an exhausted retry budget"
    );
    assert_eq!(pool.hedge_wins(), 0);
    assert_eq!(
        pool.retry_budget_tokens(),
        Some(0.0),
        "the zero budget must stay empty"
    );
    pool.shutdown();
}
