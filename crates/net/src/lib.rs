//! # bskel-net — the distributed farm substrate
//!
//! This crate extends the threaded skeleton runtime across machine
//! boundaries: a farm whose workers are *slots* hosted by remote
//! `bskel-workerd` daemons, speaking a dependency-free length-prefixed
//! binary protocol over `std::net::TcpStream`.
//!
//! The paper's behavioural-skeleton premise is that the management layer
//! must not care where the workers run: the pool here implements the
//! same `FarmControl` surface as the in-process farm, ships the remote
//! workers' sensor beans (service time, queue depth) piggybacked on
//! result frames, and merges them into the standard `SensorSnapshot` —
//! so the *unchanged* rule programs and contracts of the autonomic
//! manager drive remote elasticity (`ADD_EXECUTOR` connects a daemon
//! slot, `REMOVE_EXECUTOR` retires one) and self-healing (heartbeat
//! deadline → slot death → in-flight replay onto survivors).
//!
//! Modules:
//!
//! * [`proto`] — the wire format: framed, partial-read and garbage
//!   tolerant, with oversized-length rejection;
//! * [`wire`] — `FrameWriter`/`FrameReader` over a socket, with optional
//!   metered ciphering;
//! * [`secure`] — the *toy* secure channel (NOT cryptography): a
//!   keystream cipher and a deliberately expensive handshake whose cost
//!   meter calibrates the simulator's `SslCostModel`;
//! * [`daemon`] — the worker-daemon serve loop and workload registry;
//! * [`pool`] — [`RemoteWorkerPool`]: the distributed farm, with
//!   endpoint circuit breakers, backoff-with-jitter reconnects and
//!   soft task deadlines with speculative re-execution;
//! * [`chaos`] — seeded, deterministic fault injection (a frame-level
//!   proxy for drop/delay/dup/corrupt/refuse/disconnect/stall) that the
//!   soak tests drive the pool's resilience policies with;
//! * [`metrics`] — the ops plane's exposition endpoint: a single-thread
//!   epoll-hosted HTTP listener serving Prometheus text format
//!   (`GET /metrics`) and the ops journal (`GET /journal`);
//! * [`sys`] — dependency-free Linux readiness polling (`epoll` +
//!   `eventfd` via raw syscalls, no libc);
//! * [`reactor`] — the event loop's allocation/syscall-economy pieces:
//!   pooled frame buffers, a vectored-write send queue, a timer wheel.

#![warn(missing_docs)]

pub mod chaos;
pub mod daemon;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod reactor;
pub mod secure;
pub mod sys;
pub mod wire;

pub use chaos::{
    corrupt_frame_bytes, frame_decision, spawn_chaos_local, ChaosPlan, ChaosPolicy, ChaosProxy,
    ChaosRng, Direction, FaultKind, FrameFate, InjectedFault,
};
pub use daemon::{serve, spawn_local, Workload};
pub use metrics::{count_kinds, parse_exposition, Exposition, MetricsHub, MetricsServer, Sample};
pub use pool::{
    DecodeFn, EncodeFn, Endpoint, RemotePoolBuilder, RemoteWorkerPool, ResilienceConfig,
    RetryBudgetConfig,
};
pub use proto::{
    encode_frame, Decoder, Frame, FrameType, FrameView, ProtoError, MAGIC, MAX_PAYLOAD, VERSION,
};
pub use reactor::{BufferPool, SendQueue, TimerWheel, WriteOutcome};
pub use secure::{CostMeter, CostReport};
pub use sys::{raise_nofile_limit, Event, Interest, Poller, Waker};

// Convenience re-export: the statistic shipped in `proto::SensorBlob`.
pub use bskel_monitor::Welford;
