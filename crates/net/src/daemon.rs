//! The `bskel-workerd` daemon: hosts remote worker slots.
//!
//! Each accepted connection is one worker slot, served by its own thread:
//!
//! 1. **Handshake** (in clear): the client's `Hello` names the workload
//!    the slot should run and whether the channel is secured; the daemon
//!    answers `HelloAck` and, in secure mode, both sides derive session
//!    keys and cipher everything from the next byte on.
//! 2. **Serve loop**: tasks queue in a pending deque; between tasks the
//!    daemon opportunistically drains the socket without blocking so
//!    heartbeats are answered promptly, and a **busy-pulse sidecar
//!    thread** emits unsolicited `Heartbeat` frames *while a task is
//!    executing* — any frame refreshes the pool's liveness deadline, so
//!    a legitimately long task no longer reads as a dead slot and the
//!    pool's failure timeout can be chosen independently of worst-case
//!    service time. Results are written back buffered and flushed in
//!    batches, each batch trailed by a `Sensors` frame carrying
//!    daemon-measured service time, queue depth, and the completed-task
//!    count.
//! 3. **Failure semantics**: a panicking workload poisons only its own
//!    task — the panic is caught and a `Lost` frame tells the pool that
//!    `seq` will never produce a result. `Goodbye` drains the pending
//!    queue, flushes, and closes.
//!
//! The daemon is workload-agnostic at deploy time: it hosts the small
//! registry in [`Workload`] and the client picks per connection.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bskel_monitor::Welford;
use parking_lot::Mutex;

use crate::proto::{
    decode_hello, encode_hello_ack, encode_sensors, Frame, FrameType, HelloAck, SensorBlob,
};
use crate::secure::{derive_session_keys, CostMeter, StreamCipher};
use crate::wire::{FillStatus, FrameReader, FrameWriter};

/// Results buffered before a flush forces them onto the wire.
const FLUSH_EVERY: usize = 32;
/// Period of the busy pulse: how often the sidecar thread proves
/// liveness while a task is executing. Must sit well under any sane
/// pool failure timeout.
const BUSY_PULSE_PERIOD: Duration = Duration::from_millis(20);

/// The computations a worker slot can host, named on the wire in `Hello`
/// (see [`Workload::parse`] for the syntax).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Returns the payload unchanged.
    Echo,
    /// Reads a little-endian `u64` from the payload head and returns its
    /// double, little-endian.
    DoubleU64,
    /// Busy-spins for the given number of microseconds, then echoes.
    SpinUs(u64),
    /// Sleeps for the given number of microseconds, then echoes.
    SleepUs(u64),
    /// Panics when the payload's leading `u64` equals the trigger value,
    /// echoes otherwise — exercises the `Lost`-frame path.
    PanicOn(u64),
}

impl Workload {
    /// Parses the wire name: `echo`, `double`, `spin:N`, `sleep:N`,
    /// `panic_on:N` (N in microseconds for spin/sleep).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "echo" => return Some(Workload::Echo),
            "double" => return Some(Workload::DoubleU64),
            _ => {}
        }
        let (name, arg) = s.split_once(':')?;
        let n: u64 = arg.parse().ok()?;
        match name {
            "spin" => Some(Workload::SpinUs(n)),
            "sleep" => Some(Workload::SleepUs(n)),
            "panic_on" => Some(Workload::PanicOn(n)),
            _ => None,
        }
    }

    fn lead_u64(input: &[u8]) -> u64 {
        let mut b = [0u8; 8];
        let n = input.len().min(8);
        b[..n].copy_from_slice(&input[..n]);
        u64::from_le_bytes(b)
    }

    /// Runs the workload over one task payload.
    pub fn apply(&self, input: &[u8]) -> Vec<u8> {
        match *self {
            Workload::Echo => input.to_vec(),
            Workload::DoubleU64 => {
                let x = Self::lead_u64(input);
                x.wrapping_mul(2).to_le_bytes().to_vec()
            }
            Workload::SpinUs(us) => {
                let t0 = Instant::now();
                while t0.elapsed().as_micros() < u128::from(us) {
                    std::hint::spin_loop();
                }
                input.to_vec()
            }
            Workload::SleepUs(us) => {
                std::thread::sleep(std::time::Duration::from_micros(us));
                input.to_vec()
            }
            Workload::PanicOn(trigger) => {
                let x = Self::lead_u64(input);
                assert!(x != trigger, "workload trigger value {trigger} hit");
                input.to_vec()
            }
        }
    }
}

struct Conn {
    reader: FrameReader,
    /// Shared with the busy-pulse sidecar: the mutex serialises frame
    /// writes (the cipher keystream is order-dependent and frames must
    /// not interleave), exactly like the pool's per-slot writer lock.
    writer: Arc<Mutex<FrameWriter>>,
    workload: Workload,
    /// True while a task executes; the sidecar pulses only then.
    busy: Arc<AtomicBool>,
    pending: VecDeque<(u64, Vec<u8>)>,
    service: Welford,
    done: u64,
    finishing: bool,
    unflushed: usize,
}

impl Conn {
    fn sensor_blob(&self) -> Vec<u8> {
        encode_sensors(&SensorBlob {
            service: self.service,
            queue_depth: self.pending.len() as u32,
            done: self.done,
        })
    }

    fn handle_frame(&mut self, f: Frame) -> std::io::Result<()> {
        match f.ftype {
            FrameType::Task => self.pending.push_back((f.seq, f.payload)),
            FrameType::Heartbeat => {
                // Answer immediately — liveness must not wait for the
                // result batch to fill up.
                let blob = self.sensor_blob();
                let mut w = self.writer.lock();
                w.push(FrameType::HeartbeatAck, f.seq, &blob);
                w.flush()?;
            }
            FrameType::Goodbye => self.finishing = true,
            // A slot never receives the daemon-to-client or handshake
            // frame types mid-stream; drop them rather than die.
            _ => {}
        }
        Ok(())
    }

    /// Flushes buffered results, trailed by a fresh sensor reading.
    fn flush_results(&mut self) -> std::io::Result<()> {
        if self.unflushed == 0 {
            return self.writer.lock().flush();
        }
        let blob = self.sensor_blob();
        let mut w = self.writer.lock();
        w.push(FrameType::Sensors, 0, &blob);
        self.unflushed = 0;
        w.flush()
    }

    /// Drains every frame currently available without blocking.
    /// Returns `true` on EOF.
    fn drain_nonblocking(&mut self) -> std::io::Result<bool> {
        self.reader.stream().set_nonblocking(true)?;
        let eof = loop {
            match self.reader.try_next() {
                Ok(Some(f)) => {
                    self.handle_frame(f)?;
                    continue;
                }
                Ok(None) => {}
                Err(e) => {
                    self.reader.stream().set_nonblocking(false)?;
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
            }
            match self.reader.fill_once()? {
                FillStatus::Bytes => {}
                FillStatus::WouldBlock => break false,
                FillStatus::Eof => break true,
            }
        };
        self.reader.stream().set_nonblocking(false)?;
        Ok(eof)
    }

    fn serve(&mut self) -> std::io::Result<()> {
        loop {
            let eof = if self.pending.is_empty() && !self.finishing {
                // Idle: push out whatever is buffered, then sleep on the
                // socket until the client speaks.
                self.flush_results()?;
                match self.reader.next_blocking()? {
                    None => true,
                    Some(f) => {
                        self.handle_frame(f)?;
                        false
                    }
                }
            } else {
                self.drain_nonblocking()?
            };

            if let Some((seq, bytes)) = self.pending.pop_front() {
                let t0 = Instant::now();
                // The busy window is what the pulse sidecar watches: a
                // long-running task keeps proving liveness from there.
                self.busy.store(true, Ordering::SeqCst);
                let result = catch_unwind(AssertUnwindSafe(|| self.workload.apply(&bytes)));
                self.busy.store(false, Ordering::SeqCst);
                let dt = t0.elapsed().as_secs_f64();
                match result {
                    Ok(out) => {
                        self.service.update(dt);
                        self.done += 1;
                        self.writer.lock().push(FrameType::Result, seq, &out);
                    }
                    Err(_) => self.writer.lock().push(FrameType::Lost, seq, &[]),
                }
                self.unflushed += 1;
                if self.unflushed >= FLUSH_EVERY || self.pending.is_empty() {
                    self.flush_results()?;
                }
            }

            if eof {
                return Ok(());
            }
            if self.finishing && self.pending.is_empty() {
                self.flush_results()?;
                self.writer.lock().send(FrameType::Goodbye, 0, &[])?;
                return Ok(());
            }
        }
    }
}

/// Serves one accepted connection: handshake, then the slot loop.
fn handle_conn(stream: TcpStream) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = FrameReader::new(stream.try_clone()?);
    let mut writer = FrameWriter::new(stream.try_clone()?);

    let hello = match reader.next_blocking()? {
        Some(f) if f.ftype == FrameType::Hello => decode_hello(&f.payload),
        _ => None,
    };
    let Some(hello) = hello else {
        writer.send(
            FrameType::HelloAck,
            0,
            &encode_hello_ack(&HelloAck {
                ok: false,
                secure: false,
                nonce: 0,
                error: "expected a Hello frame first".into(),
            }),
        )?;
        return Ok(());
    };
    let Some(workload) = Workload::parse(&hello.workload) else {
        writer.send(
            FrameType::HelloAck,
            0,
            &encode_hello_ack(&HelloAck {
                ok: false,
                secure: false,
                nonce: 0,
                error: format!("unknown workload {:?}", hello.workload),
            }),
        )?;
        return Ok(());
    };

    // Not a secret: the nonce only varies the toy session keys per
    // connection (see crate::secure for why that is fine here).
    let server_nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED)
        ^ (std::process::id() as u64) << 32;
    writer.send(
        FrameType::HelloAck,
        0,
        &encode_hello_ack(&HelloAck {
            ok: true,
            secure: hello.secure,
            nonce: server_nonce,
            error: String::new(),
        }),
    )?;
    if hello.secure {
        let meter = Arc::new(CostMeter::new());
        let (c2s, s2c) = meter.time_handshake(|| derive_session_keys(hello.nonce, server_nonce));
        reader.secure(StreamCipher::new(c2s), Arc::clone(&meter));
        writer.secure(StreamCipher::new(s2c), meter);
    }

    let writer = Arc::new(Mutex::new(writer));
    let busy = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    // Busy-pulse sidecar: while the serve thread is inside a workload,
    // nobody drains the socket or answers heartbeats — historically a
    // task longer than the pool's failure timeout read as a dead slot
    // and got its connection severed mid-computation. The sidecar sends
    // unsolicited `Heartbeat` frames (seq 0, ignored by the pool's
    // frame handler beyond the liveness touch) for the duration of the
    // busy window, so silence once again implies death.
    let pulse = {
        let writer = Arc::clone(&writer);
        let busy = Arc::clone(&busy);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("bskel-workerd-pulse".into())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    if busy.load(Ordering::SeqCst)
                        && writer.lock().send(FrameType::Heartbeat, 0, &[]).is_err()
                    {
                        // The connection is going away; the serve thread
                        // finds out on its own. Stop pulsing the dead
                        // socket instead of spinning until the workload
                        // finishes.
                        break;
                    }
                    std::thread::sleep(BUSY_PULSE_PERIOD);
                }
            })?
    };

    let mut conn = Conn {
        reader,
        writer,
        workload,
        busy,
        pending: VecDeque::new(),
        service: Welford::new(),
        done: 0,
        finishing: false,
        unflushed: 0,
    };
    let served = conn.serve();
    stop.store(true, Ordering::SeqCst);
    let _ = pulse.join();
    served
}

/// Accept loop: one thread per connection, forever.
pub fn serve(listener: TcpListener) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        std::thread::Builder::new()
            .name("bskel-workerd-slot".into())
            .spawn(move || {
                // A dropped connection is the client's business (the pool
                // detects it via heartbeat/EOF); nothing useful to do here.
                let _ = handle_conn(stream);
            })
            .expect("spawn slot thread");
    }
}

/// Starts an in-process daemon on `addr` (use port 0 for an ephemeral
/// port) and returns the bound address. The accept loop runs on a
/// detached thread for the life of the process — intended for tests and
/// benches that want a loopback daemon without a child process.
pub fn spawn_local(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("bskel-workerd-local".into())
        .spawn(move || serve(listener))?;
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_parse() {
        assert_eq!(Workload::parse("echo"), Some(Workload::Echo));
        assert_eq!(Workload::parse("double"), Some(Workload::DoubleU64));
        assert_eq!(Workload::parse("spin:250"), Some(Workload::SpinUs(250)));
        assert_eq!(Workload::parse("sleep:10"), Some(Workload::SleepUs(10)));
        assert_eq!(Workload::parse("panic_on:7"), Some(Workload::PanicOn(7)));
        assert_eq!(Workload::parse("nope"), None);
        assert_eq!(Workload::parse("spin:abc"), None);
    }

    #[test]
    fn workload_apply() {
        assert_eq!(Workload::Echo.apply(b"xyz"), b"xyz");
        assert_eq!(
            Workload::DoubleU64.apply(&21u64.to_le_bytes()),
            42u64.to_le_bytes()
        );
        assert_eq!(
            Workload::PanicOn(7).apply(&8u64.to_le_bytes()),
            8u64.to_le_bytes()
        );
        assert!(catch_unwind(|| Workload::PanicOn(7).apply(&7u64.to_le_bytes())).is_err());
    }
}
