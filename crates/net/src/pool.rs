//! The distributed worker pool: farm semantics over TCP remote workers.
//!
//! [`RemoteWorkerPool`] mirrors the threaded farm's architecture exactly —
//! an emitter dispatching batched tasks over per-slot queues through an
//! RCU-published table, a collector restoring stream order, the same
//! publish-before-close loss-freedom invariant — but each *slot* is a
//! connection to a `bskel-workerd` daemon instead of a local thread:
//!
//! * a **writer thread** per slot drains the slot's local
//!   [`WorkerQueue`] in batches and ships them as `Task` frames in a
//!   single flush (wire batching: one syscall per batch, like one lock
//!   per batch locally). Every task is recorded in the slot's *in-flight
//!   map before it touches the wire*, so a crash can never lose a task
//!   that was sent but not yet answered;
//! * a **reader thread** per slot decodes `Result`/`Lost` frames back
//!   into the collector channel and folds the daemon's piggybacked
//!   sensor beans (service time, queue depth) into the slot; it is the
//!   *single* thread that resolves in-flight entries, which is what makes
//!   crash recovery duplicate-free (see below);
//! * a **failure detector thread** sends heartbeats and enforces a
//!   deadline: a slot whose last frame is older than the failure timeout
//!   has its socket severed, which wakes its reader into the death path.
//!
//! **Crash recovery** reuses the farm's worker-death protocol: the dying
//! slot is removed from the published table *before* its queue closes
//! (bounced emitters re-dispatch onto survivors), then its queued backlog
//! *and* its in-flight map are replayed onto the surviving slots — or
//! parked until `add_workers` restores capacity. Harvesting the in-flight
//! map is safe from duplicates precisely because it happens on the reader
//! thread itself after it has stopped consuming frames: no result for a
//! harvested task can ever be forwarded afterwards.
//!
//! **Resilience policies** (see [`ResilienceConfig`]) sit between the
//! death/recovery machinery and the endpoints:
//!
//! * every endpoint carries a **circuit breaker** (Closed → Open →
//!   Half-Open): repeated connect failures or slot deaths inside a
//!   failure window open the circuit, after which `add_workers` stops
//!   hammering the endpoint until the cooldown elapses and a single
//!   Half-Open probe either closes the circuit or re-opens it with a
//!   longer backoff;
//! * reconnect attempts back off exponentially with **decorrelated
//!   jitter** (seeded, so schedules replay under a fixed
//!   [`ResilienceConfig::seed`]);
//! * an optional **soft task deadline** speculatively re-executes
//!   overdue in-flight tasks on a second slot. The speculation registry
//!   resolves the race: the first copy home wins, every other copy's
//!   in-flight entry is stripped (so death harvests cannot replay it)
//!   and late duplicates are counted and dropped — the collector's
//!   ordered stream never sees a sequence number twice.
//!
//! The pool implements [`FarmControl`], so the existing `FarmAbc`, rule
//! programs and contracts drive remote elasticity (ADD_WORKER connects a
//! new daemon slot, REMOVE_WORKER retires one cooperatively) with no rule
//! changes — remote workers are just workers with beans.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bskel_monitor::{
    queue_variance, AtomicRateEstimator, Clock, RealClock, SensorSnapshot, Time, Welford,
};
use bskel_skel::farm::{FarmControl, FarmEvent, FarmEventKind, ShutdownReport};
use bskel_skel::queue::{Task, WorkerQueue};
use bskel_skel::rcu::{Published, ReadHandle};
use bskel_skel::stream::{ReorderBuffer, StreamMsg};
use bskel_skel::{GatherPolicy, SchedPolicy};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::chaos::ChaosRng;
use crate::proto::{decode_hello_ack, decode_sensors, encode_hello, FrameType, Hello, ProtoError};
use crate::secure::{derive_session_keys, CostMeter, CostReport, StreamCipher};
use crate::wire::{FillStatus, FrameReader, FrameWriter};

/// Most inputs the emitter drains (and dispatches) per wake-up.
const DISPATCH_BATCH: usize = 32;
/// Most tasks a writer ships per flush (one syscall per wire batch).
const WIRE_BATCH: usize = 32;
/// Most overdue tasks one slot may speculate per deadline sweep, so a
/// stalled slot with a deep in-flight map cannot flood the survivors.
const SPEC_SWEEP_LIMIT: usize = 16;

/// Clamps a builder-supplied duration into sane territory instead of
/// panicking — the `RateKnob::sanitize` idiom: actuator and builder
/// paths absorb nonsense, they do not abort the program.
fn clamp_duration(d: Duration) -> Duration {
    d.clamp(Duration::from_millis(1), Duration::from_secs(3600))
}

/// Encodes one input item to its wire payload.
pub type EncodeFn<In> = Arc<dyn Fn(In) -> Vec<u8> + Send + Sync>;
/// Decodes one result payload back to the output type.
pub type DecodeFn<Out> = Arc<dyn Fn(&[u8]) -> Out + Send + Sync>;

/// A `bskel-workerd` address the pool may open slots against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// `host:port` of the daemon.
    pub addr: String,
    /// Whether slots on this endpoint run the secure channel.
    pub secure: bool,
}

impl Endpoint {
    /// A plain (clear-channel) endpoint.
    pub fn plain(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            secure: false,
        }
    }

    /// A secured endpoint (toy cipher + metered handshake).
    pub fn secure(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            secure: true,
        }
    }
}

/// Resilience policy knobs for a [`RemoteWorkerPool`]: reconnect backoff,
/// per-endpoint circuit breaking and soft task deadlines.
///
/// All durations are clamped (never panicking) into `[1ms, 1h]` when the
/// pool is built; `reconnect_cap` is raised to at least `reconnect_base`.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// First reconnect backoff step after an endpoint failure.
    pub reconnect_base: Duration,
    /// Upper bound the jittered backoff saturates at.
    pub reconnect_cap: Duration,
    /// Failures inside the window (10× the cooldown) that open the
    /// circuit. A failed Half-Open probe re-opens it regardless.
    pub breaker_threshold: u32,
    /// Minimum quarantine before an Open circuit is offered a Half-Open
    /// probe (the actual wait is `max(backoff, cooldown)`).
    pub breaker_cooldown: Duration,
    /// Soft per-task deadline: an in-flight task older than this is
    /// speculatively re-executed on a second slot. `None` disables
    /// speculation entirely (the default).
    pub task_deadline: Option<Duration>,
    /// Seed for the backoff jitter, so reconnect schedules replay
    /// exactly under a fixed seed.
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            reconnect_base: Duration::from_millis(50),
            reconnect_cap: Duration::from_secs(2),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            task_deadline: None,
            seed: 0xB5E7,
        }
    }
}

impl ResilienceConfig {
    /// Clamps every knob into sane territory (see the type docs).
    fn sanitize(mut self) -> Self {
        self.reconnect_base = clamp_duration(self.reconnect_base);
        self.reconnect_cap = clamp_duration(self.reconnect_cap).max(self.reconnect_base);
        self.breaker_threshold = self.breaker_threshold.max(1);
        self.breaker_cooldown = clamp_duration(self.breaker_cooldown);
        self.task_deadline = self.task_deadline.map(clamp_duration);
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Traffic admitted (after `retry_at`, which a recent failure pushes
    /// out by the current backoff).
    Closed,
    /// Quarantined: no connect attempts until `retry_at`.
    Open,
    /// One probe connect is in flight; its outcome decides the state.
    HalfOpen,
}

/// Per-endpoint failure accounting: consecutive-failure window,
/// decorrelated-jitter backoff and the circuit state machine.
struct Breaker {
    state: BreakerState,
    /// Failures inside the window; reset only by a successful Half-Open
    /// probe or by window expiry — a *connect* success alone does not
    /// clear it, so an endpoint that accepts connects and then kills the
    /// slot (a flapper) still accumulates toward Open.
    failures: u32,
    backoff: Duration,
    retry_at: Instant,
    last_failure: Option<Instant>,
    rng: ChaosRng,
}

impl Breaker {
    fn new(cfg: &ResilienceConfig, seed: u64) -> Self {
        Self {
            state: BreakerState::Closed,
            failures: 0,
            backoff: cfg.reconnect_base,
            retry_at: Instant::now(),
            last_failure: None,
            rng: ChaosRng::new(seed),
        }
    }

    /// Records a connect failure or a slot death on this endpoint.
    fn on_failure(&mut self, cfg: &ResilienceConfig) {
        let now = Instant::now();
        let window = cfg.breaker_cooldown * 10;
        self.failures = match self.last_failure {
            Some(prev) if now.duration_since(prev) > window => 1,
            _ => self.failures.saturating_add(1),
        };
        self.last_failure = Some(now);
        // Decorrelated jitter: next = min(cap, rand[base, 3*prev)).
        let lo = cfg.reconnect_base.as_millis() as u64;
        let hi = (self.backoff.as_millis() as u64)
            .saturating_mul(3)
            .max(lo + 1);
        self.backoff = Duration::from_millis(self.rng.range_u64(lo, hi)).min(cfg.reconnect_cap);
        if self.state == BreakerState::HalfOpen || self.failures >= cfg.breaker_threshold {
            self.state = BreakerState::Open;
            self.retry_at = now + self.backoff.max(cfg.breaker_cooldown);
        } else {
            self.retry_at = now + self.backoff;
        }
    }

    /// Records a successful connect. A Half-Open probe success closes
    /// the circuit and forgets the failure history; a plain Closed-state
    /// success only resets the backoff (see `failures`).
    fn on_success(&mut self, cfg: &ResilienceConfig) {
        if self.state != BreakerState::Closed {
            self.failures = 0;
            self.last_failure = None;
        }
        self.state = BreakerState::Closed;
        self.backoff = cfg.reconnect_base;
        self.retry_at = Instant::now();
    }

    /// Whether ordinary (non-probe) traffic may try this endpoint now.
    fn admits(&self, now: Instant) -> bool {
        self.state == BreakerState::Closed && now >= self.retry_at
    }
}

/// An endpoint plus its breaker: what the pool's connect paths consult.
struct EndpointState {
    endpoint: Endpoint,
    breaker: Mutex<Breaker>,
}

/// One task recorded in a slot's in-flight map.
struct InflightEntry {
    item: Vec<u8>,
    /// When the writer shipped it — what the deadline sweep ages.
    sent_at: Instant,
}

/// A task being speculatively re-executed: every slot holding a copy,
/// which one got the latest copy, and when.
struct SpecEntry {
    holders: Vec<(u64, Weak<SlotShared>)>,
    last_retry_slot: u64,
    retried_at: Instant,
}

/// The speculation registry: the single source of truth that makes
/// "first copy home wins" race-free. `resolved` remembers speculated
/// sequence numbers that already produced an answer, so late copies are
/// dropped; only speculated tasks ever enter it, so it stays small.
#[derive(Default)]
struct SpecRegistry {
    active: HashMap<u64, SpecEntry>,
    resolved: HashSet<u64>,
}

enum PoolMsg<Out> {
    Batch(Vec<(u64, Out)>),
    Lost(u64),
    Total(u64),
}

/// Everything a remote slot's threads share. The RCU table holds `Arc`s
/// of these.
struct SlotShared {
    id: u64,
    endpoint: Endpoint,
    /// Local staging queue the emitter dispatches into; the slot's writer
    /// thread drains it onto the wire.
    queue: WorkerQueue<Vec<u8>>,
    /// Tasks sent but not yet resolved by a `Result`/`Lost` frame, keyed
    /// by sequence number. Entries are inserted by the writer *before*
    /// the bytes hit the wire and removed only by the reader (or by the
    /// speculation registry stripping a superseded copy).
    inflight: Mutex<BTreeMap<u64, InflightEntry>>,
    inflight_count: AtomicUsize,
    /// Serialises all wire writes on this connection (the cipher keystream
    /// is order-dependent, and frames must not interleave).
    writer: Mutex<FrameWriter>,
    /// Kept for `shutdown()`: severing it wakes the reader.
    stream: TcpStream,
    /// Latest daemon-reported cumulative service statistic.
    service: Mutex<Welford>,
    /// Latest daemon-reported queue depth (tasks at the daemon).
    remote_depth: AtomicUsize,
    /// Heartbeat round-trip time, milliseconds (f64 bits; 0 = none yet).
    rtt_ms_bits: AtomicU64,
    /// When the last frame (any type) arrived from this slot.
    last_seen: Mutex<Instant>,
    /// Outstanding heartbeat pings: id → send time.
    pings: Mutex<HashMap<u64, Instant>>,
    /// Cooperative retirement in progress (`remove_workers`).
    retiring: AtomicBool,
    /// The death path has run (single-shot guard).
    dead: AtomicBool,
    /// Why the failure detector severed this slot, if it did.
    suspect_reason: Mutex<Option<String>>,
}

impl SlotShared {
    /// Tasks this slot is responsible for: staged locally, on the wire,
    /// or queued at the daemon.
    fn backlog(&self) -> usize {
        self.queue.len()
            + self.inflight_count.load(Ordering::Relaxed)
            + self.remote_depth.load(Ordering::Relaxed)
    }

    fn rtt_ms(&self) -> f64 {
        f64::from_bits(self.rtt_ms_bits.load(Ordering::Relaxed))
    }

    fn touch(&self) {
        *self.last_seen.lock() = Instant::now();
    }
}

/// Membership record: the slot plus its two service threads.
struct SlotHandle {
    slot: Arc<SlotShared>,
    writer: JoinHandle<()>,
    reader: JoinHandle<()>,
}

struct PoolMetrics {
    clock: Arc<dyn Clock>,
    arrivals: AtomicRateEstimator,
    departures: AtomicRateEstimator,
    end_of_stream: AtomicBool,
    reconfiguring: AtomicBool,
    blackout_until_bits: AtomicU64,
    last_arrival_bits: AtomicU64,
    workers_lost: AtomicU64,
    /// Speculative re-executions dispatched by the deadline sweep.
    tasks_retried: AtomicU64,
    /// Speculated tasks whose *retry copy* resolved first.
    spec_wins: AtomicU64,
    /// Late answers for already-resolved speculated tasks, dropped.
    spec_dups: AtomicU64,
}

impl PoolMetrics {
    fn now(&self) -> Time {
        self.clock.now()
    }

    fn set_blackout_until(&self, t: Time) {
        self.blackout_until_bits
            .store(t.to_bits(), Ordering::SeqCst);
    }

    fn in_blackout(&self, now: Time) -> bool {
        now < f64::from_bits(self.blackout_until_bits.load(Ordering::SeqCst))
    }
}

struct PoolShared<Out> {
    name: String,
    self_ref: Weak<PoolShared<Out>>,
    metrics: PoolMetrics,
    /// The RCU-published dispatch table (same invariants as the farm's).
    table: Arc<Published<Vec<Arc<SlotShared>>>>,
    /// Membership and the reconfiguration serialisation point.
    slots: Mutex<Vec<SlotHandle>>,
    /// Cooperatively retired slots: their service statistic keeps counting
    /// and their threads are joined at shutdown.
    retired_slots: Mutex<Vec<Arc<SlotShared>>>,
    retired_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Threads of slots that died abruptly; reaped at shutdown.
    dead_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Tasks stranded while no live slot exists.
    parked: Mutex<Vec<Task<Vec<u8>>>>,
    panics: Mutex<Vec<String>>,
    events: Mutex<Vec<FarmEvent>>,
    disconnects: Mutex<Vec<String>>,
    terminating: AtomicBool,
    next_slot_id: AtomicU64,
    next_endpoint: AtomicUsize,
    next_ping: AtomicU64,
    rr_cursor: AtomicUsize,
    results_tx: Sender<PoolMsg<Out>>,
    decode: DecodeFn<Out>,
    endpoints: Vec<EndpointState>,
    workload: String,
    meter: Arc<CostMeter>,
    max_workers: u32,
    rate_window: f64,
    /// How long a connect + handshake may take before the endpoint is
    /// declared unreachable (builder-configurable, clamped non-zero).
    handshake_timeout: Duration,
    resilience: ResilienceConfig,
    spec: Mutex<SpecRegistry>,
    /// Fast-out for the frame hot path: readers consult the speculation
    /// registry only after the first task has ever been speculated, so a
    /// fault-free run never takes the `spec` lock per frame.
    spec_touched: AtomicBool,
}

impl<Out: Send + 'static> PoolShared<Out> {
    // -- connection establishment -------------------------------------

    /// Connects one slot against `endpoint` and spawns its threads.
    /// Performed *outside* the membership lock (connects can be slow).
    fn connect_slot(&self, endpoint: &Endpoint) -> Result<SlotHandle, String> {
        let id = self.next_slot_id.fetch_add(1, Ordering::Relaxed);
        let stream = TcpStream::connect(&endpoint.addr)
            .map_err(|e| format!("connect {}: {e}", endpoint.addr))?;
        stream.set_nodelay(true).ok();
        let err = |e: &dyn std::fmt::Display| format!("handshake {}: {e}", endpoint.addr);
        let mut writer = FrameWriter::new(stream.try_clone().map_err(|e| err(&e))?);
        let mut reader = FrameReader::new(stream.try_clone().map_err(|e| err(&e))?);

        // Not a secret — see crate::secure. Only varies keys per slot.
        let client_nonce = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xC11E)
            ^ id.rotate_left(48);
        writer
            .send(
                FrameType::Hello,
                0,
                &encode_hello(&Hello {
                    secure: endpoint.secure,
                    nonce: client_nonce,
                    workload: self.workload.clone(),
                }),
            )
            .map_err(|e| err(&e))?;

        // Bounded wait for the HelloAck: a short read timeout polled
        // against a deadline (next_blocking would spin past timeouts).
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .map_err(|e| err(&e))?;
        let deadline = Instant::now() + self.handshake_timeout;
        let ack = loop {
            match reader.try_next() {
                Ok(Some(f)) if f.ftype == FrameType::HelloAck => {
                    break decode_hello_ack(&f.payload)
                        .ok_or_else(|| err(&"malformed HelloAck"))?;
                }
                Ok(Some(_)) => return Err(err(&"unexpected frame before HelloAck")),
                Ok(None) => {}
                Err(e) => return Err(err(&e)),
            }
            match reader.fill_once().map_err(|e| err(&e))? {
                FillStatus::Eof => return Err(err(&"connection closed during handshake")),
                FillStatus::Bytes => {}
                FillStatus::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(err(&"timed out waiting for HelloAck"));
                    }
                }
            }
        };
        stream.set_read_timeout(None).map_err(|e| err(&e))?;
        if !ack.ok {
            return Err(format!("{} refused slot: {}", endpoint.addr, ack.error));
        }
        if endpoint.secure {
            let (c2s, s2c) = self
                .meter
                .time_handshake(|| derive_session_keys(client_nonce, ack.nonce));
            writer.secure(StreamCipher::new(c2s), Arc::clone(&self.meter));
            reader.secure(StreamCipher::new(s2c), Arc::clone(&self.meter));
        }

        let slot = Arc::new(SlotShared {
            id,
            endpoint: endpoint.clone(),
            queue: WorkerQueue::new(),
            inflight: Mutex::new(BTreeMap::new()),
            inflight_count: AtomicUsize::new(0),
            writer: Mutex::new(writer),
            stream,
            service: Mutex::new(Welford::new()),
            remote_depth: AtomicUsize::new(0),
            rtt_ms_bits: AtomicU64::new(0),
            last_seen: Mutex::new(Instant::now()),
            pings: Mutex::new(HashMap::new()),
            retiring: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            suspect_reason: Mutex::new(None),
        });

        let writer_thread = {
            let slot = Arc::clone(&slot);
            let weak = self.self_ref.clone();
            std::thread::Builder::new()
                .name(format!("{}-slot{id}-writer", self.name))
                .spawn(move || Self::writer_loop(&slot, &weak))
                .map_err(|e| format!("spawn writer: {e}"))?
        };
        let reader_thread = {
            let slot = Arc::clone(&slot);
            let weak = self.self_ref.clone();
            std::thread::Builder::new()
                .name(format!("{}-slot{id}-reader", self.name))
                .spawn(move || Self::reader_loop(reader, &slot, &weak))
                .map_err(|e| format!("spawn reader: {e}"))?
        };
        Ok(SlotHandle {
            slot,
            writer: writer_thread,
            reader: reader_thread,
        })
    }

    // -- per-slot threads ---------------------------------------------

    /// Drains the slot's staging queue onto the wire, batch by batch.
    fn writer_loop(slot: &Arc<SlotShared>, shared: &Weak<PoolShared<Out>>) {
        let mut batch: Vec<Task<Vec<u8>>> = Vec::with_capacity(WIRE_BATCH);
        while slot.queue.pop_batch(WIRE_BATCH, &mut batch) {
            // Record in-flight BEFORE writing: if the connection dies
            // mid-flush there is no window in which a task exists only as
            // wire bytes. The `dead` check sits inside the in-flight
            // critical section to close a race with the death path: the
            // death path sets `dead` before harvesting under this same
            // lock, so either we observe `dead == false` here and our
            // entries are included in the (necessarily later) harvest, or
            // we observe `dead == true` and replay the batch ourselves.
            let inserted = {
                let mut inflight = slot.inflight.lock();
                if slot.dead.load(Ordering::SeqCst) {
                    None
                } else {
                    let now = Instant::now();
                    // Count only *fresh* inserts: a recovery replay can
                    // route the same sequence number back onto this slot
                    // while a stale copy is still recorded, and counting
                    // it twice would leak `inflight_count` forever.
                    let mut fresh = 0usize;
                    for t in &batch {
                        let entry = InflightEntry {
                            item: t.item.clone(),
                            sent_at: now,
                        };
                        if inflight.insert(t.seq, entry).is_none() {
                            fresh += 1;
                        }
                    }
                    Some(fresh)
                }
            };
            let Some(fresh) = inserted else {
                // The slot died under us before these tasks were recorded
                // anywhere the harvest could see: replay them directly.
                if let Some(shared) = shared.upgrade() {
                    let slots = shared.slots.lock();
                    let tasks = std::mem::take(&mut batch);
                    shared.recover_tasks(&slots, tasks);
                }
                return;
            };
            slot.inflight_count.fetch_add(fresh, Ordering::SeqCst);
            let flushed = {
                let mut w = slot.writer.lock();
                for t in batch.drain(..) {
                    w.push(FrameType::Task, t.seq, &t.item);
                }
                w.flush()
            };
            if flushed.is_err() {
                // Dead connection: sever it so the reader (the single
                // death-path owner) wakes and runs recovery.
                let _ = slot.stream.shutdown(Shutdown::Both);
                return;
            }
        }
        // Queue closed: retirement or pool shutdown. Tell the daemon to
        // finish pending work and close — unless the slot already died
        // (a goodbye on a severed socket is just noise).
        if !slot.dead.load(Ordering::SeqCst) {
            let res = slot.writer.lock().send(FrameType::Goodbye, 0, &[]);
            if let Err(e) = res {
                if !slot.dead.load(Ordering::SeqCst) {
                    if let Some(shared) = shared.upgrade() {
                        shared.disconnects.lock().push(format!(
                            "slot {} ({}): goodbye failed: {e}",
                            slot.id, slot.endpoint.addr
                        ));
                    }
                }
            }
        }
    }

    /// Consumes the slot's result stream; on EOF/error decides between a
    /// quiet cooperative exit and the crash-recovery death path.
    fn reader_loop(
        mut reader: FrameReader,
        slot: &Arc<SlotShared>,
        shared: &Weak<PoolShared<Out>>,
    ) {
        let mut out: Vec<(u64, Out)> = Vec::new();
        let reason: String = 'conn: loop {
            // Drain every frame the decoder already holds...
            loop {
                match reader.try_next() {
                    Ok(Some(f)) => {
                        if let Some(shared) = shared.upgrade() {
                            shared.handle_slot_frame(slot, f, &mut out);
                        }
                    }
                    Ok(None) => break,
                    Err(ProtoError::Oversized { len }) => {
                        break 'conn format!("protocol violation: frame announcing {len} bytes");
                    }
                }
            }
            // ...forward the decoded batch before blocking again.
            if !out.is_empty() {
                if let Some(shared) = shared.upgrade() {
                    let now = shared.metrics.now();
                    shared.metrics.departures.record_n(now, out.len() as u64);
                    let _ = shared
                        .results_tx
                        .send(PoolMsg::Batch(std::mem::take(&mut out)));
                } else {
                    out.clear();
                }
            }
            match reader.fill_once() {
                Ok(FillStatus::Bytes) | Ok(FillStatus::WouldBlock) => {}
                Ok(FillStatus::Eof) => break 'conn "connection closed".to_owned(),
                Err(e) => break 'conn format!("read error: {e}"),
            }
        };

        let Some(shared) = shared.upgrade() else {
            return;
        };
        let reason = slot.suspect_reason.lock().take().unwrap_or(reason);
        if shared.terminating.load(Ordering::SeqCst) {
            return; // pool shutdown: the stream already completed.
        }
        let unresolved = slot.inflight_count.load(Ordering::SeqCst) > 0 || !slot.queue.is_empty();
        if slot.retiring.load(Ordering::SeqCst) && !unresolved {
            return; // clean cooperative retirement.
        }
        // Abrupt death (or a retiring daemon that crashed with work still
        // unresolved): recover everything this slot held.
        shared.on_slot_death(slot, &reason);
    }

    /// Applies one received frame to the slot / the result stream.
    fn handle_slot_frame(
        &self,
        slot: &Arc<SlotShared>,
        f: crate::proto::Frame,
        out: &mut Vec<(u64, Out)>,
    ) {
        slot.touch();
        match f.ftype {
            FrameType::Result => {
                // `remove` guards against duplicates by construction: a
                // result for an already-harvested (recovered) task is
                // dropped rather than delivered twice.
                let claimed = slot.inflight.lock().remove(&f.seq).is_some();
                if claimed {
                    slot.inflight_count.fetch_sub(1, Ordering::SeqCst);
                }
                if self.resolve_answer(slot, f.seq, claimed) {
                    out.push((f.seq, (self.decode)(&f.payload)));
                }
            }
            FrameType::Lost => {
                // The remote worker panicked on this task: poisoned, no
                // result will ever exist. Propagate the hole.
                let claimed = slot.inflight.lock().remove(&f.seq).is_some();
                if claimed {
                    slot.inflight_count.fetch_sub(1, Ordering::SeqCst);
                }
                if self.resolve_answer(slot, f.seq, claimed) {
                    let _ = self.results_tx.send(PoolMsg::Lost(f.seq));
                    let now = self.metrics.now();
                    self.metrics.departures.record_n(now, 1);
                    let msg = format!(
                        "remote worker panicked on task {} (slot {}, {})",
                        f.seq, slot.id, slot.endpoint.addr
                    );
                    self.events.lock().push(FarmEvent {
                        at: now,
                        kind: FarmEventKind::WorkerPanic,
                        detail: msg.clone(),
                    });
                    self.panics.lock().push(msg);
                }
            }
            FrameType::Sensors => {
                if let Some(blob) = decode_sensors(&f.payload) {
                    *slot.service.lock() = blob.service;
                    slot.remote_depth
                        .store(blob.queue_depth as usize, Ordering::Relaxed);
                }
            }
            FrameType::HeartbeatAck => {
                if let Some(blob) = decode_sensors(&f.payload) {
                    *slot.service.lock() = blob.service;
                    slot.remote_depth
                        .store(blob.queue_depth as usize, Ordering::Relaxed);
                }
                if let Some(sent) = slot.pings.lock().remove(&f.seq) {
                    let rtt_ms = sent.elapsed().as_secs_f64() * 1e3;
                    slot.rtt_ms_bits.store(rtt_ms.to_bits(), Ordering::Relaxed);
                }
            }
            // Goodbye: the daemon acknowledged retirement; EOF follows.
            // Handshake/task frames are never valid daemon→pool.
            _ => {}
        }
    }

    /// Decides whether an answer (Result or Lost) for `seq` may be
    /// forwarded. Without speculation this is just `claimed`; once the
    /// registry has been touched, the first answer for a speculated task
    /// wins — it strips every other copy's in-flight entry (so a later
    /// death harvest cannot replay the task) and marks the sequence
    /// resolved so late copies are dropped, never double-delivered.
    fn resolve_answer(&self, slot: &Arc<SlotShared>, seq: u64, claimed: bool) -> bool {
        if !self.spec_touched.load(Ordering::SeqCst) {
            return claimed;
        }
        let mut spec = self.spec.lock();
        if let Some(entry) = spec.active.remove(&seq) {
            spec.resolved.insert(seq);
            if claimed && slot.id == entry.last_retry_slot {
                self.metrics.spec_wins.fetch_add(1, Ordering::SeqCst);
            }
            for (holder_id, holder) in entry.holders {
                if holder_id == slot.id {
                    continue;
                }
                if let Some(h) = holder.upgrade() {
                    if h.inflight.lock().remove(&seq).is_some() {
                        h.inflight_count.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            true
        } else if spec.resolved.contains(&seq) {
            if claimed {
                self.metrics.spec_dups.fetch_add(1, Ordering::SeqCst);
            }
            false
        } else {
            claimed
        }
    }

    // -- failure detection --------------------------------------------

    /// One detector sweep: sever deadline-breaching slots, ping the rest.
    fn detector_sweep(&self, timeout: Duration) {
        let table = self.table.load();
        for slot in table.iter() {
            if slot.dead.load(Ordering::SeqCst) || slot.retiring.load(Ordering::SeqCst) {
                continue;
            }
            let silent_for = slot.last_seen.lock().elapsed();
            if silent_for > timeout {
                *slot.suspect_reason.lock() = Some(format!(
                    "heartbeat deadline missed: silent for {silent_for:?} (timeout {timeout:?})"
                ));
                // Severing the socket wakes the reader, which owns the
                // death path — a single recovery code path for every way
                // a slot can die.
                let _ = slot.stream.shutdown(Shutdown::Both);
                continue;
            }
            let ping = self.next_ping.fetch_add(1, Ordering::Relaxed);
            slot.pings.lock().insert(ping, Instant::now());
            // A send failure means a dying connection; the reader notices.
            let _ = slot.writer.lock().send(FrameType::Heartbeat, ping, &[]);
        }
    }

    // -- task deadlines & speculative re-execution --------------------

    /// One deadline sweep: re-executes overdue in-flight tasks on a
    /// second slot. Needs at least two live slots (speculating back onto
    /// the only slot that already holds the task is pointless), and is a
    /// no-op unless a [`ResilienceConfig::task_deadline`] is configured.
    fn deadline_sweep(&self) {
        let Some(deadline) = self.resilience.task_deadline else {
            return;
        };
        let table = self.table.load();
        if table.len() < 2 {
            return;
        }
        for slot in table.iter() {
            if slot.dead.load(Ordering::SeqCst) || slot.retiring.load(Ordering::SeqCst) {
                continue;
            }
            // Snapshot the overdue entries; the real decision is re-made
            // under the spec lock in `speculate`.
            let overdue: Vec<(u64, Vec<u8>)> = {
                let inflight = slot.inflight.lock();
                inflight
                    .iter()
                    .filter(|(_, e)| e.sent_at.elapsed() > deadline)
                    .take(SPEC_SWEEP_LIMIT)
                    .map(|(seq, e)| (*seq, e.item.clone()))
                    .collect()
            };
            for (seq, item) in overdue {
                self.speculate(slot, seq, item, &table, deadline);
            }
        }
    }

    /// Dispatches one speculative copy of `seq` (held by `source`) onto
    /// the least-loaded live slot that does not already hold a copy.
    /// Runs entirely under the spec lock, which is what makes the push
    /// and the registration atomic with respect to `resolve_answer`.
    fn speculate(
        &self,
        source: &Arc<SlotShared>,
        seq: u64,
        item: Vec<u8>,
        table: &[Arc<SlotShared>],
        deadline: Duration,
    ) {
        use std::collections::hash_map::Entry;
        let mut spec = self.spec.lock();
        // Flip the hot-path gate *before* the copy can produce an
        // answer: any reader claiming this task afterwards must consult
        // the registry (it will block on the lock we hold).
        self.spec_touched.store(true, Ordering::SeqCst);
        // Re-check under the lock: the reader may have claimed the task
        // since the sweep's snapshot, or an earlier copy may have won.
        if spec.resolved.contains(&seq) || !source.inflight.lock().contains_key(&seq) {
            return;
        }
        let holders: Vec<u64> = match spec.active.get(&seq) {
            // Already speculated recently: give the copy its own
            // deadline before adding yet another.
            Some(e) if e.retried_at.elapsed() <= deadline => return,
            Some(e) => e.holders.iter().map(|(id, _)| *id).collect(),
            None => vec![source.id],
        };
        let target = table
            .iter()
            .filter(|s| !s.dead.load(Ordering::SeqCst) && !s.retiring.load(Ordering::SeqCst))
            .filter(|s| !holders.contains(&s.id))
            .min_by_key(|s| s.backlog());
        let Some(target) = target else {
            return; // every live slot already holds a copy
        };
        let mut one = vec![Task { seq, item }];
        if !target.queue.push_batch(&mut one) {
            return; // target raced into its death path; next sweep retries
        }
        match spec.active.entry(seq) {
            Entry::Occupied(mut o) => {
                let e = o.get_mut();
                e.holders.push((target.id, Arc::downgrade(target)));
                e.last_retry_slot = target.id;
                e.retried_at = Instant::now();
            }
            Entry::Vacant(v) => {
                v.insert(SpecEntry {
                    holders: vec![
                        (source.id, Arc::downgrade(source)),
                        (target.id, Arc::downgrade(target)),
                    ],
                    last_retry_slot: target.id,
                    retried_at: Instant::now(),
                });
            }
        }
        self.metrics.tasks_retried.fetch_add(1, Ordering::SeqCst);
    }

    // -- death & recovery ---------------------------------------------

    /// The single death path: deregisters a crashed slot and replays
    /// every task it held (staged backlog + in-flight map) onto the
    /// survivors. Runs on the dying slot's own reader thread, *after* the
    /// read loop exited — so no harvested task can also be resolved.
    fn on_slot_death(&self, slot: &Arc<SlotShared>, reason: &str) {
        if slot.dead.swap(true, Ordering::SeqCst) {
            return;
        }
        let now = self.metrics.now();
        let mut slots = self.slots.lock();
        let mut leftover: Vec<Task<Vec<u8>>> = Vec::new();
        if let Some(pos) = slots.iter().position(|h| h.slot.id == slot.id) {
            let victim = slots.remove(pos);
            // Publish the shrunken table BEFORE closing the dead queue —
            // the farm's loss-freedom invariant, verbatim.
            self.publish_table(&slots);
            self.dead_threads.lock().push(victim.writer);
            self.dead_threads.lock().push(victim.reader);
        }
        // In-flight first (oldest sequence numbers), then staged backlog.
        let harvested: Vec<Task<Vec<u8>>> = {
            let mut inflight = slot.inflight.lock();
            let drained = std::mem::take(&mut *inflight);
            drained
                .into_iter()
                .map(|(seq, e)| Task { seq, item: e.item })
                .collect()
        };
        slot.inflight_count.store(0, Ordering::SeqCst);
        leftover.extend(harvested);
        leftover.extend(slot.queue.close());
        let replayed = leftover.len();
        // The slot's completed work keeps counting toward the service
        // statistic.
        self.retired_slots.lock().push(Arc::clone(slot));
        // A slot death is an endpoint failure: a daemon that accepts
        // connects and then drops them (a flapper) must still open its
        // circuit, not just fail the occasional connect.
        self.record_endpoint_failure(&slot.endpoint);
        self.metrics.workers_lost.fetch_add(1, Ordering::SeqCst);
        self.events.lock().push(FarmEvent {
            at: now,
            kind: FarmEventKind::WorkerLost,
            detail: format!(
                "remote slot {} ({}) lost: {reason}; {replayed} tasks replayed",
                slot.id, slot.endpoint.addr
            ),
        });
        self.recover_tasks(&slots, leftover);
        drop(slots);
    }

    /// Re-dispatches recovered tasks round-robin onto the survivors, or
    /// parks them when no live slot exists. Caller holds the membership
    /// lock.
    fn recover_tasks(&self, survivors: &[SlotHandle], tasks: Vec<Task<Vec<u8>>>) {
        if tasks.is_empty() {
            return;
        }
        if survivors.is_empty() {
            if !self.terminating.load(Ordering::SeqCst) {
                self.parked.lock().extend(tasks);
            }
            return;
        }
        for (i, task) in tasks.into_iter().enumerate() {
            let target = &survivors[i % survivors.len()];
            let mut one = vec![task];
            let accepted = target.slot.queue.push_batch(&mut one);
            debug_assert!(accepted, "survivor queues are open under the lock");
        }
    }

    // -- reconfiguration (the FarmControl actuators) ------------------

    fn publish_table(&self, slots: &[SlotHandle]) {
        self.table
            .publish(slots.iter().map(|h| Arc::clone(&h.slot)).collect());
    }

    /// Records a connect failure or slot death against the endpoint's
    /// breaker.
    fn record_endpoint_failure(&self, endpoint: &Endpoint) {
        if let Some(es) = self.endpoints.iter().find(|es| es.endpoint == *endpoint) {
            es.breaker.lock().on_failure(&self.resilience);
        }
    }

    /// Number of endpoints currently quarantined (breaker Open).
    fn open_circuits(&self) -> u32 {
        self.endpoints
            .iter()
            .filter(|es| es.breaker.lock().state == BreakerState::Open)
            .count() as u32
    }

    /// Picks the next endpoint a connect attempt should target, or
    /// `None` when every endpoint is quarantined.
    ///
    /// A *due* Open circuit gets its Half-Open probe first (recovering a
    /// quarantined endpoint beats spreading load; the probe transition
    /// happens under the breaker lock, so only one caller wins it). Then
    /// ordinary round-robin over endpoints whose breakers admit traffic.
    /// If nothing admits but some breaker is still Closed (merely backing
    /// off), the one closest to its retry time is used anyway:
    /// availability beats backoff purity when there is no alternative.
    /// Open circuits before their cooldown are never returned.
    fn pick_endpoint(&self) -> Option<usize> {
        let now = Instant::now();
        for (i, es) in self.endpoints.iter().enumerate() {
            let mut b = es.breaker.lock();
            if b.state == BreakerState::Open && now >= b.retry_at {
                b.state = BreakerState::HalfOpen;
                return Some(i);
            }
        }
        let n = self.endpoints.len();
        for _ in 0..n {
            let i = self.next_endpoint.fetch_add(1, Ordering::Relaxed) % n;
            if self.endpoints[i].breaker.lock().admits(now) {
                return Some(i);
            }
        }
        let mut best: Option<(usize, Instant)> = None;
        for (i, es) in self.endpoints.iter().enumerate() {
            let b = es.breaker.lock();
            if b.state == BreakerState::Closed && best.map_or(true, |(_, t)| b.retry_at < t) {
                best = Some((i, b.retry_at));
            }
        }
        best.map(|(i, _)| i)
    }

    fn add_workers_impl(&self, n: u32) -> Result<u32, String> {
        let current = self.slots.lock().len() as u32;
        if current + n > self.max_workers {
            return Err(format!(
                "worker limit reached ({current}+{n} > {})",
                self.max_workers
            ));
        }
        self.metrics.reconfiguring.store(true, Ordering::SeqCst);
        // Connect outside the membership lock: a slow or dead endpoint
        // must not stall sensing or the death path. The breaker decides
        // which endpoints may be attempted at all, which is what bounds
        // the connect traffic a flapping endpoint sees while Open.
        let mut connected: Vec<SlotHandle> = Vec::new();
        let mut last_err = String::new();
        let mut attempts = 0;
        while connected.len() < n as usize && attempts < n as usize * self.endpoints.len() {
            let Some(i) = self.pick_endpoint() else {
                break; // every endpoint quarantined, no probe due
            };
            attempts += 1;
            let es = &self.endpoints[i];
            match self.connect_slot(&es.endpoint) {
                Ok(h) => {
                    es.breaker.lock().on_success(&self.resilience);
                    connected.push(h);
                }
                Err(e) => {
                    es.breaker.lock().on_failure(&self.resilience);
                    last_err = e;
                }
            }
        }
        let added = connected.len() as u32;
        if added == 0 {
            self.metrics.reconfiguring.store(false, Ordering::SeqCst);
            if last_err.is_empty() {
                return Err(format!(
                    "no endpoint accepted a slot: {} circuit(s) open (quarantined), no probe due",
                    self.open_circuits()
                ));
            }
            return Err(format!("no endpoint accepted a slot: {last_err}"));
        }
        let mut slots = self.slots.lock();
        slots.extend(connected);
        self.publish_table(&slots);
        // Tasks stranded by a total-failure episode resume here.
        let parked: Vec<Task<Vec<u8>>> = std::mem::take(&mut *self.parked.lock());
        self.recover_tasks(&slots, parked);
        drop(slots);
        let now = self.metrics.now();
        self.metrics.departures.reset(now);
        self.metrics.set_blackout_until(now + self.rate_window);
        self.metrics.reconfiguring.store(false, Ordering::SeqCst);
        Ok(added)
    }

    fn remove_workers_impl(&self, n: u32) -> Result<u32, String> {
        let mut slots = self.slots.lock();
        if slots.len() as u32 <= n {
            return Err(format!(
                "cannot remove {n} of {} workers (at least one must remain)",
                slots.len()
            ));
        }
        let victims: Vec<SlotHandle> = {
            let keep = slots.len() - n as usize;
            slots.split_off(keep)
        };
        // Publish-before-close, as everywhere.
        self.publish_table(&slots);
        let mut removed = 0;
        for victim in victims {
            victim.slot.retiring.store(true, Ordering::SeqCst);
            // Staged tasks move to survivors; in-flight tasks finish at
            // the daemon and flow back through the still-running reader.
            let mut stolen = victim.slot.queue.close();
            for (i, task) in stolen.drain(..).enumerate() {
                let target = &slots[i % slots.len()];
                let mut one = vec![task];
                let accepted = target.slot.queue.push_batch(&mut one);
                debug_assert!(accepted, "survivor queues are open under the lock");
            }
            self.retired_slots.lock().push(Arc::clone(&victim.slot));
            let mut retired = self.retired_threads.lock();
            retired.push(victim.writer);
            retired.push(victim.reader);
            removed += 1;
        }
        drop(slots);
        let now = self.metrics.now();
        self.metrics.departures.reset(now);
        self.metrics.set_blackout_until(now + self.rate_window);
        Ok(removed)
    }

    fn rebalance_impl(&self) -> bool {
        let slots = self.slots.lock();
        if slots.len() < 2 {
            return false;
        }
        // Only the *local* staging queues can be rebalanced; what is on
        // the wire or at a daemon is committed.
        let lens: Vec<usize> = slots.iter().map(|h| h.slot.queue.len()).collect();
        let max = *lens.iter().max().expect("non-empty");
        let min = *lens.iter().min().expect("non-empty");
        if max - min <= 1 {
            return false;
        }
        let mut all: Vec<Task<Vec<u8>>> = Vec::new();
        for h in slots.iter() {
            all.extend(h.slot.queue.drain_open());
        }
        let moved = !all.is_empty();
        let mut per: Vec<Vec<Task<Vec<u8>>>> = slots.iter().map(|_| Vec::new()).collect();
        for (i, task) in all.into_iter().enumerate() {
            per[i % slots.len()].push(task);
        }
        for (h, mut chunk) in slots.iter().zip(per) {
            let accepted = h.slot.queue.push_batch(&mut chunk);
            debug_assert!(accepted, "open under the membership lock");
        }
        moved
    }

    /// Fault injection: severs `n` slots' sockets. Recovery is
    /// asynchronous (each reader runs the death path when it wakes), so
    /// callers observe the loss through `workers_lost`, like an external
    /// daemon crash.
    fn kill_workers_impl(&self, n: u32) -> Result<u32, String> {
        let victims: Vec<Arc<SlotShared>> = {
            let slots = self.slots.lock();
            let live: Vec<&SlotHandle> = slots
                .iter()
                .filter(|h| !h.slot.dead.load(Ordering::SeqCst))
                .collect();
            if (live.len() as u32) < n {
                return Err(format!("cannot kill {n} of {} slots", live.len()));
            }
            live[live.len() - n as usize..]
                .iter()
                .map(|h| Arc::clone(&h.slot))
                .collect()
        };
        for slot in victims {
            *slot.suspect_reason.lock() = Some("connection severed (fault injection)".into());
            let _ = slot.stream.shutdown(Shutdown::Both);
        }
        Ok(n)
    }

    fn sense_impl(&self, now: Time) -> SensorSnapshot {
        let table = self.table.load();
        let backlogs: Vec<u64> = table.iter().map(|s| s.backlog() as u64).collect();
        let mut snap = SensorSnapshot::empty(now);
        snap.arrival_rate = self.metrics.arrivals.rate(now);
        snap.departure_rate = self.metrics.departures.rate(now);
        snap.num_workers = table.len() as u32;
        snap.remote_workers = table.len() as u32;
        snap.queue_variance = queue_variance(&backlogs);
        snap.queued_tasks = backlogs.iter().sum();
        let mut service = Welford::new();
        let mut rtt_sum = 0.0;
        let mut rtt_n = 0u32;
        for slot in table.iter() {
            service.merge(&slot.service.lock());
            let rtt = slot.rtt_ms();
            if rtt > 0.0 {
                rtt_sum += rtt;
                rtt_n += 1;
            }
        }
        for slot in self.retired_slots.lock().iter() {
            service.merge(&slot.service.lock());
        }
        snap.service_time = service.mean();
        if rtt_n > 0 {
            snap.net_rtt_ms = rtt_sum / f64::from(rtt_n);
        }
        snap.end_of_stream = self.metrics.end_of_stream.load(Ordering::SeqCst);
        snap.workers_lost = self.metrics.workers_lost.load(Ordering::SeqCst);
        let mut open = 0u32;
        let mut backoff_ms = 0.0f64;
        for es in &self.endpoints {
            let b = es.breaker.lock();
            if b.state == BreakerState::Open {
                open += 1;
            }
            // Report the worst backoff among endpoints with a live
            // failure history — endpoints at rest contribute nothing.
            if b.failures > 0 {
                backoff_ms = backoff_ms.max(b.backoff.as_secs_f64() * 1e3);
            }
        }
        snap.circuit_open_count = open;
        snap.reconnect_backoff_ms = backoff_ms;
        snap.tasks_retried = self.metrics.tasks_retried.load(Ordering::SeqCst);
        snap.speculative_wins = self.metrics.spec_wins.load(Ordering::SeqCst);
        snap.reconfiguring =
            self.metrics.reconfiguring.load(Ordering::SeqCst) || self.metrics.in_blackout(now);
        let bits = self.metrics.last_arrival_bits.load(Ordering::Relaxed);
        if bits != 0 {
            snap.idle_for = (now - f64::from_bits(bits)).max(0.0);
        }
        snap
    }

    // -- dispatch (the emitter's task path; the farm's logic verbatim) --

    fn dispatch(
        &self,
        reader: &mut ReadHandle<Vec<Arc<SlotShared>>>,
        sched: SchedPolicy,
        items: &mut Vec<Task<Vec<u8>>>,
    ) {
        while !items.is_empty() {
            let generation = self.table.generation();
            let table = Arc::clone(reader.get());
            if table.is_empty() {
                if self.terminating.load(Ordering::SeqCst) {
                    items.clear();
                    return;
                }
                self.parked.lock().append(items);
                if self.table.generation() == generation {
                    return;
                }
                items.append(&mut self.parked.lock());
                continue;
            }
            let n = table.len();
            let mut per: Vec<Vec<Task<Vec<u8>>>> = (0..n).map(|_| Vec::new()).collect();
            match sched {
                SchedPolicy::RoundRobin => {
                    for task in items.drain(..) {
                        let i = self.rr_cursor.fetch_add(1, Ordering::Relaxed) % n;
                        per[i].push(task);
                    }
                }
                SchedPolicy::ShortestQueue => {
                    let mut lens: Vec<usize> = table.iter().map(|s| s.backlog()).collect();
                    for task in items.drain(..) {
                        let i = (0..n).min_by_key(|&i| lens[i]).expect("non-empty");
                        lens[i] += 1;
                        per[i].push(task);
                    }
                }
            }
            for (i, chunk) in per.iter_mut().enumerate() {
                if !table[i].queue.push_batch(chunk) {
                    items.append(chunk);
                }
            }
            if items.is_empty() {
                return;
            }
            if self.table.generation() == generation {
                items.clear();
                return;
            }
        }
    }
}

impl<Out: Send + 'static> FarmControl for PoolShared<Out> {
    fn sense(&self, now: Time) -> SensorSnapshot {
        self.sense_impl(now)
    }

    fn add_workers(&self, n: u32) -> Result<u32, String> {
        self.add_workers_impl(n)
    }

    fn remove_workers(&self, n: u32) -> Result<u32, String> {
        self.remove_workers_impl(n)
    }

    fn rebalance(&self) -> bool {
        self.rebalance_impl()
    }

    fn num_workers(&self) -> usize {
        self.table.load().len()
    }

    fn kill_workers(&self, n: u32) -> Result<u32, String> {
        self.kill_workers_impl(n)
    }

    fn workers_lost(&self) -> u64 {
        self.metrics.workers_lost.load(Ordering::SeqCst)
    }

    fn events(&self) -> Vec<FarmEvent> {
        self.events.lock().clone()
    }
}

/// Builder for a [`RemoteWorkerPool`].
pub struct RemotePoolBuilder<In, Out> {
    name: String,
    endpoints: Vec<Endpoint>,
    workload: String,
    encode: EncodeFn<In>,
    decode: DecodeFn<Out>,
    initial_workers: u32,
    max_workers: u32,
    sched: SchedPolicy,
    gather: GatherPolicy,
    clock: Arc<dyn Clock>,
    rate_window: f64,
    heartbeat_period: Duration,
    failure_timeout: Duration,
    handshake_timeout: Duration,
    resilience: ResilienceConfig,
}

impl<In: Send + 'static, Out: Send + 'static> RemotePoolBuilder<In, Out> {
    /// A builder over the daemon workload name and the item codecs.
    pub fn new(
        workload: impl Into<String>,
        encode: impl Fn(In) -> Vec<u8> + Send + Sync + 'static,
        decode: impl Fn(&[u8]) -> Out + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: "rfarm".into(),
            endpoints: Vec::new(),
            workload: workload.into(),
            encode: Arc::new(encode),
            decode: Arc::new(decode),
            initial_workers: 1,
            max_workers: 64,
            sched: SchedPolicy::default(),
            gather: GatherPolicy::default(),
            clock: Arc::new(RealClock::new()),
            rate_window: 2.0,
            heartbeat_period: Duration::from_millis(50),
            failure_timeout: Duration::from_millis(500),
            handshake_timeout: Duration::from_secs(5),
            resilience: ResilienceConfig::default(),
        }
    }

    /// Adds a daemon endpoint the pool may open slots against. Slots are
    /// placed round-robin over all registered endpoints.
    pub fn endpoint(mut self, e: Endpoint) -> Self {
        self.endpoints.push(e);
        self
    }

    /// Pool name (thread names, diagnostics).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Initial number of remote slots (≥ 1).
    pub fn initial_workers(mut self, n: u32) -> Self {
        self.initial_workers = n.max(1);
        self
    }

    /// Maximum number of remote slots.
    pub fn max_workers(mut self, n: u32) -> Self {
        self.max_workers = n.max(1);
        self
    }

    /// Emitter scheduling policy.
    pub fn sched(mut self, p: SchedPolicy) -> Self {
        self.sched = p;
        self
    }

    /// Collector gathering policy.
    pub fn gather(mut self, p: GatherPolicy) -> Self {
        self.gather = p;
        self
    }

    /// Time source for metrics.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Window length of the rate estimators, seconds.
    pub fn rate_window(mut self, secs: f64) -> Self {
        self.rate_window = secs;
        self
    }

    /// Heartbeat send period. The failure timeout should be several
    /// periods; the daemon's busy pulse answers even mid-task, so the
    /// timeout need *not* exceed one task's service time.
    pub fn heartbeat_period(mut self, d: Duration) -> Self {
        self.heartbeat_period = d;
        self
    }

    /// Silence deadline after which a slot is declared dead.
    pub fn failure_timeout(mut self, d: Duration) -> Self {
        self.failure_timeout = d;
        self
    }

    /// How long a connect + handshake may take before the endpoint is
    /// declared unreachable. Clamped (not panicking) into `[1ms, 1h]` at
    /// build time, like every other duration knob.
    pub fn handshake_timeout(mut self, d: Duration) -> Self {
        self.handshake_timeout = d;
        self
    }

    /// Replaces the whole resilience policy (backoff, breaker, deadline).
    pub fn resilience(mut self, cfg: ResilienceConfig) -> Self {
        self.resilience = cfg;
        self
    }

    /// Reconnect backoff bounds: first step and saturation cap for the
    /// decorrelated-jitter schedule.
    pub fn reconnect_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.resilience.reconnect_base = base;
        self.resilience.reconnect_cap = cap;
        self
    }

    /// Endpoint failures (within the failure window) that open the
    /// circuit.
    pub fn breaker_threshold(mut self, n: u32) -> Self {
        self.resilience.breaker_threshold = n;
        self
    }

    /// Minimum quarantine an Open circuit serves before a Half-Open
    /// probe is due.
    pub fn breaker_cooldown(mut self, d: Duration) -> Self {
        self.resilience.breaker_cooldown = d;
        self
    }

    /// Soft per-task deadline enabling speculative re-execution of
    /// overdue in-flight tasks.
    pub fn task_deadline(mut self, d: Duration) -> Self {
        self.resilience.task_deadline = Some(d);
        self
    }

    /// Seed for the reconnect-jitter RNG (deterministic replay).
    pub fn resilience_seed(mut self, seed: u64) -> Self {
        self.resilience.seed = seed;
        self
    }

    /// Connects the initial slots and starts the pool.
    ///
    /// Fails if no endpoint was registered or fewer than the requested
    /// initial slots could be connected.
    pub fn build(self) -> Result<RemoteWorkerPool<In, Out>, String> {
        if self.endpoints.is_empty() {
            return Err("no endpoints registered".into());
        }
        let resilience = self.resilience.sanitize();
        let heartbeat_period = clamp_duration(self.heartbeat_period);
        let failure_timeout = clamp_duration(self.failure_timeout);
        let handshake_timeout = clamp_duration(self.handshake_timeout);
        // One jitter stream per endpoint, derived from the policy seed,
        // so a fixed seed replays the whole reconnect schedule.
        let endpoint_states: Vec<EndpointState> = self
            .endpoints
            .iter()
            .enumerate()
            .map(|(i, e)| EndpointState {
                endpoint: e.clone(),
                breaker: Mutex::new(Breaker::new(
                    &resilience,
                    resilience
                        .seed
                        .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                )),
            })
            .collect();
        let (input_tx, input_rx) = unbounded::<StreamMsg<In>>();
        let (results_tx, results_rx) = unbounded::<PoolMsg<Out>>();
        let (output_tx, output_rx) = unbounded::<StreamMsg<Out>>();

        let shared = Arc::new_cyclic(|self_ref| PoolShared {
            name: self.name.clone(),
            self_ref: self_ref.clone(),
            metrics: PoolMetrics {
                clock: Arc::clone(&self.clock),
                arrivals: AtomicRateEstimator::new(self.rate_window),
                departures: AtomicRateEstimator::new(self.rate_window),
                end_of_stream: AtomicBool::new(false),
                reconfiguring: AtomicBool::new(false),
                blackout_until_bits: AtomicU64::new(0),
                last_arrival_bits: AtomicU64::new(0),
                workers_lost: AtomicU64::new(0),
                tasks_retried: AtomicU64::new(0),
                spec_wins: AtomicU64::new(0),
                spec_dups: AtomicU64::new(0),
            },
            table: Arc::new(Published::new(Vec::new())),
            slots: Mutex::new(Vec::new()),
            retired_slots: Mutex::new(Vec::new()),
            retired_threads: Mutex::new(Vec::new()),
            dead_threads: Mutex::new(Vec::new()),
            parked: Mutex::new(Vec::new()),
            panics: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            disconnects: Mutex::new(Vec::new()),
            terminating: AtomicBool::new(false),
            next_slot_id: AtomicU64::new(0),
            next_endpoint: AtomicUsize::new(0),
            next_ping: AtomicU64::new(0),
            rr_cursor: AtomicUsize::new(0),
            results_tx: results_tx.clone(),
            decode: Arc::clone(&self.decode),
            endpoints: endpoint_states,
            workload: self.workload.clone(),
            meter: Arc::new(CostMeter::new()),
            max_workers: self.max_workers,
            rate_window: self.rate_window,
            handshake_timeout,
            resilience,
            spec: Mutex::new(SpecRegistry::default()),
            spec_touched: AtomicBool::new(false),
        });

        {
            // Initial slots: all-or-nothing so a misconfigured endpoint
            // fails loudly at build time (no breaker second-guessing —
            // the caller asked for exactly this capacity).
            let mut handles = Vec::new();
            for i in 0..self.initial_workers {
                let idx = i as usize % shared.endpoints.len();
                let es = &shared.endpoints[idx];
                handles.push(shared.connect_slot(&es.endpoint)?);
                es.breaker.lock().on_success(&shared.resilience);
            }
            let mut slots = shared.slots.lock();
            *slots = handles;
            shared.publish_table(&slots);
        }

        // Emitter: encode + batch + RCU dispatch (the farm's loop with an
        // encode step fused in).
        let emitter = {
            let shared = Arc::clone(&shared);
            let encode = Arc::clone(&self.encode);
            let sched = self.sched;
            std::thread::Builder::new()
                .name(format!("{}-emitter", self.name))
                .spawn(move || {
                    let mut reader = ReadHandle::new(Arc::clone(&shared.table));
                    let mut dispatched = 0u64;
                    let mut batch: Vec<Task<Vec<u8>>> = Vec::with_capacity(DISPATCH_BATCH);
                    'stream: loop {
                        let mut end = false;
                        match input_rx.recv() {
                            Ok(StreamMsg::Item { seq, payload }) => batch.push(Task {
                                seq,
                                item: encode(payload),
                            }),
                            Ok(StreamMsg::End) => end = true,
                            Err(_) => break 'stream,
                        }
                        while !end && batch.len() < DISPATCH_BATCH {
                            match input_rx.try_recv() {
                                Ok(StreamMsg::Item { seq, payload }) => batch.push(Task {
                                    seq,
                                    item: encode(payload),
                                }),
                                Ok(StreamMsg::End) => end = true,
                                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                            }
                        }
                        if !batch.is_empty() {
                            let now = shared.metrics.now();
                            shared.metrics.arrivals.record_n(now, batch.len() as u64);
                            shared
                                .metrics
                                .last_arrival_bits
                                .store(now.to_bits(), Ordering::Relaxed);
                            dispatched += batch.len() as u64;
                            shared.dispatch(&mut reader, sched, &mut batch);
                        }
                        if end {
                            shared.metrics.end_of_stream.store(true, Ordering::SeqCst);
                            let _ = shared.results_tx.send(PoolMsg::Total(dispatched));
                            break 'stream;
                        }
                    }
                })
                .map_err(|e| format!("spawn emitter: {e}"))?
        };

        // Collector: identical convergence protocol to the farm's.
        let collector = {
            let gather = self.gather;
            std::thread::Builder::new()
                .name(format!("{}-collector", self.name))
                .spawn(move || {
                    let mut reorder = ReorderBuffer::new();
                    let mut done = 0u64;
                    let mut emitted = 0u64;
                    let mut expected: Option<u64> = None;
                    for msg in results_rx.iter() {
                        match msg {
                            PoolMsg::Batch(results) => {
                                done += results.len() as u64;
                                for (seq, out) in results {
                                    match gather {
                                        GatherPolicy::Unordered => {
                                            let _ = output_tx.send(StreamMsg::item(seq, out));
                                        }
                                        GatherPolicy::Ordered => {
                                            for item in reorder.push(seq, out) {
                                                let _ =
                                                    output_tx.send(StreamMsg::item(emitted, item));
                                                emitted += 1;
                                            }
                                        }
                                    }
                                }
                            }
                            PoolMsg::Lost(seq) => {
                                done += 1;
                                if gather == GatherPolicy::Ordered {
                                    for item in reorder.skip(seq) {
                                        let _ = output_tx.send(StreamMsg::item(emitted, item));
                                        emitted += 1;
                                    }
                                }
                            }
                            PoolMsg::Total(n) => expected = Some(n),
                        }
                        if expected == Some(done) {
                            let _ = output_tx.send(StreamMsg::End);
                            break;
                        }
                    }
                })
                .map_err(|e| format!("spawn collector: {e}"))?
        };

        // Failure detector: heartbeat + failure deadline + task deadline.
        let detector = {
            let shared = Arc::clone(&shared);
            let period = heartbeat_period;
            let timeout = failure_timeout;
            std::thread::Builder::new()
                .name(format!("{}-detector", self.name))
                .spawn(move || {
                    while !shared.terminating.load(Ordering::SeqCst) {
                        shared.detector_sweep(timeout);
                        shared.deadline_sweep();
                        std::thread::sleep(period);
                    }
                })
                .map_err(|e| format!("spawn detector: {e}"))?
        };

        Ok(RemoteWorkerPool {
            input: input_tx,
            output: output_rx,
            shared,
            emitter: Some(emitter),
            collector: Some(collector),
            detector: Some(detector),
        })
    }
}

/// A running distributed farm over remote `bskel-workerd` slots.
///
/// Same interface as the local `Farm`: an input/output stream pair and a
/// [`FarmControl`] surface for the autonomic manager.
pub struct RemoteWorkerPool<In, Out> {
    input: Sender<StreamMsg<In>>,
    output: Receiver<StreamMsg<Out>>,
    shared: Arc<PoolShared<Out>>,
    emitter: Option<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
    detector: Option<JoinHandle<()>>,
}

impl<In: Send + 'static, Out: Send + 'static> RemoteWorkerPool<In, Out> {
    /// The input channel: send `StreamMsg::Item`s then `StreamMsg::End`.
    pub fn input(&self) -> Sender<StreamMsg<In>> {
        self.input.clone()
    }

    /// The output channel: items followed by `StreamMsg::End`.
    pub fn output(&self) -> Receiver<StreamMsg<Out>> {
        self.output.clone()
    }

    /// The control surface an ABC binds to.
    pub fn control(&self) -> Arc<dyn FarmControl> {
        Arc::clone(&self.shared) as Arc<dyn FarmControl>
    }

    /// Current number of live remote slots.
    pub fn num_workers(&self) -> usize {
        self.shared.table.load().len()
    }

    /// Cumulative slots lost to failures.
    pub fn workers_lost(&self) -> u64 {
        self.shared.metrics.workers_lost.load(Ordering::SeqCst)
    }

    /// Speculative re-executions the deadline sweep has dispatched.
    pub fn tasks_retried(&self) -> u64 {
        self.shared.metrics.tasks_retried.load(Ordering::SeqCst)
    }

    /// Speculated tasks whose retry copy answered first.
    pub fn speculative_wins(&self) -> u64 {
        self.shared.metrics.spec_wins.load(Ordering::SeqCst)
    }

    /// Late answers for already-resolved speculated tasks that were
    /// dropped instead of double-delivered.
    pub fn duplicates_dropped(&self) -> u64 {
        self.shared.metrics.spec_dups.load(Ordering::SeqCst)
    }

    /// Endpoints currently quarantined by their circuit breaker.
    pub fn circuit_open_count(&self) -> u32 {
        self.shared.open_circuits()
    }

    /// Accumulated secure-channel costs (zero for plain endpoints) — the
    /// measured counterpart of the simulator's `SslCostModel`.
    pub fn cost_report(&self) -> CostReport {
        self.shared.meter.report()
    }

    fn record_join(&self, who: &str, res: std::thread::Result<()>) {
        if let Err(payload) = res {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                format!("{who}: {s}")
            } else if let Some(s) = payload.downcast_ref::<String>() {
                format!("{who}: {s}")
            } else {
                format!("{who}: panicked (non-string payload)")
            };
            self.shared.panics.lock().push(msg);
        }
    }

    /// Waits for the stream to complete, retires every connection with a
    /// `Goodbye`, and tears all threads down. Connection-teardown errors
    /// are surfaced in [`ShutdownReport::disconnects`] instead of being
    /// silently dropped.
    pub fn shutdown(mut self) -> ShutdownReport {
        // Stream completion first (mirrors Farm::shutdown): the caller
        // sent End, the collector exits once all results converged.
        if let Some(e) = self.emitter.take() {
            self.record_join("emitter", e.join());
        }
        if let Some(c) = self.collector.take() {
            self.record_join("collector", c.join());
        }
        self.shared.terminating.store(true, Ordering::SeqCst);
        let handles: Vec<SlotHandle> = std::mem::take(&mut *self.shared.slots.lock());
        // Closing the queues sends each writer into its Goodbye path.
        for h in &handles {
            h.slot.queue.close();
        }
        self.shared.table.publish(Vec::new());
        // Writers finish first: they own the goodbye flush.
        let mut readers = Vec::new();
        for h in handles {
            self.record_join("slot writer", h.writer.join());
            // All results are in (collector joined): severing the read
            // side is safe and bounds shutdown on a wedged daemon.
            let _ = h.slot.stream.shutdown(Shutdown::Both);
            readers.push(h.reader);
        }
        for r in readers {
            self.record_join("slot reader", r.join());
        }
        if let Some(d) = self.detector.take() {
            self.record_join("detector", d.join());
        }
        for t in std::mem::take(&mut *self.shared.retired_threads.lock()) {
            self.record_join("retired slot", t.join());
        }
        for t in std::mem::take(&mut *self.shared.dead_threads.lock()) {
            self.record_join("dead slot", t.join());
        }
        ShutdownReport {
            worker_panics: std::mem::take(&mut *self.shared.panics.lock()),
            workers_lost: self.shared.metrics.workers_lost.load(Ordering::SeqCst),
            events: std::mem::take(&mut *self.shared.events.lock()),
            disconnects: std::mem::take(&mut *self.shared.disconnects.lock()),
        }
    }
}

impl<In, Out> Drop for RemoteWorkerPool<In, Out> {
    fn drop(&mut self) {
        // Best-effort teardown when shutdown() was not called: sever
        // everything and reap what we can without blocking on the stream.
        self.shared.terminating.store(true, Ordering::SeqCst);
        let handles: Vec<SlotHandle> = std::mem::take(&mut *self.shared.slots.lock());
        for h in &handles {
            h.slot.queue.close();
            let _ = h.slot.stream.shutdown(Shutdown::Both);
        }
        self.shared.table.publish(Vec::new());
        for h in handles {
            let _ = h.writer.join();
            let _ = h.reader.join();
        }
        if let Some(d) = self.detector.take() {
            let _ = d.join();
        }
        for t in std::mem::take(&mut *self.shared.dead_threads.lock()) {
            let _ = t.join();
        }
        for t in std::mem::take(&mut *self.shared.retired_threads.lock()) {
            let _ = t.join();
        }
    }
}
