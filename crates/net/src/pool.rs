//! The distributed worker pool: farm semantics over TCP remote workers.
//!
//! [`RemoteWorkerPool`] mirrors the threaded farm's architecture exactly —
//! an emitter dispatching batched tasks over per-slot queues through an
//! RCU-published table, a collector restoring stream order, the same
//! publish-before-close loss-freedom invariant — but each *slot* is a
//! connection to a `bskel-workerd` daemon instead of a local thread.
//!
//! All slot I/O runs on **one reactor thread** multiplexing every
//! connection through a readiness poller ([`crate::sys::Poller`], raw
//! `epoll`), instead of a reader + writer thread per slot plus a global
//! failure detector. The per-slot cost is therefore one nonblocking
//! socket, one send queue and one in-flight map — no stacks, no park/
//! unpark, no per-slot timers — which is what keeps a 256-slot fan-out as
//! cheap per slot as a 4-slot one:
//!
//! * **writes**: the reactor drains each slot's local [`WorkerQueue`] in
//!   wire batches, encodes them into pooled buffers ([`BufferPool`] — no
//!   per-frame allocation on the hot path) and ships them with vectored
//!   writes ([`SendQueue::write_to`] coalesces many frames into one
//!   syscall). `EPOLLOUT` interest is registered only while a send queue
//!   holds unflushed bytes. Every task is recorded in the slot's
//!   *in-flight map before it is even queued for the wire*, so a crash
//!   can never lose a task that was sent but not yet answered;
//! * **reads**: readiness wakes the reactor, which drains the socket
//!   through the incremental decoder and resolves `Result`/`Lost` frames
//!   zero-copy ([`crate::proto::Decoder::next_frame_view`]) into the
//!   collector channel, folding the daemon's piggybacked sensor beans
//!   into the slot. The reactor is the *single* thread that resolves
//!   in-flight entries, which is what makes crash recovery
//!   duplicate-free (see below);
//! * **timers**: heartbeat pings, per-slot silence deadlines, circuit
//!   breaker bookkeeping and the speculative-execution sweep are entries
//!   on a hashed [`TimerWheel`] serviced between polls — the poll timeout
//!   *is* the next deadline, so an idle pool sleeps in exactly one
//!   syscall. How late timers fire is exported as the
//!   `reactorLoopLagUs` sensor bean.
//!
//! **Crash recovery** reuses the farm's worker-death protocol: the dying
//! slot is removed from the published table *before* its queue closes
//! (bounced emitters re-dispatch onto survivors), then its queued backlog
//! *and* its in-flight map are replayed onto the surviving slots — or
//! parked until `add_workers` restores capacity. Harvesting the in-flight
//! map is safe from duplicates precisely because the reactor both
//! resolves answers and runs the death path: once a connection is
//! finished no result for a harvested task can ever be forwarded.
//!
//! **Resilience policies** (see [`ResilienceConfig`]) sit between the
//! death/recovery machinery and the endpoints:
//!
//! * every endpoint carries a **circuit breaker** (Closed → Open →
//!   Half-Open): repeated connect failures or slot deaths inside a
//!   failure window open the circuit, after which `add_workers` stops
//!   hammering the endpoint until the cooldown elapses and a single
//!   Half-Open probe either closes the circuit or re-opens it with a
//!   longer backoff;
//! * reconnect attempts back off exponentially with **decorrelated
//!   jitter** (seeded, so schedules replay under a fixed
//!   [`ResilienceConfig::seed`]);
//! * an optional **soft task deadline** speculatively re-executes
//!   overdue in-flight tasks on a second slot. The speculation registry
//!   resolves the race: the first copy home wins, every other copy's
//!   in-flight entry is stripped (so death harvests cannot replay it)
//!   and late duplicates are counted and dropped — the collector's
//!   ordered stream never sees a sequence number twice.
//!
//! The pool implements [`FarmControl`], so the existing `FarmAbc`, rule
//! programs and contracts drive remote elasticity (ADD_WORKER connects a
//! new daemon slot, REMOVE_WORKER retires one cooperatively) with no rule
//! changes — remote workers are just workers with beans.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bskel_monitor::{
    queue_variance, AtomicRateEstimator, Clock, Journal, RealClock, SensorSnapshot, Time, Welford,
};
use bskel_skel::farm::{FarmControl, FarmEvent, FarmEventKind, ShutdownReport};
use bskel_skel::queue::{Task, TryPop, WorkerQueue};
use bskel_skel::rcu::{Published, ReadHandle};
use bskel_skel::stream::{ReorderBuffer, StreamMsg};
use bskel_skel::{GatherPolicy, SchedPolicy};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::chaos::ChaosRng;
use crate::proto::{
    decode_hello_ack, decode_sensors, encode_frame, encode_hello, Decoder, FrameType, Hello,
    ProtoError,
};
use crate::reactor::{BufferPool, SendQueue, TimerWheel, WriteOutcome};
use crate::secure::{derive_session_keys, CostMeter, CostReport, StreamCipher};
use crate::sys::{Event, Interest, Poller, Waker};

/// Most inputs the emitter drains (and dispatches) per wake-up.
const DISPATCH_BATCH: usize = 32;
/// Most tasks the reactor encodes per slot per fill (one send-queue chunk
/// per wire batch; `SendQueue::write_to` then coalesces many chunks into
/// one vectored syscall).
const WIRE_BATCH: usize = 32;
/// Default for [`ResilienceConfig::spec_sweep_limit`]: most overdue tasks
/// one slot may speculate per deadline sweep, so a stalled slot with a
/// deep in-flight map cannot flood the survivors.
const SPEC_SWEEP_LIMIT: usize = 16;
/// Rolling enqueue-to-delivery latency samples kept for hedging.
const LATENCY_WINDOW: usize = 512;
/// Delivery samples required before the hedge quantile is trusted (a
/// quantile over a handful of samples hedges on noise).
const HEDGE_MIN_SAMPLES: usize = 32;
/// Epoll token of the cross-thread waker eventfd (never a slot id).
const WAKER_TOKEN: u64 = u64::MAX;
/// Per-slot send-queue byte ceiling: the reactor stops encoding more
/// wire batches for a slot whose unflushed bytes exceed this, bounding
/// memory under a slow or stalled peer (backpressure stays visible in
/// the slot's local queue, where sensing and rebalancing can see it).
const SENDQ_HIGH_WATER: usize = 256 * 1024;
/// Most socket reads serviced per readiness event before yielding to the
/// other slots (level-triggered epoll re-signals whatever remains).
const MAX_READS_PER_EVENT: usize = 16;
/// Socket read chunk size.
const READ_CHUNK: usize = 64 * 1024;
/// Frame-buffer pool: how many recycled buffers to keep, and the largest
/// capacity worth keeping (a pathological frame's buffer is dropped).
const POOL_BUFFERS: usize = 64;
const POOL_BUF_CAP: usize = 128 * 1024;
/// Timer wheel resolution and bucket count.
const TICK: Duration = Duration::from_millis(1);
const WHEEL_SLOTS: usize = 256;

/// Clamps a builder-supplied duration into sane territory instead of
/// panicking — the `RateKnob::sanitize` idiom: actuator and builder
/// paths absorb nonsense, they do not abort the program.
fn clamp_duration(d: Duration) -> Duration {
    d.clamp(Duration::from_millis(1), Duration::from_secs(3600))
}

/// Encodes one input item to its wire payload.
pub type EncodeFn<In> = Arc<dyn Fn(In) -> Vec<u8> + Send + Sync>;
/// Decodes one result payload back to the output type.
pub type DecodeFn<Out> = Arc<dyn Fn(&[u8]) -> Out + Send + Sync>;

/// A `bskel-workerd` address the pool may open slots against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// `host:port` of the daemon.
    pub addr: String,
    /// Whether slots on this endpoint run the secure channel.
    pub secure: bool,
}

impl Endpoint {
    /// A plain (clear-channel) endpoint.
    pub fn plain(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            secure: false,
        }
    }

    /// A secured endpoint (toy cipher + metered handshake).
    pub fn secure(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            secure: true,
        }
    }
}

/// Resilience policy knobs for a [`RemoteWorkerPool`]: reconnect backoff,
/// per-endpoint circuit breaking and soft task deadlines.
///
/// All durations are clamped (never panicking) into `[1ms, 1h]` when the
/// pool is built; `reconnect_cap` is raised to at least `reconnect_base`.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// First reconnect backoff step after an endpoint failure.
    pub reconnect_base: Duration,
    /// Upper bound the jittered backoff saturates at.
    pub reconnect_cap: Duration,
    /// Failures inside the window (10× the cooldown) that open the
    /// circuit. A failed Half-Open probe re-opens it regardless.
    pub breaker_threshold: u32,
    /// Minimum quarantine before an Open circuit is offered a Half-Open
    /// probe (the actual wait is `max(backoff, cooldown)`).
    pub breaker_cooldown: Duration,
    /// Soft per-task deadline: an in-flight task older than this is
    /// speculatively re-executed on a second slot. `None` disables
    /// speculation entirely (the default).
    pub task_deadline: Option<Duration>,
    /// Most overdue tasks one slot may re-dispatch per deadline sweep
    /// (raised to ≥ 1 at build time). At runtime the retry budget, when
    /// configured, supersedes this as the binding brake.
    pub spec_sweep_limit: usize,
    /// Token-bucket retry budget gating every re-dispatch path
    /// (speculation, hedges, reconnect retries after a failure). `None`
    /// (the default) leaves re-dispatch uncapped.
    pub retry_budget: Option<RetryBudgetConfig>,
    /// Hedged dispatch: an in-flight task older than this rolling
    /// quantile of the enqueue-to-delivery latency distribution is
    /// duplicated onto a second slot (first result wins, via the
    /// speculation registry). `None` disables hedging (the default).
    pub hedge_quantile: Option<f64>,
    /// Seed for the backoff jitter, so reconnect schedules replay
    /// exactly under a fixed seed.
    pub seed: u64,
}

/// Finagle-style retry budget: every delivered result deposits `ratio`
/// tokens (capped), every re-dispatch withdraws one, and the bucket
/// starts (and idles) at `min_tokens` so cold starts and long quiet
/// periods still afford a little recovery work. Worker-loss recovery
/// re-queues are *never* blocked by the budget — loss freedom outranks
/// storm damping — but they are charged (down to zero), so a recovery
/// storm still suppresses discretionary speculation afterwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetConfig {
    /// Tokens deposited per successfully delivered result.
    pub ratio: f64,
    /// Bucket floor: tokens held when the pool has done no recent work.
    pub min_tokens: f64,
}

impl RetryBudgetConfig {
    fn sanitize(mut self) -> Self {
        self.ratio = if self.ratio.is_finite() {
            self.ratio.clamp(0.0, 10.0)
        } else {
            0.0
        };
        self.min_tokens = if self.min_tokens.is_finite() {
            self.min_tokens.clamp(0.0, 1e6)
        } else {
            0.0
        };
        self
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            reconnect_base: Duration::from_millis(50),
            reconnect_cap: Duration::from_secs(2),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            task_deadline: None,
            spec_sweep_limit: SPEC_SWEEP_LIMIT,
            retry_budget: None,
            hedge_quantile: None,
            seed: 0xB5E7,
        }
    }
}

impl ResilienceConfig {
    /// Clamps every knob into sane territory (see the type docs).
    fn sanitize(mut self) -> Self {
        self.reconnect_base = clamp_duration(self.reconnect_base);
        self.reconnect_cap = clamp_duration(self.reconnect_cap).max(self.reconnect_base);
        self.breaker_threshold = self.breaker_threshold.max(1);
        self.breaker_cooldown = clamp_duration(self.breaker_cooldown);
        self.task_deadline = self.task_deadline.map(clamp_duration);
        self.spec_sweep_limit = self.spec_sweep_limit.max(1);
        self.retry_budget = self.retry_budget.map(RetryBudgetConfig::sanitize);
        self.hedge_quantile = self
            .hedge_quantile
            .map(|q| if q.is_finite() { q } else { 0.95 })
            .map(|q| q.clamp(0.01, 0.999));
        self
    }

    /// The sliding window inside which endpoint failures accumulate.
    fn failure_window(&self) -> Duration {
        self.breaker_cooldown * 10
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Traffic admitted (after `retry_at`, which a recent failure pushes
    /// out by the current backoff).
    Closed,
    /// Quarantined: no connect attempts until `retry_at`.
    Open,
    /// One probe connect is in flight; its outcome decides the state.
    HalfOpen,
}

/// Per-endpoint failure accounting: consecutive-failure window,
/// decorrelated-jitter backoff and the circuit state machine.
struct Breaker {
    state: BreakerState,
    /// Failures inside the window; reset only by a successful Half-Open
    /// probe or by window expiry — a *connect* success alone does not
    /// clear it, so an endpoint that accepts connects and then kills the
    /// slot (a flapper) still accumulates toward Open.
    failures: u32,
    backoff: Duration,
    retry_at: Instant,
    last_failure: Option<Instant>,
    rng: ChaosRng,
}

impl Breaker {
    fn new(cfg: &ResilienceConfig, seed: u64) -> Self {
        Self {
            state: BreakerState::Closed,
            failures: 0,
            backoff: cfg.reconnect_base,
            retry_at: Instant::now(),
            last_failure: None,
            rng: ChaosRng::new(seed),
        }
    }

    /// Records a connect failure or a slot death on this endpoint.
    fn on_failure(&mut self, cfg: &ResilienceConfig) {
        let now = Instant::now();
        self.failures = match self.last_failure {
            Some(prev) if now.duration_since(prev) > cfg.failure_window() => 1,
            _ => self.failures.saturating_add(1),
        };
        self.last_failure = Some(now);
        // Decorrelated jitter: next = min(cap, rand[base, 3*prev)).
        let lo = cfg.reconnect_base.as_millis() as u64;
        let hi = (self.backoff.as_millis() as u64)
            .saturating_mul(3)
            .max(lo + 1);
        self.backoff = Duration::from_millis(self.rng.range_u64(lo, hi)).min(cfg.reconnect_cap);
        if self.state == BreakerState::HalfOpen || self.failures >= cfg.breaker_threshold {
            self.state = BreakerState::Open;
            self.retry_at = now + self.backoff.max(cfg.breaker_cooldown);
        } else {
            self.retry_at = now + self.backoff;
        }
    }

    /// Records a successful connect. A Half-Open probe success closes
    /// the circuit and forgets the failure history; a plain Closed-state
    /// success only resets the backoff (see `failures`).
    fn on_success(&mut self, cfg: &ResilienceConfig) {
        if self.state != BreakerState::Closed {
            self.failures = 0;
            self.last_failure = None;
        }
        self.state = BreakerState::Closed;
        self.backoff = cfg.reconnect_base;
        self.retry_at = Instant::now();
    }

    /// Lets an expired failure window lapse (the reactor's breaker
    /// bookkeeping timer; `on_failure` also applies this lazily).
    fn expire_window(&mut self, cfg: &ResilienceConfig) {
        if self.state == BreakerState::Closed
            && self
                .last_failure
                .is_some_and(|t| t.elapsed() > cfg.failure_window())
        {
            self.failures = 0;
            self.last_failure = None;
        }
    }

    /// Whether ordinary (non-probe) traffic may try this endpoint now.
    fn admits(&self, now: Instant) -> bool {
        self.state == BreakerState::Closed && now >= self.retry_at
    }
}

/// An endpoint plus its breaker: what the pool's connect paths consult.
struct EndpointState {
    endpoint: Endpoint,
    breaker: Mutex<Breaker>,
}

/// One task recorded in a slot's in-flight map.
struct InflightEntry {
    item: Vec<u8>,
    /// When the reactor queued it for the wire — what the deadline sweep
    /// ages.
    sent_at: Instant,
}

/// A task being speculatively re-executed: every slot holding a copy,
/// which one got the latest copy, and when. `hedged` records what
/// triggered the first duplicate (quantile hedge vs deadline
/// speculation), so a winning copy credits the right counter.
struct SpecEntry {
    holders: Vec<(u64, Weak<SlotShared>)>,
    last_retry_slot: u64,
    retried_at: Instant,
    hedged: bool,
}

/// The plant-side retry-budget token bucket (see [`RetryBudgetConfig`]).
/// One mutexed f64: every path that touches it does a few arithmetic ops,
/// and all callers are off the frame hot path except the per-result
/// deposit (which is two loads and a store's worth of work under an
/// uncontended lock).
struct RetryBudget {
    tokens: Mutex<f64>,
    ratio: f64,
    cap: f64,
}

impl RetryBudget {
    fn new(cfg: RetryBudgetConfig) -> Self {
        Self {
            tokens: Mutex::new(cfg.min_tokens),
            ratio: cfg.ratio,
            // Ten idle floors of headroom (at least 10 tokens) bounds
            // burst withdrawal after a long healthy stretch.
            cap: (cfg.min_tokens * 10.0).max(10.0),
        }
    }

    /// Credits one successfully delivered result.
    fn deposit(&self, n: f64) {
        let mut t = self.tokens.lock();
        *t = (*t + self.ratio * n).min(self.cap);
    }

    /// Withdraws `n` tokens if the bucket holds them (discretionary
    /// re-dispatch: speculation, hedges, reconnect retries).
    fn try_charge(&self, n: f64) -> bool {
        let mut t = self.tokens.lock();
        if *t >= n {
            *t -= n;
            true
        } else {
            false
        }
    }

    /// Withdraws `n` tokens unconditionally, flooring at zero (forced
    /// re-dispatch: worker-loss recovery, which is never blocked).
    fn charge_forced(&self, n: f64) {
        let mut t = self.tokens.lock();
        *t = (*t - n).max(0.0);
    }

    /// Returns `n` tokens after an aborted charge.
    fn refund(&self, n: f64) {
        let mut t = self.tokens.lock();
        *t = (*t + n).min(self.cap);
    }

    fn tokens(&self) -> f64 {
        *self.tokens.lock()
    }
}

/// Rolling window of enqueue-to-delivery latencies (seconds) feeding the
/// hedge trigger. A plain ring: the quantile is computed on demand by the
/// deadline sweep (once per heartbeat period), not per sample.
struct LatencyWindow {
    samples: Vec<f64>,
    next: usize,
    filled: bool,
}

impl LatencyWindow {
    fn new() -> Self {
        Self {
            samples: Vec::with_capacity(LATENCY_WINDOW),
            next: 0,
            filled: false,
        }
    }

    fn record(&mut self, secs: f64) {
        if self.filled {
            self.samples[self.next] = secs;
            self.next = (self.next + 1) % LATENCY_WINDOW;
        } else {
            self.samples.push(secs);
            if self.samples.len() == LATENCY_WINDOW {
                self.filled = true;
            }
        }
    }

    /// The `q`-quantile of the window, or `None` until enough samples
    /// have accumulated to make hedging on it defensible.
    fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.len() < HEDGE_MIN_SAMPLES {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(sorted[idx.min(sorted.len() - 1)])
    }
}

/// The speculation registry: the single source of truth that makes
/// "first copy home wins" race-free. `resolved` remembers speculated
/// sequence numbers that already produced an answer, so late copies are
/// dropped; only speculated tasks ever enter it, so it stays small.
#[derive(Default)]
struct SpecRegistry {
    active: HashMap<u64, SpecEntry>,
    resolved: HashSet<u64>,
}

enum PoolMsg<Out> {
    Batch(Vec<(u64, Out)>),
    Lost(u64),
    Total(u64),
}

/// Everything a remote slot's machinery shares. The RCU table holds
/// `Arc`s of these.
struct SlotShared {
    id: u64,
    endpoint: Endpoint,
    /// Local staging queue the emitter dispatches into; the reactor
    /// drains it onto the wire.
    queue: WorkerQueue<Vec<u8>>,
    /// Tasks sent but not yet resolved by a `Result`/`Lost` frame, keyed
    /// by sequence number. Entries are inserted by the reactor *before*
    /// the bytes are queued for the wire and removed only when the
    /// reactor resolves an answer (or the speculation registry strips a
    /// superseded copy).
    inflight: Mutex<BTreeMap<u64, InflightEntry>>,
    inflight_count: AtomicUsize,
    /// The connection's only socket (no fd duplication). The reactor does
    /// all I/O through it and `take`s it when the connection finishes, so
    /// the fd closes even while `retired_slots` keeps the `Arc` for its
    /// service statistic. Other threads only ever `shutdown` it (sever).
    stream: Mutex<Option<TcpStream>>,
    /// Frames sitting in the reactor's send queue for this slot (the
    /// `netSendQueueDepth` sensor bean).
    send_q_depth: AtomicUsize,
    /// Latest daemon-reported cumulative service statistic.
    service: Mutex<Welford>,
    /// Latest daemon-reported queue depth (tasks at the daemon).
    remote_depth: AtomicUsize,
    /// Heartbeat round-trip time, milliseconds (f64 bits; 0 = none yet).
    rtt_ms_bits: AtomicU64,
    /// When the last frame (any type) arrived from this slot.
    last_seen: Mutex<Instant>,
    /// Outstanding heartbeat pings: id → send time.
    pings: Mutex<HashMap<u64, Instant>>,
    /// Cooperative retirement in progress (`remove_workers`).
    retiring: AtomicBool,
    /// The death path has run (single-shot guard).
    dead: AtomicBool,
    /// Why this slot was severed, if a policy (failure deadline, fault
    /// injection) did it rather than the peer.
    suspect_reason: Mutex<Option<String>>,
}

impl SlotShared {
    /// Tasks this slot is responsible for: staged locally, on the wire,
    /// or queued at the daemon.
    fn backlog(&self) -> usize {
        self.queue.len()
            + self.inflight_count.load(Ordering::Relaxed)
            + self.remote_depth.load(Ordering::Relaxed)
    }

    fn rtt_ms(&self) -> f64 {
        f64::from_bits(self.rtt_ms_bits.load(Ordering::Relaxed))
    }

    fn touch(&self) {
        *self.last_seen.lock() = Instant::now();
    }

    /// Severs the socket (both directions); the reactor observes the
    /// hangup and runs the death path. Safe from any thread.
    fn sever(&self) {
        if let Some(s) = self.stream.lock().as_ref() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

/// A freshly handshaken connection, handed from the connecting thread to
/// the reactor for registration.
struct ConnSeed {
    slot: Arc<SlotShared>,
    /// Decoder that already absorbed any post-handshake bytes.
    decoder: Decoder,
    /// Daemon→pool keystream (secure endpoints only).
    cipher_in: Option<StreamCipher>,
    /// Pool→daemon keystream.
    cipher_out: Option<StreamCipher>,
}

/// Control messages into the reactor thread (paired with a waker kick).
enum ReactorCmd {
    Register(ConnSeed),
    Shutdown,
}

/// Timer-wheel entries. Stale keys (for connections already finished)
/// simply fizzle when they fire — the wheel has no cancel.
enum TimerKey {
    /// Periodic heartbeat ping to every live slot.
    Heartbeat,
    /// Periodic speculative-execution sweep (armed only when a task
    /// deadline is configured).
    SpecSweep,
    /// Per-slot silence deadline, re-armed from `last_seen`.
    FailureDeadline(u64),
    /// Breaker failure-window bookkeeping for one endpoint.
    BackoffExpire(usize),
}

struct PoolMetrics {
    clock: Arc<dyn Clock>,
    arrivals: AtomicRateEstimator,
    departures: AtomicRateEstimator,
    end_of_stream: AtomicBool,
    reconfiguring: AtomicBool,
    blackout_until_bits: AtomicU64,
    last_arrival_bits: AtomicU64,
    workers_lost: AtomicU64,
    /// Speculative re-executions dispatched by the deadline sweep.
    tasks_retried: AtomicU64,
    /// Hedged (quantile-triggered) duplicate dispatches.
    hedges_launched: AtomicU64,
    /// Hedged tasks whose duplicate copy resolved first.
    hedge_wins: AtomicU64,
    /// Speculated tasks whose *retry copy* resolved first.
    spec_wins: AtomicU64,
    /// Late answers for already-resolved speculated tasks, dropped.
    spec_dups: AtomicU64,
    /// Worst timer lateness of the reactor's latest sweep, microseconds
    /// (the `reactorLoopLagUs` sensor bean).
    reactor_lag_us: AtomicU64,
}

impl PoolMetrics {
    fn now(&self) -> Time {
        self.clock.now()
    }

    fn set_blackout_until(&self, t: Time) {
        self.blackout_until_bits
            .store(t.to_bits(), Ordering::SeqCst);
    }

    fn in_blackout(&self, now: Time) -> bool {
        now < f64::from_bits(self.blackout_until_bits.load(Ordering::SeqCst))
    }
}

struct PoolShared<Out> {
    metrics: PoolMetrics,
    /// The RCU-published dispatch table (same invariants as the farm's).
    table: Arc<Published<Vec<Arc<SlotShared>>>>,
    /// Membership and the reconfiguration serialisation point.
    slots: Mutex<Vec<Arc<SlotShared>>>,
    /// Cooperatively retired slots: their service statistic keeps
    /// counting toward the pool's.
    retired_slots: Mutex<Vec<Arc<SlotShared>>>,
    /// Tasks stranded while no live slot exists.
    parked: Mutex<Vec<Task<Vec<u8>>>>,
    panics: Mutex<Vec<String>>,
    events: Mutex<Vec<FarmEvent>>,
    disconnects: Mutex<Vec<String>>,
    /// Task seqs whose `Lost` notification could not be delivered (the
    /// collector had already exited); surfaced in the shutdown report so
    /// loss freedom is auditable instead of assumed.
    lost_undelivered: Mutex<Vec<u64>>,
    /// Set when the reactor's poller failed irrecoverably: stranded
    /// tasks are reported lost (instead of parked forever) so the
    /// collector's convergence accounting still closes.
    poisoned: AtomicBool,
    terminating: AtomicBool,
    next_slot_id: AtomicU64,
    next_endpoint: AtomicUsize,
    next_ping: AtomicU64,
    rr_cursor: AtomicUsize,
    results_tx: Sender<PoolMsg<Out>>,
    /// Hands new connections and the shutdown signal to the reactor.
    reactor_tx: Sender<ReactorCmd>,
    /// Kicks the reactor out of its poll (emitter dispatch, actuators).
    waker: Waker,
    decode: DecodeFn<Out>,
    endpoints: Vec<EndpointState>,
    workload: String,
    /// Pool name (journal source label, thread names, diagnostics).
    name: String,
    /// Optional ops journal fault events and loss accounting mirror into.
    journal: Option<Arc<Journal>>,
    meter: Arc<CostMeter>,
    max_workers: u32,
    rate_window: f64,
    /// How long a connect + handshake may take before the endpoint is
    /// declared unreachable (builder-configurable, clamped non-zero).
    handshake_timeout: Duration,
    resilience: ResilienceConfig,
    /// Plant-side retry budget, when configured (see `ResilienceConfig`).
    budget: Option<RetryBudget>,
    /// Delivery-latency window feeding the hedge quantile (only ever
    /// written when hedging is configured).
    latency: Mutex<LatencyWindow>,
    spec: Mutex<SpecRegistry>,
    /// Fast-out for the frame hot path: the reactor consults the
    /// speculation registry only after the first task has ever been
    /// speculated, so a fault-free run never takes the `spec` lock per
    /// frame.
    spec_touched: AtomicBool,
}

impl<Out: Send + 'static> PoolShared<Out> {
    /// Kicks the reactor out of its poll.
    fn wake(&self) {
        self.waker.wake();
    }

    /// Mirrors a substrate fault event into the ops journal, if attached.
    fn journal_event(&self, event: &FarmEvent) {
        if let Some(j) = &self.journal {
            j.farm_event(event.at, &self.name, event.kind.label(), &event.detail);
        }
    }

    /// Records an operational note in the ops journal, if attached.
    fn journal_note(&self, at: Time, text: &str) {
        if let Some(j) = &self.journal {
            j.note(at, &self.name, text);
        }
    }

    /// Reports a task as lost downstream. When the collector side has
    /// already exited the notification cannot be delivered; the seq is
    /// then recorded in the shutdown accounting (and journaled) instead
    /// of being silently discarded.
    fn report_lost(&self, seq: u64) {
        if self.results_tx.send(PoolMsg::Lost(seq)).is_err() {
            self.lost_undelivered.lock().push(seq);
            self.journal_note(
                self.metrics.now(),
                &format!("lost notification for task {seq} undeliverable: collector exited"),
            );
        }
    }

    /// Parks tasks awaiting future capacity — unless the pool is
    /// poisoned, in which case capacity will never return and each task
    /// is reported lost so the output stream still terminates. The
    /// parked lock orders parking against the poison drain.
    fn park_tasks(&self, tasks: &mut Vec<Task<Vec<u8>>>) {
        let mut parked = self.parked.lock();
        if self.poisoned.load(Ordering::SeqCst) {
            drop(parked);
            for t in tasks.drain(..) {
                self.report_lost(t.seq);
            }
        } else {
            parked.append(tasks);
        }
    }

    // -- connection establishment -------------------------------------

    /// Connects one slot against `endpoint`: blocking TCP connect plus
    /// handshake on the calling thread (connects can be slow and must
    /// not stall the reactor), then the stream is flipped nonblocking
    /// and handed to the reactor as a [`ConnSeed`].
    fn connect_slot(&self, endpoint: &Endpoint) -> Result<ConnSeed, String> {
        let id = self.next_slot_id.fetch_add(1, Ordering::Relaxed);
        let stream = TcpStream::connect(&endpoint.addr)
            .map_err(|e| format!("connect {}: {e}", endpoint.addr))?;
        stream.set_nodelay(true).ok();
        let err = |e: &dyn std::fmt::Display| format!("handshake {}: {e}", endpoint.addr);

        // Not a secret — see crate::secure. Only varies keys per slot.
        let client_nonce = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xC11E)
            ^ id.rotate_left(48);
        let mut hello = Vec::new();
        encode_frame(
            &mut hello,
            FrameType::Hello,
            0,
            &encode_hello(&Hello {
                secure: endpoint.secure,
                nonce: client_nonce,
                workload: self.workload.clone(),
            }),
        );
        (&stream).write_all(&hello).map_err(|e| err(&e))?;

        // Bounded wait for the HelloAck: a short read timeout polled
        // against a deadline.
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .map_err(|e| err(&e))?;
        let mut decoder = Decoder::new();
        let mut chunk = vec![0u8; 8192];
        let deadline = Instant::now() + self.handshake_timeout;
        let ack = loop {
            match decoder.next_frame() {
                Ok(Some(f)) if f.ftype == FrameType::HelloAck => {
                    break decode_hello_ack(&f.payload)
                        .ok_or_else(|| err(&"malformed HelloAck"))?;
                }
                Ok(Some(_)) => return Err(err(&"unexpected frame before HelloAck")),
                Ok(None) => {}
                Err(e) => return Err(err(&e)),
            }
            match (&stream).read(&mut chunk) {
                Ok(0) => return Err(err(&"connection closed during handshake")),
                Ok(n) => decoder.extend(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if Instant::now() > deadline {
                        return Err(err(&"timed out waiting for HelloAck"));
                    }
                }
                Err(e) => return Err(err(&e)),
            }
        };
        stream.set_read_timeout(None).map_err(|e| err(&e))?;
        if !ack.ok {
            return Err(format!("{} refused slot: {}", endpoint.addr, ack.error));
        }
        let (cipher_in, cipher_out) = if endpoint.secure {
            if decoder.buffered() > 0 {
                return Err(err(&"cleartext residue before secure channel"));
            }
            let (c2s, s2c) = self
                .meter
                .time_handshake(|| derive_session_keys(client_nonce, ack.nonce));
            (Some(StreamCipher::new(s2c)), Some(StreamCipher::new(c2s)))
        } else {
            (None, None)
        };
        stream.set_nonblocking(true).map_err(|e| err(&e))?;

        let slot = Arc::new(SlotShared {
            id,
            endpoint: endpoint.clone(),
            queue: WorkerQueue::new(),
            inflight: Mutex::new(BTreeMap::new()),
            inflight_count: AtomicUsize::new(0),
            stream: Mutex::new(Some(stream)),
            send_q_depth: AtomicUsize::new(0),
            service: Mutex::new(Welford::new()),
            remote_depth: AtomicUsize::new(0),
            rtt_ms_bits: AtomicU64::new(0),
            last_seen: Mutex::new(Instant::now()),
            pings: Mutex::new(HashMap::new()),
            retiring: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            suspect_reason: Mutex::new(None),
        });
        Ok(ConnSeed {
            slot,
            decoder,
            cipher_in,
            cipher_out,
        })
    }

    // -- the frame hot path -------------------------------------------

    /// Applies one received frame to the slot / the result stream. Runs
    /// on the reactor; the payload is borrowed zero-copy from the
    /// connection's decode buffer.
    fn handle_slot_frame(
        &self,
        slot: &Arc<SlotShared>,
        ftype: FrameType,
        seq: u64,
        payload: &[u8],
        out: &mut Vec<(u64, Out)>,
    ) {
        slot.touch();
        match ftype {
            FrameType::Result => {
                // `remove` guards against duplicates by construction: a
                // result for an already-harvested (recovered) task is
                // dropped rather than delivered twice.
                let entry = slot.inflight.lock().remove(&seq);
                let claimed = entry.is_some();
                if let Some(e) = entry {
                    slot.inflight_count.fetch_sub(1, Ordering::SeqCst);
                    if self.resilience.hedge_quantile.is_some() {
                        self.latency
                            .lock()
                            .record(e.sent_at.elapsed().as_secs_f64());
                    }
                }
                if self.resolve_answer(slot, seq, claimed) {
                    if let Some(b) = &self.budget {
                        b.deposit(1.0);
                    }
                    out.push((seq, (self.decode)(payload)));
                }
            }
            FrameType::Lost => {
                // The remote worker panicked on this task: poisoned, no
                // result will ever exist. Propagate the hole.
                let claimed = slot.inflight.lock().remove(&seq).is_some();
                if claimed {
                    slot.inflight_count.fetch_sub(1, Ordering::SeqCst);
                }
                if self.resolve_answer(slot, seq, claimed) {
                    self.report_lost(seq);
                    let now = self.metrics.now();
                    self.metrics.departures.record_n(now, 1);
                    let msg = format!(
                        "remote worker panicked on task {} (slot {}, {})",
                        seq, slot.id, slot.endpoint.addr
                    );
                    let event = FarmEvent {
                        at: now,
                        kind: FarmEventKind::WorkerPanic,
                        detail: msg.clone(),
                    };
                    self.journal_event(&event);
                    self.events.lock().push(event);
                    self.panics.lock().push(msg);
                }
            }
            FrameType::Sensors => {
                if let Some(blob) = decode_sensors(payload) {
                    *slot.service.lock() = blob.service;
                    slot.remote_depth
                        .store(blob.queue_depth as usize, Ordering::Relaxed);
                }
            }
            FrameType::HeartbeatAck => {
                if let Some(blob) = decode_sensors(payload) {
                    *slot.service.lock() = blob.service;
                    slot.remote_depth
                        .store(blob.queue_depth as usize, Ordering::Relaxed);
                }
                if let Some(sent) = slot.pings.lock().remove(&seq) {
                    let rtt_ms = sent.elapsed().as_secs_f64() * 1e3;
                    slot.rtt_ms_bits.store(rtt_ms.to_bits(), Ordering::Relaxed);
                }
            }
            // Goodbye: the daemon acknowledged retirement; EOF follows.
            // Handshake/task frames are never valid daemon→pool.
            _ => {}
        }
    }

    /// Decides whether an answer (Result or Lost) for `seq` may be
    /// forwarded. Without speculation this is just `claimed`; once the
    /// registry has been touched, the first answer for a speculated task
    /// wins — it strips every other copy's in-flight entry (so a later
    /// death harvest cannot replay the task) and marks the sequence
    /// resolved so late copies are dropped, never double-delivered.
    fn resolve_answer(&self, slot: &Arc<SlotShared>, seq: u64, claimed: bool) -> bool {
        if !self.spec_touched.load(Ordering::SeqCst) {
            return claimed;
        }
        let mut spec = self.spec.lock();
        if let Some(entry) = spec.active.remove(&seq) {
            spec.resolved.insert(seq);
            if claimed && slot.id == entry.last_retry_slot {
                if entry.hedged {
                    self.metrics.hedge_wins.fetch_add(1, Ordering::SeqCst);
                } else {
                    self.metrics.spec_wins.fetch_add(1, Ordering::SeqCst);
                }
            }
            for (holder_id, holder) in entry.holders {
                if holder_id == slot.id {
                    continue;
                }
                if let Some(h) = holder.upgrade() {
                    if h.inflight.lock().remove(&seq).is_some() {
                        h.inflight_count.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            true
        } else if spec.resolved.contains(&seq) {
            if claimed {
                self.metrics.spec_dups.fetch_add(1, Ordering::SeqCst);
            }
            false
        } else {
            claimed
        }
    }

    // -- task deadlines & speculative re-execution --------------------

    /// One deadline sweep: re-executes overdue in-flight tasks on a
    /// second slot. Needs at least two live slots (speculating back onto
    /// the only slot that already holds the task is pointless), and is a
    /// no-op unless a [`ResilienceConfig::task_deadline`] or a hedge
    /// quantile is configured.
    ///
    /// With hedging on, the effective deadline is the rolling latency
    /// quantile (once enough deliveries have been observed): tasks in
    /// the slow tail are duplicated long before any fixed deadline would
    /// fire. Both triggers share the registry, the per-sweep cap and the
    /// retry budget.
    fn deadline_sweep(&self) {
        let quantile_deadline = self.resilience.hedge_quantile.and_then(|q| {
            self.latency
                .lock()
                .quantile(q)
                .map(|s| clamp_duration(Duration::from_secs_f64(s.max(1e-3))))
        });
        let (deadline, hedged) = match (quantile_deadline, self.resilience.task_deadline) {
            // The tighter trigger wins; a quantile below the fixed
            // deadline is a hedge, not a failure suspicion.
            (Some(q), Some(f)) if q < f => (q, true),
            (_, Some(f)) => (f, false),
            (Some(q), None) => (q, true),
            (None, None) => return,
        };
        let table = self.table.load();
        if table.len() < 2 {
            return;
        }
        for slot in table.iter() {
            if slot.dead.load(Ordering::SeqCst) || slot.retiring.load(Ordering::SeqCst) {
                continue;
            }
            // Snapshot the overdue entries; the real decision is re-made
            // under the spec lock in `speculate`.
            let overdue: Vec<(u64, Vec<u8>)> = {
                let inflight = slot.inflight.lock();
                inflight
                    .iter()
                    .filter(|(_, e)| e.sent_at.elapsed() > deadline)
                    .take(self.resilience.spec_sweep_limit)
                    .map(|(seq, e)| (*seq, e.item.clone()))
                    .collect()
            };
            for (seq, item) in overdue {
                self.speculate(slot, seq, item, &table, deadline, hedged);
            }
        }
    }

    /// Dispatches one speculative copy of `seq` (held by `source`) onto
    /// the least-loaded live slot that does not already hold a copy.
    /// Runs entirely under the spec lock, which is what makes the push
    /// and the registration atomic with respect to `resolve_answer`.
    fn speculate(
        &self,
        source: &Arc<SlotShared>,
        seq: u64,
        item: Vec<u8>,
        table: &[Arc<SlotShared>],
        deadline: Duration,
        hedged: bool,
    ) {
        use std::collections::hash_map::Entry;
        let mut spec = self.spec.lock();
        // Flip the hot-path gate *before* the copy can produce an
        // answer: any resolver claiming this task afterwards must consult
        // the registry (it will block on the lock we hold).
        self.spec_touched.store(true, Ordering::SeqCst);
        // Re-check under the lock: the resolver may have claimed the task
        // since the sweep's snapshot, or an earlier copy may have won.
        if spec.resolved.contains(&seq) || !source.inflight.lock().contains_key(&seq) {
            return;
        }
        let holders: Vec<u64> = match spec.active.get(&seq) {
            // Already speculated recently: give the copy its own
            // deadline before adding yet another.
            Some(e) if e.retried_at.elapsed() <= deadline => return,
            Some(e) => e.holders.iter().map(|(id, _)| *id).collect(),
            None => vec![source.id],
        };
        let target = table
            .iter()
            .filter(|s| !s.dead.load(Ordering::SeqCst) && !s.retiring.load(Ordering::SeqCst))
            .filter(|s| !holders.contains(&s.id))
            .min_by_key(|s| s.backlog());
        let Some(target) = target else {
            return; // every live slot already holds a copy
        };
        // Every discretionary duplicate — deadline speculation and hedge
        // alike — costs one budget token; an exhausted budget is the
        // storm brake.
        if let Some(b) = &self.budget {
            if !b.try_charge(1.0) {
                return;
            }
        }
        let mut one = vec![Task { seq, item }];
        if !target.queue.push_batch(&mut one) {
            // Target raced into its death path; next sweep retries.
            if let Some(b) = &self.budget {
                b.refund(1.0);
            }
            return;
        }
        match spec.active.entry(seq) {
            Entry::Occupied(mut o) => {
                let e = o.get_mut();
                e.holders.push((target.id, Arc::downgrade(target)));
                e.last_retry_slot = target.id;
                e.retried_at = Instant::now();
            }
            Entry::Vacant(v) => {
                v.insert(SpecEntry {
                    holders: vec![
                        (source.id, Arc::downgrade(source)),
                        (target.id, Arc::downgrade(target)),
                    ],
                    last_retry_slot: target.id,
                    retried_at: Instant::now(),
                    hedged,
                });
            }
        }
        if hedged {
            self.metrics.hedges_launched.fetch_add(1, Ordering::SeqCst);
        } else {
            self.metrics.tasks_retried.fetch_add(1, Ordering::SeqCst);
        }
    }

    // -- death & recovery ---------------------------------------------

    /// The single death path: deregisters a crashed slot and replays
    /// every task it held (staged backlog + in-flight map) onto the
    /// survivors. Runs on the reactor, *after* the connection stopped
    /// being read — so no harvested task can also be resolved.
    fn on_slot_death(&self, slot: &Arc<SlotShared>, reason: &str) {
        if slot.dead.swap(true, Ordering::SeqCst) {
            return;
        }
        let now = self.metrics.now();
        let mut slots = self.slots.lock();
        let mut leftover: Vec<Task<Vec<u8>>> = Vec::new();
        if let Some(pos) = slots.iter().position(|s| s.id == slot.id) {
            slots.remove(pos);
            // Publish the shrunken table BEFORE closing the dead queue —
            // the farm's loss-freedom invariant, verbatim.
            self.publish_table(&slots);
        }
        // In-flight first (oldest sequence numbers), then staged backlog.
        let harvested: Vec<Task<Vec<u8>>> = {
            let mut inflight = slot.inflight.lock();
            let drained = std::mem::take(&mut *inflight);
            drained
                .into_iter()
                .map(|(seq, e)| Task { seq, item: e.item })
                .collect()
        };
        slot.inflight_count.store(0, Ordering::SeqCst);
        leftover.extend(harvested);
        leftover.extend(slot.queue.close());
        let replayed = leftover.len();
        // Recovery re-queues are charged but never blocked: loss freedom
        // outranks the storm brake, and the drained bucket suppresses
        // discretionary speculation while the survivors absorb the replay.
        if let Some(b) = &self.budget {
            b.charge_forced(replayed as f64);
        }
        // The slot's completed work keeps counting toward the service
        // statistic.
        self.retired_slots.lock().push(Arc::clone(slot));
        // A slot death is an endpoint failure: a daemon that accepts
        // connects and then drops them (a flapper) must still open its
        // circuit, not just fail the occasional connect.
        self.record_endpoint_failure(&slot.endpoint);
        self.metrics.workers_lost.fetch_add(1, Ordering::SeqCst);
        let event = FarmEvent {
            at: now,
            kind: FarmEventKind::WorkerLost,
            detail: format!(
                "remote slot {} ({}) lost: {reason}; {replayed} tasks replayed",
                slot.id, slot.endpoint.addr
            ),
        };
        self.journal_event(&event);
        self.events.lock().push(event);
        self.recover_tasks(&slots, leftover);
        drop(slots);
    }

    /// Re-dispatches recovered tasks round-robin onto the survivors, or
    /// parks them when no live slot exists. Caller holds the membership
    /// lock.
    fn recover_tasks(&self, survivors: &[Arc<SlotShared>], tasks: Vec<Task<Vec<u8>>>) {
        if tasks.is_empty() {
            return;
        }
        if survivors.is_empty() {
            if !self.terminating.load(Ordering::SeqCst) {
                let mut tasks = tasks;
                self.park_tasks(&mut tasks);
            }
            return;
        }
        for (i, task) in tasks.into_iter().enumerate() {
            let target = &survivors[i % survivors.len()];
            let mut one = vec![task];
            let accepted = target.queue.push_batch(&mut one);
            debug_assert!(accepted, "survivor queues are open under the lock");
        }
    }

    // -- reconfiguration (the FarmControl actuators) ------------------

    fn publish_table(&self, slots: &[Arc<SlotShared>]) {
        self.table.publish(slots.to_vec());
    }

    /// Records a connect failure or slot death against the endpoint's
    /// breaker.
    fn record_endpoint_failure(&self, endpoint: &Endpoint) {
        if let Some(es) = self.endpoints.iter().find(|es| es.endpoint == *endpoint) {
            es.breaker.lock().on_failure(&self.resilience);
        }
    }

    /// Index of `endpoint` in the registered endpoint list.
    fn endpoint_index(&self, endpoint: &Endpoint) -> Option<usize> {
        self.endpoints
            .iter()
            .position(|es| es.endpoint == *endpoint)
    }

    /// Number of endpoints currently quarantined (breaker Open).
    fn open_circuits(&self) -> u32 {
        self.endpoints
            .iter()
            .filter(|es| es.breaker.lock().state == BreakerState::Open)
            .count() as u32
    }

    /// Picks the next endpoint a connect attempt should target, or
    /// `None` when every endpoint is quarantined.
    ///
    /// A *due* Open circuit gets its Half-Open probe first (recovering a
    /// quarantined endpoint beats spreading load; the probe transition
    /// happens under the breaker lock, so only one caller wins it). Then
    /// ordinary round-robin over endpoints whose breakers admit traffic.
    /// If nothing admits but some breaker is still Closed (merely backing
    /// off), the one closest to its retry time is used anyway:
    /// availability beats backoff purity when there is no alternative.
    /// Open circuits before their cooldown are never returned.
    fn pick_endpoint(&self) -> Option<usize> {
        let now = Instant::now();
        for (i, es) in self.endpoints.iter().enumerate() {
            let mut b = es.breaker.lock();
            if b.state == BreakerState::Open && now >= b.retry_at {
                b.state = BreakerState::HalfOpen;
                return Some(i);
            }
        }
        let n = self.endpoints.len();
        for _ in 0..n {
            let i = self.next_endpoint.fetch_add(1, Ordering::Relaxed) % n;
            if self.endpoints[i].breaker.lock().admits(now) {
                return Some(i);
            }
        }
        let mut best: Option<(usize, Instant)> = None;
        for (i, es) in self.endpoints.iter().enumerate() {
            let b = es.breaker.lock();
            let earlier = match best {
                Some((_, t)) => b.retry_at < t,
                None => true,
            };
            if b.state == BreakerState::Closed && earlier {
                best = Some((i, b.retry_at));
            }
        }
        best.map(|(i, _)| i)
    }

    fn add_workers_impl(&self, n: u32) -> Result<u32, String> {
        let current = self.slots.lock().len() as u32;
        if current + n > self.max_workers {
            return Err(format!(
                "worker limit reached ({current}+{n} > {})",
                self.max_workers
            ));
        }
        self.metrics.reconfiguring.store(true, Ordering::SeqCst);
        // Connect outside the membership lock: a slow or dead endpoint
        // must not stall sensing or the death path. The breaker decides
        // which endpoints may be attempted at all, which is what bounds
        // the connect traffic a flapping endpoint sees while Open.
        let mut connected: Vec<ConnSeed> = Vec::new();
        let mut last_err = String::new();
        let mut attempts = 0;
        while connected.len() < n as usize && attempts < n as usize * self.endpoints.len() {
            let Some(i) = self.pick_endpoint() else {
                break; // every endpoint quarantined, no probe due
            };
            attempts += 1;
            let es = &self.endpoints[i];
            match self.connect_slot(&es.endpoint) {
                Ok(seed) => {
                    es.breaker.lock().on_success(&self.resilience);
                    connected.push(seed);
                }
                Err(e) => {
                    es.breaker.lock().on_failure(&self.resilience);
                    last_err = e;
                    // Retrying after a failure is discretionary re-dispatch:
                    // each further attempt costs a budget token, so a mass
                    // outage cannot become a synchronized reconnect storm.
                    if let Some(b) = &self.budget {
                        if connected.len() < n as usize && !b.try_charge(1.0) {
                            break;
                        }
                    }
                }
            }
        }
        let added = connected.len() as u32;
        if added == 0 {
            self.metrics.reconfiguring.store(false, Ordering::SeqCst);
            if last_err.is_empty() {
                return Err(format!(
                    "no endpoint accepted a slot: {} circuit(s) open (quarantined), no probe due",
                    self.open_circuits()
                ));
            }
            return Err(format!("no endpoint accepted a slot: {last_err}"));
        }
        let mut slots = self.slots.lock();
        slots.extend(connected.iter().map(|seed| Arc::clone(&seed.slot)));
        self.publish_table(&slots);
        // Tasks stranded by a total-failure episode resume here.
        let parked: Vec<Task<Vec<u8>>> = std::mem::take(&mut *self.parked.lock());
        self.recover_tasks(&slots, parked);
        drop(slots);
        // Hand the connections to the reactor only after they are
        // published members, so the death path always finds them.
        for seed in connected {
            let _ = self.reactor_tx.send(ReactorCmd::Register(seed));
        }
        self.wake();
        let now = self.metrics.now();
        self.metrics.departures.reset(now);
        self.metrics.set_blackout_until(now + self.rate_window);
        self.metrics.reconfiguring.store(false, Ordering::SeqCst);
        Ok(added)
    }

    fn remove_workers_impl(&self, n: u32) -> Result<u32, String> {
        let mut slots = self.slots.lock();
        if slots.len() as u32 <= n {
            return Err(format!(
                "cannot remove {n} of {} workers (at least one must remain)",
                slots.len()
            ));
        }
        let victims: Vec<Arc<SlotShared>> = {
            let keep = slots.len() - n as usize;
            slots.split_off(keep)
        };
        // Publish-before-close, as everywhere.
        self.publish_table(&slots);
        let mut removed = 0;
        for victim in victims {
            victim.retiring.store(true, Ordering::SeqCst);
            // Staged tasks move to survivors; in-flight tasks finish at
            // the daemon and flow back through the still-registered
            // connection. The reactor sees the closed queue and sends
            // the Goodbye.
            let mut stolen = victim.queue.close();
            for (i, task) in stolen.drain(..).enumerate() {
                let target = &slots[i % slots.len()];
                let mut one = vec![task];
                let accepted = target.queue.push_batch(&mut one);
                debug_assert!(accepted, "survivor queues are open under the lock");
            }
            self.retired_slots.lock().push(victim);
            removed += 1;
        }
        drop(slots);
        self.wake();
        let now = self.metrics.now();
        self.metrics.departures.reset(now);
        self.metrics.set_blackout_until(now + self.rate_window);
        Ok(removed)
    }

    fn rebalance_impl(&self) -> bool {
        let slots = self.slots.lock();
        if slots.len() < 2 {
            return false;
        }
        // Only the *local* staging queues can be rebalanced; what is on
        // the wire or at a daemon is committed.
        let lens: Vec<usize> = slots.iter().map(|s| s.queue.len()).collect();
        let max = *lens.iter().max().expect("non-empty");
        let min = *lens.iter().min().expect("non-empty");
        if max - min <= 1 {
            return false;
        }
        let mut all: Vec<Task<Vec<u8>>> = Vec::new();
        for s in slots.iter() {
            all.extend(s.queue.drain_open());
        }
        let moved = !all.is_empty();
        let mut per: Vec<Vec<Task<Vec<u8>>>> = slots.iter().map(|_| Vec::new()).collect();
        for (i, task) in all.into_iter().enumerate() {
            per[i % slots.len()].push(task);
        }
        for (s, mut chunk) in slots.iter().zip(per) {
            let accepted = s.queue.push_batch(&mut chunk);
            debug_assert!(accepted, "open under the membership lock");
        }
        drop(slots);
        if moved {
            self.wake();
        }
        moved
    }

    /// Fault injection: severs `n` slots' sockets. Recovery is
    /// asynchronous (the reactor runs the death path when it observes
    /// the hangup), so callers observe the loss through `workers_lost`,
    /// like an external daemon crash.
    fn kill_workers_impl(&self, n: u32) -> Result<u32, String> {
        let victims: Vec<Arc<SlotShared>> = {
            let slots = self.slots.lock();
            let live: Vec<&Arc<SlotShared>> = slots
                .iter()
                .filter(|s| !s.dead.load(Ordering::SeqCst))
                .collect();
            if (live.len() as u32) < n {
                return Err(format!("cannot kill {n} of {} slots", live.len()));
            }
            live[live.len() - n as usize..]
                .iter()
                .map(|s| Arc::clone(s))
                .collect()
        };
        for slot in victims {
            *slot.suspect_reason.lock() = Some("connection severed (fault injection)".into());
            slot.sever();
        }
        Ok(n)
    }

    fn sense_impl(&self, now: Time) -> SensorSnapshot {
        let table = self.table.load();
        let backlogs: Vec<u64> = table.iter().map(|s| s.backlog() as u64).collect();
        let mut snap = SensorSnapshot::empty(now);
        snap.arrival_rate = self.metrics.arrivals.rate(now);
        snap.departure_rate = self.metrics.departures.rate(now);
        snap.num_workers = table.len() as u32;
        snap.remote_workers = table.len() as u32;
        snap.queue_variance = queue_variance(&backlogs);
        snap.queued_tasks = backlogs.iter().sum();
        let mut service = Welford::new();
        let mut rtt_sum = 0.0;
        let mut rtt_n = 0u32;
        let mut send_depth = 0u64;
        for slot in table.iter() {
            service.merge(&slot.service.lock());
            let rtt = slot.rtt_ms();
            if rtt > 0.0 {
                rtt_sum += rtt;
                rtt_n += 1;
            }
            send_depth += slot.send_q_depth.load(Ordering::Relaxed) as u64;
        }
        for slot in self.retired_slots.lock().iter() {
            service.merge(&slot.service.lock());
        }
        snap.service_time = service.mean();
        if rtt_n > 0 {
            snap.net_rtt_ms = rtt_sum / f64::from(rtt_n);
        }
        snap.net_send_queue_depth = send_depth;
        snap.reactor_loop_lag_us = self.metrics.reactor_lag_us.load(Ordering::Relaxed) as f64;
        snap.end_of_stream = self.metrics.end_of_stream.load(Ordering::SeqCst);
        snap.workers_lost = self.metrics.workers_lost.load(Ordering::SeqCst);
        let mut open = 0u32;
        let mut backoff_ms = 0.0f64;
        for es in &self.endpoints {
            let b = es.breaker.lock();
            if b.state == BreakerState::Open {
                open += 1;
            }
            // Report the worst backoff among endpoints with a live
            // failure history — endpoints at rest contribute nothing.
            if b.failures > 0 {
                backoff_ms = backoff_ms.max(b.backoff.as_secs_f64() * 1e3);
            }
        }
        snap.circuit_open_count = open;
        snap.reconnect_backoff_ms = backoff_ms;
        snap.tasks_retried = self.metrics.tasks_retried.load(Ordering::SeqCst);
        snap.speculative_wins = self.metrics.spec_wins.load(Ordering::SeqCst);
        snap.hedges_launched = self.metrics.hedges_launched.load(Ordering::SeqCst);
        snap.hedge_wins = self.metrics.hedge_wins.load(Ordering::SeqCst);
        if let Some(b) = &self.budget {
            snap.retry_budget_tokens = b.tokens();
        }
        snap.reconfiguring =
            self.metrics.reconfiguring.load(Ordering::SeqCst) || self.metrics.in_blackout(now);
        let bits = self.metrics.last_arrival_bits.load(Ordering::Relaxed);
        if bits != 0 {
            snap.idle_for = (now - f64::from_bits(bits)).max(0.0);
        }
        snap
    }

    // -- dispatch (the emitter's task path; the farm's logic verbatim) --

    fn dispatch(
        &self,
        reader: &mut ReadHandle<Vec<Arc<SlotShared>>>,
        sched: SchedPolicy,
        items: &mut Vec<Task<Vec<u8>>>,
    ) {
        while !items.is_empty() {
            let generation = self.table.generation();
            let table = Arc::clone(reader.get());
            if table.is_empty() {
                if self.terminating.load(Ordering::SeqCst) {
                    items.clear();
                    return;
                }
                self.park_tasks(items);
                if self.table.generation() == generation {
                    return;
                }
                items.append(&mut self.parked.lock());
                continue;
            }
            let n = table.len();
            let mut per: Vec<Vec<Task<Vec<u8>>>> = (0..n).map(|_| Vec::new()).collect();
            match sched {
                SchedPolicy::RoundRobin => {
                    for task in items.drain(..) {
                        let i = self.rr_cursor.fetch_add(1, Ordering::Relaxed) % n;
                        per[i].push(task);
                    }
                }
                SchedPolicy::ShortestQueue => {
                    let mut lens: Vec<usize> = table.iter().map(|s| s.backlog()).collect();
                    for task in items.drain(..) {
                        let i = (0..n).min_by_key(|&i| lens[i]).expect("non-empty");
                        lens[i] += 1;
                        per[i].push(task);
                    }
                }
            }
            for (i, chunk) in per.iter_mut().enumerate() {
                if !table[i].queue.push_batch(chunk) {
                    items.append(chunk);
                }
            }
            if items.is_empty() {
                return;
            }
            if self.table.generation() == generation {
                items.clear();
                return;
            }
        }
    }
}

impl<Out: Send + 'static> FarmControl for PoolShared<Out> {
    fn sense(&self, now: Time) -> SensorSnapshot {
        self.sense_impl(now)
    }

    fn add_workers(&self, n: u32) -> Result<u32, String> {
        self.add_workers_impl(n)
    }

    fn remove_workers(&self, n: u32) -> Result<u32, String> {
        self.remove_workers_impl(n)
    }

    fn rebalance(&self) -> bool {
        self.rebalance_impl()
    }

    fn num_workers(&self) -> usize {
        self.table.load().len()
    }

    fn kill_workers(&self, n: u32) -> Result<u32, String> {
        self.kill_workers_impl(n)
    }

    fn workers_lost(&self) -> u64 {
        self.metrics.workers_lost.load(Ordering::SeqCst)
    }

    fn events(&self) -> Vec<FarmEvent> {
        self.events.lock().clone()
    }
}

// -- the reactor -------------------------------------------------------

/// Per-connection reactor state: decoder, keystreams and the send queue.
/// Everything here is owned by the reactor thread alone.
struct Conn {
    slot: Arc<SlotShared>,
    /// Raw fd the connection is registered under (the stream itself may
    /// be locked briefly during I/O; interest toggles must not wait).
    fd: RawFd,
    decoder: Decoder,
    cipher_in: Option<StreamCipher>,
    cipher_out: Option<StreamCipher>,
    sendq: SendQueue,
    /// Whether `EPOLLOUT` interest is currently registered.
    want_write: bool,
    /// The retirement Goodbye has been queued (at most once).
    goodbye_queued: bool,
}

/// Drains a readable socket through the decoder and resolves frames.
/// Returns the connection's death reason, if it reached one.
fn service_readable<Out: Send + 'static>(
    shared: &Arc<PoolShared<Out>>,
    scratch: &mut [u8],
    out: &mut Vec<(u64, Out)>,
    conn: &mut Conn,
    closed_hint: bool,
) -> Option<String> {
    let mut reads = 0;
    loop {
        let read = {
            let guard = conn.slot.stream.lock();
            let Some(stream) = guard.as_ref() else {
                return Some("connection closed".to_owned());
            };
            (&*stream).read(scratch)
        };
        match read {
            Ok(0) => return Some("connection closed".to_owned()),
            Ok(n) => {
                if let Some(c) = conn.cipher_in.as_mut() {
                    let t0 = Instant::now();
                    c.apply(&mut scratch[..n]);
                    shared
                        .meter
                        .record_cipher(n as u64, t0.elapsed().as_nanos() as u64);
                }
                conn.decoder.extend(&scratch[..n]);
                loop {
                    match conn.decoder.next_frame_view() {
                        Ok(Some(v)) => {
                            shared.handle_slot_frame(&conn.slot, v.ftype, v.seq, v.payload, out);
                        }
                        Ok(None) => break,
                        Err(ProtoError::Oversized { len }) => {
                            return Some(format!(
                                "protocol violation: frame announcing {len} bytes"
                            ));
                        }
                    }
                }
                reads += 1;
                // A short read means the socket is drained; a full one
                // may hide more, but after a fairness cap we yield and
                // let level-triggered epoll re-signal the rest.
                if n < scratch.len() || reads >= MAX_READS_PER_EVENT {
                    return None;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Spurious wakeup or drained socket — unless the kernel
                // already flagged the connection closed (ERR with nothing
                // buffered), in which case reads will never progress.
                return closed_hint.then(|| "connection closed".to_owned());
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Some(format!("read error: {e}")),
        }
    }
}

/// Fills a slot's send queue from its staging queue (recording in-flight
/// entries first), flushes it with vectored writes, and toggles write
/// interest. Returns the connection's death reason, if it reached one.
fn pump_conn<Out: Send + 'static>(
    shared: &Arc<PoolShared<Out>>,
    poller: &Poller,
    buffers: &mut BufferPool,
    batch: &mut Vec<Task<Vec<u8>>>,
    conn: &mut Conn,
) -> Option<String> {
    let slot = &conn.slot;
    // Fill: encode staged wire batches until the queue runs dry, closes,
    // or the send queue hits its high-water mark (backpressure).
    while conn.sendq.bytes() < SENDQ_HIGH_WATER {
        match slot.queue.try_pop_batch(WIRE_BATCH, batch) {
            TryPop::Got => {
                // Record in-flight BEFORE queueing bytes: there is no
                // window in which a task exists only as wire bytes. The
                // `dead` check mirrors the old writer-thread race guard;
                // with the death path on this same thread it is merely
                // defensive.
                let fresh = {
                    let mut inflight = slot.inflight.lock();
                    if slot.dead.load(Ordering::SeqCst) {
                        None
                    } else {
                        let now = Instant::now();
                        // Count only *fresh* inserts: a recovery replay
                        // can route the same sequence number back onto
                        // this slot while a stale copy is still recorded,
                        // and counting it twice would leak
                        // `inflight_count` forever.
                        let mut fresh = 0usize;
                        for t in batch.iter() {
                            let entry = InflightEntry {
                                item: t.item.clone(),
                                sent_at: now,
                            };
                            if inflight.insert(t.seq, entry).is_none() {
                                fresh += 1;
                            }
                        }
                        Some(fresh)
                    }
                };
                let Some(fresh) = fresh else {
                    // Died under us before these tasks were recorded
                    // anywhere a harvest could see: replay them directly.
                    let slots = shared.slots.lock();
                    shared.recover_tasks(&slots, std::mem::take(batch));
                    break;
                };
                slot.inflight_count.fetch_add(fresh, Ordering::SeqCst);
                let mut buf = buffers.get();
                let frames = batch.len();
                for t in batch.drain(..) {
                    encode_frame(&mut buf, FrameType::Task, t.seq, &t.item);
                }
                if let Some(c) = conn.cipher_out.as_mut() {
                    let t0 = Instant::now();
                    c.apply(&mut buf);
                    shared
                        .meter
                        .record_cipher(buf.len() as u64, t0.elapsed().as_nanos() as u64);
                }
                conn.sendq.push(buf, frames);
            }
            TryPop::Empty => break,
            TryPop::Closed => {
                // Retirement or shutdown: tell the daemon to finish
                // pending work and close — once, and never on a corpse.
                if !conn.goodbye_queued {
                    conn.goodbye_queued = true;
                    if !slot.dead.load(Ordering::SeqCst) {
                        let mut buf = buffers.get();
                        encode_frame(&mut buf, FrameType::Goodbye, 0, &[]);
                        if let Some(c) = conn.cipher_out.as_mut() {
                            let t0 = Instant::now();
                            c.apply(&mut buf);
                            shared
                                .meter
                                .record_cipher(buf.len() as u64, t0.elapsed().as_nanos() as u64);
                        }
                        conn.sendq.push(buf, 1);
                    }
                }
                break;
            }
        }
    }
    // Flush: one vectored write per call services many wire batches.
    let mut death = None;
    let want_write = if conn.sendq.is_empty() {
        false
    } else {
        let guard = slot.stream.lock();
        match guard.as_ref() {
            None => {
                death = Some("connection closed".to_owned());
                false
            }
            Some(stream) => {
                let mut w = stream;
                match conn.sendq.write_to(&mut w, buffers) {
                    Ok(WriteOutcome::Drained) => false,
                    Ok(WriteOutcome::Blocked) => true,
                    Err(e) => {
                        death = Some(format!("write error: {e}"));
                        false
                    }
                }
            }
        }
    };
    if death.is_none() && want_write != conn.want_write {
        let interest = if want_write {
            Interest::READ_WRITE
        } else {
            Interest::READ
        };
        if poller.modify(conn.fd, slot.id, interest).is_ok() {
            conn.want_write = want_write;
        }
    }
    slot.send_q_depth
        .store(conn.sendq.frames(), Ordering::Relaxed);
    death
}

/// The single-reactor event loop: owns every connection, the poller, the
/// timer wheel and the frame-buffer pool. One instance, one thread, any
/// number of slots.
struct Reactor<Out: Send + 'static> {
    shared: Arc<PoolShared<Out>>,
    poller: Poller,
    waker: Waker,
    cmds: Receiver<ReactorCmd>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel<TimerKey>,
    buffers: BufferPool,
    /// Socket read chunk, reused across every connection.
    scratch: Vec<u8>,
    /// Reused readiness-event and due-timer buffers.
    events: Vec<Event>,
    due: Vec<TimerKey>,
    /// Reused wire-batch staging buffer.
    batch: Vec<Task<Vec<u8>>>,
    /// Reused pump-order scratch (round-robin fairness across slots).
    order: Vec<u64>,
    pump_cursor: usize,
    /// Decoded results staged per connection service, then batched into
    /// the collector channel.
    out: Vec<(u64, Out)>,
    heartbeat_period: Duration,
    failure_timeout: Duration,
    stopping: bool,
}

impl<Out: Send + 'static> Reactor<Out> {
    fn run(mut self) {
        let now = Instant::now();
        self.wheel
            .arm(now + self.heartbeat_period, TimerKey::Heartbeat);
        if self.shared.resilience.task_deadline.is_some()
            || self.shared.resilience.hedge_quantile.is_some()
        {
            self.wheel
                .arm(now + self.heartbeat_period, TimerKey::SpecSweep);
        }
        loop {
            self.drain_cmds();
            self.fire_timers();
            self.pump_all();
            if self.stopping {
                self.finalize();
                return;
            }
            let timeout = self
                .wheel
                .next_deadline()
                .map(|d| d.saturating_duration_since(Instant::now()));
            self.events.clear();
            let mut events = std::mem::take(&mut self.events);
            if let Err(e) = self.poller.wait(&mut events, timeout) {
                // `Poller::wait` retries EINTR internally, so any error
                // surfacing here means the poller itself is broken and
                // no readiness will ever be observed again. Escalate to
                // a pool shutdown instead of busy-spinning on the error.
                self.poison(&e);
            }
            self.handle_events(&events);
            self.events = events;
        }
    }

    /// Poller-failure escalation: fail every connection (recovering
    /// in-flight work), mark the pool poisoned so stranded tasks are
    /// reported lost rather than parked forever (the collector's
    /// convergence accounting stays closed and the output stream still
    /// terminates), journal the escalation, and shut the reactor down.
    fn poison(&mut self, err: &std::io::Error) {
        let now = self.shared.metrics.now();
        let msg = format!("reactor: epoll_wait failed: {err}; escalating to pool shutdown");
        self.shared.journal_note(now, &msg);
        self.shared.panics.lock().push(msg);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.finish_conn(token, "reactor poller failed".into());
        }
        // Take the parked backlog under the lock that `park_tasks`
        // serialises on, flipping the poisoned flag inside the critical
        // section: any concurrent parking either lands before the drain
        // (caught here) or observes the flag and reports loss itself.
        let stranded: Vec<Task<Vec<u8>>> = {
            let mut parked = self.shared.parked.lock();
            self.shared.poisoned.store(true, Ordering::SeqCst);
            std::mem::take(&mut *parked)
        };
        for t in stranded {
            self.shared.report_lost(t.seq);
        }
        self.stopping = true;
    }

    fn drain_cmds(&mut self) {
        while let Ok(cmd) = self.cmds.try_recv() {
            match cmd {
                ReactorCmd::Register(seed) => self.register(seed),
                ReactorCmd::Shutdown => self.stopping = true,
            }
        }
    }

    fn register(&mut self, seed: ConnSeed) {
        let token = seed.slot.id;
        let fd = seed.slot.stream.lock().as_ref().map(|s| s.as_raw_fd());
        let Some(fd) = fd else {
            return; // severed before registration: nothing to watch
        };
        if let Err(e) = self.poller.add(fd, token, Interest::READ) {
            // Pathological (fd limit, etc.): treat as an immediate death
            // so the slot's tasks are recovered rather than stranded.
            if let Some(stream) = seed.slot.stream.lock().take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            self.shared
                .on_slot_death(&seed.slot, &format!("epoll register: {e}"));
            return;
        }
        self.wheel.arm(
            Instant::now() + self.failure_timeout,
            TimerKey::FailureDeadline(token),
        );
        self.conns.insert(
            token,
            Conn {
                slot: seed.slot,
                fd,
                decoder: seed.decoder,
                cipher_in: seed.cipher_in,
                cipher_out: seed.cipher_out,
                sendq: SendQueue::new(),
                want_write: false,
                goodbye_queued: false,
            },
        );
    }

    fn handle_events(&mut self, events: &[Event]) {
        let shared = Arc::clone(&self.shared);
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut out = std::mem::take(&mut self.out);
        let mut deaths: Vec<(u64, String)> = Vec::new();
        for ev in events {
            if ev.token == WAKER_TOKEN {
                self.waker.drain();
                continue;
            }
            if !ev.readable {
                continue; // write readiness alone: the pump phase flushes
            }
            let Some(conn) = self.conns.get_mut(&ev.token) else {
                continue; // already finished this tick
            };
            let death = service_readable(&shared, &mut scratch, &mut out, conn, ev.closed);
            // Forward the decoded batch per connection, preserving the
            // old reader-thread batching shape.
            if !out.is_empty() {
                let now = shared.metrics.now();
                shared.metrics.departures.record_n(now, out.len() as u64);
                let _ = shared
                    .results_tx
                    .send(PoolMsg::Batch(std::mem::take(&mut out)));
            }
            if let Some(reason) = death {
                deaths.push((ev.token, reason));
            }
        }
        self.scratch = scratch;
        self.out = out;
        for (token, reason) in deaths {
            self.finish_conn(token, reason);
        }
    }

    fn fire_timers(&mut self) {
        let mut due = std::mem::take(&mut self.due);
        due.clear();
        let lag = self.wheel.pop_due(Instant::now(), &mut due);
        if !due.is_empty() {
            self.shared
                .metrics
                .reactor_lag_us
                .store(lag.as_micros() as u64, Ordering::Relaxed);
        }
        let mut deaths: Vec<(u64, String)> = Vec::new();
        for key in due.drain(..) {
            match key {
                TimerKey::Heartbeat => {
                    self.send_heartbeats();
                    self.wheel
                        .arm(Instant::now() + self.heartbeat_period, TimerKey::Heartbeat);
                }
                TimerKey::SpecSweep => {
                    self.shared.deadline_sweep();
                    self.wheel
                        .arm(Instant::now() + self.heartbeat_period, TimerKey::SpecSweep);
                }
                TimerKey::FailureDeadline(token) => {
                    let Some(conn) = self.conns.get(&token) else {
                        continue; // stale key for a finished connection
                    };
                    let slot = &conn.slot;
                    let silent_for = slot.last_seen.lock().elapsed();
                    if !slot.retiring.load(Ordering::SeqCst) && silent_for > self.failure_timeout {
                        *slot.suspect_reason.lock() = Some(format!(
                            "heartbeat deadline missed: silent for {silent_for:?} (timeout {:?})",
                            self.failure_timeout
                        ));
                        deaths.push((token, "connection closed".to_owned()));
                    } else {
                        // Any inbound frame pushed the deadline out; the
                        // daemon's busy pulse keeps a slot mid-long-task
                        // alive through exactly this re-arm.
                        let due = *slot.last_seen.lock() + self.failure_timeout;
                        self.wheel.arm(due, TimerKey::FailureDeadline(token));
                    }
                }
                TimerKey::BackoffExpire(idx) => {
                    // Bookkeeping only: never a connect attempt — an Open
                    // circuit is probed solely through `pick_endpoint`
                    // when an actuator asks for capacity.
                    if let Some(es) = self.shared.endpoints.get(idx) {
                        es.breaker.lock().expire_window(&self.shared.resilience);
                    }
                }
            }
        }
        self.due = due;
        for (token, reason) in deaths {
            self.finish_conn(token, reason);
        }
    }

    /// Queues a heartbeat ping on every live connection (the pump phase
    /// flushes them, coalesced with any task frames).
    fn send_heartbeats(&mut self) {
        for conn in self.conns.values_mut() {
            let slot = &conn.slot;
            if slot.dead.load(Ordering::SeqCst) || slot.retiring.load(Ordering::SeqCst) {
                continue;
            }
            let ping = self.shared.next_ping.fetch_add(1, Ordering::Relaxed);
            slot.pings.lock().insert(ping, Instant::now());
            let mut buf = self.buffers.get();
            encode_frame(&mut buf, FrameType::Heartbeat, ping, &[]);
            if let Some(c) = conn.cipher_out.as_mut() {
                let t0 = Instant::now();
                c.apply(&mut buf);
                self.shared
                    .meter
                    .record_cipher(buf.len() as u64, t0.elapsed().as_nanos() as u64);
            }
            conn.sendq.push(buf, 1);
        }
    }

    /// One pump pass over every connection, rotating the start slot so a
    /// chatty connection cannot starve the rest.
    fn pump_all(&mut self) {
        self.order.clear();
        self.order.extend(self.conns.keys().copied());
        let n = self.order.len();
        if n == 0 {
            return;
        }
        self.pump_cursor = self.pump_cursor.wrapping_add(1);
        let start = self.pump_cursor % n;
        let mut deaths: Vec<(u64, String)> = Vec::new();
        for i in 0..n {
            let token = self.order[(start + i) % n];
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            if let Some(reason) = pump_conn(
                &self.shared,
                &self.poller,
                &mut self.buffers,
                &mut self.batch,
                conn,
            ) {
                deaths.push((token, reason));
            }
        }
        for (token, reason) in deaths {
            self.finish_conn(token, reason);
        }
    }

    /// Ends one connection: deregisters and closes the socket, then
    /// decides between a clean retirement and the crash-recovery death
    /// path — the same decision the dedicated reader thread used to make
    /// on exit.
    fn finish_conn(&mut self, token: u64, io_reason: String) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        let slot = conn.slot;
        if let Some(stream) = slot.stream.lock().take() {
            let _ = self.poller.delete(stream.as_raw_fd());
            let _ = stream.shutdown(Shutdown::Both);
        }
        slot.send_q_depth.store(0, Ordering::Relaxed);
        let reason = slot.suspect_reason.lock().take().unwrap_or(io_reason);
        if self.shared.terminating.load(Ordering::SeqCst) {
            return; // pool shutdown: the stream already completed.
        }
        let unresolved = slot.inflight_count.load(Ordering::SeqCst) > 0 || !slot.queue.is_empty();
        if slot.retiring.load(Ordering::SeqCst) && !unresolved {
            return; // clean cooperative retirement.
        }
        // Abrupt death (or a retiring daemon that crashed with work still
        // unresolved): recover everything this slot held.
        self.shared.on_slot_death(&slot, &reason);
        // Schedule the breaker's failure-window bookkeeping tick.
        if let Some(idx) = self.shared.endpoint_index(&slot.endpoint) {
            let window = self.shared.resilience.failure_window();
            self.wheel
                .arm(Instant::now() + window, TimerKey::BackoffExpire(idx));
        }
    }

    /// Shutdown: flush every remaining Goodbye with a bounded blocking
    /// write, then close everything. Teardown errors are surfaced in the
    /// pool's disconnect log instead of silently dropped.
    fn finalize(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            let slot = &conn.slot;
            if !conn.goodbye_queued && !slot.dead.load(Ordering::SeqCst) {
                let mut buf = self.buffers.get();
                encode_frame(&mut buf, FrameType::Goodbye, 0, &[]);
                if let Some(c) = conn.cipher_out.as_mut() {
                    let t0 = Instant::now();
                    c.apply(&mut buf);
                    self.shared
                        .meter
                        .record_cipher(buf.len() as u64, t0.elapsed().as_nanos() as u64);
                }
                conn.sendq.push(buf, 1);
            }
            if let Some(stream) = slot.stream.lock().take() {
                let _ = self.poller.delete(stream.as_raw_fd());
                if !conn.sendq.is_empty() {
                    // Bounded blocking flush: a wedged daemon cannot hang
                    // shutdown for more than the write timeout.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                    let mut w = &stream;
                    if let Err(e) = conn.sendq.write_to(&mut w, &mut self.buffers) {
                        self.shared.disconnects.lock().push(format!(
                            "slot {} ({}): goodbye failed: {e}",
                            slot.id, slot.endpoint.addr
                        ));
                    }
                }
                let _ = stream.shutdown(Shutdown::Both);
            }
            slot.send_q_depth.store(0, Ordering::Relaxed);
        }
    }
}

/// Builder for a [`RemoteWorkerPool`].
pub struct RemotePoolBuilder<In, Out> {
    name: String,
    endpoints: Vec<Endpoint>,
    workload: String,
    encode: EncodeFn<In>,
    decode: DecodeFn<Out>,
    initial_workers: u32,
    max_workers: u32,
    sched: SchedPolicy,
    gather: GatherPolicy,
    clock: Arc<dyn Clock>,
    rate_window: f64,
    heartbeat_period: Duration,
    failure_timeout: Duration,
    handshake_timeout: Duration,
    resilience: ResilienceConfig,
    journal: Option<Arc<Journal>>,
}

impl<In: Send + 'static, Out: Send + 'static> RemotePoolBuilder<In, Out> {
    /// A builder over the daemon workload name and the item codecs.
    pub fn new(
        workload: impl Into<String>,
        encode: impl Fn(In) -> Vec<u8> + Send + Sync + 'static,
        decode: impl Fn(&[u8]) -> Out + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: "rfarm".into(),
            endpoints: Vec::new(),
            workload: workload.into(),
            encode: Arc::new(encode),
            decode: Arc::new(decode),
            initial_workers: 1,
            max_workers: 64,
            sched: SchedPolicy::default(),
            gather: GatherPolicy::default(),
            clock: Arc::new(RealClock::new()),
            rate_window: 2.0,
            heartbeat_period: Duration::from_millis(50),
            failure_timeout: Duration::from_millis(500),
            handshake_timeout: Duration::from_secs(5),
            resilience: ResilienceConfig::default(),
            journal: None,
        }
    }

    /// Adds a daemon endpoint the pool may open slots against. Slots are
    /// placed round-robin over all registered endpoints.
    pub fn endpoint(mut self, e: Endpoint) -> Self {
        self.endpoints.push(e);
        self
    }

    /// Pool name (thread names, diagnostics).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Attaches an ops journal: slot losses, remote panics, undeliverable
    /// loss notifications and reactor escalations are recorded into it.
    pub fn journal(mut self, journal: Arc<Journal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Initial number of remote slots (≥ 1).
    pub fn initial_workers(mut self, n: u32) -> Self {
        self.initial_workers = n.max(1);
        self
    }

    /// Maximum number of remote slots.
    pub fn max_workers(mut self, n: u32) -> Self {
        self.max_workers = n.max(1);
        self
    }

    /// Emitter scheduling policy.
    pub fn sched(mut self, p: SchedPolicy) -> Self {
        self.sched = p;
        self
    }

    /// Collector gathering policy.
    pub fn gather(mut self, p: GatherPolicy) -> Self {
        self.gather = p;
        self
    }

    /// Time source for metrics.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Window length of the rate estimators, seconds.
    pub fn rate_window(mut self, secs: f64) -> Self {
        self.rate_window = secs;
        self
    }

    /// Heartbeat send period. The failure timeout should be several
    /// periods; the daemon's busy pulse answers even mid-task, so the
    /// timeout need *not* exceed one task's service time.
    pub fn heartbeat_period(mut self, d: Duration) -> Self {
        self.heartbeat_period = d;
        self
    }

    /// Silence deadline after which a slot is declared dead.
    pub fn failure_timeout(mut self, d: Duration) -> Self {
        self.failure_timeout = d;
        self
    }

    /// How long a connect + handshake may take before the endpoint is
    /// declared unreachable. Clamped (not panicking) into `[1ms, 1h]` at
    /// build time, like every other duration knob.
    pub fn handshake_timeout(mut self, d: Duration) -> Self {
        self.handshake_timeout = d;
        self
    }

    /// Replaces the whole resilience policy (backoff, breaker, deadline).
    pub fn resilience(mut self, cfg: ResilienceConfig) -> Self {
        self.resilience = cfg;
        self
    }

    /// Reconnect backoff bounds: first step and saturation cap for the
    /// decorrelated-jitter schedule.
    pub fn reconnect_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.resilience.reconnect_base = base;
        self.resilience.reconnect_cap = cap;
        self
    }

    /// Endpoint failures (within the failure window) that open the
    /// circuit.
    pub fn breaker_threshold(mut self, n: u32) -> Self {
        self.resilience.breaker_threshold = n;
        self
    }

    /// Minimum quarantine an Open circuit serves before a Half-Open
    /// probe is due.
    pub fn breaker_cooldown(mut self, d: Duration) -> Self {
        self.resilience.breaker_cooldown = d;
        self
    }

    /// Soft per-task deadline enabling speculative re-execution of
    /// overdue in-flight tasks.
    pub fn task_deadline(mut self, d: Duration) -> Self {
        self.resilience.task_deadline = Some(d);
        self
    }

    /// Seed for the reconnect-jitter RNG (deterministic replay).
    pub fn resilience_seed(mut self, seed: u64) -> Self {
        self.resilience.seed = seed;
        self
    }

    /// Most overdue tasks one slot may re-dispatch per deadline sweep
    /// (raised to ≥ 1 at build time).
    pub fn spec_sweep_limit(mut self, n: usize) -> Self {
        self.resilience.spec_sweep_limit = n;
        self
    }

    /// Enables the retry budget gating every re-dispatch path (see
    /// [`RetryBudgetConfig`]).
    pub fn retry_budget(mut self, ratio: f64, min_tokens: f64) -> Self {
        self.resilience.retry_budget = Some(RetryBudgetConfig { ratio, min_tokens });
        self
    }

    /// Enables hedged dispatch at the given rolling latency quantile
    /// (e.g. `0.95`; clamped into `[0.01, 0.999]` at build time).
    pub fn hedge_quantile(mut self, q: f64) -> Self {
        self.resilience.hedge_quantile = Some(q);
        self
    }

    /// Connects the initial slots and starts the pool.
    ///
    /// Fails if no endpoint was registered or fewer than the requested
    /// initial slots could be connected.
    pub fn build(self) -> Result<RemoteWorkerPool<In, Out>, String> {
        if self.endpoints.is_empty() {
            return Err("no endpoints registered".into());
        }
        let resilience = self.resilience.sanitize();
        let heartbeat_period = clamp_duration(self.heartbeat_period);
        let failure_timeout = clamp_duration(self.failure_timeout);
        let handshake_timeout = clamp_duration(self.handshake_timeout);
        // One jitter stream per endpoint, derived from the policy seed,
        // so a fixed seed replays the whole reconnect schedule.
        let endpoint_states: Vec<EndpointState> = self
            .endpoints
            .iter()
            .enumerate()
            .map(|(i, e)| EndpointState {
                endpoint: e.clone(),
                breaker: Mutex::new(Breaker::new(
                    &resilience,
                    resilience
                        .seed
                        .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                )),
            })
            .collect();
        let (input_tx, input_rx) = unbounded::<StreamMsg<In>>();
        let (results_tx, results_rx) = unbounded::<PoolMsg<Out>>();
        let (output_tx, output_rx) = unbounded::<StreamMsg<Out>>();
        let (reactor_tx, reactor_rx) = unbounded::<ReactorCmd>();

        // The reactor's poller and its cross-thread waker exist before
        // any slot does: a failed epoll/eventfd setup fails the build.
        let poller = Poller::new().map_err(|e| format!("epoll setup: {e}"))?;
        let waker = Waker::new().map_err(|e| format!("eventfd setup: {e}"))?;
        poller
            .add(waker.raw_fd(), WAKER_TOKEN, Interest::READ)
            .map_err(|e| format!("epoll waker registration: {e}"))?;

        let shared = Arc::new(PoolShared {
            metrics: PoolMetrics {
                clock: Arc::clone(&self.clock),
                arrivals: AtomicRateEstimator::new(self.rate_window),
                departures: AtomicRateEstimator::new(self.rate_window),
                end_of_stream: AtomicBool::new(false),
                reconfiguring: AtomicBool::new(false),
                blackout_until_bits: AtomicU64::new(0),
                last_arrival_bits: AtomicU64::new(0),
                workers_lost: AtomicU64::new(0),
                tasks_retried: AtomicU64::new(0),
                hedges_launched: AtomicU64::new(0),
                hedge_wins: AtomicU64::new(0),
                spec_wins: AtomicU64::new(0),
                spec_dups: AtomicU64::new(0),
                reactor_lag_us: AtomicU64::new(0),
            },
            table: Arc::new(Published::new(Vec::new())),
            slots: Mutex::new(Vec::new()),
            retired_slots: Mutex::new(Vec::new()),
            parked: Mutex::new(Vec::new()),
            panics: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            disconnects: Mutex::new(Vec::new()),
            lost_undelivered: Mutex::new(Vec::new()),
            poisoned: AtomicBool::new(false),
            terminating: AtomicBool::new(false),
            next_slot_id: AtomicU64::new(0),
            next_endpoint: AtomicUsize::new(0),
            next_ping: AtomicU64::new(0),
            rr_cursor: AtomicUsize::new(0),
            results_tx: results_tx.clone(),
            reactor_tx: reactor_tx.clone(),
            waker: waker.clone(),
            decode: Arc::clone(&self.decode),
            endpoints: endpoint_states,
            workload: self.workload.clone(),
            name: self.name.clone(),
            journal: self.journal.clone(),
            meter: Arc::new(CostMeter::new()),
            max_workers: self.max_workers,
            rate_window: self.rate_window,
            handshake_timeout,
            budget: resilience.retry_budget.map(RetryBudget::new),
            resilience,
            latency: Mutex::new(LatencyWindow::new()),
            spec: Mutex::new(SpecRegistry::default()),
            spec_touched: AtomicBool::new(false),
        });

        {
            // Initial slots: all-or-nothing so a misconfigured endpoint
            // fails loudly at build time (no breaker second-guessing —
            // the caller asked for exactly this capacity).
            let mut seeds = Vec::new();
            for i in 0..self.initial_workers {
                let idx = i as usize % shared.endpoints.len();
                let es = &shared.endpoints[idx];
                seeds.push(shared.connect_slot(&es.endpoint)?);
                es.breaker.lock().on_success(&shared.resilience);
            }
            let mut slots = shared.slots.lock();
            slots.extend(seeds.iter().map(|seed| Arc::clone(&seed.slot)));
            shared.publish_table(&slots);
            drop(slots);
            for seed in seeds {
                let _ = reactor_tx.send(ReactorCmd::Register(seed));
            }
        }

        // The reactor: every slot's I/O, every timer, one thread.
        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("{}-reactor", self.name))
                .spawn(move || {
                    Reactor {
                        shared,
                        poller,
                        waker,
                        cmds: reactor_rx,
                        conns: HashMap::new(),
                        wheel: TimerWheel::new(Instant::now(), TICK, WHEEL_SLOTS),
                        buffers: BufferPool::new(POOL_BUFFERS, POOL_BUF_CAP),
                        scratch: vec![0u8; READ_CHUNK],
                        events: Vec::with_capacity(64),
                        due: Vec::new(),
                        batch: Vec::with_capacity(WIRE_BATCH),
                        order: Vec::new(),
                        pump_cursor: 0,
                        out: Vec::new(),
                        heartbeat_period,
                        failure_timeout,
                        stopping: false,
                    }
                    .run()
                })
                .map_err(|e| format!("spawn reactor: {e}"))?
        };

        // Emitter: encode + batch + RCU dispatch (the farm's loop with an
        // encode step fused in), kicking the reactor after each dispatch.
        let emitter = {
            let shared = Arc::clone(&shared);
            let encode = Arc::clone(&self.encode);
            let sched = self.sched;
            std::thread::Builder::new()
                .name(format!("{}-emitter", self.name))
                .spawn(move || {
                    let mut reader = ReadHandle::new(Arc::clone(&shared.table));
                    let mut dispatched = 0u64;
                    let mut batch: Vec<Task<Vec<u8>>> = Vec::with_capacity(DISPATCH_BATCH);
                    'stream: loop {
                        let mut end = false;
                        match input_rx.recv() {
                            Ok(StreamMsg::Item { seq, payload }) => batch.push(Task {
                                seq,
                                item: encode(payload),
                            }),
                            Ok(StreamMsg::End) => end = true,
                            Err(_) => break 'stream,
                        }
                        while !end && batch.len() < DISPATCH_BATCH {
                            match input_rx.try_recv() {
                                Ok(StreamMsg::Item { seq, payload }) => batch.push(Task {
                                    seq,
                                    item: encode(payload),
                                }),
                                Ok(StreamMsg::End) => end = true,
                                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                            }
                        }
                        if !batch.is_empty() {
                            let now = shared.metrics.now();
                            shared.metrics.arrivals.record_n(now, batch.len() as u64);
                            shared
                                .metrics
                                .last_arrival_bits
                                .store(now.to_bits(), Ordering::Relaxed);
                            dispatched += batch.len() as u64;
                            shared.dispatch(&mut reader, sched, &mut batch);
                            shared.wake();
                        }
                        if end {
                            shared.metrics.end_of_stream.store(true, Ordering::SeqCst);
                            let _ = shared.results_tx.send(PoolMsg::Total(dispatched));
                            break 'stream;
                        }
                    }
                })
                .map_err(|e| format!("spawn emitter: {e}"))?
        };

        // Collector: identical convergence protocol to the farm's.
        let collector = {
            let gather = self.gather;
            std::thread::Builder::new()
                .name(format!("{}-collector", self.name))
                .spawn(move || {
                    let mut reorder = ReorderBuffer::new();
                    let mut done = 0u64;
                    let mut emitted = 0u64;
                    let mut expected: Option<u64> = None;
                    for msg in results_rx.iter() {
                        match msg {
                            PoolMsg::Batch(results) => {
                                done += results.len() as u64;
                                for (seq, out) in results {
                                    match gather {
                                        GatherPolicy::Unordered => {
                                            let _ = output_tx.send(StreamMsg::item(seq, out));
                                        }
                                        GatherPolicy::Ordered => {
                                            for item in reorder.push(seq, out) {
                                                let _ =
                                                    output_tx.send(StreamMsg::item(emitted, item));
                                                emitted += 1;
                                            }
                                        }
                                    }
                                }
                            }
                            PoolMsg::Lost(seq) => {
                                done += 1;
                                if gather == GatherPolicy::Ordered {
                                    for item in reorder.skip(seq) {
                                        let _ = output_tx.send(StreamMsg::item(emitted, item));
                                        emitted += 1;
                                    }
                                }
                            }
                            PoolMsg::Total(n) => expected = Some(n),
                        }
                        if expected == Some(done) {
                            let _ = output_tx.send(StreamMsg::End);
                            break;
                        }
                    }
                })
                .map_err(|e| format!("spawn collector: {e}"))?
        };

        Ok(RemoteWorkerPool {
            input: input_tx,
            output: output_rx,
            shared,
            emitter: Some(emitter),
            collector: Some(collector),
            reactor: Some(reactor),
        })
    }
}

/// A running distributed farm over remote `bskel-workerd` slots.
///
/// Same interface as the local `Farm`: an input/output stream pair and a
/// [`FarmControl`] surface for the autonomic manager.
pub struct RemoteWorkerPool<In, Out> {
    input: Sender<StreamMsg<In>>,
    output: Receiver<StreamMsg<Out>>,
    shared: Arc<PoolShared<Out>>,
    emitter: Option<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
    reactor: Option<JoinHandle<()>>,
}

impl<In: Send + 'static, Out: Send + 'static> RemoteWorkerPool<In, Out> {
    /// The input channel: send `StreamMsg::Item`s then `StreamMsg::End`.
    pub fn input(&self) -> Sender<StreamMsg<In>> {
        self.input.clone()
    }

    /// The output channel: items followed by `StreamMsg::End`.
    pub fn output(&self) -> Receiver<StreamMsg<Out>> {
        self.output.clone()
    }

    /// The control surface an ABC binds to.
    pub fn control(&self) -> Arc<dyn FarmControl> {
        Arc::clone(&self.shared) as Arc<dyn FarmControl>
    }

    /// Current number of live remote slots.
    pub fn num_workers(&self) -> usize {
        self.shared.table.load().len()
    }

    /// Cumulative slots lost to failures.
    pub fn workers_lost(&self) -> u64 {
        self.shared.metrics.workers_lost.load(Ordering::SeqCst)
    }

    /// Speculative re-executions the deadline sweep has dispatched.
    pub fn tasks_retried(&self) -> u64 {
        self.shared.metrics.tasks_retried.load(Ordering::SeqCst)
    }

    /// Speculated tasks whose retry copy answered first.
    pub fn speculative_wins(&self) -> u64 {
        self.shared.metrics.spec_wins.load(Ordering::SeqCst)
    }

    /// Late answers for already-resolved speculated tasks that were
    /// dropped instead of double-delivered.
    pub fn duplicates_dropped(&self) -> u64 {
        self.shared.metrics.spec_dups.load(Ordering::SeqCst)
    }

    /// Endpoints currently quarantined by their circuit breaker.
    pub fn circuit_open_count(&self) -> u32 {
        self.shared.open_circuits()
    }

    /// Hedged (quantile-triggered) duplicate dispatches launched.
    pub fn hedges_launched(&self) -> u64 {
        self.shared.metrics.hedges_launched.load(Ordering::SeqCst)
    }

    /// Hedged tasks whose duplicate copy answered first.
    pub fn hedge_wins(&self) -> u64 {
        self.shared.metrics.hedge_wins.load(Ordering::SeqCst)
    }

    /// Tokens left in the retry budget, `None` when no budget is
    /// configured.
    pub fn retry_budget_tokens(&self) -> Option<f64> {
        self.shared.budget.as_ref().map(RetryBudget::tokens)
    }

    /// Accumulated secure-channel costs (zero for plain endpoints) — the
    /// measured counterpart of the simulator's `SslCostModel`.
    pub fn cost_report(&self) -> CostReport {
        self.shared.meter.report()
    }

    fn record_join(&self, who: &str, res: std::thread::Result<()>) {
        if let Err(payload) = res {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                format!("{who}: {s}")
            } else if let Some(s) = payload.downcast_ref::<String>() {
                format!("{who}: {s}")
            } else {
                format!("{who}: panicked (non-string payload)")
            };
            self.shared.panics.lock().push(msg);
        }
    }

    /// Waits for the stream to complete, retires every connection with a
    /// `Goodbye`, and tears everything down. Connection-teardown errors
    /// are surfaced in [`ShutdownReport::disconnects`] instead of being
    /// silently dropped.
    pub fn shutdown(mut self) -> ShutdownReport {
        // Stream completion first (mirrors Farm::shutdown): the caller
        // sent End, the collector exits once all results converged — the
        // reactor must stay alive until then.
        if let Some(e) = self.emitter.take() {
            self.record_join("emitter", e.join());
        }
        if let Some(c) = self.collector.take() {
            self.record_join("collector", c.join());
        }
        self.shared.terminating.store(true, Ordering::SeqCst);
        let slots: Vec<Arc<SlotShared>> = std::mem::take(&mut *self.shared.slots.lock());
        // Closing the queues routes every connection into the reactor's
        // Goodbye path; the reactor's finalize flushes and closes.
        for s in &slots {
            s.queue.close();
        }
        self.shared.table.publish(Vec::new());
        let _ = self.shared.reactor_tx.send(ReactorCmd::Shutdown);
        self.shared.wake();
        if let Some(r) = self.reactor.take() {
            self.record_join("reactor", r.join());
        }
        ShutdownReport {
            worker_panics: std::mem::take(&mut *self.shared.panics.lock()),
            workers_lost: self.shared.metrics.workers_lost.load(Ordering::SeqCst),
            events: std::mem::take(&mut *self.shared.events.lock()),
            disconnects: std::mem::take(&mut *self.shared.disconnects.lock()),
            lost_undelivered: {
                let mut lost = std::mem::take(&mut *self.shared.lost_undelivered.lock());
                lost.sort_unstable();
                lost
            },
        }
    }
}

impl<In, Out> Drop for RemoteWorkerPool<In, Out> {
    fn drop(&mut self) {
        // Best-effort teardown when shutdown() was not called: sever
        // everything (the stream may never complete, so the reactor must
        // not wait on daemons) and reap the reactor.
        let Some(reactor) = self.reactor.take() else {
            return; // shutdown() already ran
        };
        self.shared.terminating.store(true, Ordering::SeqCst);
        let slots: Vec<Arc<SlotShared>> = std::mem::take(&mut *self.shared.slots.lock());
        for s in &slots {
            s.queue.close();
            s.sever();
        }
        self.shared.table.publish(Vec::new());
        let _ = self.shared.reactor_tx.send(ReactorCmd::Shutdown);
        self.shared.waker.wake();
        let _ = reactor.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- resilience-policy configuration (the sweep cap is policy, not a
    //    magic constant) ------------------------------------------------

    #[test]
    fn spec_sweep_limit_defaults_and_is_configurable() {
        assert_eq!(ResilienceConfig::default().spec_sweep_limit, 16);
        let cfg = ResilienceConfig {
            spec_sweep_limit: 3,
            ..ResilienceConfig::default()
        }
        .sanitize();
        assert_eq!(cfg.spec_sweep_limit, 3);
        // A zero cap would silently disable recovery; sanitize floors it.
        let cfg = ResilienceConfig {
            spec_sweep_limit: 0,
            ..ResilienceConfig::default()
        }
        .sanitize();
        assert_eq!(cfg.spec_sweep_limit, 1);
    }

    #[test]
    fn budget_and_hedge_config_sanitize() {
        let cfg = ResilienceConfig {
            retry_budget: Some(RetryBudgetConfig {
                ratio: f64::NAN,
                min_tokens: -3.0,
            }),
            hedge_quantile: Some(7.0),
            ..ResilienceConfig::default()
        }
        .sanitize();
        let b = cfg.retry_budget.unwrap();
        assert_eq!(b.ratio, 0.0);
        assert_eq!(b.min_tokens, 0.0);
        assert!((cfg.hedge_quantile.unwrap() - 0.999).abs() < 1e-12);
    }

    // -- retry-budget token bucket --------------------------------------

    #[test]
    fn retry_budget_floors_deposits_and_forced_charges() {
        let b = RetryBudget::new(RetryBudgetConfig {
            ratio: 0.5,
            min_tokens: 2.0,
        });
        assert!((b.tokens() - 2.0).abs() < 1e-12);
        assert!(b.try_charge(1.0));
        assert!(b.try_charge(1.0));
        assert!(!b.try_charge(1.0)); // empty: discretionary work refused
        b.charge_forced(5.0); // forced work floors at zero, never refuses
        assert_eq!(b.tokens(), 0.0);
        for _ in 0..1000 {
            b.deposit(1.0);
        }
        assert!((b.tokens() - 20.0).abs() < 1e-12); // cap = 10 × floor
    }

    #[test]
    fn zero_budget_refuses_all_discretionary_work() {
        let b = RetryBudget::new(RetryBudgetConfig {
            ratio: 0.0,
            min_tokens: 0.0,
        });
        b.deposit(100.0);
        assert!(!b.try_charge(1.0));
    }

    // -- hedging latency window -----------------------------------------

    #[test]
    fn latency_quantile_needs_min_samples_then_tracks_tail() {
        let mut w = LatencyWindow::new();
        for _ in 0..(HEDGE_MIN_SAMPLES - 1) {
            w.record(0.010);
        }
        assert!(w.quantile(0.95).is_none());
        w.record(0.010);
        let q = w.quantile(0.95).unwrap();
        assert!((q - 0.010).abs() < 1e-9);
        // A slow tail pulls the p95 up without moving the median much.
        for _ in 0..4 {
            w.record(0.500);
        }
        assert!(w.quantile(0.95).unwrap() > 0.010);
        assert!((w.quantile(0.50).unwrap() - 0.010).abs() < 1e-9);
    }

    #[test]
    fn latency_window_wraps_at_capacity() {
        let mut w = LatencyWindow::new();
        for _ in 0..LATENCY_WINDOW {
            w.record(1.0);
        }
        for _ in 0..LATENCY_WINDOW {
            w.record(0.001);
        }
        // The old generation is fully evicted.
        assert!(w.quantile(0.999).unwrap() < 0.01);
    }

    // -- decorrelated-jitter reconnect backoff (property test) ----------

    /// Property: for any failure history, every backoff delay stays in
    /// `[reconnect_base, reconnect_cap]`, and the whole schedule is a
    /// deterministic function of the resilience seed.
    #[test]
    fn breaker_backoff_bounded_and_deterministic_per_seed() {
        let cfg = ResilienceConfig {
            reconnect_base: Duration::from_millis(20),
            reconnect_cap: Duration::from_millis(700),
            ..ResilienceConfig::default()
        }
        .sanitize();
        for seed in [0u64, 1, 0xB5E7, 0xDEAD_BEEF, u64::MAX] {
            let schedule = |s: u64| -> Vec<Duration> {
                let mut b = Breaker::new(&cfg, s);
                let mut out = Vec::new();
                for i in 0..200 {
                    b.on_failure(&cfg);
                    out.push(b.backoff);
                    // Interleave successes so the schedule also covers
                    // post-reset growth, not just saturation at the cap.
                    if i % 17 == 16 {
                        b.on_success(&cfg);
                    }
                }
                out
            };
            let a = schedule(seed);
            for (i, d) in a.iter().enumerate() {
                assert!(
                    *d >= cfg.reconnect_base,
                    "seed {seed}, step {i}: {d:?} fell below base {:?}",
                    cfg.reconnect_base
                );
                assert!(
                    *d <= cfg.reconnect_cap,
                    "seed {seed}, step {i}: {d:?} exceeded cap {:?}",
                    cfg.reconnect_cap
                );
            }
            // Deterministic per seed: same seed, same schedule ...
            assert_eq!(a, schedule(seed));
        }
        // ... and different seeds actually diverge (jitter is real).
        let cfg2 = cfg.clone();
        let mut b1 = Breaker::new(&cfg2, 1);
        let mut b2 = Breaker::new(&cfg2, 2);
        let mut diverged = false;
        for _ in 0..50 {
            b1.on_failure(&cfg2);
            b2.on_failure(&cfg2);
            if b1.backoff != b2.backoff {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "distinct seeds produced identical schedules");
    }
}
