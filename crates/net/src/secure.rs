//! Toy secure channel: a keystream cipher plus a deliberately expensive
//! handshake, with per-byte and per-handshake cost metering.
//!
//! **This is NOT cryptography.** The cipher is an xorshift64* keystream and
//! the "key exchange" is two nonces mixed through splitmix64 — trivially
//! breakable. Its purpose is to be a *measurable stand-in* for a real
//! secure channel so the simulator's `SslCostModel` (handshake latency +
//! per-byte throughput tax) can be calibrated against an implementation
//! with the same cost *shape*: a fixed up-front handshake cost and a
//! per-byte streaming cost on every frame. The key-stretch loop in
//! [`derive_session_keys`] exists purely to make the handshake cost
//! visible on a loopback benchmark.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// splitmix64 mixing step — used to scramble seeds and stretch keys.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Iterations of the deliberate key-stretch loop. Tuned so a handshake
/// costs a measurable fraction of a millisecond — big enough to show up
/// in the `net_farm` bench, small enough not to slow tests.
const KEY_STRETCH_ROUNDS: u64 = 250_000;

/// Derives the two directional session keys from the handshake nonces.
///
/// Returns `(client_to_server, server_to_client)`. Both sides call this
/// with the same nonce pair and get the same keys. The stretch loop is
/// the *point*: it models the asymmetric-crypto cost of a real TLS
/// handshake as CPU time.
pub fn derive_session_keys(client_nonce: u64, server_nonce: u64) -> (u64, u64) {
    let mut state = client_nonce ^ server_nonce.rotate_left(32) ^ 0xA5A5_5A5A_DEAD_F00D;
    let mut acc = 0u64;
    for _ in 0..KEY_STRETCH_ROUNDS {
        acc ^= splitmix64(&mut state);
    }
    let c2s = splitmix64(&mut state) ^ acc;
    let s2c = splitmix64(&mut state) ^ acc.rotate_left(17);
    (c2s, s2c)
}

/// One direction of the toy stream cipher: an xorshift64* keystream XORed
/// over the byte stream. Order-dependent — all bytes of a direction must
/// pass through a single cipher instance in wire order.
#[derive(Debug)]
pub struct StreamCipher {
    state: u64,
}

impl StreamCipher {
    /// A cipher keyed from one of the [`derive_session_keys`] outputs.
    pub fn new(key: u64) -> Self {
        // Scramble once so a zero key doesn't produce a zero keystream.
        let mut s = key ^ 0x6A09_E667_F3BC_C908;
        let _ = splitmix64(&mut s);
        Self {
            state: if s == 0 { 1 } else { s },
        }
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // xorshift64* — the multiply output's high byte has good mixing.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
    }

    /// XORs the keystream over `buf` in place. Encryption and decryption
    /// are the same operation.
    pub fn apply(&mut self, buf: &mut [u8]) {
        for b in buf.iter_mut() {
            *b ^= self.next_byte();
        }
    }
}

/// Atomic accounting of secure-channel costs, shared across connections.
///
/// [`CostReport`] turns the raw totals into the two numbers the
/// simulator's `SslCostModel` wants: seconds per handshake and seconds
/// per ciphered byte.
#[derive(Debug, Default)]
pub struct CostMeter {
    bytes: AtomicU64,
    cipher_nanos: AtomicU64,
    handshakes: AtomicU64,
    handshake_nanos: AtomicU64,
}

impl CostMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one cipher pass over `n` bytes taking `nanos`.
    pub fn record_cipher(&self, n: u64, nanos: u64) {
        self.bytes.fetch_add(n, Ordering::Relaxed);
        self.cipher_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records one completed handshake taking `nanos`.
    pub fn record_handshake(&self, nanos: u64) {
        self.handshakes.fetch_add(1, Ordering::Relaxed);
        self.handshake_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Times `f` as a handshake and records it.
    pub fn time_handshake<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record_handshake(t0.elapsed().as_nanos() as u64);
        out
    }

    /// Snapshot of the accumulated costs.
    pub fn report(&self) -> CostReport {
        CostReport {
            bytes: self.bytes.load(Ordering::Relaxed),
            cipher_nanos: self.cipher_nanos.load(Ordering::Relaxed),
            handshakes: self.handshakes.load(Ordering::Relaxed),
            handshake_nanos: self.handshake_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Accumulated secure-channel costs (see [`CostMeter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostReport {
    /// Total bytes passed through the cipher.
    pub bytes: u64,
    /// Total nanoseconds spent ciphering.
    pub cipher_nanos: u64,
    /// Handshakes completed.
    pub handshakes: u64,
    /// Total nanoseconds spent in handshakes.
    pub handshake_nanos: u64,
}

impl CostReport {
    /// Mean seconds of CPU per ciphered byte (0 if nothing ciphered).
    pub fn per_byte_seconds(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.cipher_nanos as f64 * 1e-9 / self.bytes as f64
        }
    }

    /// Mean seconds per handshake (0 if none).
    pub fn handshake_seconds(&self) -> f64 {
        if self.handshakes == 0 {
            0.0
        } else {
            self.handshake_nanos as f64 * 1e-9 / self.handshakes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cipher_roundtrip() {
        let (c2s, _) = derive_session_keys(11, 22);
        let mut enc = StreamCipher::new(c2s);
        let mut dec = StreamCipher::new(c2s);
        let original: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut buf = original.clone();
        enc.apply(&mut buf);
        assert_ne!(buf, original, "cipher must actually change the bytes");
        dec.apply(&mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn cipher_is_order_dependent_stream() {
        // Splitting the stream across two apply() calls must equal one
        // contiguous pass — that's what lets us cipher frame-by-frame.
        let mut one = StreamCipher::new(42);
        let mut two = StreamCipher::new(42);
        let mut a = [7u8; 64];
        let mut b = [7u8; 64];
        one.apply(&mut a);
        two.apply(&mut b[..20]);
        two.apply(&mut b[20..]);
        assert_eq!(a, b);
    }

    #[test]
    fn keys_agree_and_directions_differ() {
        let (a1, b1) = derive_session_keys(1, 2);
        let (a2, b2) = derive_session_keys(1, 2);
        assert_eq!((a1, b1), (a2, b2));
        assert_ne!(a1, b1);
        assert_ne!(derive_session_keys(3, 4), (a1, b1));
    }

    #[test]
    fn meter_reports_sane_rates() {
        let m = CostMeter::new();
        m.record_cipher(1000, 2000);
        m.record_handshake(5_000_000);
        let r = m.report();
        assert!((r.per_byte_seconds() - 2e-9).abs() < 1e-15);
        assert!((r.handshake_seconds() - 5e-3).abs() < 1e-12);
        assert_eq!(CostMeter::new().report().per_byte_seconds(), 0.0);
    }
}
