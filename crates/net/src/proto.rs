//! The `bskel_net` wire protocol: dependency-free, length-prefixed binary
//! frames.
//!
//! Every message between a [`crate::pool::RemoteWorkerPool`] and a
//! `bskel-workerd` daemon is one *frame*:
//!
//! ```text
//! offset  size  field
//!      0     2  magic      0xB5E7, little-endian (resynchronisation mark)
//!      2     1  version    protocol version (currently 1)
//!      3     1  frame type (see FrameType)
//!      4     8  seq        u64 LE — task sequence number / heartbeat id
//!     12     4  len        u32 LE — payload length, <= MAX_PAYLOAD
//!     16   len  payload
//! ```
//!
//! The [`Decoder`] is incremental and tolerant by design:
//!
//! * **partial reads** — frames may arrive a byte at a time; the decoder
//!   buffers until a whole frame is present;
//! * **garbage** — bytes that do not parse as a frame header (wrong magic,
//!   unknown version or frame type) are skipped one position at a time
//!   until the magic realigns, and counted in
//!   [`Decoder::garbage_bytes`] so the connection owner can decide to cut
//!   a noisy peer loose;
//! * **oversized lengths** — a syntactically valid header announcing more
//!   than [`MAX_PAYLOAD`] bytes is rejected with
//!   [`ProtoError::Oversized`]; resynchronising past it is hopeless
//!   (the stream position is ambiguous), so callers must drop the
//!   connection.

use bskel_monitor::Welford;

/// Frame-start marker (little-endian on the wire: `E7 B5`).
pub const MAGIC: u16 = 0xB5E7;
/// Current protocol version byte.
pub const VERSION: u8 = 1;
/// Fixed frame-header length in bytes.
pub const HEADER_LEN: usize = 16;
/// Largest payload a frame may announce (16 MiB).
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → daemon: open a worker slot (payload: [`Hello`]).
    Hello = 0,
    /// Daemon → client: accept/refuse a slot (payload: [`HelloAck`]).
    HelloAck = 1,
    /// Client → daemon: one task; `seq` is the stream sequence number,
    /// payload the encoded task.
    Task = 2,
    /// Daemon → client: one result; `seq` echoes the task's.
    Result = 3,
    /// Daemon → client: the task at `seq` is poisoned (the remote worker
    /// panicked computing it); no result will ever exist.
    Lost = 4,
    /// Client → daemon: liveness probe; `seq` is a ping id.
    Heartbeat = 5,
    /// Daemon → client: probe echo; `seq` echoes the ping id, payload is
    /// a [`SensorBlob`].
    HeartbeatAck = 6,
    /// Daemon → client: sensor beans piggybacked on a result batch
    /// (payload: [`SensorBlob`]).
    Sensors = 7,
    /// Either direction: cooperative close; the daemon finishes pending
    /// tasks, flushes, and closes the connection.
    Goodbye = 8,
    /// Client → tenancy front-end: attach as a tenant stream (payload:
    /// [`TenantAttach`]). Sent instead of [`FrameType::Hello`] when the
    /// peer is a multi-tenant front-end rather than a worker daemon.
    TenantAttach = 9,
    /// Front-end → client: accept/refuse the tenant (payload:
    /// [`TenantAck`]). After an accepting ack, the connection carries
    /// [`FrameType::Task`]/[`FrameType::Result`]/[`FrameType::Lost`]
    /// frames whose `seq` is the tenant-local sequence number.
    TenantAck = 10,
}

impl FrameType {
    /// Parses a wire byte; `None` for unknown types.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0 => FrameType::Hello,
            1 => FrameType::HelloAck,
            2 => FrameType::Task,
            3 => FrameType::Result,
            4 => FrameType::Lost,
            5 => FrameType::Heartbeat,
            6 => FrameType::HeartbeatAck,
            7 => FrameType::Sensors,
            8 => FrameType::Goodbye,
            9 => FrameType::TenantAttach,
            10 => FrameType::TenantAck,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame carries.
    pub ftype: FrameType,
    /// Sequence number / heartbeat id (frame-type dependent).
    pub seq: u64,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

/// A borrowed view of one decoded frame — the zero-copy twin of
/// [`Frame`]. The payload slice points into the decoder's buffer and is
/// valid until the next decoder call, so a hot read path (the pool's
/// reactor) can decode results without a per-frame allocation.
#[derive(Debug, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// What the frame carries.
    pub ftype: FrameType,
    /// Sequence number / heartbeat id (frame-type dependent).
    pub seq: u64,
    /// The payload bytes, borrowed from the decode buffer.
    pub payload: &'a [u8],
}

/// Connection-fatal protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A frame header announced a payload larger than [`MAX_PAYLOAD`].
    Oversized {
        /// The announced length.
        len: u32,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Oversized { len } => {
                write!(f, "frame announces {len} payload bytes (max {MAX_PAYLOAD})")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Appends one encoded frame to `out`.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — senders size their own
/// frames; only a *received* oversized length is a recoverable condition.
pub fn encode_frame(out: &mut Vec<u8>, ftype: FrameType, seq: u64, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "outgoing frame payload of {} bytes exceeds MAX_PAYLOAD",
        payload.len()
    );
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(ftype as u8);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Incremental, garbage-tolerant frame decoder (see module docs).
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    start: usize,
    garbage: u64,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds received bytes into the decode buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily so the buffer does not grow without bound while
        // the consumed prefix does.
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes skipped so far while resynchronising past garbage.
    pub fn garbage_bytes(&self) -> u64 {
        self.garbage
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame, if any, copying the payload out.
    ///
    /// `Ok(None)` means "need more bytes" (truncated frame or empty
    /// buffer). Garbage is skipped silently (counted in
    /// [`Decoder::garbage_bytes`]); only an oversized length is an error,
    /// and it is sticky — the connection cannot be trusted afterwards.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        Ok(self.next_frame_view()?.map(|v| Frame {
            ftype: v.ftype,
            seq: v.seq,
            payload: v.payload.to_vec(),
        }))
    }

    /// Pops the next complete frame as a *borrowed* [`FrameView`] — no
    /// payload copy. Same contract as [`Decoder::next_frame`]; the view
    /// is consumed from the buffer immediately, so dropping it without
    /// reading the payload still advances the stream.
    pub fn next_frame_view(&mut self) -> Result<Option<FrameView<'_>>, ProtoError> {
        let magic = MAGIC.to_le_bytes();
        loop {
            let b = &self.buf[self.start..];
            if b.len() < HEADER_LEN {
                return Ok(None);
            }
            if b[0] != magic[0] || b[1] != magic[1] {
                self.start += 1;
                self.garbage += 1;
                continue;
            }
            let version = b[2];
            let ftype = FrameType::from_u8(b[3]);
            if version != VERSION || ftype.is_none() {
                // A magic that fronts an unparseable header is line noise
                // that happened to contain the marker: step past it.
                self.start += 2;
                self.garbage += 2;
                continue;
            }
            let seq = u64::from_le_bytes(b[4..12].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(b[12..16].try_into().expect("4 bytes"));
            if len > MAX_PAYLOAD {
                return Err(ProtoError::Oversized { len });
            }
            let total = HEADER_LEN + len as usize;
            if b.len() < total {
                return Ok(None);
            }
            // Consume first, then borrow: the slice indices are pinned
            // before `start` moves, so the view covers exactly this frame.
            let payload_start = self.start + HEADER_LEN;
            let payload_end = self.start + total;
            self.start += total;
            return Ok(Some(FrameView {
                ftype: ftype.expect("checked above"),
                seq,
                payload: &self.buf[payload_start..payload_end],
            }));
        }
    }
}

// ---------------------------------------------------------------------------
// Typed payloads
// ---------------------------------------------------------------------------

/// The slot-opening request a client sends first (in clear).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Whether the client wants the channel secured after the handshake.
    pub secure: bool,
    /// Client key-exchange nonce (secure mode).
    pub nonce: u64,
    /// Workload the slot should run (see `crate::daemon::Workload`).
    pub workload: String,
}

/// Encodes a [`Hello`] payload.
pub fn encode_hello(h: &Hello) -> Vec<u8> {
    let wl = h.workload.as_bytes();
    let mut out = Vec::with_capacity(11 + wl.len());
    out.push(u8::from(h.secure));
    out.extend_from_slice(&h.nonce.to_le_bytes());
    out.extend_from_slice(&(wl.len() as u16).to_le_bytes());
    out.extend_from_slice(wl);
    out
}

/// Decodes a [`Hello`] payload.
pub fn decode_hello(b: &[u8]) -> Option<Hello> {
    if b.len() < 11 {
        return None;
    }
    let secure = b[0] != 0;
    let nonce = u64::from_le_bytes(b[1..9].try_into().ok()?);
    let wl_len = u16::from_le_bytes(b[9..11].try_into().ok()?) as usize;
    let wl = b.get(11..11 + wl_len)?;
    Some(Hello {
        secure,
        nonce,
        workload: String::from_utf8(wl.to_vec()).ok()?,
    })
}

/// The daemon's handshake reply (in clear).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// Whether the slot was accepted.
    pub ok: bool,
    /// Whether the channel is secured from the next byte on.
    pub secure: bool,
    /// Server key-exchange nonce (secure mode).
    pub nonce: u64,
    /// Refusal reason when `ok` is false.
    pub error: String,
}

/// Encodes a [`HelloAck`] payload.
pub fn encode_hello_ack(a: &HelloAck) -> Vec<u8> {
    let err = a.error.as_bytes();
    let mut out = Vec::with_capacity(12 + err.len());
    out.push(u8::from(a.ok));
    out.push(u8::from(a.secure));
    out.extend_from_slice(&a.nonce.to_le_bytes());
    out.extend_from_slice(&(err.len() as u16).to_le_bytes());
    out.extend_from_slice(err);
    out
}

/// Decodes a [`HelloAck`] payload.
pub fn decode_hello_ack(b: &[u8]) -> Option<HelloAck> {
    if b.len() < 12 {
        return None;
    }
    let ok = b[0] != 0;
    let secure = b[1] != 0;
    let nonce = u64::from_le_bytes(b[2..10].try_into().ok()?);
    let err_len = u16::from_le_bytes(b[10..12].try_into().ok()?) as usize;
    let err = b.get(12..12 + err_len)?;
    Some(HelloAck {
        ok,
        secure,
        nonce,
        error: String::from_utf8(err.to_vec()).ok()?,
    })
}

/// The sensor beans a remote worker ships back piggybacked on result
/// batches and heartbeat acks: its cumulative service-time statistic, its
/// local queue depth, and how many tasks it has completed.
#[derive(Debug, Clone)]
pub struct SensorBlob {
    /// Cumulative service-time statistic, daemon-measured (pure compute
    /// time: the network is excluded by construction).
    pub service: Welford,
    /// Tasks received but not yet computed at the daemon.
    pub queue_depth: u32,
    /// Cumulative tasks completed by this slot.
    pub done: u64,
}

/// Encodes a [`SensorBlob`] payload (52 bytes).
pub fn encode_sensors(s: &SensorBlob) -> Vec<u8> {
    let mut out = Vec::with_capacity(52);
    out.extend_from_slice(&s.service.count().to_le_bytes());
    out.extend_from_slice(&s.service.mean().to_le_bytes());
    out.extend_from_slice(&s.service.m2().to_le_bytes());
    out.extend_from_slice(&s.service.min().unwrap_or(f64::INFINITY).to_le_bytes());
    out.extend_from_slice(&s.service.max().unwrap_or(f64::NEG_INFINITY).to_le_bytes());
    out.extend_from_slice(&s.queue_depth.to_le_bytes());
    out.extend_from_slice(&s.done.to_le_bytes());
    out
}

/// Decodes a [`SensorBlob`] payload.
pub fn decode_sensors(b: &[u8]) -> Option<SensorBlob> {
    if b.len() < 52 {
        return None;
    }
    let f = |i: usize| f64::from_bits(u64::from_le_bytes(b[i..i + 8].try_into().expect("8")));
    let n = u64::from_le_bytes(b[0..8].try_into().expect("8"));
    let service = Welford::from_parts(n, f(8), f(16), f(24), f(32));
    let queue_depth = u32::from_le_bytes(b[40..44].try_into().expect("4"));
    let done = u64::from_le_bytes(b[44..52].try_into().expect("8"));
    Some(SensorBlob {
        service,
        queue_depth,
        done,
    })
}

/// The tenant-attachment request a remote client opens with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantAttach {
    /// Tenant name (metrics label, journal key, event-log prefix).
    pub tenant: String,
    /// The tenant's QoS contract, in the contract grammar's JSON form
    /// (decoded by `bskel_core::contract::Contract`).
    pub contract_json: String,
    /// Admission bound: maximum queued tasks before shedding kicks in.
    pub queue_capacity: u32,
    /// Shed policy: 0 = shed-oldest, 1 = reject new arrivals.
    pub shed_policy: u8,
}

/// Encodes a [`TenantAttach`] payload.
pub fn encode_tenant_attach(t: &TenantAttach) -> Vec<u8> {
    let name = t.tenant.as_bytes();
    let contract = t.contract_json.as_bytes();
    let mut out = Vec::with_capacity(9 + name.len() + contract.len());
    out.extend_from_slice(&t.queue_capacity.to_le_bytes());
    out.push(t.shed_policy);
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    out.extend_from_slice(&(contract.len() as u16).to_le_bytes());
    out.extend_from_slice(contract);
    out
}

/// Decodes a [`TenantAttach`] payload.
pub fn decode_tenant_attach(b: &[u8]) -> Option<TenantAttach> {
    if b.len() < 9 {
        return None;
    }
    let queue_capacity = u32::from_le_bytes(b[0..4].try_into().ok()?);
    let shed_policy = b[4];
    let name_len = u16::from_le_bytes(b[5..7].try_into().ok()?) as usize;
    let name = b.get(7..7 + name_len)?;
    let rest = 7 + name_len;
    let contract_len = u16::from_le_bytes(b.get(rest..rest + 2)?.try_into().ok()?) as usize;
    let contract = b.get(rest + 2..rest + 2 + contract_len)?;
    Some(TenantAttach {
        tenant: String::from_utf8(name.to_vec()).ok()?,
        contract_json: String::from_utf8(contract.to_vec()).ok()?,
        queue_capacity,
        shed_policy,
    })
}

/// The front-end's reply to a [`TenantAttach`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantAck {
    /// Whether the tenant was admitted.
    pub ok: bool,
    /// The initial fair-share weight granted (0 when refused).
    pub share: f64,
    /// Refusal reason when `ok` is false.
    pub error: String,
}

/// Encodes a [`TenantAck`] payload.
pub fn encode_tenant_ack(a: &TenantAck) -> Vec<u8> {
    let err = a.error.as_bytes();
    let mut out = Vec::with_capacity(11 + err.len());
    out.push(u8::from(a.ok));
    out.extend_from_slice(&a.share.to_le_bytes());
    out.extend_from_slice(&(err.len() as u16).to_le_bytes());
    out.extend_from_slice(err);
    out
}

/// Decodes a [`TenantAck`] payload.
pub fn decode_tenant_ack(b: &[u8]) -> Option<TenantAck> {
    if b.len() < 11 {
        return None;
    }
    let ok = b[0] != 0;
    let share = f64::from_le_bytes(b[1..9].try_into().ok()?);
    let err_len = u16::from_le_bytes(b[9..11].try_into().ok()?) as usize;
    let err = b.get(11..11 + err_len)?;
    Some(TenantAck {
        ok,
        share,
        error: String::from_utf8(err.to_vec()).ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(ftype: FrameType, seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_frame(&mut out, ftype, seq, payload);
        out
    }

    #[test]
    fn roundtrip_single_frame() {
        let mut d = Decoder::new();
        d.extend(&frame_bytes(FrameType::Task, 42, b"payload"));
        let f = d.next_frame().unwrap().unwrap();
        assert_eq!(f.ftype, FrameType::Task);
        assert_eq!(f.seq, 42);
        assert_eq!(f.payload, b"payload");
        assert_eq!(d.next_frame().unwrap(), None);
        assert_eq!(d.garbage_bytes(), 0);
    }

    #[test]
    fn partial_feed_byte_by_byte() {
        let bytes = frame_bytes(FrameType::Result, 7, b"abc");
        let mut d = Decoder::new();
        for (i, b) in bytes.iter().enumerate() {
            d.extend(std::slice::from_ref(b));
            let got = d.next_frame().unwrap();
            if i + 1 < bytes.len() {
                assert!(got.is_none(), "frame complete early at byte {i}");
            } else {
                assert_eq!(got.unwrap().payload, b"abc");
            }
        }
    }

    #[test]
    fn garbage_prefix_is_skipped() {
        let mut d = Decoder::new();
        d.extend(&[0x00, 0xFF, 0xE7, 0x13, 0x37]); // noise, incl. a stray magic byte
        d.extend(&frame_bytes(FrameType::Heartbeat, 3, b""));
        let f = d.next_frame().unwrap().unwrap();
        assert_eq!(f.ftype, FrameType::Heartbeat);
        assert!(d.garbage_bytes() >= 5);
    }

    #[test]
    fn bad_version_resyncs() {
        let mut bytes = frame_bytes(FrameType::Task, 1, b"x");
        bytes[2] = 99; // corrupt the version byte
        let mut d = Decoder::new();
        d.extend(&bytes);
        d.extend(&frame_bytes(FrameType::Task, 2, b"y"));
        let f = d.next_frame().unwrap().unwrap();
        assert_eq!(f.seq, 2);
        assert!(d.garbage_bytes() > 0);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bytes = frame_bytes(FrameType::Task, 1, b"x");
        bytes[12..16].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut d = Decoder::new();
        d.extend(&bytes);
        assert_eq!(
            d.next_frame(),
            Err(ProtoError::Oversized {
                len: MAX_PAYLOAD + 1
            })
        );
    }

    #[test]
    fn frame_view_matches_owned_decode_without_copy() {
        let mut owned = Decoder::new();
        let mut viewed = Decoder::new();
        for (seq, payload) in [(1u64, &b"alpha"[..]), (2, b""), (3, b"gamma")] {
            let bytes = frame_bytes(FrameType::Result, seq, payload);
            owned.extend(&bytes);
            viewed.extend(&bytes);
        }
        loop {
            let a = owned.next_frame().unwrap();
            let Some(a) = a else {
                assert!(viewed.next_frame_view().unwrap().is_none());
                break;
            };
            let b = viewed.next_frame_view().unwrap().expect("same stream");
            assert_eq!(a.ftype, b.ftype);
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.payload.as_slice(), b.payload);
        }
    }

    #[test]
    fn hello_roundtrip() {
        let h = Hello {
            secure: true,
            nonce: 0xDEAD_BEEF,
            workload: "spin:250".into(),
        };
        assert_eq!(decode_hello(&encode_hello(&h)), Some(h));
        assert_eq!(decode_hello(b"xx"), None);
    }

    #[test]
    fn hello_ack_roundtrip() {
        let a = HelloAck {
            ok: false,
            secure: false,
            nonce: 1,
            error: "unknown workload".into(),
        };
        assert_eq!(decode_hello_ack(&encode_hello_ack(&a)), Some(a));
    }

    #[test]
    fn tenant_attach_roundtrip() {
        let t = TenantAttach {
            tenant: "victim".into(),
            contract_json: r#"{"throughputRange":{"lo":0.4,"hi":0.8}}"#.into(),
            queue_capacity: 64,
            shed_policy: 1,
        };
        assert_eq!(decode_tenant_attach(&encode_tenant_attach(&t)), Some(t));
        assert_eq!(decode_tenant_attach(b"short"), None);
    }

    #[test]
    fn tenant_attach_frame_decodes() {
        let t = TenantAttach {
            tenant: "hot".into(),
            contract_json: "\"bestEffort\"".into(),
            queue_capacity: 8,
            shed_policy: 0,
        };
        let mut d = Decoder::new();
        d.extend(&frame_bytes(
            FrameType::TenantAttach,
            0,
            &encode_tenant_attach(&t),
        ));
        let f = d.next_frame().unwrap().unwrap();
        assert_eq!(f.ftype, FrameType::TenantAttach);
        assert_eq!(decode_tenant_attach(&f.payload), Some(t));
    }

    #[test]
    fn tenant_ack_roundtrip() {
        let a = TenantAck {
            ok: true,
            share: 0.25,
            error: String::new(),
        };
        assert_eq!(decode_tenant_ack(&encode_tenant_ack(&a)), Some(a));
        let refused = TenantAck {
            ok: false,
            share: 0.0,
            error: "duplicate tenant name".into(),
        };
        assert_eq!(
            decode_tenant_ack(&encode_tenant_ack(&refused)),
            Some(refused)
        );
    }

    #[test]
    fn sensors_roundtrip() {
        let mut w = Welford::new();
        for x in [0.001, 0.004, 0.002] {
            w.update(x);
        }
        let s = SensorBlob {
            service: w,
            queue_depth: 5,
            done: 3,
        };
        let got = decode_sensors(&encode_sensors(&s)).unwrap();
        assert_eq!(got.queue_depth, 5);
        assert_eq!(got.done, 3);
        assert_eq!(got.service.count(), 3);
        assert!((got.service.mean() - w.mean()).abs() < 1e-12);
        assert!((got.service.variance() - w.variance()).abs() < 1e-12);
    }

    #[test]
    fn empty_sensors_roundtrip() {
        let s = SensorBlob {
            service: Welford::new(),
            queue_depth: 0,
            done: 0,
        };
        let got = decode_sensors(&encode_sensors(&s)).unwrap();
        assert_eq!(got.service.count(), 0);
        assert_eq!(got.service.mean(), 0.0);
    }
}
