//! Reactor building blocks: pooled frame buffers, a vectored-write send
//! queue, and a hashed timer wheel.
//!
//! These are the allocation- and syscall-economy pieces of the pool's
//! single-thread event loop (see [`crate::pool`]), kept free of any
//! socket or slot types so they unit-test in isolation:
//!
//! * [`BufferPool`] recycles encode buffers — the hot path encodes a
//!   whole wire batch into one pooled `Vec<u8>` instead of allocating
//!   per frame;
//! * [`SendQueue`] owns a connection's pending outgoing bytes and
//!   drains them with `write_vectored`, resuming cleanly from a
//!   `WouldBlock` mid-frame (the partially-written chunk keeps an
//!   offset; nothing is re-sent, nothing is dropped);
//! * [`TimerWheel`] schedules the reactor's time-driven duties —
//!   heartbeat ticks, per-slot failure deadlines, speculation sweeps,
//!   breaker window expiries — as wheel entries, replacing the old
//!   dedicated detector thread.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};
use std::time::{Duration, Instant};

/// Most `IoSlice`s handed to one `write_vectored` call (the kernel caps
/// at `UIO_MAXIOV` = 1024; 32 already amortises the syscall).
const MAX_IOV: usize = 32;

// -- buffer pool -------------------------------------------------------

/// A free list of encode buffers. Buffers keep their capacity across
/// reuse, so a steady-state reactor stops allocating on the frame path
/// entirely; oversized one-offs (a huge payload) are dropped rather than
/// pinned forever.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
    max_capacity: usize,
}

impl BufferPool {
    /// A pool retaining up to `max_buffers` buffers of up to
    /// `max_capacity` bytes each.
    pub fn new(max_buffers: usize, max_capacity: usize) -> Self {
        Self {
            free: Vec::new(),
            max_buffers,
            max_capacity,
        }
    }

    /// Takes a cleared buffer from the pool (or allocates a fresh one).
    pub fn get(&mut self) -> Vec<u8> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool; cleared here so `get` is O(1).
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < self.max_buffers && buf.capacity() <= self.max_capacity {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

// -- send queue --------------------------------------------------------

/// Why [`SendQueue::write_to`] stopped draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Every queued byte hit the socket.
    Drained,
    /// The socket would block; an offset into the first chunk remembers
    /// exactly where to resume (mid-frame is fine).
    Blocked,
}

/// One connection's pending outgoing bytes: a FIFO of encoded (and, on
/// secure channels, already-ciphered) chunks, each holding one or more
/// whole frames. Draining coalesces chunks into a single
/// `write_vectored` call and survives partial writes at any byte
/// position.
#[derive(Debug, Default)]
pub struct SendQueue {
    chunks: VecDeque<(Vec<u8>, usize)>,
    /// How far into the *first* chunk previous writes got.
    head_offset: usize,
    bytes: usize,
    frames: usize,
}

impl SendQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues one encoded chunk carrying `frames` whole frames.
    pub fn push(&mut self, chunk: Vec<u8>, frames: usize) {
        if chunk.is_empty() {
            return;
        }
        self.bytes += chunk.len();
        self.frames += frames;
        self.chunks.push_back((chunk, frames));
    }

    /// Bytes not yet written.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Frames not yet fully written (a chunk's frames count as pending
    /// until the whole chunk is on the wire).
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Drains as much as the writer accepts, returning drained chunks to
    /// `pool`. `Interrupted` retries; `WouldBlock` returns
    /// [`WriteOutcome::Blocked`] with the resume offset saved.
    pub fn write_to(
        &mut self,
        w: &mut impl Write,
        pool: &mut BufferPool,
    ) -> io::Result<WriteOutcome> {
        loop {
            if self.chunks.is_empty() {
                return Ok(WriteOutcome::Drained);
            }
            let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOV.min(self.chunks.len()));
            for (i, (chunk, _)) in self.chunks.iter().enumerate().take(MAX_IOV) {
                let from = if i == 0 { self.head_offset } else { 0 };
                iov.push(IoSlice::new(&chunk[from..]));
            }
            match w.write_vectored(&iov) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.advance(n, pool),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(WriteOutcome::Blocked)
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Accounts `n` written bytes across the chunk FIFO.
    fn advance(&mut self, mut n: usize, pool: &mut BufferPool) {
        self.bytes -= n;
        while n > 0 {
            let (chunk, frames) = self.chunks.front().expect("wrote bytes not queued");
            let remaining = chunk.len() - self.head_offset;
            if n >= remaining {
                n -= remaining;
                self.frames -= *frames;
                self.head_offset = 0;
                let (done, _) = self.chunks.pop_front().expect("checked front");
                pool.put(done);
            } else {
                self.head_offset += n;
                n = 0;
            }
        }
    }
}

// -- timer wheel -------------------------------------------------------

/// A hashed timer wheel: deadlines land in `slots[tick % n]` and fire
/// when the cursor sweeps past their tick. Arming is O(1); firing is
/// O(slots scanned + entries due). Entries carry an opaque key — there
/// is no cancel API, the owner drops stale keys on fire (a dead slot's
/// deadline entry simply fizzles).
#[derive(Debug)]
pub struct TimerWheel<K> {
    epoch: Instant,
    tick: Duration,
    slots: Vec<Vec<(u64, K)>>,
    /// The next tick the sweep will process (everything strictly before
    /// it has already fired).
    cursor: u64,
    len: usize,
}

impl<K> TimerWheel<K> {
    /// A wheel of `slots` buckets at `tick` granularity, starting `epoch`
    /// as tick zero. Granularity below 1ms is clamped up (the reactor's
    /// epoll timeout has millisecond resolution anyway).
    pub fn new(epoch: Instant, tick: Duration, slots: usize) -> Self {
        Self {
            epoch,
            tick: tick.max(Duration::from_millis(1)),
            slots: (0..slots.max(8)).map(|_| Vec::new()).collect(),
            cursor: 0,
            len: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.epoch);
        // Ceiling division: a deadline lands on the first tick at or
        // after it, never early.
        since.as_nanos().div_ceil(self.tick.as_nanos()) as u64
    }

    /// Schedules `key` to fire at `at` (clamped to the cursor: a deadline
    /// already in the past fires on the next sweep).
    pub fn arm(&mut self, at: Instant, key: K) {
        let due = self.tick_of(at).max(self.cursor);
        let slot = (due % self.slots.len() as u64) as usize;
        self.slots[slot].push((due, key));
        self.len += 1;
    }

    /// Armed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The earliest pending deadline, if any (what the reactor turns
    /// into its epoll timeout).
    pub fn next_deadline(&self) -> Option<Instant> {
        let mut min: Option<u64> = None;
        for slot in &self.slots {
            for (due, _) in slot {
                match min {
                    Some(m) if m <= *due => {}
                    _ => min = Some(*due),
                }
            }
        }
        min.map(|t| self.epoch + self.tick * (t.min(u64::from(u32::MAX)) as u32))
    }

    /// Moves every entry due at or before `now` into `out` (unordered
    /// within a sweep) and advances the cursor. Returns the worst
    /// lateness among fired entries — the reactor's loop-lag sensor.
    pub fn pop_due(&mut self, now: Instant, out: &mut Vec<K>) -> Duration {
        let now_tick = {
            let since = now.saturating_duration_since(self.epoch);
            (since.as_nanos() / self.tick.as_nanos()) as u64
        };
        if now_tick < self.cursor || self.len == 0 {
            self.cursor = self.cursor.max(now_tick + 1);
            return Duration::ZERO;
        }
        let n = self.slots.len() as u64;
        // Scanning min(range, n) consecutive buckets covers every bucket
        // a tick in [cursor, now_tick] can hash to.
        let span = (now_tick - self.cursor + 1).min(n);
        let mut worst = Duration::ZERO;
        for i in 0..span {
            let s = ((self.cursor + i) % n) as usize;
            let bucket = &mut self.slots[s];
            let mut j = 0;
            while j < bucket.len() {
                if bucket[j].0 <= now_tick {
                    let (due, key) = bucket.swap_remove(j);
                    self.len -= 1;
                    let due_at = self.epoch + self.tick * (due.min(u64::from(u32::MAX)) as u32);
                    worst = worst.max(now.saturating_duration_since(due_at));
                    out.push(key);
                } else {
                    j += 1;
                }
            }
        }
        self.cursor = now_tick + 1;
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A writer that accepts at most `cap` bytes per call, then blocks.
    struct Throttled {
        accepted: Vec<u8>,
        cap: usize,
        calls: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.cap == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let take = buf.len().min(self.cap);
            self.accepted.extend_from_slice(&buf[..take]);
            Ok(take)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn buffer_pool_recycles_capacity() {
        let mut pool = BufferPool::new(4, 1024);
        let mut b = pool.get();
        b.extend_from_slice(&[0u8; 512]);
        let cap = b.capacity();
        pool.put(b);
        assert_eq!(pool.idle(), 1);
        let b2 = pool.get();
        assert!(b2.is_empty());
        assert_eq!(b2.capacity(), cap, "capacity survives the round trip");
        // Oversized buffers are dropped, not pinned.
        pool.put(Vec::with_capacity(4096));
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn send_queue_resumes_mid_frame_after_would_block() {
        let mut pool = BufferPool::new(8, 1 << 20);
        let mut q = SendQueue::new();
        let frame: Vec<u8> = (0..=255u8).collect();
        q.push(frame.clone(), 1);
        q.push(frame.iter().rev().copied().collect(), 1);
        assert_eq!(q.bytes(), 512);
        assert_eq!(q.frames(), 2);

        // 100 bytes per call: the first call ends mid-frame.
        let mut w = Throttled {
            accepted: Vec::new(),
            cap: 100,
            calls: 0,
        };
        // Let 300 bytes through (in up-to-100-byte slices), then block:
        // the stop lands 44 bytes into the second frame.
        let mut budget = 300usize;
        let mut gated = GatedWriter {
            inner: &mut w,
            budget: &mut budget,
        };
        assert_eq!(
            q.write_to(&mut gated, &mut pool).unwrap(),
            WriteOutcome::Blocked
        );
        assert_eq!(q.bytes(), 512 - 300);
        assert_eq!(q.frames(), 1, "first frame fully out, second pending");

        // Unblock: the remainder resumes from byte 300, no re-send.
        let mut budget2 = usize::MAX;
        let mut open = GatedWriter {
            inner: &mut w,
            budget: &mut budget2,
        };
        assert_eq!(
            q.write_to(&mut open, &mut pool).unwrap(),
            WriteOutcome::Drained
        );
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
        assert_eq!(q.frames(), 0);
        let mut expect = frame.clone();
        expect.extend(frame.iter().rev().copied());
        assert_eq!(w.accepted, expect, "byte-exact, no duplication or loss");
        assert_eq!(pool.idle(), 2, "drained chunks returned to the pool");
    }

    struct GatedWriter<'a, W> {
        inner: &'a mut W,
        budget: &'a mut usize,
    }

    impl<W: Write> Write for GatedWriter<'_, W> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if *self.budget == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let take = buf.len().min(*self.budget);
            let n = self.inner.write(&buf[..take])?;
            *self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    #[test]
    fn send_queue_write_zero_is_an_error() {
        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _b: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut pool = BufferPool::new(1, 1024);
        let mut q = SendQueue::new();
        q.push(vec![1, 2, 3], 1);
        assert!(q.write_to(&mut Zero, &mut pool).is_err());
    }

    #[test]
    fn timer_wheel_fires_in_deadline_windows() {
        let t0 = Instant::now();
        let mut w: TimerWheel<&'static str> = TimerWheel::new(t0, Duration::from_millis(1), 64);
        w.arm(t0 + Duration::from_millis(5), "five");
        w.arm(t0 + Duration::from_millis(20), "twenty");
        w.arm(t0 + Duration::from_millis(200), "far"); // beyond one wheel round
        assert_eq!(w.len(), 3);

        let mut out = Vec::new();
        w.pop_due(t0 + Duration::from_millis(3), &mut out);
        assert!(out.is_empty(), "nothing due at 3ms");
        w.pop_due(t0 + Duration::from_millis(6), &mut out);
        assert_eq!(out, ["five"]);
        out.clear();
        // Jump straight past both remaining deadlines (a long epoll
        // sleep): one sweep collects both, including the far entry that
        // wrapped the wheel.
        w.pop_due(t0 + Duration::from_millis(400), &mut out);
        out.sort_unstable();
        assert_eq!(out, ["far", "twenty"]);
        assert!(w.is_empty());
    }

    #[test]
    fn timer_wheel_past_deadlines_fire_immediately_with_lag() {
        let t0 = Instant::now();
        let mut w: TimerWheel<u32> = TimerWheel::new(t0, Duration::from_millis(1), 32);
        let now = t0 + Duration::from_millis(50);
        // Advance the cursor to "now" first.
        let mut out = Vec::new();
        w.pop_due(now, &mut out);
        // Arm something 40ms in the past: it must fire on the next sweep.
        w.arm(t0 + Duration::from_millis(10), 9);
        let lag = w.pop_due(now + Duration::from_millis(1), &mut out);
        assert_eq!(out, [9]);
        assert!(lag >= Duration::ZERO);
    }

    #[test]
    fn timer_wheel_next_deadline_tracks_minimum() {
        let t0 = Instant::now();
        let mut w: TimerWheel<u8> = TimerWheel::new(t0, Duration::from_millis(1), 16);
        assert!(w.next_deadline().is_none());
        w.arm(t0 + Duration::from_millis(30), 1);
        w.arm(t0 + Duration::from_millis(10), 2);
        let d = w.next_deadline().unwrap();
        assert!(d <= t0 + Duration::from_millis(11), "min of the two");
        let mut out = Vec::new();
        w.pop_due(t0 + Duration::from_millis(15), &mut out);
        assert_eq!(out, [2]);
        let d2 = w.next_deadline().unwrap();
        assert!(d2 > t0 + Duration::from_millis(15));
    }

    #[test]
    fn timer_wheel_rearm_cycle_is_stable() {
        // The heartbeat pattern: fire, re-arm one period out, repeat.
        let t0 = Instant::now();
        let mut w: TimerWheel<()> = TimerWheel::new(t0, Duration::from_millis(1), 64);
        let period = Duration::from_millis(7);
        w.arm(t0 + period, ());
        let mut fired = 0;
        let mut now = t0;
        let mut out = Vec::new();
        for _ in 0..100 {
            now += Duration::from_millis(3);
            out.clear();
            w.pop_due(now, &mut out);
            for () in out.drain(..) {
                fired += 1;
                w.arm(now + period, ());
            }
        }
        // 300ms of simulated time at a 7ms period, observed every 3ms —
        // the effective cadence quantizes to 9ms, so ≈33 firings; the
        // wheel must neither stall nor double-fire.
        assert!((30..=45).contains(&fired), "fired {fired} times");
        assert_eq!(w.len(), 1, "exactly one armed entry survives");
    }
}
