//! Dependency-free Linux readiness polling: `epoll` + `eventfd` via raw
//! syscalls.
//!
//! The reactor in [`crate::pool`] multiplexes every remote slot on one
//! thread, which needs OS readiness notification — and this workspace
//! vendors no `libc`. The syscall surface required is tiny (five calls),
//! so this module invokes them directly with inline assembly on the two
//! architectures the project targets (x86_64, aarch64) and wraps the raw
//! file descriptors in [`std::os::fd::OwnedFd`] so std's Drop closes them.
//!
//! Everything here is *level-triggered*: a socket with unread bytes (or
//! writable space) keeps reporting ready, so a reactor tick that stops
//! mid-drain — batch limits, fairness — simply sees the socket again on
//! the next wait. That forgiving contract is why the reactor needs no
//! edge-trigger bookkeeping and why spurious wakeups are harmless (see
//! `crates/net/tests/reactor.rs`).

#![allow(clippy::upper_case_acronyms)]

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

// -- syscall numbers ---------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_WAIT: usize = 232;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
    pub const PRLIMIT64: usize = 302;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    /// aarch64 has no plain `epoll_wait`; `epoll_pwait` with a null
    /// sigmask is the same call.
    pub const EPOLL_WAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const PRLIMIT64: usize = 261;
}

/// One raw syscall with up to six arguments. Unused trailing arguments
/// are ignored by the kernel, so every call site funnels through here.
///
/// # Safety
/// The caller must pass arguments valid for syscall `n` (live pointers
/// with correct lengths, valid fds); the kernel dereferences them.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: the `syscall` instruction with the Linux x86_64 calling
    // convention (nr in rax, args in rdi/rsi/rdx/r10/r8/r9; rcx and r11
    // clobbered by the instruction itself). Argument validity is the
    // caller's contract, per this function's safety docs.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
    }
    ret
}

/// See the x86_64 variant; aarch64 passes the number in `x8`.
///
/// # Safety
/// Same contract: arguments must be valid for syscall `n`.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: the `svc 0` instruction with the Linux aarch64 calling
    // convention (nr in x8, args in x0..x5, result in x0). Argument
    // validity is the caller's contract, per this function's safety docs.
    unsafe {
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a as isize => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            in("x8") n,
            options(nostack)
        );
    }
    ret
}

/// Converts a raw syscall return into `io::Result<usize>` (negative
/// values are `-errno`).
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

// -- epoll -------------------------------------------------------------

const EPOLL_CLOEXEC: usize = 0o2000000;
const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`. Packed on x86_64 (the one ABI
/// where the kernel declares it `__attribute__((packed))`), naturally
/// aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
struct EpollEvent {
    events: u32,
    data: u64,
}

// Manual impl: deriving Debug on a packed struct would take references
// to possibly-unaligned fields; copy them out instead.
impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (events, data) = (self.events, self.data);
        f.debug_struct("EpollEvent")
            .field("events", &events)
            .field("data", &data)
            .finish()
    }
}

/// What a registered fd should be watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — while a send queue has pending bytes.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Bytes (or EOF) are available to read.
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// Error / hangup condition — the owner should read until EOF/error
    /// to learn why (level-triggered `EPOLLIN` accompanies it anyway).
    pub closed: bool,
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
    /// Reused kernel-event buffer (one `wait` at a time: `&mut self`).
    buf: Box<[EpollEvent]>,
}

impl Poller {
    /// Creates the epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes a flags word and no pointers.
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Self {
            // SAFETY: a successful epoll_create1 returned this fd and
            // nothing else owns it; OwnedFd takes over closing it.
            epfd: unsafe { OwnedFd::from_raw_fd(fd as RawFd) },
            buf: vec![EpollEvent::default(); 512].into_boxed_slice(),
        })
    }

    fn ctl(&self, op: usize, fd: RawFd, ev: Option<EpollEvent>) -> io::Result<()> {
        let ptr = ev
            .as_ref()
            .map_or(std::ptr::null(), |e| e as *const EpollEvent);
        // SAFETY: `ptr` is either null (DEL) or points at a live
        // EpollEvent on this stack frame for the duration of the call;
        // both fds are open.
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.epfd.as_raw_fd() as usize,
                op,
                fd as usize,
                ptr as usize,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Changes the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Deregisters `fd`. Harmless to call on an fd the kernel already
    /// dropped (closing an fd removes it from every epoll set).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until readiness or `timeout` (`None` = forever), appending
    /// the notifications to `out`. Returns how many arrived. `EINTR`
    /// retries internally; a zero return is a plain timeout.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let ms: isize = match timeout {
            None => -1,
            // Round up so a 300µs deadline does not busy-spin at 0ms.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as isize,
        };
        let n = loop {
            // SAFETY: `buf` is a live, exclusively-borrowed allocation of
            // `buf.len()` epoll_event slots; the epoll fd is open. The
            // trailing null sigmask arg makes this epoll_pwait-compatible
            // on aarch64 and is ignored by x86_64 epoll_wait.
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_WAIT,
                    self.epfd.as_raw_fd() as usize,
                    self.buf.as_mut_ptr() as usize,
                    self.buf.len(),
                    ms as usize,
                    0,
                    0,
                )
            };
            match check(ret) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &self.buf[..n] {
            // Copy out of the (possibly packed) kernel struct by value.
            let bits = ev.events;
            let token = ev.data;
            out.push(Event {
                token,
                readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

// -- eventfd waker -----------------------------------------------------

const EFD_CLOEXEC: usize = 0o2000000;
const EFD_NONBLOCK: usize = 0o4000;

/// A cross-thread wakeup handle for a [`Poller`]: an `eventfd` registered
/// read-side in the epoll set. Any thread clones the waker and calls
/// [`Waker::wake`]; the reactor drains it and re-arms by level-triggered
/// nature. Wakes coalesce (the eventfd is a counter), so a burst of
/// producers costs one reactor tick.
#[derive(Debug, Clone)]
pub struct Waker {
    file: Arc<File>,
}

impl Waker {
    /// Creates the eventfd (nonblocking, close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: eventfd2 takes an initial counter and a flags word.
        let fd =
            check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
        // SAFETY: a successful eventfd2 returned this fd and nothing else
        // owns it; the File (via OwnedFd) takes over closing it.
        let owned = unsafe { OwnedFd::from_raw_fd(fd as RawFd) };
        Ok(Self {
            file: Arc::new(File::from(owned)),
        })
    }

    /// The fd to register in the poller (read interest).
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Signals the poller. Never blocks: a saturated counter (`EAGAIN`)
    /// already guarantees a pending wakeup.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&*self.file).write(&one);
    }

    /// Consumes pending wakeups so the level-triggered fd goes quiet.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // One read resets an eventfd counter to zero; EAGAIN means it
        // already was.
        let _ = (&*self.file).read(&mut buf);
    }
}

// -- rlimit ------------------------------------------------------------

const RLIMIT_NOFILE: usize = 7;

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct RLimit64 {
    cur: u64,
    max: u64,
}

/// Raises the soft open-files limit toward `target` (capped at the hard
/// limit) and returns the resulting soft limit. Benches opening hundreds
/// of loopback daemons call this instead of asking users to `ulimit -n`.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut old = RLimit64::default();
    // SAFETY: pid 0 = self; null new-limit pointer means "query"; `old`
    // is a live stack slot the kernel writes 16 bytes into.
    check(unsafe {
        syscall6(
            nr::PRLIMIT64,
            0,
            RLIMIT_NOFILE,
            0,
            &mut old as *mut RLimit64 as usize,
            0,
            0,
        )
    })?;
    if old.cur >= target {
        return Ok(old.cur);
    }
    let new = RLimit64 {
        cur: target.min(old.max),
        max: old.max,
    };
    // SAFETY: pid 0 = self; `new` is a live stack slot the kernel reads
    // 16 bytes from; null old-limit pointer means "don't report back".
    check(unsafe {
        syscall6(
            nr::PRLIMIT64,
            0,
            RLIMIT_NOFILE,
            &new as *const RLimit64 as usize,
            0,
            0,
            0,
        )
    })?;
    Ok(new.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn poller_reports_readable_after_write() {
        let (a, mut b) = pair();
        a.set_nonblocking(true).unwrap();
        let mut p = Poller::new().unwrap();
        p.add(a.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut evs = Vec::new();
        // Quiet socket: a short wait times out with nothing.
        assert_eq!(
            p.wait(&mut evs, Some(Duration::from_millis(10))).unwrap(),
            0
        );
        b.write_all(b"ping").unwrap();
        p.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        assert!(evs.iter().any(|e| e.token == 7 && e.readable));
    }

    #[test]
    fn poller_reports_hangup_as_readable_and_closed() {
        let (a, b) = pair();
        a.set_nonblocking(true).unwrap();
        let mut p = Poller::new().unwrap();
        p.add(a.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(b);
        let mut evs = Vec::new();
        p.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        let ev = evs.iter().find(|e| e.token == 1).expect("hangup event");
        assert!(ev.readable, "EOF must be surfaced through the read path");
        assert!(ev.closed);
    }

    #[test]
    fn modify_toggles_write_interest() {
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        let mut p = Poller::new().unwrap();
        p.add(a.as_raw_fd(), 3, Interest::READ).unwrap();
        let mut evs = Vec::new();
        // Read-only interest on an idle-but-writable socket: timeout.
        assert_eq!(
            p.wait(&mut evs, Some(Duration::from_millis(10))).unwrap(),
            0
        );
        p.modify(a.as_raw_fd(), 3, Interest::READ_WRITE).unwrap();
        p.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        assert!(evs.iter().any(|e| e.token == 3 && e.writable));
        // And back off again.
        evs.clear();
        p.modify(a.as_raw_fd(), 3, Interest::READ).unwrap();
        assert_eq!(
            p.wait(&mut evs, Some(Duration::from_millis(10))).unwrap(),
            0
        );
        p.delete(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_wakes_and_drains() {
        let waker = Waker::new().unwrap();
        let mut p = Poller::new().unwrap();
        p.add(waker.raw_fd(), u64::MAX, Interest::READ).unwrap();
        let mut evs = Vec::new();
        assert_eq!(
            p.wait(&mut evs, Some(Duration::from_millis(10))).unwrap(),
            0
        );
        // Wakes coalesce: three wakes, one readable event, one drain.
        waker.wake();
        waker.wake();
        waker.wake();
        p.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        assert!(evs.iter().any(|e| e.token == u64::MAX && e.readable));
        waker.drain();
        evs.clear();
        assert_eq!(
            p.wait(&mut evs, Some(Duration::from_millis(10))).unwrap(),
            0,
            "drained waker goes quiet (no stuck level-triggered wakeups)"
        );
        // A wake from another thread lands too.
        let w2 = waker.clone();
        let t = std::thread::spawn(move || w2.wake());
        p.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        assert!(!evs.is_empty());
        t.join().unwrap();
    }

    #[test]
    fn nofile_limit_query_is_sane() {
        let cur = raise_nofile_limit(64).unwrap();
        assert!(cur >= 64, "soft limit {cur} below any sane floor");
    }
}
