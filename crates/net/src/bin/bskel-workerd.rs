//! `bskel-workerd` — the remote worker daemon.
//!
//! Hosts worker slots for a distributed `bskel` farm: each accepted TCP
//! connection is one slot whose workload the connecting pool names in its
//! handshake. See `bskel_net::daemon` for the serve-loop semantics.
//!
//! ```text
//! bskel-workerd [--listen ADDR]
//!
//!   --listen ADDR   host:port to bind (default 127.0.0.1:7700;
//!                   port 0 picks an ephemeral port)
//! ```
//!
//! On startup the daemon prints `bskel-workerd listening on <addr>` with
//! the *resolved* address — tests and scripts bind port 0 and parse the
//! line to learn the port.

use std::io::Write;
use std::net::TcpListener;

fn main() {
    let mut listen = "127.0.0.1:7700".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => {
                    eprintln!("bskel-workerd: --listen requires an ADDR");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: bskel-workerd [--listen ADDR]");
                println!("  --listen ADDR   host:port to bind (default 127.0.0.1:7700)");
                return;
            }
            other => {
                eprintln!("bskel-workerd: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bskel-workerd: cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or(listen);
    // Flushed eagerly: spawners parse this line to learn an ephemeral port.
    println!("bskel-workerd listening on {bound}");
    let _ = std::io::stdout().flush();

    bskel_net::serve(listener);
}
