//! Deterministic fault injection for the distributed farm substrate.
//!
//! A [`ChaosProxy`] sits between a [`crate::pool::RemoteWorkerPool`] and a
//! `bskel-workerd` daemon, relaying the plain-channel frame stream in both
//! directions while injecting faults according to a [`ChaosPlan`]:
//!
//! * **connect refusal** — a scheduled number of connection attempts (or
//!   all of them, via [`ChaosProxy::set_refusing`]) are accepted and
//!   immediately closed, which the pool observes as a handshake failure;
//! * **frame drop / delay / duplication / corruption** — per-frame,
//!   per-direction decisions drawn from a seeded PRNG;
//! * **mid-stream disconnect** — both sockets severed after a configured
//!   number of forwarded frames;
//! * **stall** — the relay silently stops forwarding after a configured
//!   number of frames while keeping the sockets open: the silent-peer
//!   failure mode, distinct from a disconnect.
//!
//! **Determinism.** Every frame-level decision is a pure function of
//! `(plan.seed, connection id, direction, frame index)` — see
//! [`frame_decision`] — so a schedule replays exactly regardless of
//! thread interleaving or socket read chunking. What *varies* across runs
//! is only how the system under test reacts (retry timing, which slot a
//! speculative copy lands on); the injected-fault decision table itself
//! is fixed by the seed. [`ChaosProxy::log`] records the decisions that
//! were actually exercised.
//!
//! **Corruption model.** A corrupted frame always has its header magic
//! smashed (plus a sprinkle of payload mutations), so it can never parse
//! as a valid frame: corruption ≡ drop + garbage on the wire. This is
//! what makes the decoder-under-corruption property ("never emits a frame
//! that wasn't sent") checkable, and zero task loss provable — a
//! corrupted `Task`/`Result` is recovered by the pool's deadline retry,
//! not by guessing at damaged bytes. Payloads containing the frame magic
//! could in principle alias as an embedded frame after resync; the
//! property test keeps payload bytes below `0x80` to exclude it.
//!
//! The proxy decodes frames, so it only works on **plain** endpoints;
//! secure channels would need byte-level injection (which cannot target
//! frame classes). The soak tests run plain, which exercises the same
//! pool recovery machinery.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::proto::{encode_frame, FrameType, ProtoError};
use crate::wire::{FillStatus, FrameReader};

/// A small, fast, seedable PRNG (SplitMix64): good enough statistical
/// quality for fault schedules, trivially reproducible, dependency-free.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform draw in `[lo, hi]` (inclusive; `lo` when the range is
    /// empty or inverted).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// Which way a relayed frame is travelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Pool → daemon (tasks, heartbeats, goodbyes).
    ToDaemon,
    /// Daemon → pool (results, sensor blobs, heartbeat acks).
    ToPool,
}

/// The fault classes the proxy can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A connection attempt was accepted and immediately closed.
    RefuseConnect,
    /// A frame was discarded instead of forwarded.
    Drop,
    /// A frame was forwarded after an injected delay.
    Delay,
    /// A frame was forwarded twice.
    Duplicate,
    /// A frame was forwarded with its header smashed and payload mutated.
    Corrupt,
    /// Both sockets of a connection were severed mid-stream.
    Disconnect,
    /// The relay stopped forwarding (sockets left open — a silent peer).
    Stall,
}

/// What [`frame_decision`] resolved for one relayed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    /// Forward unchanged.
    Forward,
    /// Discard.
    Drop,
    /// Forward with smashed header + mutated payload bytes.
    Corrupt,
    /// Forward twice.
    Duplicate,
    /// Forward after sleeping for the given duration.
    Delay(Duration),
}

/// Per-endpoint fault policy. Probabilities are per frame and per
/// direction; the `Default` policy injects nothing.
#[derive(Debug, Clone)]
pub struct ChaosPolicy {
    /// Probability a frame is dropped.
    pub drop_p: f64,
    /// Probability a frame is corrupted (header smashed — see module
    /// docs; a corrupted frame is pure garbage to the receiving decoder).
    pub corrupt_p: f64,
    /// Probability a frame is duplicated.
    pub dup_p: f64,
    /// Probability a frame is delayed.
    pub delay_p: f64,
    /// Inclusive delay bounds, milliseconds.
    pub delay_ms: (u64, u64),
    /// Never inject frame faults into `Hello`/`HelloAck` frames, so the
    /// handshake of an accepted connection always completes (connect
    /// failures are exercised deliberately via `refuse_connects` /
    /// `disconnect_after` instead of by random handshake loss). Default
    /// `true`.
    pub spare_handshake: bool,
    /// Accept-and-immediately-close this many connection attempts…
    pub refuse_connects: u32,
    /// …but only after this many attempts succeeded (lets a pool `build`
    /// its initial slots before the endpoint starts flapping).
    pub healthy_connects: u32,
    /// Sever both sockets after this many frames were forwarded on a
    /// direction of a connection.
    pub disconnect_after: Option<u64>,
    /// Stop forwarding (but keep sockets open) after this many frames on
    /// a direction of a connection.
    pub stall_after: Option<u64>,
}

impl Default for ChaosPolicy {
    fn default() -> Self {
        Self {
            drop_p: 0.0,
            corrupt_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_ms: (1, 20),
            spare_handshake: true,
            refuse_connects: 0,
            healthy_connects: 0,
            disconnect_after: None,
            stall_after: None,
        }
    }
}

/// A seeded fault schedule for one proxied endpoint.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed fixing every frame-level decision (see module docs).
    pub seed: u64,
    /// The fault policy the seed drives.
    pub policy: ChaosPolicy,
}

impl ChaosPlan {
    /// A plan that injects nothing (useful as a pass-through baseline).
    pub fn inert(seed: u64) -> Self {
        Self {
            seed,
            policy: ChaosPolicy::default(),
        }
    }
}

/// One injected fault, as recorded in [`ChaosProxy::log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Proxy-local connection id (accept order, from 0).
    pub conn: u64,
    /// Relay direction the fault hit (refusals record `ToDaemon`).
    pub dir: Direction,
    /// Frame index within `(conn, dir)` (0 for refusals).
    pub frame: u64,
    /// The fault class.
    pub kind: FaultKind,
    /// Fault-specific detail: delay in ms, 0 otherwise.
    pub detail: u64,
}

/// Resolves the fate of frame `frame` of `(conn, dir)` under `plan` — a
/// pure function, so the same arguments always return the same fate.
///
/// Draw order is fixed (drop, corrupt, dup, delay) and every probability
/// is drawn even when an earlier one already hit, so a policy tweak to a
/// later probability never shifts the draws of an earlier one.
pub fn frame_decision(plan: &ChaosPlan, conn: u64, dir: Direction, frame: u64) -> FrameFate {
    let dir_tag: u64 = match dir {
        Direction::ToDaemon => 0x0D,
        Direction::ToPool => 0x1A,
    };
    let mut rng = ChaosRng::new(
        plan.seed
            ^ conn.wrapping_mul(0xA24B_AED4_963E_E407)
            ^ dir_tag.wrapping_mul(0x9FB2_1C65_1E98_DF25)
            ^ frame.wrapping_mul(0xD6E8_FEB8_6659_FD93),
    );
    let p = &plan.policy;
    let drop = rng.chance(p.drop_p);
    let corrupt = rng.chance(p.corrupt_p);
    let dup = rng.chance(p.dup_p);
    let delay = rng.chance(p.delay_p);
    let delay_ms = rng.range_u64(p.delay_ms.0, p.delay_ms.1);
    if drop {
        FrameFate::Drop
    } else if corrupt {
        FrameFate::Corrupt
    } else if dup {
        FrameFate::Duplicate
    } else if delay {
        FrameFate::Delay(Duration::from_millis(delay_ms))
    } else {
        FrameFate::Forward
    }
}

/// Corrupts encoded frame bytes in place: the header magic is always
/// smashed (the frame can never re-parse), and a few payload bytes are
/// flipped for good measure. Exported for the decoder property test.
pub fn corrupt_frame_bytes(rng: &mut ChaosRng, bytes: &mut [u8]) {
    if bytes.is_empty() {
        return;
    }
    // Guaranteed ≠ the magic's first byte, whatever it was.
    bytes[0] = bytes[0].wrapping_add(1);
    let flips = 1 + rng.range_u64(0, 3) as usize;
    for _ in 0..flips {
        let i = rng.range_u64(1, bytes.len() as u64 - 1) as usize;
        bytes[i] ^= (rng.next_u64() & 0xFF) as u8;
    }
}

struct ProxyShared {
    plan: ChaosPlan,
    upstream: String,
    log: Mutex<Vec<InjectedFault>>,
    conns: AtomicU64,
    connect_attempts: AtomicU64,
    refused: AtomicU64,
    refuse_all: AtomicBool,
    healed: AtomicBool,
}

impl ProxyShared {
    fn record(&self, fault: InjectedFault) {
        self.log.lock().push(fault);
    }
}

/// A fault-injecting TCP proxy in front of one daemon endpoint.
///
/// Spawn with [`ChaosProxy::spawn`], point the pool at
/// [`ChaosProxy::addr`]. The accept loop runs on a detached thread for
/// the life of the process (like [`crate::daemon::spawn_local`]).
pub struct ChaosProxy {
    shared: Arc<ProxyShared>,
    addr: SocketAddr,
}

impl ChaosProxy {
    /// Binds a loopback listener and relays every accepted connection to
    /// `upstream` under `plan`.
    pub fn spawn(upstream: impl Into<String>, plan: ChaosPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            plan,
            upstream: upstream.into(),
            log: Mutex::new(Vec::new()),
            conns: AtomicU64::new(0),
            connect_attempts: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            refuse_all: AtomicBool::new(false),
            healed: AtomicBool::new(false),
        });
        {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("chaos-proxy-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?;
        }
        Ok(Self { shared, addr })
    }

    /// The address the system under test should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The injected-fault log so far (accept order within a connection
    /// and direction; interleaving across connections is scheduling-
    /// dependent, the per-`(conn, dir, frame)` decisions are not).
    pub fn log(&self) -> Vec<InjectedFault> {
        self.shared.log.lock().clone()
    }

    /// Connection attempts observed (accepted + refused).
    pub fn connect_attempts(&self) -> u64 {
        self.shared.connect_attempts.load(Ordering::SeqCst)
    }

    /// Connection attempts refused so far.
    pub fn refused_connects(&self) -> u64 {
        self.shared.refused.load(Ordering::SeqCst)
    }

    /// Overrides the plan: refuse every connection attempt (`true`) or
    /// fall back to the scheduled refusals (`false`). This is the
    /// "endpoint flaps, then heals" lever for circuit-breaker tests.
    pub fn set_refusing(&self, refuse: bool) {
        self.shared.refuse_all.store(refuse, Ordering::SeqCst);
    }

    /// Stops injecting anything from now on: connections are accepted and
    /// frames relayed untouched. Existing stalls/severed connections are
    /// not revived — the pool recovers by reconnecting.
    pub fn heal(&self) {
        self.shared.healed.store(true, Ordering::SeqCst);
        self.shared.refuse_all.store(false, Ordering::SeqCst);
    }
}

/// Spawns an in-process daemon on an ephemeral loopback port plus a
/// chaos proxy in front of it; returns the proxy (connect to
/// [`ChaosProxy::addr`]) — the chaos-wrapped counterpart of
/// [`crate::daemon::spawn_local`].
pub fn spawn_chaos_local(plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
    let daemon = crate::daemon::spawn_local("127.0.0.1:0")?;
    ChaosProxy::spawn(daemon.to_string(), plan)
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    for stream in listener.incoming() {
        let Ok(client) = stream else { continue };
        let attempt = shared.connect_attempts.fetch_add(1, Ordering::SeqCst);
        let p = &shared.plan.policy;
        let scheduled = attempt >= u64::from(p.healthy_connects)
            && attempt < u64::from(p.healthy_connects) + u64::from(p.refuse_connects);
        let refuse = !shared.healed.load(Ordering::SeqCst)
            && (shared.refuse_all.load(Ordering::SeqCst) || scheduled);
        if refuse {
            shared.refused.fetch_add(1, Ordering::SeqCst);
            shared.record(InjectedFault {
                conn: attempt,
                dir: Direction::ToDaemon,
                frame: 0,
                kind: FaultKind::RefuseConnect,
                detail: 0,
            });
            let _ = client.shutdown(Shutdown::Both);
            continue;
        }
        let Ok(upstream) = TcpStream::connect(&shared.upstream) else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        client.set_nodelay(true).ok();
        upstream.set_nodelay(true).ok();
        let conn = shared.conns.fetch_add(1, Ordering::SeqCst);
        let pairs = [
            (
                Direction::ToDaemon,
                client.try_clone(),
                upstream.try_clone(),
            ),
            (Direction::ToPool, upstream.try_clone(), client.try_clone()),
        ];
        for (dir, from, to) in pairs {
            let (Ok(from), Ok(to)) = (from, to) else {
                let _ = client.shutdown(Shutdown::Both);
                let _ = upstream.shutdown(Shutdown::Both);
                break;
            };
            let shared = Arc::clone(shared);
            let _ = std::thread::Builder::new()
                .name(format!("chaos-relay-c{conn}"))
                .spawn(move || relay(from, to, dir, conn, &shared));
        }
    }
}

/// Relays one direction of one connection frame-by-frame, applying the
/// plan. Owns its own frame counter, so decisions depend only on
/// `(conn, dir, frame index)`.
fn relay(from: TcpStream, to: TcpStream, dir: Direction, conn: u64, shared: &Arc<ProxyShared>) {
    let mut reader = FrameReader::new(from);
    let mut frame_idx: u64 = 0;
    let mut forwarded: u64 = 0;
    let mut stalled = false;
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let sever = |reader: &FrameReader, to: &TcpStream| {
        let _ = reader.stream().shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    };
    loop {
        let frame = loop {
            match reader.try_next() {
                Ok(Some(f)) => break f,
                Ok(None) => {}
                Err(ProtoError::Oversized { .. }) => {
                    sever(&reader, &to);
                    return;
                }
            }
            match reader.fill_once() {
                Ok(FillStatus::Bytes) | Ok(FillStatus::WouldBlock) => {}
                Ok(FillStatus::Eof) | Err(_) => {
                    sever(&reader, &to);
                    return;
                }
            }
        };
        let idx = frame_idx;
        frame_idx += 1;
        let healed = shared.healed.load(Ordering::SeqCst);
        let policy = &shared.plan.policy;
        if stalled && !healed {
            // Silent peer: keep draining so the sender is not blocked by
            // backpressure, forward nothing.
            continue;
        }
        if !healed {
            if let Some(n) = policy.disconnect_after {
                if forwarded >= n {
                    shared.record(InjectedFault {
                        conn,
                        dir,
                        frame: idx,
                        kind: FaultKind::Disconnect,
                        detail: 0,
                    });
                    sever(&reader, &to);
                    return;
                }
            }
            if let Some(n) = policy.stall_after {
                if forwarded >= n {
                    stalled = true;
                    shared.record(InjectedFault {
                        conn,
                        dir,
                        frame: idx,
                        kind: FaultKind::Stall,
                        detail: 0,
                    });
                    continue;
                }
            }
        }
        let handshake =
            matches!(frame.ftype, FrameType::Hello | FrameType::HelloAck) && policy.spare_handshake;
        let fate = if healed || handshake {
            FrameFate::Forward
        } else {
            frame_decision(&shared.plan, conn, dir, idx)
        };
        let wrote = match fate {
            FrameFate::Drop => {
                shared.record(InjectedFault {
                    conn,
                    dir,
                    frame: idx,
                    kind: FaultKind::Drop,
                    detail: 0,
                });
                Ok(())
            }
            FrameFate::Corrupt => {
                shared.record(InjectedFault {
                    conn,
                    dir,
                    frame: idx,
                    kind: FaultKind::Corrupt,
                    detail: 0,
                });
                buf.clear();
                encode_frame(&mut buf, frame.ftype, frame.seq, &frame.payload);
                // Deterministic mutation: keyed like frame_decision.
                let mut rng = ChaosRng::new(
                    shared.plan.seed.wrapping_add(0xC0DE)
                        ^ conn.wrapping_mul(0xA24B_AED4_963E_E407)
                        ^ idx.wrapping_mul(0xD6E8_FEB8_6659_FD93),
                );
                corrupt_frame_bytes(&mut rng, &mut buf);
                forwarded += 1;
                write_all(&to, &buf)
            }
            FrameFate::Duplicate => {
                shared.record(InjectedFault {
                    conn,
                    dir,
                    frame: idx,
                    kind: FaultKind::Duplicate,
                    detail: 0,
                });
                buf.clear();
                encode_frame(&mut buf, frame.ftype, frame.seq, &frame.payload);
                forwarded += 1;
                write_all(&to, &buf).and_then(|()| write_all(&to, &buf))
            }
            FrameFate::Delay(d) => {
                shared.record(InjectedFault {
                    conn,
                    dir,
                    frame: idx,
                    kind: FaultKind::Delay,
                    detail: d.as_millis() as u64,
                });
                std::thread::sleep(d);
                buf.clear();
                encode_frame(&mut buf, frame.ftype, frame.seq, &frame.payload);
                forwarded += 1;
                write_all(&to, &buf)
            }
            FrameFate::Forward => {
                buf.clear();
                encode_frame(&mut buf, frame.ftype, frame.seq, &frame.payload);
                forwarded += 1;
                write_all(&to, &buf)
            }
        };
        if wrote.is_err() {
            sever(&reader, &to);
            return;
        }
    }
}

fn write_all(mut to: &TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    to.write_all(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaosRng::new(43);
        assert_ne!(ChaosRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn frame_decisions_are_pure() {
        let plan = ChaosPlan {
            seed: 7,
            policy: ChaosPolicy {
                drop_p: 0.2,
                corrupt_p: 0.2,
                dup_p: 0.2,
                delay_p: 0.2,
                ..ChaosPolicy::default()
            },
        };
        for conn in 0..4 {
            for frame in 0..256 {
                for dir in [Direction::ToDaemon, Direction::ToPool] {
                    assert_eq!(
                        frame_decision(&plan, conn, dir, frame),
                        frame_decision(&plan, conn, dir, frame)
                    );
                }
            }
        }
    }

    #[test]
    fn decision_schedule_varies_with_seed_and_covers_all_fates() {
        let mk = |seed| ChaosPlan {
            seed,
            policy: ChaosPolicy {
                drop_p: 0.1,
                corrupt_p: 0.1,
                dup_p: 0.1,
                delay_p: 0.1,
                ..ChaosPolicy::default()
            },
        };
        let schedule = |plan: &ChaosPlan| -> Vec<FrameFate> {
            (0..512)
                .map(|i| frame_decision(plan, 0, Direction::ToPool, i))
                .collect()
        };
        let a = schedule(&mk(1));
        assert_eq!(a, schedule(&mk(1)), "same seed, same schedule");
        assert_ne!(a, schedule(&mk(2)), "different seed, different schedule");
        for want in [FrameFate::Drop, FrameFate::Corrupt, FrameFate::Duplicate] {
            assert!(a.contains(&want), "{want:?} never drawn in 512 frames");
        }
        assert!(a.iter().any(|f| matches!(f, FrameFate::Delay(_))));
    }

    #[test]
    fn corruption_always_smashes_the_magic() {
        let mut rng = ChaosRng::new(9);
        for seq in 0..64u64 {
            let mut bytes = Vec::new();
            encode_frame(&mut bytes, FrameType::Task, seq, &seq.to_le_bytes());
            let original = bytes.clone();
            corrupt_frame_bytes(&mut rng, &mut bytes);
            assert_ne!(bytes[0], original[0], "magic byte must change");
            assert_ne!(bytes, original);
        }
    }
}
