//! The ops plane's active half: a Prometheus text-exposition HTTP
//! listener hosted on the crate's own epoll primitives.
//!
//! [`MetricsHub`] is the registry: every observable component (a
//! manager + its farm/pool, the simulator, the reactor) registers a
//! closure-backed [`ScrapeSeries`] source; a scrape snapshots all of
//! them and renders one exposition document via `bskel_monitor::expo`.
//!
//! [`MetricsServer`] serves `GET /metrics` (and `GET /journal`, the
//! attached journal as JSONL) over HTTP/1.0 with *one* thread total —
//! accept and per-connection I/O are multiplexed on a [`Poller`], the
//! same readiness substrate the pool's reactor uses. A scrape therefore
//! costs zero thread spawns, no matter how many collectors poll it.

use crate::sys::{Event, Interest, Poller, Waker};
use bskel_monitor::expo::{self, Exposer, ScrapeSeries};
use bskel_monitor::{Journal, SensorSnapshot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Most bytes of request head a connection may send before it is
/// dropped as malformed (we only ever need the request line).
const MAX_REQUEST_HEAD: usize = 8 * 1024;

/// Poller token of the listening socket.
const LISTENER_TOKEN: u64 = u64::MAX - 1;
/// Poller token of the shutdown waker.
const WAKER_TOKEN: u64 = u64::MAX;

type SnapshotFn = Box<dyn Fn() -> SensorSnapshot + Send + Sync>;
type CountsFn = Box<dyn Fn() -> Vec<(String, u64)> + Send + Sync>;

struct Source {
    tenant: String,
    manager: String,
    snapshot: SnapshotFn,
    counts: CountsFn,
}

/// The scrape-source registry shared between the running system and the
/// [`MetricsServer`].
///
/// Registration is closure-based so any layer can expose itself without
/// this crate depending on it: a manager registers a closure over its
/// ABC's last snapshot, a pool registers `FarmControl::sense`, the
/// simulator registers its scripted state.
#[derive(Default)]
pub struct MetricsHub {
    sources: Mutex<Vec<Source>>,
    journal: Mutex<Option<Arc<Journal>>>,
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: an empty shared hub.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Registers one scrape source: `snapshot` yields the component's
    /// current beans, `counts` its cumulative per-kind event counts.
    pub fn register(
        &self,
        tenant: impl Into<String>,
        manager: impl Into<String>,
        snapshot: impl Fn() -> SensorSnapshot + Send + Sync + 'static,
        counts: impl Fn() -> Vec<(String, u64)> + Send + Sync + 'static,
    ) {
        self.sources.lock().push(Source {
            tenant: tenant.into(),
            manager: manager.into(),
            snapshot: Box::new(snapshot),
            counts: Box::new(counts),
        });
    }

    /// Attaches a journal: scrapes gain `bskel_journal_*` gauges and
    /// `GET /journal` serves its JSONL dump.
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        *self.journal.lock() = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<Arc<Journal>> {
        self.journal.lock().clone()
    }

    /// Number of registered scrape sources.
    pub fn len(&self) -> usize {
        self.sources.lock().len()
    }

    /// True when no source is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the full exposition document: every source's beans as
    /// gauges, its event counts as counters, plus journal health when a
    /// journal is attached.
    pub fn render(&self) -> String {
        let mut exposer = Exposer::new();
        {
            let sources = self.sources.lock();
            for s in sources.iter() {
                exposer.series(&ScrapeSeries {
                    tenant: s.tenant.clone(),
                    manager: s.manager.clone(),
                    snapshot: (s.snapshot)(),
                    event_counts: (s.counts)(),
                });
            }
        }
        if let Some(j) = self.journal() {
            exposer.counter(
                "bskel_journal_recorded_total",
                "Entries ever recorded in the ops journal.",
                &[],
                j.recorded() as f64,
            );
            exposer.counter(
                "bskel_journal_dropped_total",
                "Journal entries overwritten because the ring was full.",
                &[],
                j.dropped() as f64,
            );
            exposer.gauge(
                "bskel_journal_entries",
                "Entries currently held in the ops journal ring.",
                &[],
                j.len() as f64,
            );
        }
        exposer.render()
    }
}

/// Builds the standard `(kind, count)` event counters from a list of
/// event-kind labels (e.g. rendered off an `EventLog` snapshot), in
/// first-seen order.
pub fn count_kinds<I, S>(labels: I) -> Vec<(String, u64)>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out: Vec<(String, u64)> = Vec::new();
    for l in labels {
        let l = l.as_ref();
        if let Some(e) = out.iter_mut().find(|(k, _)| k == l) {
            e.1 += 1;
        } else {
            out.push((l.to_owned(), 1));
        }
    }
    out
}

/// One in-flight scrape connection's state.
struct ScrapeConn {
    stream: TcpStream,
    /// Request bytes read so far (until the blank line).
    head: Vec<u8>,
    /// Response bytes remaining to write; `Some` once routed.
    response: Option<Vec<u8>>,
    /// Write progress into `response`.
    written: usize,
}

/// The single-threaded exposition listener.
///
/// Dropping the server stops and joins its thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Waker,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts the serving
    /// thread. The chosen port is available via [`MetricsServer::addr`].
    pub fn start(addr: impl ToSocketAddrs, hub: Arc<MetricsHub>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let mut poller = Poller::new()?;
        let waker = Waker::new()?;
        poller.add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        poller.add(waker.raw_fd(), WAKER_TOKEN, Interest::READ)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            let waker = waker.clone();
            std::thread::Builder::new()
                .name("bskel-metrics".into())
                .spawn(move || serve(listener, &mut poller, &waker, &stop, &hub))?
        };
        Ok(Self {
            addr,
            stop,
            waker,
            thread: Some(thread),
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The serve loop: accept + read + route + write, all readiness-driven
/// on one poller.
fn serve(
    listener: TcpListener,
    poller: &mut Poller,
    waker: &Waker,
    stop: &AtomicBool,
    hub: &MetricsHub,
) {
    let mut conns: HashMap<u64, ScrapeConn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut events: Vec<Event> = Vec::with_capacity(16);
    while !stop.load(Ordering::SeqCst) {
        events.clear();
        if poller.wait(&mut events, None).is_err() {
            // EINTR is retried inside `wait`; a real poller error leaves
            // nothing to multiplex on — stop serving (scrapes fail fast,
            // the monitored system is unaffected).
            return;
        }
        for ev in &events {
            match ev.token {
                WAKER_TOKEN => waker.drain(),
                LISTENER_TOKEN => loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let token = next_token;
                            next_token += 1;
                            if poller
                                .add(stream.as_raw_fd(), token, Interest::READ)
                                .is_ok()
                            {
                                conns.insert(
                                    token,
                                    ScrapeConn {
                                        stream,
                                        head: Vec::with_capacity(256),
                                        response: None,
                                        written: 0,
                                    },
                                );
                            }
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                },
                token => {
                    let finished = match conns.get_mut(&token) {
                        Some(conn) => step_conn(conn, ev, hub),
                        None => continue,
                    };
                    let conn = conns.get_mut(&token).expect("stepped conn exists");
                    if finished {
                        let _ = poller.delete(conn.stream.as_raw_fd());
                        let _ = conn.stream.shutdown(Shutdown::Both);
                        conns.remove(&token);
                    } else if conn.response.is_some() {
                        // Routed: flip to write interest for the flush.
                        let _ = poller.modify(conn.stream.as_raw_fd(), token, Interest::READ_WRITE);
                    }
                }
            }
        }
    }
}

/// Advances one connection; returns `true` when it should be closed.
fn step_conn(conn: &mut ScrapeConn, ev: &Event, hub: &MetricsHub) -> bool {
    if ev.closed && conn.response.is_none() {
        return true;
    }
    if ev.readable && conn.response.is_none() {
        let mut buf = [0u8; 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => return true, // peer closed before a full request
                Ok(n) => {
                    conn.head.extend_from_slice(&buf[..n]);
                    if conn.head.len() > MAX_REQUEST_HEAD {
                        return true;
                    }
                    if let Some(head_end) = find_head_end(&conn.head) {
                        let head = String::from_utf8_lossy(&conn.head[..head_end]).into_owned();
                        conn.response = Some(route(&head, hub));
                        break;
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
    }
    if let Some(response) = &conn.response {
        // Try the flush opportunistically even before the WRITE-interest
        // flip lands: small responses usually go out in one call.
        loop {
            if conn.written == response.len() {
                return true;
            }
            match conn.stream.write(&response[conn.written..]) {
                Ok(0) => return true,
                Ok(n) => conn.written += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
    }
    false
}

/// Index one past the `\r\n\r\n` (or `\n\n`) head terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// Routes a parsed request head to a full HTTP/1.0 response.
fn route(head: &str, hub: &MetricsHub) -> Vec<u8> {
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let path = parts.next().unwrap_or_default();
    let path = path.split('?').next().unwrap_or_default();
    if method != "GET" {
        return http_response(405, "text/plain; charset=utf-8", "method not allowed\n");
    }
    match path {
        "/metrics" => http_response(
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &hub.render(),
        ),
        "/journal" => match hub.journal() {
            Some(j) => http_response(200, "application/x-ndjson", &j.to_jsonl()),
            None => http_response(404, "text/plain; charset=utf-8", "no journal attached\n"),
        },
        _ => http_response(404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn http_response(status: u16, content_type: &str, body: &str) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let mut out = Vec::with_capacity(body.len() + 128);
    let _ = write!(
        out,
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    out.extend_from_slice(body.as_bytes());
    out
}

/// Renders just the exposition body for a hub (used by tests and the
/// `bskel-top` one-shot mode without going through a socket).
pub fn render_exposition(hub: &MetricsHub) -> String {
    hub.render()
}

// Re-export the parse-back API next to the server so conformance tests
// have one import surface.
pub use expo::{parse as parse_exposition, Exposition, Sample};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn hub_with_source() -> Arc<MetricsHub> {
        let hub = MetricsHub::shared();
        hub.register(
            "default",
            "AM_F",
            || {
                let mut s = SensorSnapshot::empty(1.0);
                s.arrival_rate = 5.0;
                s.num_workers = 3;
                s
            },
            || vec![("addWorker".into(), 2)],
        );
        hub
    }

    #[test]
    fn hub_renders_gauges_and_counters() {
        let hub = hub_with_source();
        let journal = Journal::shared();
        journal.note(0.0, "t", "x");
        hub.attach_journal(Arc::clone(&journal));
        let text = hub.render();
        let parsed = parse_exposition(&text).expect("conformant");
        assert_eq!(parsed.type_of("bskel_num_workers"), Some("gauge"));
        assert_eq!(parsed.type_of("bskel_events_total"), Some("counter"));
        assert_eq!(
            parsed.samples_of("bskel_journal_recorded_total")[0].value,
            1.0
        );
    }

    #[test]
    fn server_serves_metrics_and_journal_over_http() {
        let hub = hub_with_source();
        let journal = Journal::shared();
        journal.note(0.5, "pool", "hello");
        hub.attach_journal(Arc::clone(&journal));
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&hub)).expect("bind");

        let fetch = |path: &str| -> (String, String) {
            let mut stream = TcpStream::connect(server.addr()).expect("connect");
            write!(stream, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
            let mut raw = Vec::new();
            stream.read_to_end(&mut raw).expect("read response");
            let text = String::from_utf8(raw).expect("utf-8");
            let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
            (head.to_owned(), body.to_owned())
        };

        let (head, body) = fetch("/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("version=0.0.4"), "{head}");
        let parsed = parse_exposition(&body).expect("conformant body");
        assert!(!parsed.samples_of("bskel_arrival_rate").is_empty());

        let (head, body) = fetch("/journal");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        let records = bskel_monitor::journal::parse_jsonl(&body).expect("jsonl body");
        assert_eq!(records.len(), 1);

        let (head, _) = fetch("/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
    }

    #[test]
    fn scrapes_spawn_no_threads() {
        // Thread census via /proc: the serving thread exists, scraping
        // twenty times must not add any.
        fn thread_count() -> usize {
            let f = std::fs::File::open("/proc/self/status").expect("procfs");
            for line in io::BufReader::new(f).lines().map_while(Result::ok) {
                if let Some(v) = line.strip_prefix("Threads:") {
                    return v.trim().parse().expect("thread count");
                }
            }
            panic!("no Threads: line");
        }
        let hub = hub_with_source();
        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&hub)).expect("bind");
        // Warm one scrape so lazy init doesn't skew the census.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write!(s, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut sink = String::new();
        let _ = s.read_to_string(&mut sink);
        let before = thread_count();
        for _ in 0..20 {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            write!(s, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
            let mut sink = String::new();
            let _ = s.read_to_string(&mut sink);
        }
        assert_eq!(thread_count(), before, "scrapes must not spawn threads");
    }

    #[test]
    fn count_kinds_orders_by_first_seen() {
        let counts = count_kinds(["a", "b", "a", "c", "a"]);
        assert_eq!(
            counts,
            vec![("a".into(), 3u64), ("b".into(), 1), ("c".into(), 1)]
        );
    }
}
