//! Framed, optionally ciphered I/O over a `TcpStream`.
//!
//! A connection owns one [`FrameWriter`] and one [`FrameReader`], each
//! holding its own clone of the socket. The writer buffers frames and
//! flushes them in one `write_all` — this is where wire batching happens:
//! a whole task batch (plus a trailing heartbeat or sensor frame) goes
//! out as a single syscall. Because the stream cipher is order-dependent,
//! all writes on a connection must serialize through its one
//! `FrameWriter`; callers wrap it in a mutex.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use crate::proto::{encode_frame, Decoder, Frame, FrameType, ProtoError};
use crate::secure::{CostMeter, StreamCipher};

/// Buffered frame encoder for one direction of a connection.
#[derive(Debug)]
pub struct FrameWriter {
    stream: TcpStream,
    cipher: Option<StreamCipher>,
    meter: Option<Arc<CostMeter>>,
    buf: Vec<u8>,
}

impl FrameWriter {
    /// A writer in the clear (handshake phase, or plain channels).
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            cipher: None,
            meter: None,
            buf: Vec::with_capacity(4096),
        }
    }

    /// Ciphers everything written from now on, metering the cost.
    ///
    /// Must be called at a frame boundary with the buffer empty (i.e.
    /// right after the handshake flush), otherwise already-buffered clear
    /// bytes would be ciphered.
    pub fn secure(&mut self, cipher: StreamCipher, meter: Arc<CostMeter>) {
        debug_assert!(self.buf.is_empty(), "secure() mid-frame");
        self.cipher = Some(cipher);
        self.meter = Some(meter);
    }

    /// Appends one frame to the outgoing buffer (no I/O yet).
    pub fn push(&mut self, ftype: FrameType, seq: u64, payload: &[u8]) {
        encode_frame(&mut self.buf, ftype, seq, payload);
    }

    /// Writes the whole buffer to the socket in one `write_all`.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if let Some(cipher) = &mut self.cipher {
            let t0 = Instant::now();
            cipher.apply(&mut self.buf);
            if let Some(m) = &self.meter {
                m.record_cipher(self.buf.len() as u64, t0.elapsed().as_nanos() as u64);
            }
        }
        let res = self.stream.write_all(&self.buf);
        self.buf.clear();
        res?;
        self.stream.flush()
    }

    /// Convenience: push one frame and flush immediately.
    pub fn send(&mut self, ftype: FrameType, seq: u64, payload: &[u8]) -> std::io::Result<()> {
        self.push(ftype, seq, payload);
        self.flush()
    }
}

/// Outcome of one [`FrameReader::fill_once`] read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillStatus {
    /// Bytes arrived and were fed to the decoder.
    Bytes,
    /// Nothing available right now (nonblocking socket or read timeout).
    WouldBlock,
    /// The peer closed the connection.
    Eof,
}

/// Decoding reader for one direction of a connection.
#[derive(Debug)]
pub struct FrameReader {
    stream: TcpStream,
    cipher: Option<StreamCipher>,
    meter: Option<Arc<CostMeter>>,
    decoder: Decoder,
    chunk: Vec<u8>,
}

impl FrameReader {
    /// A reader in the clear.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            cipher: None,
            meter: None,
            decoder: Decoder::new(),
            chunk: vec![0u8; 64 * 1024],
        }
    }

    /// Deciphers everything read from now on.
    ///
    /// Must be called once the decoder holds no buffered bytes from the
    /// clear phase — i.e. immediately after the handshake frames were
    /// consumed and before any ciphered bytes arrive.
    pub fn secure(&mut self, cipher: StreamCipher, meter: Arc<CostMeter>) {
        debug_assert_eq!(self.decoder.buffered(), 0, "secure() with clear residue");
        self.cipher = Some(cipher);
        self.meter = Some(meter);
    }

    /// Pops the next frame already sitting in the decode buffer, without
    /// touching the socket.
    pub fn try_next(&mut self) -> Result<Option<Frame>, ProtoError> {
        self.decoder.next_frame()
    }

    /// One read attempt from the socket into the decoder.
    pub fn fill_once(&mut self) -> std::io::Result<FillStatus> {
        match self.stream.read(&mut self.chunk) {
            Ok(0) => Ok(FillStatus::Eof),
            Ok(n) => {
                if let Some(cipher) = &mut self.cipher {
                    let t0 = Instant::now();
                    cipher.apply(&mut self.chunk[..n]);
                    if let Some(m) = &self.meter {
                        m.record_cipher(n as u64, t0.elapsed().as_nanos() as u64);
                    }
                }
                self.decoder.extend(&self.chunk[..n]);
                Ok(FillStatus::Bytes)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(FillStatus::WouldBlock)
            }
            Err(e) => Err(e),
        }
    }

    /// Blocks until a full frame is available (or EOF / error).
    ///
    /// `Ok(None)` means the peer closed the connection cleanly. Only
    /// meaningful on a blocking socket — `WouldBlock` would spin here.
    pub fn next_blocking(&mut self) -> std::io::Result<Option<Frame>> {
        loop {
            match self.try_next() {
                Ok(Some(f)) => return Ok(Some(f)),
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e));
                }
            }
            match self.fill_once()? {
                FillStatus::Eof => return Ok(None),
                FillStatus::Bytes | FillStatus::WouldBlock => {}
            }
        }
    }

    /// Bytes skipped resynchronising past garbage so far.
    pub fn garbage_bytes(&self) -> u64 {
        self.decoder.garbage_bytes()
    }

    /// The underlying socket (for `set_nonblocking` toggles).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
