//! Membranes: the non-functional side of a component.
//!
//! In Fractal/GCM the *membrane* hosts the controllers and, in GCM's
//! extension, full non-functional membrane components. A behavioural
//! skeleton's membrane hosts its autonomic manager (AM) and autonomic
//! behaviour controller (ABC) (paper Fig. 2, left). The membrane here
//! records which NF facilities a component carries; the facilities
//! themselves (manager objects, sensors) live in `bskel-core` /
//! `bskel-skel` and are looked up by these well-known names.

use std::collections::BTreeSet;

/// Well-known non-functional controller names.
pub mod nf {
    /// Lifecycle controller (always present).
    pub const LIFECYCLE: &str = "lifecycle-controller";
    /// Binding controller (always present).
    pub const BINDING: &str = "binding-controller";
    /// Content controller (composites only).
    pub const CONTENT: &str = "content-controller";
    /// Name controller (always present).
    pub const NAME: &str = "name-controller";
    /// Autonomic manager membrane component (behavioural skeletons).
    pub const AUTONOMIC_MANAGER: &str = "autonomic-manager";
    /// Autonomic behaviour controller: monitoring + actuation mechanisms.
    pub const ABC: &str = "autonomic-behaviour-controller";
}

/// The set of non-functional controllers a component's membrane hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membrane {
    controllers: BTreeSet<String>,
}

impl Membrane {
    /// The minimal membrane every component carries: lifecycle, binding and
    /// name controllers.
    pub fn basic() -> Self {
        let mut controllers = BTreeSet::new();
        controllers.insert(nf::LIFECYCLE.to_owned());
        controllers.insert(nf::BINDING.to_owned());
        controllers.insert(nf::NAME.to_owned());
        Self { controllers }
    }

    /// The membrane of a composite: basic + content controller.
    pub fn composite() -> Self {
        let mut m = Self::basic();
        m.attach(nf::CONTENT);
        m
    }

    /// The membrane of a behavioural skeleton: composite + AM + ABC.
    pub fn behavioural_skeleton() -> Self {
        let mut m = Self::composite();
        m.attach(nf::AUTONOMIC_MANAGER);
        m.attach(nf::ABC);
        m
    }

    /// Attaches a (possibly custom) NF controller by name. Idempotent.
    pub fn attach(&mut self, name: impl Into<String>) {
        self.controllers.insert(name.into());
    }

    /// Detaches an NF controller. Returns whether it was present.
    ///
    /// The three basic controllers cannot be detached; attempting to do so
    /// is a programming error.
    ///
    /// # Panics
    /// Panics when asked to detach lifecycle/binding/name controllers.
    pub fn detach(&mut self, name: &str) -> bool {
        assert!(
            ![nf::LIFECYCLE, nf::BINDING, nf::NAME].contains(&name),
            "basic controller `{name}` cannot be detached"
        );
        self.controllers.remove(name)
    }

    /// Whether the membrane hosts the named controller.
    pub fn has(&self, name: &str) -> bool {
        self.controllers.contains(name)
    }

    /// Controller names, sorted.
    pub fn controllers(&self) -> impl Iterator<Item = &str> {
        self.controllers.iter().map(String::as_str)
    }

    /// Whether this membrane makes its component autonomic (hosts an AM).
    pub fn is_autonomic(&self) -> bool {
        self.has(nf::AUTONOMIC_MANAGER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_membrane_contents() {
        let m = Membrane::basic();
        assert!(m.has(nf::LIFECYCLE));
        assert!(m.has(nf::BINDING));
        assert!(m.has(nf::NAME));
        assert!(!m.has(nf::CONTENT));
        assert!(!m.is_autonomic());
    }

    #[test]
    fn composite_membrane_adds_content() {
        let m = Membrane::composite();
        assert!(m.has(nf::CONTENT));
    }

    #[test]
    fn bs_membrane_is_autonomic() {
        let m = Membrane::behavioural_skeleton();
        assert!(m.has(nf::AUTONOMIC_MANAGER));
        assert!(m.has(nf::ABC));
        assert!(m.is_autonomic());
    }

    #[test]
    fn attach_detach_custom_controller() {
        let mut m = Membrane::basic();
        m.attach("metrics-exporter");
        assert!(m.has("metrics-exporter"));
        assert!(m.detach("metrics-exporter"));
        assert!(!m.has("metrics-exporter"));
        assert!(!m.detach("metrics-exporter"));
    }

    #[test]
    fn attach_is_idempotent() {
        let mut m = Membrane::basic();
        let before = m.controllers().count();
        m.attach(nf::LIFECYCLE);
        assert_eq!(m.controllers().count(), before);
    }

    #[test]
    #[should_panic(expected = "cannot be detached")]
    fn basic_controllers_protected() {
        Membrane::basic().detach(nf::LIFECYCLE);
    }
}
