//! # bskel-gcm — a Grid Component Model substrate
//!
//! The paper's behavioural skeletons are packaged as **GCM composite
//! components**: the Grid Component Model (CoreGRID D.PM.02/04) extends the
//! Fractal component model with collective interfaces and autonomic
//! controllers. A GCM component exposes *functional* interfaces (the
//! computation) and a *membrane* of non-functional controllers:
//!
//! * the **lifecycle controller** — start/stop state machine;
//! * the **binding controller** — wires client interfaces to server
//!   interfaces;
//! * the **content controller** — adds/removes subcomponents of a
//!   composite (this is what worker addition in a farm BS uses);
//! * the **name controller** — component identity;
//! * non-functional *membrane components*, notably the **autonomic
//!   manager (AM)** and the **autonomic behaviour controller (ABC)** of a
//!   behavioural skeleton (paper Fig. 2, left).
//!
//! This crate implements that model as an arena-based registry
//! ([`model::Gcm`]) with checked structural operations, and provides the
//! functional-replication template of Fig. 2 ([`templates`]). It is a
//! *structural* substrate: execution semantics (threads, queues) live in
//! `bskel-skel`, which keeps its runtime farm structure in sync with a GCM
//! composite so that structural invariants (e.g. "content operations
//! require the composite stopped") are enforced uniformly.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod component;
pub mod membrane;
pub mod model;
pub mod templates;

pub use component::{CompId, ComponentKind, InterfaceDecl, LcState, Role};
pub use membrane::{nf, Membrane};
pub use model::{Gcm, GcmError};
