//! The component registry and its checked structural operations.
//!
//! [`Gcm`] is an arena of components. Structural operations mirror the
//! Fractal/GCM controller APIs and enforce the model's invariants:
//!
//! * content operations (add/remove child, bind/unbind) require the
//!   enclosing composite to be **stopped** — this is the invariant that
//!   forces the farm ABC to run worker addition as a stop–reconfigure–start
//!   sequence, producing the sensor blackout visible in the paper's Fig. 4;
//! * bindings connect a client interface to a server interface of equal
//!   signature, within one composite's content (with the usual Fractal
//!   import/export forms for the composite's own faces);
//! * starting a composite requires every mandatory client interface of its
//!   content to be bound, recursively.

use crate::component::{Binding, CompId, ComponentKind, Endpoint, InterfaceDecl, LcState, Role};
use crate::membrane::Membrane;
use std::fmt;

/// Errors raised by structural operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcmError {
    /// Operation requires a composite component.
    NotComposite(CompId),
    /// Component is already a child of some composite.
    HasParent(CompId),
    /// Adding the child would create a containment cycle.
    WouldCycle {
        /// Intended parent.
        parent: CompId,
        /// Intended child (an ancestor of `parent`).
        child: CompId,
    },
    /// Structural mutation attempted while the composite is started.
    MutationWhileStarted(CompId),
    /// The named interface does not exist on the component.
    UnknownInterface(CompId, String),
    /// An interface with this name is already declared.
    DuplicateInterface(CompId, String),
    /// Binding endpoints have incompatible roles.
    RoleMismatch {
        /// Offending endpoint.
        endpoint: Endpoint,
        /// Role the binding required there.
        expected: Role,
    },
    /// Binding endpoints have different signatures.
    SignatureMismatch(String, String),
    /// The client endpoint is already bound.
    AlreadyBound(Endpoint),
    /// No binding exists from this endpoint.
    NotBound(Endpoint),
    /// The endpoint's component is not part of this composite's content.
    NotInContent(CompId, CompId),
    /// The component is not a child of the given composite.
    NotChild {
        /// Composite searched.
        parent: CompId,
        /// Component that was not found among its children.
        child: CompId,
    },
    /// Start refused: a mandatory client interface is unbound.
    UnboundMandatory {
        /// Component owning the unbound interface.
        component: CompId,
        /// Interface name.
        interface: String,
    },
    /// The child still participates in bindings and cannot be removed.
    StillBound(CompId),
}

impl fmt::Display for GcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcmError::NotComposite(id) => write!(f, "component {id} is not a composite"),
            GcmError::HasParent(id) => write!(f, "component {id} already has a parent"),
            GcmError::WouldCycle { parent, child } => {
                write!(f, "adding {child} under {parent} would create a cycle")
            }
            GcmError::MutationWhileStarted(id) => {
                write!(
                    f,
                    "composite {id} is started; stop it before mutating content"
                )
            }
            GcmError::UnknownInterface(id, name) => {
                write!(f, "component {id} has no interface `{name}`")
            }
            GcmError::DuplicateInterface(id, name) => {
                write!(f, "component {id} already declares interface `{name}`")
            }
            GcmError::RoleMismatch { endpoint, expected } => write!(
                f,
                "interface `{}` on {} must be a {:?} interface here",
                endpoint.interface, endpoint.component, expected
            ),
            GcmError::SignatureMismatch(a, b) => {
                write!(f, "binding signature mismatch: `{a}` vs `{b}`")
            }
            GcmError::AlreadyBound(e) => {
                write!(
                    f,
                    "interface `{}` on {} is already bound",
                    e.interface, e.component
                )
            }
            GcmError::NotBound(e) => {
                write!(
                    f,
                    "interface `{}` on {} is not bound",
                    e.interface, e.component
                )
            }
            GcmError::NotInContent(composite, id) => {
                write!(
                    f,
                    "component {id} is not in the content of composite {composite}"
                )
            }
            GcmError::NotChild { parent, child } => {
                write!(f, "component {child} is not a child of {parent}")
            }
            GcmError::UnboundMandatory {
                component,
                interface,
            } => write!(
                f,
                "cannot start: mandatory client interface `{interface}` of {component} is unbound"
            ),
            GcmError::StillBound(id) => {
                write!(f, "component {id} still participates in bindings")
            }
        }
    }
}

impl std::error::Error for GcmError {}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: ComponentKind,
    membrane: Membrane,
    interfaces: Vec<InterfaceDecl>,
    state: LcState,
    parent: Option<CompId>,
    children: Vec<CompId>,
    bindings: Vec<Binding>,
}

/// An arena of GCM components.
#[derive(Debug, Clone, Default)]
pub struct Gcm {
    nodes: Vec<Node>,
}

impl Gcm {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a primitive component.
    pub fn primitive(&mut self, name: impl Into<String>) -> CompId {
        self.insert(name.into(), ComponentKind::Primitive, Membrane::basic())
    }

    /// Registers a plain composite component.
    pub fn composite(&mut self, name: impl Into<String>) -> CompId {
        self.insert(name.into(), ComponentKind::Composite, Membrane::composite())
    }

    /// Registers a behavioural-skeleton composite (membrane hosts AM+ABC).
    pub fn behavioural_skeleton(&mut self, name: impl Into<String>) -> CompId {
        self.insert(
            name.into(),
            ComponentKind::Composite,
            Membrane::behavioural_skeleton(),
        )
    }

    fn insert(&mut self, name: String, kind: ComponentKind, membrane: Membrane) -> CompId {
        let id = CompId(self.nodes.len());
        self.nodes.push(Node {
            name,
            kind,
            membrane,
            interfaces: Vec::new(),
            state: LcState::Stopped,
            parent: None,
            children: Vec::new(),
            bindings: Vec::new(),
        });
        id
    }

    fn node(&self, id: CompId) -> &Node {
        &self.nodes[id.0]
    }

    fn node_mut(&mut self, id: CompId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no components are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All component ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = CompId> {
        (0..self.nodes.len()).map(CompId)
    }

    // ---- name / membrane / kind accessors (name controller) ----

    /// Component name.
    pub fn name(&self, id: CompId) -> &str {
        &self.node(id).name
    }

    /// Component kind.
    pub fn kind(&self, id: CompId) -> ComponentKind {
        self.node(id).kind
    }

    /// Lifecycle state.
    pub fn state(&self, id: CompId) -> LcState {
        self.node(id).state
    }

    /// The component's membrane.
    pub fn membrane(&self, id: CompId) -> &Membrane {
        &self.node(id).membrane
    }

    /// Mutable access to the membrane (attaching custom NF controllers).
    pub fn membrane_mut(&mut self, id: CompId) -> &mut Membrane {
        &mut self.node_mut(id).membrane
    }

    // ---- interface declaration ----

    /// Declares an interface on a component.
    pub fn add_interface(&mut self, id: CompId, decl: InterfaceDecl) -> Result<(), GcmError> {
        if self.node(id).interfaces.iter().any(|i| i.name == decl.name) {
            return Err(GcmError::DuplicateInterface(id, decl.name));
        }
        self.node_mut(id).interfaces.push(decl);
        Ok(())
    }

    /// Looks an interface up.
    pub fn interface(&self, id: CompId, name: &str) -> Result<&InterfaceDecl, GcmError> {
        self.node(id)
            .interfaces
            .iter()
            .find(|i| i.name == name)
            .ok_or_else(|| GcmError::UnknownInterface(id, name.to_owned()))
    }

    /// All interfaces of a component.
    pub fn interfaces(&self, id: CompId) -> &[InterfaceDecl] {
        &self.node(id).interfaces
    }

    // ---- content controller ----

    /// Children of a composite (empty for primitives).
    pub fn children(&self, id: CompId) -> &[CompId] {
        &self.node(id).children
    }

    /// Parent composite, if any.
    pub fn parent(&self, id: CompId) -> Option<CompId> {
        self.node(id).parent
    }

    /// Adds `child` to the content of `parent`.
    pub fn add_child(&mut self, parent: CompId, child: CompId) -> Result<(), GcmError> {
        if self.node(parent).kind != ComponentKind::Composite {
            return Err(GcmError::NotComposite(parent));
        }
        if self.node(parent).state == LcState::Started {
            return Err(GcmError::MutationWhileStarted(parent));
        }
        if self.node(child).parent.is_some() {
            return Err(GcmError::HasParent(child));
        }
        // Reject cycles: parent (or any ancestor of parent) must not be the
        // child itself.
        let mut cursor = Some(parent);
        while let Some(c) = cursor {
            if c == child {
                return Err(GcmError::WouldCycle { parent, child });
            }
            cursor = self.node(c).parent;
        }
        self.node_mut(parent).children.push(child);
        self.node_mut(child).parent = Some(parent);
        Ok(())
    }

    /// Removes `child` from the content of `parent`. The child must not
    /// participate in any of the composite's bindings.
    pub fn remove_child(&mut self, parent: CompId, child: CompId) -> Result<(), GcmError> {
        if self.node(parent).kind != ComponentKind::Composite {
            return Err(GcmError::NotComposite(parent));
        }
        if self.node(parent).state == LcState::Started {
            return Err(GcmError::MutationWhileStarted(parent));
        }
        let Some(pos) = self.node(parent).children.iter().position(|&c| c == child) else {
            return Err(GcmError::NotChild { parent, child });
        };
        let involved = self
            .node(parent)
            .bindings
            .iter()
            .any(|b| b.from.component == child || b.to.component == child);
        if involved {
            return Err(GcmError::StillBound(child));
        }
        self.node_mut(parent).children.remove(pos);
        self.node_mut(child).parent = None;
        Ok(())
    }

    // ---- binding controller ----

    /// Bindings registered in a composite's content.
    pub fn bindings(&self, id: CompId) -> &[Binding] {
        &self.node(id).bindings
    }

    /// Binds `from` (client side) to `to` (server side) inside `composite`.
    ///
    /// Fractal's three binding forms are supported:
    /// * *normal*: child client → child server;
    /// * *import*: composite's own **server** face → child server (requests
    ///   entering the composite);
    /// * *export*: child client → composite's own **client** face (requests
    ///   leaving the composite).
    pub fn bind(
        &mut self,
        composite: CompId,
        from: Endpoint,
        to: Endpoint,
    ) -> Result<(), GcmError> {
        if self.node(composite).kind != ComponentKind::Composite {
            return Err(GcmError::NotComposite(composite));
        }
        if self.node(composite).state == LcState::Started {
            return Err(GcmError::MutationWhileStarted(composite));
        }
        self.check_in_content(composite, from.component)?;
        self.check_in_content(composite, to.component)?;

        let from_decl = self.interface(from.component, &from.interface)?.clone();
        let to_decl = self.interface(to.component, &to.interface)?.clone();

        // Role checks depend on whether the endpoint is the composite's own
        // face (import/export) or a child's.
        let from_expected = if from.component == composite {
            Role::Server // import: the composite's server face forwards inward
        } else {
            Role::Client
        };
        let to_expected = if to.component == composite {
            Role::Client // export: a child's client forwards to the composite's client face
        } else {
            Role::Server
        };
        if from_decl.role != from_expected {
            return Err(GcmError::RoleMismatch {
                endpoint: from,
                expected: from_expected,
            });
        }
        if to_decl.role != to_expected {
            return Err(GcmError::RoleMismatch {
                endpoint: to,
                expected: to_expected,
            });
        }
        if from_decl.signature != to_decl.signature {
            return Err(GcmError::SignatureMismatch(
                from_decl.signature,
                to_decl.signature,
            ));
        }
        if self.node(composite).bindings.iter().any(|b| b.from == from) {
            return Err(GcmError::AlreadyBound(from));
        }
        self.node_mut(composite).bindings.push(Binding { from, to });
        Ok(())
    }

    /// Removes the binding whose client side is `from`.
    pub fn unbind(&mut self, composite: CompId, from: &Endpoint) -> Result<Binding, GcmError> {
        if self.node(composite).state == LcState::Started {
            return Err(GcmError::MutationWhileStarted(composite));
        }
        let pos = self
            .node(composite)
            .bindings
            .iter()
            .position(|b| &b.from == from)
            .ok_or_else(|| GcmError::NotBound(from.clone()))?;
        Ok(self.node_mut(composite).bindings.remove(pos))
    }

    fn check_in_content(&self, composite: CompId, id: CompId) -> Result<(), GcmError> {
        if id == composite || self.node(composite).children.contains(&id) {
            Ok(())
        } else {
            Err(GcmError::NotInContent(composite, id))
        }
    }

    // ---- lifecycle controller ----

    /// Starts a component and (recursively) its content.
    ///
    /// Fails if any mandatory client interface of a content child is
    /// unbound in its enclosing composite.
    pub fn start(&mut self, id: CompId) -> Result<(), GcmError> {
        self.check_startable(id)?;
        self.set_state_recursive(id, LcState::Started);
        Ok(())
    }

    /// Stops a component and (recursively) its content.
    pub fn stop(&mut self, id: CompId) {
        self.set_state_recursive(id, LcState::Stopped);
    }

    fn check_startable(&self, id: CompId) -> Result<(), GcmError> {
        if self.node(id).kind == ComponentKind::Composite {
            for &child in &self.node(id).children {
                for decl in &self.node(child).interfaces {
                    if decl.role == Role::Client && decl.mandatory {
                        let ep_bound =
                            self.node(id).bindings.iter().any(|b| {
                                b.from.component == child && b.from.interface == decl.name
                            });
                        if !ep_bound {
                            return Err(GcmError::UnboundMandatory {
                                component: child,
                                interface: decl.name.clone(),
                            });
                        }
                    }
                }
                self.check_startable(child)?;
            }
        }
        Ok(())
    }

    fn set_state_recursive(&mut self, id: CompId, state: LcState) {
        self.node_mut(id).state = state;
        let children = self.node(id).children.clone();
        for child in children {
            self.set_state_recursive(child, state);
        }
    }

    /// Renders the containment tree as an indented string (debugging aid).
    pub fn render_tree(&self, root: CompId) -> String {
        let mut out = String::new();
        self.render_into(root, 0, &mut out);
        out
    }

    fn render_into(&self, id: CompId, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let n = self.node(id);
        let tag = match n.kind {
            ComponentKind::Primitive => "prim",
            ComponentKind::Composite if n.membrane.is_autonomic() => "bskel",
            ComponentKind::Composite => "comp",
        };
        let _ = writeln!(
            out,
            "{}{} {} [{}]",
            "  ".repeat(depth),
            tag,
            n.name,
            n.state
        );
        for &child in &n.children {
            self.render_into(child, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the composite of the paper's Fig. 2 (left): a farm BS with a
    /// scheduler S, workers W, and a collector C.
    fn farm_fixture(workers: usize) -> (Gcm, CompId, CompId, Vec<CompId>, CompId) {
        let mut g = Gcm::new();
        let farm = g.behavioural_skeleton("farm");
        let s = g.primitive("S");
        let c = g.primitive("C");
        g.add_interface(s, InterfaceDecl::client("dispatch", "task"))
            .unwrap();
        g.add_interface(c, InterfaceDecl::server("collect", "result"))
            .unwrap();
        g.add_child(farm, s).unwrap();
        g.add_child(farm, c).unwrap();
        let mut ws = Vec::new();
        for i in 0..workers {
            let w = g.primitive(format!("W{i}"));
            g.add_interface(w, InterfaceDecl::server("in", "task"))
                .unwrap();
            g.add_interface(w, InterfaceDecl::client("out", "result"))
                .unwrap();
            g.add_child(farm, w).unwrap();
            ws.push(w);
        }
        // S dispatches to W0 (representative binding); workers feed C.
        g.bind(
            farm,
            Endpoint::new(s, "dispatch"),
            Endpoint::new(ws[0], "in"),
        )
        .unwrap();
        for &w in &ws {
            g.bind(farm, Endpoint::new(w, "out"), Endpoint::new(c, "collect"))
                .unwrap();
        }
        (g, farm, s, ws, c)
    }

    #[test]
    fn build_and_start_farm() {
        let (mut g, farm, s, ws, _c) = farm_fixture(2);
        g.start(farm).unwrap();
        assert_eq!(g.state(farm), LcState::Started);
        assert_eq!(g.state(s), LcState::Started);
        assert_eq!(g.state(ws[1]), LcState::Started);
        assert_eq!(g.children(farm).len(), 4);
    }

    #[test]
    fn start_requires_mandatory_bindings() {
        let mut g = Gcm::new();
        let comp = g.composite("c");
        let a = g.primitive("a");
        g.add_interface(a, InterfaceDecl::client("needs", "svc"))
            .unwrap();
        g.add_child(comp, a).unwrap();
        let err = g.start(comp).unwrap_err();
        assert_eq!(
            err,
            GcmError::UnboundMandatory {
                component: a,
                interface: "needs".into()
            }
        );
    }

    #[test]
    fn optional_client_interfaces_do_not_block_start() {
        let mut g = Gcm::new();
        let comp = g.composite("c");
        let a = g.primitive("a");
        g.add_interface(a, InterfaceDecl::client("dbg", "log").optional())
            .unwrap();
        g.add_child(comp, a).unwrap();
        g.start(comp).unwrap();
    }

    #[test]
    fn content_mutation_requires_stopped() {
        let (mut g, farm, _s, _ws, _c) = farm_fixture(1);
        g.start(farm).unwrap();
        let w_new = g.primitive("Wnew");
        assert_eq!(
            g.add_child(farm, w_new),
            Err(GcmError::MutationWhileStarted(farm))
        );
        // The farm ABC's add-worker actuator does exactly this dance:
        g.stop(farm);
        g.add_child(farm, w_new).unwrap();
        g.start(farm).unwrap();
        assert_eq!(g.children(farm).len(), 4); // S + C + W0 + Wnew
    }

    #[test]
    fn remove_child_refuses_bound_children() {
        let (mut g, farm, _s, ws, c) = farm_fixture(2);
        assert_eq!(
            g.remove_child(farm, ws[1]),
            Err(GcmError::StillBound(ws[1]))
        );
        g.unbind(farm, &Endpoint::new(ws[1], "out")).unwrap();
        g.remove_child(farm, ws[1]).unwrap();
        assert_eq!(g.children(farm).len(), 3);
        assert!(g.parent(ws[1]).is_none());
        // collector untouched
        assert_eq!(g.parent(c), Some(farm));
    }

    #[test]
    fn bind_signature_mismatch_rejected() {
        let mut g = Gcm::new();
        let comp = g.composite("c");
        let a = g.primitive("a");
        let b = g.primitive("b");
        g.add_interface(a, InterfaceDecl::client("out", "task"))
            .unwrap();
        g.add_interface(b, InterfaceDecl::server("in", "pixel"))
            .unwrap();
        g.add_child(comp, a).unwrap();
        g.add_child(comp, b).unwrap();
        let err = g
            .bind(comp, Endpoint::new(a, "out"), Endpoint::new(b, "in"))
            .unwrap_err();
        assert_eq!(
            err,
            GcmError::SignatureMismatch("task".into(), "pixel".into())
        );
    }

    #[test]
    fn bind_role_mismatch_rejected() {
        let mut g = Gcm::new();
        let comp = g.composite("c");
        let a = g.primitive("a");
        let b = g.primitive("b");
        g.add_interface(a, InterfaceDecl::server("in", "t"))
            .unwrap();
        g.add_interface(b, InterfaceDecl::server("in", "t"))
            .unwrap();
        g.add_child(comp, a).unwrap();
        g.add_child(comp, b).unwrap();
        let err = g
            .bind(comp, Endpoint::new(a, "in"), Endpoint::new(b, "in"))
            .unwrap_err();
        assert!(matches!(err, GcmError::RoleMismatch { .. }));
    }

    #[test]
    fn double_bind_rejected() {
        let (mut g, farm, s, ws, _c) = farm_fixture(2);
        let err = g
            .bind(
                farm,
                Endpoint::new(s, "dispatch"),
                Endpoint::new(ws[1], "in"),
            )
            .unwrap_err();
        assert_eq!(err, GcmError::AlreadyBound(Endpoint::new(s, "dispatch")));
    }

    #[test]
    fn bind_outside_content_rejected() {
        let mut g = Gcm::new();
        let comp = g.composite("c");
        let a = g.primitive("a");
        let stranger = g.primitive("x");
        g.add_interface(a, InterfaceDecl::client("out", "t"))
            .unwrap();
        g.add_interface(stranger, InterfaceDecl::server("in", "t"))
            .unwrap();
        g.add_child(comp, a).unwrap();
        let err = g
            .bind(comp, Endpoint::new(a, "out"), Endpoint::new(stranger, "in"))
            .unwrap_err();
        assert_eq!(err, GcmError::NotInContent(comp, stranger));
    }

    #[test]
    fn import_export_bindings() {
        // pipeline composite: its server face forwards to stage1 (import);
        // stage1's client forwards out through the composite's client face
        // (export).
        let mut g = Gcm::new();
        let pipe = g.composite("pipe");
        let stage = g.primitive("stage");
        g.add_interface(pipe, InterfaceDecl::server("in", "t"))
            .unwrap();
        g.add_interface(pipe, InterfaceDecl::client("out", "t").optional())
            .unwrap();
        g.add_interface(stage, InterfaceDecl::server("in", "t"))
            .unwrap();
        g.add_interface(stage, InterfaceDecl::client("out", "t"))
            .unwrap();
        g.add_child(pipe, stage).unwrap();
        g.bind(pipe, Endpoint::new(pipe, "in"), Endpoint::new(stage, "in"))
            .unwrap();
        g.bind(
            pipe,
            Endpoint::new(stage, "out"),
            Endpoint::new(pipe, "out"),
        )
        .unwrap();
        g.start(pipe).unwrap();
    }

    #[test]
    fn add_child_rejects_cycles_and_double_parents() {
        let mut g = Gcm::new();
        let outer = g.composite("outer");
        let inner = g.composite("inner");
        g.add_child(outer, inner).unwrap();
        assert_eq!(
            g.add_child(inner, outer),
            Err(GcmError::WouldCycle {
                parent: inner,
                child: outer
            })
        );
        assert_eq!(
            g.add_child(outer, outer),
            Err(GcmError::WouldCycle {
                parent: outer,
                child: outer
            })
        );
        let p = g.primitive("p");
        g.add_child(inner, p).unwrap();
        assert_eq!(g.add_child(outer, p), Err(GcmError::HasParent(p)));
    }

    #[test]
    fn primitives_cannot_hold_content() {
        let mut g = Gcm::new();
        let p = g.primitive("p");
        let q = g.primitive("q");
        assert_eq!(g.add_child(p, q), Err(GcmError::NotComposite(p)));
    }

    #[test]
    fn duplicate_interface_rejected() {
        let mut g = Gcm::new();
        let p = g.primitive("p");
        g.add_interface(p, InterfaceDecl::server("in", "t"))
            .unwrap();
        assert_eq!(
            g.add_interface(p, InterfaceDecl::client("in", "t")),
            Err(GcmError::DuplicateInterface(p, "in".into()))
        );
    }

    #[test]
    fn stop_is_recursive() {
        let (mut g, farm, s, _ws, _c) = farm_fixture(1);
        g.start(farm).unwrap();
        g.stop(farm);
        assert_eq!(g.state(farm), LcState::Stopped);
        assert_eq!(g.state(s), LcState::Stopped);
    }

    #[test]
    fn render_tree_shows_structure() {
        let (g, farm, ..) = farm_fixture(1);
        let tree = g.render_tree(farm);
        assert!(tree.contains("bskel farm"));
        assert!(tree.contains("prim S"));
        assert!(tree.contains("prim W0"));
        assert!(tree.contains("prim C"));
    }

    #[test]
    fn unbind_unknown_errors() {
        let (mut g, farm, s, _ws, _c) = farm_fixture(1);
        g.unbind(farm, &Endpoint::new(s, "dispatch")).unwrap();
        assert!(matches!(
            g.unbind(farm, &Endpoint::new(s, "dispatch")),
            Err(GcmError::NotBound(_))
        ));
    }
}
