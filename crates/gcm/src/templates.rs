//! Component templates for the paper's skeleton structures.
//!
//! [`functional_replication`] builds the composite of Fig. 2 (left): a
//! behavioural skeleton with a scheduler/emitter `S`, `n` workers `W_i` and
//! a collector `C`, plus the membrane AM/ABC. [`three_stage_pipeline`]
//! builds the application of Fig. 2 (right): a pipeline BS whose second
//! stage is a farm BS — the structure used by the hierarchical-management
//! experiment (Fig. 4).

use crate::component::{CompId, Endpoint, InterfaceDecl};
use crate::model::{Gcm, GcmError};

/// Ids of the parts of a functional-replication composite.
#[derive(Debug, Clone)]
pub struct FunctionalReplication {
    /// The behavioural-skeleton composite itself.
    pub farm: CompId,
    /// Scheduler/emitter primitive (`S` in Fig. 2).
    pub scheduler: CompId,
    /// Worker primitives (`W` in Fig. 2).
    pub workers: Vec<CompId>,
    /// Collector primitive (`C` in Fig. 2).
    pub collector: CompId,
}

/// Builds a functional-replication behavioural skeleton with `n_workers`
/// workers inside `gcm`, fully bound and ready to start.
pub fn functional_replication(
    gcm: &mut Gcm,
    name: &str,
    n_workers: usize,
) -> Result<FunctionalReplication, GcmError> {
    let farm = gcm.behavioural_skeleton(name);
    gcm.add_interface(farm, InterfaceDecl::server("in", "task"))?;
    gcm.add_interface(farm, InterfaceDecl::client("out", "result").optional())?;

    let scheduler = gcm.primitive(format!("{name}.S"));
    gcm.add_interface(scheduler, InterfaceDecl::server("in", "task"))?;
    let collector = gcm.primitive(format!("{name}.C"));
    gcm.add_interface(collector, InterfaceDecl::server("collect", "result"))?;
    gcm.add_interface(collector, InterfaceDecl::client("out", "result").optional())?;
    gcm.add_child(farm, scheduler)?;
    gcm.add_child(farm, collector)?;

    // The composite's input face forwards to the scheduler; the collector
    // forwards out through the composite's output face.
    gcm.bind(
        farm,
        Endpoint::new(farm, "in"),
        Endpoint::new(scheduler, "in"),
    )?;
    gcm.bind(
        farm,
        Endpoint::new(collector, "out"),
        Endpoint::new(farm, "out"),
    )?;

    let mut fr = FunctionalReplication {
        farm,
        scheduler,
        workers: Vec::with_capacity(n_workers),
        collector,
    };
    for _ in 0..n_workers {
        add_worker(gcm, &mut fr)?;
    }
    Ok(fr)
}

/// Adds one worker to an existing functional-replication composite — the
/// structural half of the farm ABC's `ADD_EXECUTOR` actuator. The composite
/// must be stopped (the runtime stops it, reconfigures, restarts; the
/// resulting sensor blackout is visible in the paper's Fig. 4).
pub fn add_worker(gcm: &mut Gcm, fr: &mut FunctionalReplication) -> Result<CompId, GcmError> {
    let idx = fr.workers.len();
    let name = gcm.name(fr.farm).to_owned();
    let w = gcm.primitive(format!("{name}.W{idx}"));
    gcm.add_interface(w, InterfaceDecl::server("in", "task"))?;
    gcm.add_interface(w, InterfaceDecl::client("out", "result"))?;
    gcm.add_child(fr.farm, w)?;
    gcm.bind(
        fr.farm,
        Endpoint::new(w, "out"),
        Endpoint::new(fr.collector, "collect"),
    )?;
    fr.workers.push(w);
    Ok(w)
}

/// Removes the most recently added worker — the structural half of
/// `REMOVE_EXECUTOR`. Returns the removed worker's id, or `None` if no
/// workers remain.
pub fn remove_worker(
    gcm: &mut Gcm,
    fr: &mut FunctionalReplication,
) -> Result<Option<CompId>, GcmError> {
    let Some(w) = fr.workers.pop() else {
        return Ok(None);
    };
    gcm.unbind(fr.farm, &Endpoint::new(w, "out"))?;
    gcm.remove_child(fr.farm, w)?;
    Ok(Some(w))
}

/// Ids of the parts of the Fig. 2 (right) application.
#[derive(Debug, Clone)]
pub struct ThreeStagePipeline {
    /// The pipeline behavioural skeleton.
    pub pipeline: CompId,
    /// First (sequential) stage: the producer.
    pub producer: CompId,
    /// Second stage: a farm behavioural skeleton.
    pub farm: FunctionalReplication,
    /// Third (sequential) stage: the consumer.
    pub consumer: CompId,
}

/// Builds the paper's Fig. 2 (right) structure:
/// `pipeline(seq producer, farm(seq worker), seq consumer)`.
pub fn three_stage_pipeline(
    gcm: &mut Gcm,
    name: &str,
    farm_workers: usize,
) -> Result<ThreeStagePipeline, GcmError> {
    let pipeline = gcm.behavioural_skeleton(name);

    let producer = gcm.primitive(format!("{name}.producer"));
    gcm.add_interface(producer, InterfaceDecl::client("out", "task"))?;
    let consumer = gcm.primitive(format!("{name}.consumer"));
    gcm.add_interface(consumer, InterfaceDecl::server("in", "result"))?;

    let farm = functional_replication(gcm, &format!("{name}.filter"), farm_workers)?;

    gcm.add_child(pipeline, producer)?;
    gcm.add_child(pipeline, farm.farm)?;
    gcm.add_child(pipeline, consumer)?;

    // producer → farm input; farm output → consumer. The farm's `out` is a
    // client face of signature `result`; the consumer serves `result`.
    gcm.bind(
        pipeline,
        Endpoint::new(producer, "out"),
        Endpoint::new(farm.farm, "in"),
    )?;
    gcm.bind(
        pipeline,
        Endpoint::new(farm.farm, "out"),
        Endpoint::new(consumer, "in"),
    )?;

    Ok(ThreeStagePipeline {
        pipeline,
        producer,
        farm,
        consumer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::LcState;
    use crate::membrane::nf;

    #[test]
    fn functional_replication_builds_and_starts() {
        let mut g = Gcm::new();
        let fr = functional_replication(&mut g, "farm", 3).unwrap();
        assert_eq!(fr.workers.len(), 3);
        assert_eq!(g.children(fr.farm).len(), 5); // S + C + 3 workers
        assert!(g.membrane(fr.farm).has(nf::AUTONOMIC_MANAGER));
        assert!(g.membrane(fr.farm).has(nf::ABC));
        g.start(fr.farm).unwrap();
        assert_eq!(g.state(fr.workers[2]), LcState::Started);
    }

    #[test]
    fn add_worker_requires_stop_when_started() {
        let mut g = Gcm::new();
        let mut fr = functional_replication(&mut g, "farm", 1).unwrap();
        g.start(fr.farm).unwrap();
        assert!(add_worker(&mut g, &mut fr).is_err());
        g.stop(fr.farm);
        let w = add_worker(&mut g, &mut fr).unwrap();
        g.start(fr.farm).unwrap();
        assert_eq!(g.state(w), LcState::Started);
        assert_eq!(fr.workers.len(), 2);
    }

    #[test]
    fn remove_worker_unwinds_structure() {
        let mut g = Gcm::new();
        let mut fr = functional_replication(&mut g, "farm", 2).unwrap();
        let removed = remove_worker(&mut g, &mut fr).unwrap().unwrap();
        assert_eq!(fr.workers.len(), 1);
        assert!(g.parent(removed).is_none());
        // Removing beyond empty is a no-op.
        remove_worker(&mut g, &mut fr).unwrap().unwrap();
        assert_eq!(remove_worker(&mut g, &mut fr).unwrap(), None);
    }

    #[test]
    fn fig2_right_structure() {
        let mut g = Gcm::new();
        let app = three_stage_pipeline(&mut g, "app", 2).unwrap();
        assert_eq!(g.children(app.pipeline).len(), 3);
        g.start(app.pipeline).unwrap();
        assert_eq!(g.state(app.farm.farm), LcState::Started);
        assert_eq!(g.state(app.farm.workers[1]), LcState::Started);
        let tree = g.render_tree(app.pipeline);
        assert!(tree.contains("bskel app"), "{tree}");
        assert!(tree.contains("bskel app.filter"), "{tree}");
        assert!(tree.contains("prim app.producer"), "{tree}");
        assert!(tree.contains("prim app.consumer"), "{tree}");
    }

    #[test]
    fn worker_names_are_sequential() {
        let mut g = Gcm::new();
        let fr = functional_replication(&mut g, "f", 2).unwrap();
        assert_eq!(g.name(fr.workers[0]), "f.W0");
        assert_eq!(g.name(fr.workers[1]), "f.W1");
        assert_eq!(g.name(fr.scheduler), "f.S");
        assert_eq!(g.name(fr.collector), "f.C");
    }
}
