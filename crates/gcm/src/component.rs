//! Component records: identity, interfaces, kinds, lifecycle states.

use std::fmt;

/// Arena index identifying a component inside a [`crate::model::Gcm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub(crate) usize);

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Interface role, as in Fractal: a *client* interface requires a service,
/// a *server* interface provides one. Bindings connect client → server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Requires a service (outgoing).
    Client,
    /// Provides a service (incoming).
    Server,
}

/// A declared interface on a component boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceDecl {
    /// Interface name, unique per component.
    pub name: String,
    /// Client or server.
    pub role: Role,
    /// Free-form signature tag; bindings require equal signatures, which
    /// stands in for Java interface-type conformance in the prototype.
    pub signature: String,
    /// Whether a client interface must be bound before start. Optional
    /// (contingent, in Fractal terms) interfaces may stay unbound.
    pub mandatory: bool,
}

impl InterfaceDecl {
    /// A mandatory client interface.
    pub fn client(name: impl Into<String>, signature: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            role: Role::Client,
            signature: signature.into(),
            mandatory: true,
        }
    }

    /// A server interface.
    pub fn server(name: impl Into<String>, signature: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            role: Role::Server,
            signature: signature.into(),
            mandatory: false,
        }
    }

    /// Marks the interface optional (contingent).
    pub fn optional(mut self) -> Self {
        self.mandatory = false;
        self
    }
}

/// Primitive components carry behaviour; composites carry content
/// (subcomponents and internal bindings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentKind {
    /// A leaf component (sequential code in the paper's skeletons).
    Primitive,
    /// A composite with content (a behavioural skeleton is one of these).
    Composite,
}

/// Lifecycle-controller states (Fractal `LifeCycleController`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LcState {
    /// Not running; structural operations allowed.
    #[default]
    Stopped,
    /// Running; structure frozen (content/binding changes rejected).
    Started,
}

impl fmt::Display for LcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LcState::Stopped => write!(f, "STOPPED"),
            LcState::Started => write!(f, "STARTED"),
        }
    }
}

/// One end of a binding: an interface on a child, or on the composite's own
/// internal face.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// The component owning the interface (may be the composite itself for
    /// export/import bindings).
    pub component: CompId,
    /// Interface name on that component.
    pub interface: String,
}

impl Endpoint {
    /// Builds an endpoint.
    pub fn new(component: CompId, interface: impl Into<String>) -> Self {
        Self {
            component,
            interface: interface.into(),
        }
    }
}

/// A client→server binding registered in a composite's content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// Client (requiring) end.
    pub from: Endpoint,
    /// Server (providing) end.
    pub to: Endpoint,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_builders() {
        let c = InterfaceDecl::client("out", "stream<T>");
        assert_eq!(c.role, Role::Client);
        assert!(c.mandatory);
        let s = InterfaceDecl::server("in", "stream<T>");
        assert_eq!(s.role, Role::Server);
        assert!(!s.mandatory);
        let opt = InterfaceDecl::client("dbg", "log").optional();
        assert!(!opt.mandatory);
    }

    #[test]
    fn lcstate_default_is_stopped() {
        assert_eq!(LcState::default(), LcState::Stopped);
        assert_eq!(LcState::Stopped.to_string(), "STOPPED");
        assert_eq!(LcState::Started.to_string(), "STARTED");
    }

    #[test]
    fn compid_displays_index() {
        assert_eq!(CompId(3).to_string(), "#3");
    }
}
