//! Paced stream sources.
//!
//! The producer stage of the paper's Fig. 4 emits tasks at a rate its
//! manager controls: `incRate`/`decRate` contracts translate into
//! [`PacedSource`] rate changes. The rate is an atomic `f64` so the source
//! thread reads it per emission without locking and the manager's actuator
//! updates it from another thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe emission-rate knob (tasks/second).
#[derive(Debug)]
pub struct RateKnob {
    bits: AtomicU64,
}

/// Forces a rate into the knob's sane positive range. `f64::clamp`
/// propagates NaN, so that case is pinned to the floor explicitly —
/// an AM actuator fed a degenerate scenario-derived rate must never
/// panic or poison the knob.
fn sanitize(rate: f64) -> f64 {
    if rate.is_nan() {
        1e-6
    } else {
        rate.clamp(1e-6, 1e9)
    }
}

impl RateKnob {
    /// Creates a knob at the given rate, clamped to a sane positive range
    /// (same policy as [`RateKnob::set`] — a non-positive or non-finite
    /// scenario-derived rate must not panic an actuator path).
    pub fn new(rate: f64) -> Arc<Self> {
        Arc::new(Self {
            bits: AtomicU64::new(sanitize(rate).to_bits()),
        })
    }

    /// Current rate in tasks/second.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Sets the rate, clamping to a sane positive range.
    pub fn set(&self, rate: f64) {
        self.bits.store(sanitize(rate).to_bits(), Ordering::Release);
    }

    /// Multiplies the rate by `factor` (the `ScaleRate` actuator).
    pub fn scale(&self, factor: f64) -> f64 {
        // A CAS loop keeps concurrent scalings composable.
        loop {
            let cur = self.bits.load(Ordering::Acquire);
            let new = sanitize(f64::from_bits(cur) * factor);
            if self
                .bits
                .compare_exchange(cur, new.to_bits(), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return new;
            }
        }
    }

    /// Seconds between emissions at the current rate.
    pub fn interval(&self) -> f64 {
        1.0 / self.get()
    }
}

/// A paced source: emits `count` generated items at the knob's rate.
///
/// Construction returns the knob (for the manager's actuator) and the
/// source is started with [`PacedSource::spawn`], which feeds a crossbeam
/// channel with [`crate::stream::StreamMsg`]s and finishes with `End`.
pub struct PacedSource<T> {
    knob: Arc<RateKnob>,
    generate: Box<dyn FnMut(u64) -> T + Send>,
    count: u64,
    metrics: Option<Arc<crate::seq::StageMetrics>>,
}

impl<T: Send + 'static> PacedSource<T> {
    /// A source producing `count` items via `generate(seq)`, initially at
    /// `rate` tasks/s.
    pub fn new(rate: f64, count: u64, generate: impl FnMut(u64) -> T + Send + 'static) -> Self {
        Self {
            knob: RateKnob::new(rate),
            generate: Box::new(generate),
            count,
            metrics: None,
        }
    }

    /// Attaches stage metrics: each emission records a departure, and the
    /// end of the stream is marked, so a `SourceAbc` can monitor the
    /// source.
    pub fn with_metrics(mut self, metrics: Arc<crate::seq::StageMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The rate knob controlling this source.
    pub fn knob(&self) -> Arc<RateKnob> {
        Arc::clone(&self.knob)
    }

    /// Spawns the emitting thread, sending into `tx`.
    ///
    /// Emission uses absolute-deadline pacing (not fixed sleeps), so rate
    /// changes take effect at the next emission and sleep jitter does not
    /// accumulate into rate error.
    pub fn spawn(
        mut self,
        tx: crossbeam::channel::Sender<crate::stream::StreamMsg<T>>,
    ) -> std::thread::JoinHandle<u64> {
        std::thread::Builder::new()
            .name("bskel-source".into())
            .spawn(move || {
                let start = std::time::Instant::now();
                let mut next_deadline = 0.0f64;
                let mut sent = 0u64;
                for seq in 0..self.count {
                    next_deadline += self.knob.interval();
                    loop {
                        let elapsed = start.elapsed().as_secs_f64();
                        let wait = next_deadline - elapsed;
                        if wait <= 0.0 {
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_secs_f64(
                            wait.min(0.01), // re-check the knob every 10 ms
                        ));
                        // A rate increase shortens the pending deadline.
                        let min_deadline = elapsed + self.knob.interval().min(wait);
                        if min_deadline < next_deadline {
                            next_deadline = min_deadline;
                        }
                    }
                    let item = (self.generate)(seq);
                    if tx.send(crate::stream::StreamMsg::item(seq, item)).is_err() {
                        return sent; // downstream hung up
                    }
                    if let Some(m) = &self.metrics {
                        m.record_departure(m.now());
                    }
                    sent += 1;
                }
                let _ = tx.send(crate::stream::StreamMsg::End);
                if let Some(m) = &self.metrics {
                    m.mark_end_in();
                    m.mark_end_out();
                }
                sent
            })
            .expect("spawn source thread")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamMsg;

    #[test]
    fn knob_get_set_scale() {
        let k = RateKnob::new(2.0);
        assert_eq!(k.get(), 2.0);
        assert_eq!(k.interval(), 0.5);
        k.set(4.0);
        assert_eq!(k.get(), 4.0);
        let new = k.scale(0.5);
        assert_eq!(new, 2.0);
        assert_eq!(k.get(), 2.0);
    }

    #[test]
    fn knob_clamps() {
        let k = RateKnob::new(1.0);
        k.set(0.0);
        assert!(k.get() > 0.0);
        k.set(f64::INFINITY);
        assert!(k.get().is_finite());
    }

    #[test]
    fn knob_clamps_degenerate_initial_rates() {
        // Constructor policy now matches `set`: clamp, never panic.
        assert!(RateKnob::new(-1.0).get() > 0.0);
        assert!(RateKnob::new(0.0).get() > 0.0);
        assert!(RateKnob::new(f64::INFINITY).get().is_finite());
        let k = RateKnob::new(f64::NAN);
        assert!(k.get() > 0.0, "NaN pinned to the floor, not propagated");
        k.set(f64::NAN);
        assert!(k.get() > 0.0);
        k.set(2.0);
        assert_eq!(k.scale(f64::NAN), 1e-6, "NaN scale clamps to the floor");
    }

    #[test]
    fn source_emits_count_then_end() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let src = PacedSource::new(1000.0, 5, |seq| seq * 10);
        let handle = src.spawn(tx);
        let mut items = Vec::new();
        while let StreamMsg::Item { seq, payload } = rx.recv().unwrap() {
            items.push((seq, payload));
        }
        assert_eq!(items, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        assert_eq!(handle.join().unwrap(), 5);
    }

    #[test]
    fn source_respects_rate_roughly() {
        let (tx, rx) = crossbeam::channel::unbounded();
        // 100 items at 1000/s ≈ 0.1 s.
        let src = PacedSource::new(1000.0, 100, |s| s);
        let start = std::time::Instant::now();
        let handle = src.spawn(tx);
        let mut n = 0;
        while let Ok(msg) = rx.recv() {
            if msg.is_end() {
                break;
            }
            n += 1;
        }
        let dt = start.elapsed().as_secs_f64();
        handle.join().unwrap();
        assert_eq!(n, 100);
        assert!(dt > 0.05, "too fast: {dt}s");
        assert!(dt < 2.0, "too slow: {dt}s");
    }

    #[test]
    fn rate_increase_takes_effect() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let src = PacedSource::new(10.0, 30, |s| s);
        let knob = src.knob();
        let start = std::time::Instant::now();
        let handle = src.spawn(tx);
        // After 3 items (~0.3 s) crank the rate up 100×.
        let mut n = 0;
        while let Ok(msg) = rx.recv() {
            if msg.is_end() {
                break;
            }
            n += 1;
            if n == 3 {
                knob.set(1000.0);
            }
        }
        let dt = start.elapsed().as_secs_f64();
        handle.join().unwrap();
        assert_eq!(n, 30);
        // At 10/s the remaining 27 items would need 2.7 s; with the bump
        // the whole run finishes well under that.
        assert!(dt < 1.5, "rate change ignored: took {dt}s");
    }

    #[test]
    fn source_stops_when_receiver_drops() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let src = PacedSource::new(10_000.0, 1_000_000, |s| s);
        let handle = src.spawn(tx);
        // Take a few items then hang up.
        for _ in 0..3 {
            rx.recv().unwrap();
        }
        drop(rx);
        let sent = handle.join().unwrap();
        assert!(sent < 1_000_000);
    }
}
