//! Sequential stages and shared stage metrics.
//!
//! A sequential stage is a thread mapping the input stream to the output
//! stream one item at a time. Every stage (and the paced source / sink)
//! publishes [`StageMetrics`] — the arrival/departure estimators a stage
//! manager's ABC reads.

use crate::stream::StreamMsg;
use bskel_monitor::{Clock, Counter, RateEstimator, SensorSnapshot, Time};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shared monitoring state of one stage.
pub struct StageMetrics {
    clock: Arc<dyn Clock>,
    arrivals: Mutex<RateEstimator>,
    departures: Mutex<RateEstimator>,
    end_in: AtomicBool,
    end_out: AtomicBool,
    processed: Counter,
}

impl StageMetrics {
    /// Creates metrics with the given clock and rate window (seconds).
    pub fn new(clock: Arc<dyn Clock>, rate_window: f64) -> Arc<Self> {
        Arc::new(Self {
            clock,
            arrivals: Mutex::new(RateEstimator::new(rate_window)),
            departures: Mutex::new(RateEstimator::new(rate_window)),
            end_in: AtomicBool::new(false),
            end_out: AtomicBool::new(false),
            processed: Counter::new(),
        })
    }

    /// The stage's time source.
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// Records an input arrival.
    pub fn record_arrival(&self, t: Time) {
        self.arrivals.lock().record(t);
    }

    /// Records an output departure.
    pub fn record_departure(&self, t: Time) {
        self.departures.lock().record(t);
        self.processed.incr();
    }

    /// Marks end-of-stream observed on the input.
    pub fn mark_end_in(&self) {
        self.end_in.store(true, Ordering::SeqCst);
    }

    /// Marks end-of-stream forwarded on the output.
    pub fn mark_end_out(&self) {
        self.end_out.store(true, Ordering::SeqCst);
    }

    /// Whether the input stream has ended.
    pub fn end_in(&self) -> bool {
        self.end_in.load(Ordering::SeqCst)
    }

    /// Total items processed.
    pub fn processed(&self) -> u64 {
        self.processed.get()
    }

    /// Builds a sensor snapshot at time `now`.
    pub fn snapshot(&self, now: Time) -> SensorSnapshot {
        let mut snap = SensorSnapshot::empty(now);
        snap.arrival_rate = self.arrivals.lock().rate(now);
        snap.departure_rate = self.departures.lock().rate(now);
        snap.end_of_stream = self.end_in.load(Ordering::SeqCst);
        if let Some(idle) = self.arrivals.lock().idle_for(now) {
            snap.idle_for = idle;
        }
        snap
    }
}

/// Spawns a sequential mapping stage.
pub fn spawn_stage<In, Out>(
    name: &str,
    rx: Receiver<StreamMsg<In>>,
    tx: Sender<StreamMsg<Out>>,
    mut f: impl FnMut(In) -> Out + Send + 'static,
    metrics: Arc<StageMetrics>,
) -> JoinHandle<u64>
where
    In: Send + 'static,
    Out: Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("bskel-stage-{name}"))
        .spawn(move || {
            let mut n = 0u64;
            for msg in rx.iter() {
                match msg {
                    StreamMsg::Item { seq, payload } => {
                        metrics.record_arrival(metrics.now());
                        let out = f(payload);
                        metrics.record_departure(metrics.now());
                        n += 1;
                        if tx.send(StreamMsg::item(seq, out)).is_err() {
                            break;
                        }
                    }
                    StreamMsg::End => {
                        metrics.mark_end_in();
                        let _ = tx.send(StreamMsg::End);
                        metrics.mark_end_out();
                        break;
                    }
                }
            }
            n
        })
        .expect("spawn stage thread")
}

/// Spawns a sink stage consuming the stream; returns the number of items
/// consumed when joined.
pub fn spawn_sink<In>(
    name: &str,
    rx: Receiver<StreamMsg<In>>,
    mut f: impl FnMut(In) + Send + 'static,
    metrics: Arc<StageMetrics>,
) -> JoinHandle<u64>
where
    In: Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("bskel-sink-{name}"))
        .spawn(move || {
            let mut n = 0u64;
            for msg in rx.iter() {
                match msg {
                    StreamMsg::Item { payload, .. } => {
                        metrics.record_arrival(metrics.now());
                        f(payload);
                        metrics.record_departure(metrics.now());
                        n += 1;
                    }
                    StreamMsg::End => {
                        metrics.mark_end_in();
                        metrics.mark_end_out();
                        break;
                    }
                }
            }
            n
        })
        .expect("spawn sink thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bskel_monitor::ManualClock;
    use crossbeam::channel::unbounded;

    fn clock() -> Arc<dyn Clock> {
        Arc::new(ManualClock::new())
    }

    #[test]
    fn stage_maps_stream_and_forwards_end() {
        let (tx_in, rx_in) = unbounded();
        let (tx_out, rx_out) = unbounded();
        let metrics = StageMetrics::new(clock(), 5.0);
        let h = spawn_stage(
            "double",
            rx_in,
            tx_out,
            |x: u64| x * 2,
            Arc::clone(&metrics),
        );
        for i in 0..5 {
            tx_in.send(StreamMsg::item(i, i)).unwrap();
        }
        tx_in.send(StreamMsg::End).unwrap();
        let mut got = Vec::new();
        for msg in rx_out.iter() {
            match msg {
                StreamMsg::Item { seq, payload } => got.push((seq, payload)),
                StreamMsg::End => break,
            }
        }
        assert_eq!(got, vec![(0, 0), (1, 2), (2, 4), (3, 6), (4, 8)]);
        assert_eq!(h.join().unwrap(), 5);
        assert!(metrics.end_in());
        assert_eq!(metrics.processed(), 5);
    }

    #[test]
    fn sink_consumes_and_counts() {
        let (tx, rx) = unbounded();
        let metrics = StageMetrics::new(clock(), 5.0);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let h = spawn_sink(
            "sink",
            rx,
            move |x: u64| seen2.lock().push(x),
            Arc::clone(&metrics),
        );
        for i in 0..3 {
            tx.send(StreamMsg::item(i, i * 10)).unwrap();
        }
        tx.send(StreamMsg::End).unwrap();
        assert_eq!(h.join().unwrap(), 3);
        assert_eq!(*seen.lock(), vec![0, 10, 20]);
        assert!(metrics.end_in());
    }

    #[test]
    fn metrics_snapshot_rates() {
        let manual = ManualClock::new();
        let metrics = StageMetrics::new(Arc::new(manual.clone()), 2.0);
        for i in 0..10 {
            metrics.record_arrival(i as f64 * 0.1);
            metrics.record_departure(i as f64 * 0.1 + 0.05);
        }
        let snap = metrics.snapshot(1.0);
        assert!(snap.arrival_rate > 3.0);
        assert!(snap.departure_rate > 3.0);
        assert!(!snap.end_of_stream);
        assert!(snap.idle_for < 1.0);
    }

    #[test]
    fn stage_stops_when_downstream_drops() {
        let (tx_in, rx_in) = unbounded();
        let (tx_out, rx_out) = unbounded::<StreamMsg<u64>>();
        let metrics = StageMetrics::new(clock(), 5.0);
        let h = spawn_stage("s", rx_in, tx_out, |x: u64| x, metrics);
        tx_in.send(StreamMsg::item(0, 1)).unwrap();
        rx_out.recv().unwrap();
        drop(rx_out);
        tx_in.send(StreamMsg::item(1, 2)).unwrap();
        // The stage notices the closed output and exits.
        h.join().unwrap();
    }
}
