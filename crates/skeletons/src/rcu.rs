//! Read-copy-update publication for reconfigurable state.
//!
//! The farm emitter used to take the worker-list mutex *per task* just to
//! pick a queue — a lock shared with the (rare) reconfiguration path. The
//! RCU idiom inverts that cost: reconfiguration *publishes* a brand-new
//! immutable table ([`Published::publish`]) and bumps a generation
//! counter; steady-state readers hold a [`ReadHandle`] that caches the
//! current `Arc` and revalidates with **one atomic load** per access,
//! touching the slot mutex only when the generation actually moved — i.e.
//! only across a reconfiguration.
//!
//! This is safe-Rust RCU: grace periods are delegated to `Arc` reference
//! counting (an unpublished table dies when its last cached handle lets
//! go), so no epochs, no deferred reclamation, no `unsafe`.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A value slot whose current version is swapped atomically-by-publication
/// and read wait-free through cached [`ReadHandle`]s.
#[derive(Debug)]
pub struct Published<T> {
    /// Bumped after every publish; readers revalidate against it.
    generation: AtomicU64,
    /// The current version. Only locked by publishers and by readers whose
    /// cached generation went stale — never on the steady-state path.
    slot: Mutex<Arc<T>>,
}

impl<T> Published<T> {
    /// Publishes an initial value at generation 0.
    pub fn new(value: T) -> Self {
        Self {
            generation: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(value)),
        }
    }

    /// The current generation number (0 until the first re-publish).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Replaces the current value. Readers observe the new version on
    /// their next access; old versions die with their last reader.
    pub fn publish(&self, value: T) {
        *self.slot.lock() = Arc::new(value);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// A one-off read (locks the slot — reconfiguration/sensing cadence,
    /// not the per-task path; per-task readers use [`ReadHandle`]).
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.slot.lock())
    }
}

/// A reader's cached view of a [`Published`] slot.
///
/// `get` costs one `Acquire` load while the generation is unchanged; on a
/// publish it refreshes through the slot lock once and returns to the
/// wait-free regime.
#[derive(Debug)]
pub struct ReadHandle<T> {
    source: Arc<Published<T>>,
    cached: Arc<T>,
    generation: u64,
}

impl<T> ReadHandle<T> {
    /// Creates a handle over `source`, caching its current version.
    pub fn new(source: Arc<Published<T>>) -> Self {
        let generation = source.generation();
        let cached = source.load();
        Self {
            source,
            cached,
            generation,
        }
    }

    /// The current value; revalidates the cache iff a publish happened.
    #[inline]
    pub fn get(&mut self) -> &Arc<T> {
        let gen_now = self.source.generation.load(Ordering::Acquire);
        if gen_now != self.generation {
            // Read the generation before the slot: the slot content is
            // then at least as new as `gen_now`, so caching that pair can
            // only under-report the generation — the next access merely
            // refreshes again, which is correct and cheap.
            self.cached = self.source.load();
            self.generation = gen_now;
        }
        &self.cached
    }
}

impl<T> Clone for ReadHandle<T> {
    fn clone(&self) -> Self {
        Self {
            source: Arc::clone(&self.source),
            cached: Arc::clone(&self.cached),
            generation: self.generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_handle_sees_publishes() {
        let p = Arc::new(Published::new(vec![1, 2, 3]));
        let mut r = ReadHandle::new(Arc::clone(&p));
        assert_eq!(**r.get(), vec![1, 2, 3]);
        p.publish(vec![4]);
        assert_eq!(**r.get(), vec![4]);
        assert_eq!(p.generation(), 1);
    }

    #[test]
    fn stale_handles_keep_old_version_alive() {
        let p = Arc::new(Published::new(String::from("old")));
        let mut r = ReadHandle::new(Arc::clone(&p));
        let pinned = Arc::clone(r.get()); // simulate an in-flight use
        p.publish(String::from("new"));
        assert_eq!(*pinned, "old", "pinned version unaffected by publish");
        assert_eq!(**r.get(), "new");
    }

    #[test]
    fn concurrent_publish_and_read_converges() {
        let p = Arc::new(Published::new(0u64));
        let writer = {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                for i in 1..=1000u64 {
                    p.publish(i);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let mut r = ReadHandle::new(Arc::clone(&p));
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..10_000 {
                        let v = **r.get();
                        assert!(v >= last, "reads are monotone: {v} < {last}");
                        last = v;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        let mut r = ReadHandle::new(p);
        assert_eq!(**r.get(), 1000);
    }
}
