//! Manager drivers: threads running control loops against the runtime.
//!
//! In the GCM prototype each AM is an active object whose control loop
//! periodically invokes the rule engine (paper §4.1). Here a driver thread
//! plays that role: it calls `control_cycle` on a manager (or a whole
//! hierarchy, children before parents) every control period until stopped.

use bskel_core::hierarchy::Hierarchy;
use bskel_core::manager::AutonomicManager;
use bskel_monitor::Clock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running control-loop thread over a whole manager [`Hierarchy`].
pub struct HierarchyDriver {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<Hierarchy>,
}

impl HierarchyDriver {
    /// Spawns the driver: one pass over the hierarchy every `period`
    /// seconds of the given clock.
    pub fn spawn(mut hierarchy: Hierarchy, period: f64, clock: Arc<dyn Clock>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("bskel-hierarchy-driver".into())
            .spawn(move || {
                while !stop2.load(Ordering::SeqCst) {
                    let now = clock.now();
                    hierarchy.run_cycle(now);
                    std::thread::sleep(Duration::from_secs_f64(period.max(0.001)));
                }
                hierarchy
            })
            .expect("spawn hierarchy driver");
        Self { stop, handle }
    }

    /// Stops the loop and returns the hierarchy (with its event log).
    pub fn stop(self) -> Hierarchy {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().expect("hierarchy driver panicked")
    }
}

/// A running control-loop thread over a single manager.
pub struct ManagerDriver {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<AutonomicManager>,
}

impl ManagerDriver {
    /// Spawns the driver using the manager's configured control period.
    pub fn spawn(mut manager: AutonomicManager, clock: Arc<dyn Clock>) -> Self {
        let period = manager.control_period();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("bskel-am-{}", manager.name()))
            .spawn(move || {
                while !stop2.load(Ordering::SeqCst) {
                    let now = clock.now();
                    manager.control_cycle(now);
                    std::thread::sleep(Duration::from_secs_f64(period.max(0.001)));
                }
                manager
            })
            .expect("spawn manager driver");
        Self { stop, handle }
    }

    /// Stops the loop and returns the manager.
    pub fn stop(self) -> AutonomicManager {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().expect("manager driver panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bskel_core::abc::NullAbc;
    use bskel_core::bs::BsExpr;
    use bskel_core::contract::Contract;
    use bskel_core::events::EventLog;
    use bskel_core::hierarchy::build;
    use bskel_core::manager::ManagerConfig;
    use bskel_monitor::RealClock;

    #[test]
    fn manager_driver_runs_cycles_and_stops() {
        let manager = {
            let mut cfg = ManagerConfig::sequential("AM_T");
            cfg.control_period = 0.005;
            AutonomicManager::new(cfg, Box::new(NullAbc::default()), EventLog::new())
        };
        manager.contract_slot().post(Contract::min_throughput(1.0));
        let driver = ManagerDriver::spawn(manager, Arc::new(RealClock::new()));
        std::thread::sleep(Duration::from_millis(50));
        let manager = driver.stop();
        // The NullAbc delivers zero throughput, so every cycle logs
        // contrLow; several cycles must have run.
        assert!(
            manager.log().len() >= 3,
            "only {} events",
            manager.log().len()
        );
    }

    #[test]
    fn hierarchy_driver_propagates_contract() {
        let expr = BsExpr::parse("pipe:app(seq:p, farm:f(seq:w), seq:c)").unwrap();
        let hierarchy = build(
            &expr,
            EventLog::new(),
            &mut |_, _| Box::new(NullAbc::default()) as Box<dyn bskel_core::abc::Abc>,
            &mut |_, mut cfg| {
                cfg.control_period = 0.005;
                cfg
            },
        );
        hierarchy.post_contract(Contract::throughput_range(0.3, 0.7));
        let driver = HierarchyDriver::spawn(hierarchy, 0.005, Arc::new(RealClock::new()));
        std::thread::sleep(Duration::from_millis(60));
        let hierarchy = driver.stop();
        assert_eq!(
            hierarchy.manager("AM_f").unwrap().contract(),
            &Contract::throughput_range(0.3, 0.7)
        );
    }
}
