//! The pipeline skeleton: source → stages (sequential or farm) → sink.
//!
//! Mirrors the application of the paper's Fig. 2 (right): a paced producer,
//! any number of processing stages, and a consumer, connected by channels.
//! Each stage registers a named ABC that the hierarchy builder hands to the
//! corresponding stage manager (AM_P, AM_F, AM_C in Fig. 4).

use crate::abc_impl::{FarmAbc, SourceAbc, StageAbc};
use crate::farm::Farm;
use crate::limiter::PacedSource;
use crate::seq::{spawn_sink, spawn_stage, StageMetrics};
use crate::stream::StreamMsg;
use bskel_core::abc::Abc;
use bskel_monitor::{Clock, RealClock};
use crossbeam::channel::{unbounded, Receiver};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Staged pipeline under construction; `T` is the current stream type.
pub struct PipelineBuilder<T> {
    rx: Receiver<StreamMsg<T>>,
    clock: Arc<dyn Clock>,
    rate_window: f64,
    joins: Vec<JoinHandle<u64>>,
    shutdowns: Vec<Box<dyn FnOnce() + Send>>,
    abcs: HashMap<String, Box<dyn Abc>>,
}

impl<T: Send + 'static> PipelineBuilder<T> {
    /// Starts a pipeline with a paced source emitting `count` items at
    /// `rate` tasks/s via `generate(seq)`.
    pub fn source(
        name: &str,
        rate: f64,
        count: u64,
        generate: impl FnMut(u64) -> T + Send + 'static,
    ) -> Self {
        Self::source_with_clock(name, rate, count, generate, Arc::new(RealClock::new()), 2.0)
    }

    /// Like [`PipelineBuilder::source`] with an explicit clock and rate
    /// window (tests, scaled-time experiments).
    pub fn source_with_clock(
        name: &str,
        rate: f64,
        count: u64,
        generate: impl FnMut(u64) -> T + Send + 'static,
        clock: Arc<dyn Clock>,
        rate_window: f64,
    ) -> Self {
        let metrics = StageMetrics::new(Arc::clone(&clock), rate_window);
        let source = PacedSource::new(rate, count, generate).with_metrics(Arc::clone(&metrics));
        let knob = source.knob();
        let (tx, rx) = unbounded();
        let handle = source.spawn(tx);
        let mut abcs: HashMap<String, Box<dyn Abc>> = HashMap::new();
        abcs.insert(name.to_owned(), Box::new(SourceAbc::new(knob, metrics)));
        Self {
            rx,
            clock,
            rate_window,
            joins: vec![handle],
            shutdowns: Vec::new(),
            abcs,
        }
    }

    /// Appends a sequential mapping stage.
    pub fn stage<U: Send + 'static>(
        mut self,
        name: &str,
        f: impl FnMut(T) -> U + Send + 'static,
    ) -> PipelineBuilder<U> {
        let metrics = StageMetrics::new(Arc::clone(&self.clock), self.rate_window);
        let (tx, rx) = unbounded();
        let handle = spawn_stage(name, self.rx, tx, f, Arc::clone(&metrics));
        self.joins.push(handle);
        self.abcs
            .insert(name.to_owned(), Box::new(StageAbc::new(metrics)));
        PipelineBuilder {
            rx,
            clock: self.clock,
            rate_window: self.rate_window,
            joins: self.joins,
            shutdowns: self.shutdowns,
            abcs: self.abcs,
        }
    }

    /// Appends a (pre-built, running) farm as a stage, wiring this
    /// pipeline's stream through it.
    pub fn farm<U: Send + 'static>(mut self, name: &str, farm: Farm<T, U>) -> PipelineBuilder<U> {
        let farm_in = farm.input();
        let upstream = self.rx;
        // Pump: upstream → farm input.
        let pump_in = std::thread::Builder::new()
            .name(format!("bskel-pump-{name}-in"))
            .spawn(move || {
                let mut n = 0u64;
                for msg in upstream.iter() {
                    let end = msg.is_end();
                    if farm_in.send(msg).is_err() {
                        break;
                    }
                    if end {
                        break;
                    }
                    n += 1;
                }
                n
            })
            .expect("spawn farm input pump");
        // Pump: farm output → downstream.
        let farm_out = farm.output();
        let (tx, rx) = unbounded();
        let pump_out = std::thread::Builder::new()
            .name(format!("bskel-pump-{name}-out"))
            .spawn(move || {
                let mut n = 0u64;
                for msg in farm_out.iter() {
                    let end = msg.is_end();
                    if tx.send(msg).is_err() {
                        break;
                    }
                    if end {
                        break;
                    }
                    n += 1;
                }
                n
            })
            .expect("spawn farm output pump");
        self.joins.push(pump_in);
        self.joins.push(pump_out);
        self.abcs
            .insert(name.to_owned(), Box::new(FarmAbc::new(farm.control())));
        self.shutdowns.push(Box::new(move || {
            farm.shutdown();
        }));
        PipelineBuilder {
            rx,
            clock: self.clock,
            rate_window: self.rate_window,
            joins: self.joins,
            shutdowns: self.shutdowns,
            abcs: self.abcs,
        }
    }

    /// Terminates the pipeline with a consuming sink.
    pub fn sink(mut self, name: &str, f: impl FnMut(T) + Send + 'static) -> Pipeline {
        let metrics = StageMetrics::new(Arc::clone(&self.clock), self.rate_window);
        let handle = spawn_sink(name, self.rx, f, Arc::clone(&metrics));
        self.abcs
            .insert(name.to_owned(), Box::new(StageAbc::new(metrics)));
        Pipeline {
            sink: handle,
            joins: self.joins,
            shutdowns: self.shutdowns,
            abcs: self.abcs,
        }
    }
}

/// A running pipeline.
pub struct Pipeline {
    sink: JoinHandle<u64>,
    joins: Vec<JoinHandle<u64>>,
    shutdowns: Vec<Box<dyn FnOnce() + Send>>,
    abcs: HashMap<String, Box<dyn Abc>>,
}

impl Pipeline {
    /// Takes the ABC registered under a stage name (to hand to that
    /// stage's manager). Each ABC can be taken once.
    pub fn take_abc(&mut self, name: &str) -> Option<Box<dyn Abc>> {
        self.abcs.remove(name)
    }

    /// Names of ABCs not yet taken.
    pub fn abc_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.abcs.keys().cloned().collect();
        names.sort();
        names
    }

    /// Waits for the stream to drain end-to-end; returns the number of
    /// items the sink consumed.
    pub fn wait(self) -> u64 {
        let consumed = self.sink.join().expect("sink thread panicked");
        for j in self.joins {
            let _ = j.join();
        }
        for s in self.shutdowns {
            s();
        }
        consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farm::FarmBuilder;
    use parking_lot::Mutex;

    #[test]
    fn three_stage_pipeline_end_to_end() {
        let results = Arc::new(Mutex::new(Vec::new()));
        let sink_results = Arc::clone(&results);
        let pipe = PipelineBuilder::source("producer", 5000.0, 50, |seq| seq)
            .stage("double", |x| x * 2)
            .sink("consumer", move |x| sink_results.lock().push(x));
        let consumed = pipe.wait();
        assert_eq!(consumed, 50);
        let got = results.lock().clone();
        assert_eq!(got, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pipeline_with_farm_stage() {
        let count = Arc::new(Mutex::new(0u64));
        let sink_count = Arc::clone(&count);
        let farm = FarmBuilder::from_fn(|x: u64| x + 1)
            .initial_workers(3)
            .build();
        let pipe = PipelineBuilder::source("producer", 5000.0, 120, |seq| seq)
            .farm("filter", farm)
            .sink("consumer", move |_| *sink_count.lock() += 1);
        assert_eq!(pipe.wait(), 120);
        assert_eq!(*count.lock(), 120);
    }

    #[test]
    fn abcs_registered_per_stage() {
        let farm = FarmBuilder::from_fn(|x: u64| x).initial_workers(1).build();
        let mut pipe = PipelineBuilder::source("producer", 10_000.0, 10, |s| s)
            .farm("filter", farm)
            .sink("consumer", |_| {});
        assert_eq!(pipe.abc_names(), ["consumer", "filter", "producer"]);
        let abc = pipe.take_abc("filter");
        assert!(abc.is_some());
        assert!(pipe.take_abc("filter").is_none(), "taken once");
        assert_eq!(pipe.abc_names(), ["consumer", "producer"]);
        pipe.wait();
    }

    #[test]
    fn farm_abc_senses_live_pipeline() {
        let farm = FarmBuilder::from_fn(|x: u64| x).initial_workers(2).build();
        let mut pipe = PipelineBuilder::source("producer", 10_000.0, 200, |s| s)
            .farm("filter", farm)
            .sink("consumer", |_| {});
        let mut abc = pipe.take_abc("filter").unwrap();
        assert_eq!(abc.sense(0.0).num_workers, 2);
        pipe.wait(); // farm is shut down here; flags survive in metrics
        let snap = abc.sense(1e9);
        assert!(snap.end_of_stream);
    }
}
